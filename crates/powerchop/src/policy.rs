//! Power-gating policies (paper §IV-B3, Fig. 6b).
//!
//! A gating policy is a 4-bit vector: 1 bit for the VPU (gated on/off),
//! 1 bit for the BPU (large predictor on/off), and 2 bits for the MLC
//! (all / half / one way active).

use powerchop_uarch::cache::MlcWayState;

/// The power-gating states of the three managed units for one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GatingPolicy {
    /// Whether the VPU is powered (`V` bit).
    pub vpu_on: bool,
    /// Whether the large BPU is powered (`B` bit).
    pub bpu_on: bool,
    /// MLC way-gating state (`M` bits).
    pub mlc: MlcWayState,
}

impl GatingPolicy {
    /// Everything fully powered (performance baseline).
    pub const FULL: GatingPolicy = GatingPolicy {
        vpu_on: true,
        bpu_on: true,
        mlc: MlcWayState::Full,
    };

    /// Everything in its lowest-power state (power floor).
    pub const MINIMAL: GatingPolicy = GatingPolicy {
        vpu_on: false,
        bpu_on: false,
        mlc: MlcWayState::One,
    };

    /// The 4-bit PVT encoding: `V | B << 1 | M << 2`.
    #[must_use]
    pub fn bits(self) -> u8 {
        u8::from(self.vpu_on) | (u8::from(self.bpu_on) << 1) | (self.mlc.policy_bits() << 2)
    }

    /// Decodes a 4-bit PVT policy field (inverse of [`GatingPolicy::bits`];
    /// only the low 4 bits are read). Every nibble decodes to *some*
    /// policy, which is what makes bit-flip corruption of a PVT entry
    /// silent at the hardware level — detection is the job of the
    /// criticality layer's anomaly checks, not the decoder.
    #[must_use]
    pub fn from_bits(bits: u8) -> GatingPolicy {
        GatingPolicy {
            vpu_on: bits & 0b1 != 0,
            bpu_on: bits & 0b10 != 0,
            mlc: MlcWayState::from_policy_bits(bits >> 2),
        }
    }

    /// Storage bits of one PVT policy field (paper Fig. 6b: 4 bits).
    #[must_use]
    pub fn storage_bits() -> u32 {
        4
    }
}

impl std::fmt::Display for GatingPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "V={} B={} M={}",
            u8::from(self.vpu_on),
            u8::from(self.bpu_on),
            self.mlc
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_encoding_is_unique_per_policy() {
        let mut seen = std::collections::HashSet::new();
        for vpu_on in [false, true] {
            for bpu_on in [false, true] {
                for mlc in [MlcWayState::One, MlcWayState::Half, MlcWayState::Full] {
                    let p = GatingPolicy {
                        vpu_on,
                        bpu_on,
                        mlc,
                    };
                    assert!(seen.insert(p.bits()), "duplicate encoding for {p}");
                    assert!(p.bits() < 16, "must fit the 4-bit PVT field");
                }
            }
        }
    }

    #[test]
    fn bits_roundtrip_through_from_bits() {
        for vpu_on in [false, true] {
            for bpu_on in [false, true] {
                for mlc in [
                    MlcWayState::One,
                    MlcWayState::Quarter,
                    MlcWayState::Half,
                    MlcWayState::Full,
                ] {
                    let p = GatingPolicy {
                        vpu_on,
                        bpu_on,
                        mlc,
                    };
                    assert_eq!(GatingPolicy::from_bits(p.bits()), p);
                }
            }
        }
        // Every nibble decodes to something (corruption never traps).
        for nibble in 0u8..16 {
            let _ = GatingPolicy::from_bits(nibble);
        }
    }

    #[test]
    fn named_policies() {
        assert_eq!(GatingPolicy::FULL.to_string(), "V=1 B=1 M=all-ways");
        assert_eq!(GatingPolicy::MINIMAL.to_string(), "V=0 B=0 M=1-way");
        assert_eq!(GatingPolicy::storage_bits(), 4);
    }
}
