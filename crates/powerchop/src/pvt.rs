//! The Policy Vector Table (PVT), paper §IV-B3.
//!
//! A small fully-associative hardware cache mapping recently-executed
//! phase signatures to their power-gating policies. A hit applies the
//! stored policy with no software involvement; a miss raises an interrupt
//! to the Criticality Decision Engine. Entries are replaced with an
//! approximate-LRU policy; evicted entries are written back to memory by
//! the CDE (modelled by the backing store in [`crate::cde`]).
//!
//! The paper's configuration — 16 entries of a 128-bit signature plus a
//! 4-bit policy = 264 bytes — is the default.

use crate::phase::PhaseSignature;
use crate::policy::GatingPolicy;

/// Paper-default PVT capacity.
pub const PVT_ENTRIES: usize = 16;

/// Cumulative PVT event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PvtStats {
    /// Signature lookups (one per execution window).
    pub lookups: u64,
    /// Lookups that hit.
    pub hits: u64,
    /// Entries evicted to the CDE's backing store.
    pub evictions: u64,
}

impl powerchop_telemetry::MetricSource for PvtStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("pvt_lookups_total", self.lookups);
        reg.counter_set("pvt_hits_total", self.hits);
        reg.counter_set("pvt_misses_total", self.misses());
        reg.counter_set("pvt_evictions_total", self.evictions);
    }
}

impl PvtStats {
    /// Lookups that missed.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }
}

#[derive(Debug, Clone)]
struct Entry {
    signature: PhaseSignature,
    policy: GatingPolicy,
    /// Reference bit for approximate (clock) LRU.
    referenced: bool,
}

/// The Policy Vector Table.
///
/// # Examples
///
/// ```
/// use powerchop::phase::PhaseSignature;
/// use powerchop::policy::GatingPolicy;
/// use powerchop::pvt::PolicyVectorTable;
/// use powerchop_bt::TranslationId;
///
/// let mut pvt = PolicyVectorTable::paper_default();
/// let sig = PhaseSignature::new(&[TranslationId(1), TranslationId(2)]);
/// assert!(pvt.lookup(sig).is_none());
/// pvt.register(sig, GatingPolicy::MINIMAL);
/// assert_eq!(pvt.lookup(sig), Some(GatingPolicy::MINIMAL));
/// ```
#[derive(Debug, Clone)]
pub struct PolicyVectorTable {
    entries: Vec<Entry>,
    capacity: usize,
    clock_hand: usize,
    stats: PvtStats,
}

impl PolicyVectorTable {
    /// Creates a PVT with `capacity` entries. A zero capacity is clamped
    /// to one entry: the management layer must stay panic-free under any
    /// configuration, and a one-entry table is the nearest well-defined
    /// neighbour of a degenerate request.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        PolicyVectorTable {
            entries: Vec::with_capacity(capacity),
            capacity,
            clock_hand: 0,
            stats: PvtStats::default(),
        }
    }

    /// A PVT with the paper's configuration (16 entries).
    #[must_use]
    pub fn paper_default() -> Self {
        PolicyVectorTable::new(PVT_ENTRIES)
    }

    /// Looks up a phase signature, returning its policy on a hit. Hits
    /// set the entry's reference bit (approximate LRU) and are counted.
    pub fn lookup(&mut self, signature: PhaseSignature) -> Option<GatingPolicy> {
        self.stats.lookups += 1;
        if let Some(e) = self.entries.iter_mut().find(|e| e.signature == signature) {
            e.referenced = true;
            self.stats.hits += 1;
            Some(e.policy)
        } else {
            None
        }
    }

    /// Registers (or updates) a phase's policy; called by the CDE.
    ///
    /// When the table is full, a victim is chosen by clock (approximate
    /// LRU) and returned so the CDE can store it to memory.
    pub fn register(
        &mut self,
        signature: PhaseSignature,
        policy: GatingPolicy,
    ) -> Option<(PhaseSignature, GatingPolicy)> {
        if let Some(e) = self.entries.iter_mut().find(|e| e.signature == signature) {
            e.policy = policy;
            e.referenced = true;
            return None;
        }
        let mut evicted = None;
        if self.entries.len() == self.capacity {
            // Clock sweep: clear reference bits until an unreferenced
            // entry is found.
            loop {
                let e = &mut self.entries[self.clock_hand];
                if e.referenced {
                    e.referenced = false;
                    self.clock_hand = (self.clock_hand + 1) % self.capacity;
                } else {
                    break;
                }
            }
            let victim = self.entries.remove(self.clock_hand);
            if self.clock_hand >= self.entries.len() {
                self.clock_hand = 0;
            }
            self.stats.evictions += 1;
            evicted = Some((victim.signature, victim.policy));
        }
        self.entries.push(Entry {
            signature,
            policy,
            referenced: true,
        });
        evicted
    }

    /// Removes the entry for `signature`, if present. Used by the
    /// degradation layer to purge a policy that contradicted observed
    /// behaviour, forcing the next occurrence of the phase back through
    /// the CDE.
    pub fn invalidate(&mut self, signature: PhaseSignature) -> bool {
        let Some(pos) = self.entries.iter().position(|e| e.signature == signature) else {
            return false;
        };
        self.entries.remove(pos);
        if self.clock_hand >= self.entries.len() {
            self.clock_hand = 0;
        }
        true
    }

    /// Fault hook: overwrites one resident entry's 4-bit policy field
    /// with bits carved from `payload` (a soft-error model — signatures
    /// are assumed parity-protected, the policy nibble is not). Returns
    /// the affected signature with its old and new policies, or `None`
    /// when the table is empty or the flip was a no-op.
    pub fn corrupt_entry(
        &mut self,
        payload: u64,
    ) -> Option<(PhaseSignature, GatingPolicy, GatingPolicy)> {
        if self.entries.is_empty() {
            return None;
        }
        let slot = (payload as usize) % self.entries.len();
        let e = &mut self.entries[slot];
        let old = e.policy;
        let new = GatingPolicy::from_bits(old.bits() ^ (((payload >> 32) as u8 & 0xF) | 1));
        e.policy = new;
        if new == old {
            return None;
        }
        Some((e.signature, old, new))
    }

    /// Fault hook: force-evicts one resident entry selected by `payload`
    /// (models table pressure from a co-runner or a hypervisor state
    /// snapshot). Returns the victim, or `None` on an empty table.
    pub fn evict_forced(&mut self, payload: u64) -> Option<(PhaseSignature, GatingPolicy)> {
        if self.entries.is_empty() {
            return None;
        }
        let slot = (payload as usize) % self.entries.len();
        let victim = self.entries.remove(slot);
        if self.clock_hand >= self.entries.len() {
            self.clock_hand = 0;
        }
        self.stats.evictions += 1;
        Some((victim.signature, victim.policy))
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> PvtStats {
        self.stats
    }

    /// Storage in bytes: each entry is a 128-bit signature plus a 4-bit
    /// policy (paper §IV-B4: 16 entries = 264 bytes).
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        let bits = self.capacity as u64
            * (u64::from(PhaseSignature::storage_bits()) + u64::from(GatingPolicy::storage_bits()));
        bits / 8
    }

    /// Serializes the full table state for checkpointing: entries in
    /// residency order with their reference bits, the clock hand, and
    /// statistics. (Unlike [`PolicyVectorTable::to_bit_image`], which
    /// models the hardware's 264-byte array and drops replacement state,
    /// this encoding is lossless.) Capacity is config-derived.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_usize(self.entries.len());
        for e in &self.entries {
            e.signature.snapshot_to(w);
            w.put_u8(e.policy.bits());
            w.put_bool(e.referenced);
        }
        w.put_usize(self.clock_hand);
        w.put_u64(self.stats.lookups);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.evictions);
    }

    /// Restores state written by [`PolicyVectorTable::snapshot_to`] in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or inconsistent with this table's capacity.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let count = r.take_usize()?;
        if count > self.capacity {
            return Err(powerchop_checkpoint::CheckpointError::Malformed {
                what: "PVT entry count exceeds capacity",
            });
        }
        self.entries.clear();
        for _ in 0..count {
            let signature = PhaseSignature::restore_from(r)?;
            let policy = GatingPolicy::from_bits(r.take_u8()?);
            let referenced = r.take_bool()?;
            self.entries.push(Entry {
                signature,
                policy,
                referenced,
            });
        }
        let clock_hand = r.take_usize()?;
        if clock_hand >= self.capacity {
            return Err(powerchop_checkpoint::CheckpointError::Malformed {
                what: "PVT clock hand outside capacity",
            });
        }
        self.clock_hand = clock_hand;
        self.stats.lookups = r.take_u64()?;
        self.stats.hits = r.take_u64()?;
        self.stats.evictions = r.take_u64()?;
        Ok(())
    }

    /// Serializes the table to its hardware bit image: per entry, four
    /// little-endian 32-bit translation PCs followed by the 4-bit policy
    /// (packed two entries' policies per byte at the end, matching the
    /// paper's 264-byte total for 16 entries). Unoccupied entries encode
    /// as all-ones signatures.
    #[must_use]
    pub fn to_bit_image(&self) -> Vec<u8> {
        let mut image = Vec::with_capacity(self.storage_bytes() as usize);
        // Signature words first.
        for slot in 0..self.capacity {
            match self.entries.get(slot) {
                Some(e) => {
                    let mut ids: Vec<u32> = e.signature.ids().map(|t| t.0).collect();
                    ids.resize(4, u32::MAX);
                    for id in ids {
                        image.extend_from_slice(&id.to_le_bytes());
                    }
                }
                None => {
                    for _ in 0..4 {
                        image.extend_from_slice(&u32::MAX.to_le_bytes());
                    }
                }
            }
        }
        // Policy nibbles, two per byte.
        for pair in (0..self.capacity).step_by(2) {
            let nibble =
                |slot: usize| -> u8 { self.entries.get(slot).map_or(0, |e| e.policy.bits()) };
            image.push(nibble(pair) | (nibble(pair + 1) << 4));
        }
        image
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_bt::TranslationId;

    fn sig(i: u32) -> PhaseSignature {
        PhaseSignature::new(&[TranslationId(i), TranslationId(i + 1000)])
    }

    #[test]
    fn miss_then_register_then_hit() {
        let mut pvt = PolicyVectorTable::new(4);
        assert!(pvt.lookup(sig(1)).is_none());
        pvt.register(sig(1), GatingPolicy::FULL);
        assert_eq!(pvt.lookup(sig(1)), Some(GatingPolicy::FULL));
        let s = pvt.stats();
        assert_eq!(s.lookups, 2);
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses(), 1);
    }

    #[test]
    fn register_updates_in_place() {
        let mut pvt = PolicyVectorTable::new(2);
        pvt.register(sig(1), GatingPolicy::FULL);
        assert!(pvt.register(sig(1), GatingPolicy::MINIMAL).is_none());
        assert_eq!(pvt.len(), 1);
        assert_eq!(pvt.lookup(sig(1)), Some(GatingPolicy::MINIMAL));
    }

    #[test]
    fn eviction_returns_victim_for_backing_store() {
        let mut pvt = PolicyVectorTable::new(2);
        pvt.register(sig(1), GatingPolicy::FULL);
        pvt.register(sig(2), GatingPolicy::MINIMAL);
        let evicted = pvt.register(sig(3), GatingPolicy::FULL);
        assert!(evicted.is_some());
        assert_eq!(pvt.len(), 2);
        assert_eq!(pvt.stats().evictions, 1);
    }

    #[test]
    fn recently_used_entries_survive_eviction() {
        let mut pvt = PolicyVectorTable::new(2);
        pvt.register(sig(1), GatingPolicy::FULL);
        pvt.register(sig(2), GatingPolicy::MINIMAL);
        // Touch sig(1) repeatedly; sig(2) goes stale.
        pvt.lookup(sig(1));
        // Insert forces an eviction; clock should prefer the unreferenced
        // entry once reference bits are swept. Both are referenced after
        // registration, so sweep clears both then evicts one; touch again
        // to make the preference unambiguous.
        pvt.register(sig(3), GatingPolicy::FULL);
        pvt.lookup(sig(3));
        pvt.lookup(sig(1));
        // Now whichever of {1,3} is present was recently used.
        let present_1 = pvt.lookup(sig(1)).is_some();
        let present_3 = pvt.lookup(sig(3)).is_some();
        assert!(present_1 || present_3);
    }

    #[test]
    fn paper_storage_is_264_bytes() {
        assert_eq!(PolicyVectorTable::paper_default().storage_bytes(), 264);
    }

    #[test]
    fn bit_image_matches_paper_layout() {
        let mut pvt = PolicyVectorTable::paper_default();
        let image = pvt.to_bit_image();
        assert_eq!(image.len(), 264, "16 x 128b signatures + 16 x 4b policies");
        // Empty table: all-ones signatures, zero policies.
        assert!(image[..256].iter().all(|b| *b == 0xFF));
        assert!(image[256..].iter().all(|b| *b == 0));

        pvt.register(sig(7), GatingPolicy::FULL);
        let image = pvt.to_bit_image();
        // First entry's first PC is 7 (signatures are sorted ascending).
        assert_eq!(&image[0..4], &7u32.to_le_bytes());
        // First policy nibble is FULL's encoding.
        assert_eq!(image[256] & 0x0F, GatingPolicy::FULL.bits());
    }

    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let mut pvt = PolicyVectorTable::new(0);
        pvt.register(sig(1), GatingPolicy::FULL);
        assert_eq!(pvt.len(), 1);
        let evicted = pvt.register(sig(2), GatingPolicy::MINIMAL);
        assert!(evicted.is_some());
        assert_eq!(pvt.len(), 1);
    }

    #[test]
    fn corrupt_entry_changes_stored_policy() {
        let mut pvt = PolicyVectorTable::new(4);
        assert!(
            pvt.corrupt_entry(7).is_none(),
            "empty table: nothing to corrupt"
        );
        pvt.register(sig(1), GatingPolicy::FULL);
        let (signature, old, new) = pvt.corrupt_entry(0).expect("one entry resident");
        assert_eq!(signature, sig(1));
        assert_eq!(old, GatingPolicy::FULL);
        assert_ne!(new, old);
        assert_eq!(pvt.lookup(sig(1)), Some(new));
    }

    #[test]
    fn evict_forced_removes_selected_entry() {
        let mut pvt = PolicyVectorTable::new(4);
        assert!(pvt.evict_forced(3).is_none());
        pvt.register(sig(1), GatingPolicy::FULL);
        pvt.register(sig(2), GatingPolicy::MINIMAL);
        let (victim, _) = pvt.evict_forced(0).expect("two entries resident");
        assert_eq!(pvt.len(), 1);
        assert!(pvt.lookup(victim).is_none());
        assert_eq!(pvt.stats().evictions, 1);
    }

    #[test]
    fn invalidate_purges_only_the_named_signature() {
        let mut pvt = PolicyVectorTable::new(4);
        pvt.register(sig(1), GatingPolicy::FULL);
        pvt.register(sig(2), GatingPolicy::MINIMAL);
        assert!(pvt.invalidate(sig(1)));
        assert!(!pvt.invalidate(sig(1)), "already gone");
        assert!(pvt.lookup(sig(1)).is_none());
        assert_eq!(pvt.lookup(sig(2)), Some(GatingPolicy::MINIMAL));
    }
}
