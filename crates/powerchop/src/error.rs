//! Typed errors for the integrated simulation.
//!
//! The library's contract is that it never panics on user input: bad
//! guest programs, degenerate configurations and injected faults all
//! surface as values of [`SimError`] from [`crate::system::run_program`].
//! The enum is hand-rolled (no derive-macro dependencies are available
//! offline) in the `thiserror` idiom: a variant per failure class, a
//! `Display` message per variant, `source()` chaining where there is an
//! underlying cause.

use powerchop_checkpoint::CheckpointError;
use powerchop_gisa::GisaError;

/// Why a simulation run could not produce a report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// The guest program faulted (a bug in the guest, not the simulator).
    Guest(GisaError),
    /// A run configuration field had a value the simulation cannot run
    /// under (and that clamping would silently misrepresent).
    InvalidConfig {
        /// The offending field, e.g. `"max_instructions"`.
        field: &'static str,
        /// Why the value is unusable.
        reason: &'static str,
    },
    /// A checkpoint snapshot could not be written or restored: corrupt,
    /// truncated, version-skewed or captured under a different
    /// configuration.
    Checkpoint(CheckpointError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Guest(e) => write!(f, "guest program fault: {e}"),
            SimError::InvalidConfig { field, reason } => {
                write!(f, "invalid run configuration: {field} {reason}")
            }
            SimError::Checkpoint(e) => write!(f, "checkpoint error: {e}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Guest(e) => Some(e),
            SimError::InvalidConfig { .. } => None,
            SimError::Checkpoint(e) => Some(e),
        }
    }
}

impl From<GisaError> for SimError {
    fn from(e: GisaError) -> Self {
        SimError::Guest(e)
    }
}

impl From<CheckpointError> for SimError {
    fn from(e: CheckpointError) -> Self {
        SimError::Checkpoint(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source_chain() {
        let guest = SimError::from(GisaError::EmptyProgram);
        assert!(guest.to_string().contains("guest program fault"));
        assert!(std::error::Error::source(&guest).is_some());

        let config = SimError::InvalidConfig {
            field: "max_instructions",
            reason: "must be > 0",
        };
        assert!(config.to_string().contains("max_instructions"));
        assert!(std::error::Error::source(&config).is_none());
    }
}
