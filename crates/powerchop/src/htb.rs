//! The Hot Translation Buffer (HTB), paper §IV-B2.
//!
//! A small fully-associative hardware buffer that tracks translations as
//! they execute, together with the dynamic instruction count each one
//! contributed during the current execution window. At the end of each
//! window the HTB yields the phase signature (the N hottest translations)
//! and is flushed. If a window touches more unique translations than the
//! buffer holds, the excess is simply ignored (paper: "it is simply
//! ignored").
//!
//! The paper's configuration — 128 entries of 32-bit translation ID plus
//! 32-bit execution counter = 1 KiB — is the default.

use std::collections::HashMap;

use powerchop_bt::TranslationId;

use crate::phase::PhaseSignature;

/// Paper-default HTB capacity.
pub const HTB_ENTRIES: usize = 128;

/// The Hot Translation Buffer.
///
/// # Examples
///
/// ```
/// use powerchop::htb::HotTranslationBuffer;
/// use powerchop_bt::TranslationId;
///
/// let mut htb = HotTranslationBuffer::new(128, 4);
/// htb.record(TranslationId(10), 500);
/// htb.record(TranslationId(20), 100);
/// htb.record(TranslationId(10), 500);
/// let sig = htb.signature();
/// assert_eq!(sig.ids().next(), Some(TranslationId(10)));
/// ```
#[derive(Debug, Clone)]
pub struct HotTranslationBuffer {
    /// Per-translation (executions, dynamic instructions) this window.
    counts: HashMap<TranslationId, (u64, u64)>,
    capacity: usize,
    signature_len: usize,
    overflowed: u64,
}

impl HotTranslationBuffer {
    /// Creates an HTB with `capacity` entries producing signatures of
    /// `signature_len` translations. Zero values are clamped to one:
    /// the management layer must stay panic-free under any
    /// configuration, and a one-entry buffer is the nearest well-defined
    /// neighbour of a degenerate request.
    #[must_use]
    pub fn new(capacity: usize, signature_len: usize) -> Self {
        let capacity = capacity.max(1);
        let signature_len = signature_len.max(1);
        HotTranslationBuffer {
            counts: HashMap::with_capacity(capacity),
            capacity,
            signature_len,
            overflowed: 0,
        }
    }

    /// An HTB with the paper's configuration (128 entries, N = 4).
    #[must_use]
    pub fn paper_default() -> Self {
        HotTranslationBuffer::new(HTB_ENTRIES, crate::phase::SIGNATURE_LEN)
    }

    /// Records one execution of `id` contributing `instructions` dynamic
    /// instructions. Updates happen off the critical path in hardware; in
    /// the model they are O(1).
    pub fn record(&mut self, id: TranslationId, instructions: u64) {
        if let Some((execs, insts)) = self.counts.get_mut(&id) {
            *execs += 1;
            *insts += instructions;
        } else if self.counts.len() < self.capacity {
            self.counts.insert(id, (1, instructions));
        } else {
            self.overflowed += 1;
        }
    }

    /// Unique translations tracked this window.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether no translations have been recorded this window.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Translation executions dropped because the buffer was full
    /// (cumulative across windows).
    #[must_use]
    pub fn overflowed(&self) -> u64 {
        self.overflowed
    }

    /// The phase signature of the current window: the `signature_len`
    /// hottest translations by dynamic instruction count (ties broken by
    /// ID for determinism).
    #[must_use]
    pub fn signature(&self) -> PhaseSignature {
        let mut entries: Vec<(TranslationId, u64)> = self
            .counts
            .iter()
            .map(|(id, (_, insts))| (*id, *insts))
            .collect();
        entries.sort_unstable_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        entries.truncate(self.signature_len);
        let ids: Vec<TranslationId> = entries.into_iter().map(|(id, _)| id).collect();
        PhaseSignature::new(&ids)
    }

    /// The full per-translation *execution*-count vector of the current
    /// window — the "translation vector" compared across same-signature
    /// windows by the Fig. 8 phase-quality analysis (entries sum to the
    /// window size, minus any HTB overflow).
    #[must_use]
    pub fn count_vector(&self) -> Vec<(TranslationId, u64)> {
        let mut v: Vec<_> = self
            .counts
            .iter()
            .map(|(id, (execs, _))| (*id, *execs))
            .collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Clears the buffer for the next execution window.
    pub fn flush(&mut self) {
        self.counts.clear();
    }

    /// Storage in bytes (ID + counter per entry), for the hardware-cost
    /// table.
    #[must_use]
    pub fn storage_bytes(&self) -> u64 {
        (self.capacity * 8) as u64
    }

    /// Serializes the window-in-progress counts (sorted by translation ID
    /// for a deterministic encoding) and the cumulative overflow counter.
    /// Capacity and signature length are config-derived and not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        let mut entries: Vec<(TranslationId, (u64, u64))> =
            self.counts.iter().map(|(k, v)| (*k, *v)).collect();
        entries.sort_unstable_by_key(|(id, _)| *id);
        w.put_usize(entries.len());
        for (id, (execs, insts)) in entries {
            w.put_u32(id.0);
            w.put_u64(execs);
            w.put_u64(insts);
        }
        w.put_u64(self.overflowed);
    }

    /// Restores state written by [`HotTranslationBuffer::snapshot_to`] in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or holds more entries than this buffer's
    /// configured capacity.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let count = r.take_usize()?;
        if count > self.capacity {
            return Err(powerchop_checkpoint::CheckpointError::Malformed {
                what: "HTB entry count exceeds capacity",
            });
        }
        self.counts.clear();
        for _ in 0..count {
            let id = TranslationId(r.take_u32()?);
            let execs = r.take_u64()?;
            let insts = r.take_u64()?;
            self.counts.insert(id, (execs, insts));
        }
        self.overflowed = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> TranslationId {
        TranslationId(i)
    }

    #[test]
    fn hottest_by_instructions_not_executions() {
        let mut htb = HotTranslationBuffer::new(16, 2);
        // t1: many short executions; t2: few long ones.
        for _ in 0..10 {
            htb.record(t(1), 5);
        }
        htb.record(t(2), 1000);
        htb.record(t(3), 1);
        let sig = htb.signature();
        let ids: Vec<_> = sig.ids().collect();
        assert!(ids.contains(&t(1)) && ids.contains(&t(2)));
        assert!(!ids.contains(&t(3)));
    }

    #[test]
    fn overflow_is_ignored_not_evicted() {
        let mut htb = HotTranslationBuffer::new(2, 2);
        htb.record(t(1), 10);
        htb.record(t(2), 10);
        htb.record(t(3), 10_000); // buffer full: ignored
        assert_eq!(htb.len(), 2);
        assert_eq!(htb.overflowed(), 1);
        let ids: Vec<_> = htb.signature().ids().collect();
        assert!(!ids.contains(&t(3)));
    }

    #[test]
    fn flush_resets_window() {
        let mut htb = HotTranslationBuffer::paper_default();
        htb.record(t(1), 10);
        htb.flush();
        assert!(htb.is_empty());
        assert!(htb.signature().is_empty());
    }

    #[test]
    fn ties_break_deterministically() {
        let mut a = HotTranslationBuffer::new(8, 2);
        let mut b = HotTranslationBuffer::new(8, 2);
        for id in [5u32, 9, 1] {
            a.record(t(id), 7);
        }
        for id in [1u32, 5, 9] {
            b.record(t(id), 7);
        }
        assert_eq!(a.signature(), b.signature());
    }

    #[test]
    fn paper_storage_is_one_kib() {
        assert_eq!(HotTranslationBuffer::paper_default().storage_bytes(), 1024);
    }

    #[test]
    fn count_vector_is_sorted_and_counts_executions() {
        let mut htb = HotTranslationBuffer::paper_default();
        htb.record(t(9), 3);
        htb.record(t(2), 5);
        htb.record(t(9), 1);
        assert_eq!(htb.count_vector(), vec![(t(2), 1), (t(9), 2)]);
    }

    #[test]
    fn zero_capacity_clamps_to_one_entry() {
        let mut htb = HotTranslationBuffer::new(0, 0);
        htb.record(t(1), 10);
        htb.record(t(2), 10);
        assert_eq!(htb.len(), 1);
        assert_eq!(htb.overflowed(), 1);
        assert_eq!(htb.signature().ids().count(), 1);
    }
}
