//! Power-management policies driving the gating controller.
//!
//! Four managers are provided:
//!
//! - [`PowerChopManager`] — the paper's contribution: HTB + PVT + CDE
//!   phase-triggered gating,
//! - [`FullPowerManager`] — the performance baseline (everything on),
//! - [`MinimalPowerManager`] — the power floor (everything gated),
//! - [`TimeoutVpuManager`] — the hardware-only idleness-timeout baseline
//!   of paper §V-E.

use powerchop_bt::nucleus::Nucleus;
use powerchop_bt::TranslationId;
use powerchop_checkpoint::{ByteReader, ByteWriter, CheckpointError};
use powerchop_faults::FaultKind;
use powerchop_power::EnergyLedger;
use powerchop_telemetry::{Event, MetricSource as _, MetricsRegistry, Tracer};
use powerchop_uarch::core::{CoreModel, CoreStats};

use crate::cde::{Cde, CdeStats, Thresholds, WindowProfile};
use crate::degrade::{DegradationGuard, DegradeStats};
use crate::gating::GatingController;
use crate::htb::HotTranslationBuffer;
use crate::phase::PhaseSignature;
use crate::policy::GatingPolicy;
use crate::pvt::{PolicyVectorTable, PvtStats};

/// Mutable system context handed to managers on every translation event.
#[derive(Debug)]
pub struct ManagerCtx<'a> {
    /// The core timing model.
    pub core: &'a mut CoreModel,
    /// The energy ledger.
    pub ledger: &'a mut EnergyLedger,
    /// The gating controller.
    pub controller: &'a mut GatingController,
    /// The BT nucleus (for CDE-invocation interrupts).
    pub nucleus: &'a mut Nucleus,
    /// The flight recorder ([`Tracer::disabled`] when telemetry is off).
    pub trace: &'a mut Tracer,
}

/// One execution window's identification record (for the Fig. 8 phase
/// quality analysis).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WindowRecord {
    /// The signature PowerChop assigned to the window.
    pub signature: PhaseSignature,
    /// The full translation-ID → execution-count vector.
    pub counts: Vec<(TranslationId, u64)>,
    /// The gating policy in force after the window was processed (the
    /// phase timeline of an execution).
    pub policy: GatingPolicy,
}

/// A power-management policy driven by translation-execution events.
pub trait PowerManager {
    /// Short name for reports (e.g. `"powerchop"`).
    fn name(&self) -> &'static str;

    /// Called once before execution starts.
    fn init(&mut self, _ctx: &mut ManagerCtx<'_>) {}

    /// Called after each translation executes from the region cache.
    fn on_translation(&mut self, id: TranslationId, instructions: u64, ctx: &mut ManagerCtx<'_>);

    /// PVT statistics, when the manager has a PVT.
    fn pvt_stats(&self) -> Option<PvtStats> {
        None
    }

    /// CDE statistics, when the manager has a CDE.
    fn cde_stats(&self) -> Option<CdeStats> {
        None
    }

    /// Drains recorded per-window identification records, if enabled.
    fn take_window_records(&mut self) -> Vec<WindowRecord> {
        Vec::new()
    }

    /// Called when the fault-injection layer delivers a fault aimed at
    /// the manager's own structures (PVT soft errors, context switches).
    /// Managers without such structures ignore it.
    fn on_fault(&mut self, _kind: FaultKind, _payload: u64, _ctx: &mut ManagerCtx<'_>) {}

    /// Degradation-guard statistics, when the manager has a guard.
    fn degrade_stats(&self) -> Option<DegradeStats> {
        None
    }

    /// Folds the manager's structure-level counters (PVT, CDE, guard,
    /// HTB occupancy) into a telemetry registry. Stateless managers
    /// contribute nothing.
    fn sample_metrics(&self, _reg: &mut MetricsRegistry) {}

    /// Serializes the manager's mutable state for a checkpoint. Stateless
    /// managers write nothing.
    fn snapshot_to(&self, _w: &mut ByteWriter) {}

    /// Restores manager state written by [`PowerManager::snapshot_to`]
    /// into a freshly-constructed manager of the same kind and
    /// configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the payload is truncated or
    /// inconsistent with this manager's configuration.
    fn restore_from(&mut self, _r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        Ok(())
    }
}

/// Performance baseline: every unit stays fully powered.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullPowerManager;

impl PowerManager for FullPowerManager {
    fn name(&self) -> &'static str {
        "full-power"
    }

    fn on_translation(&mut self, _id: TranslationId, _n: u64, _ctx: &mut ManagerCtx<'_>) {}
}

/// Power floor: every unit in its lowest-power state for the whole run.
#[derive(Debug, Clone, Copy, Default)]
pub struct MinimalPowerManager;

impl PowerManager for MinimalPowerManager {
    fn name(&self) -> &'static str {
        "minimal-power"
    }

    fn init(&mut self, ctx: &mut ManagerCtx<'_>) {
        ctx.controller
            .apply(GatingPolicy::MINIMAL, ctx.core, ctx.ledger, ctx.trace);
    }

    fn on_translation(&mut self, _id: TranslationId, _n: u64, _ctx: &mut ManagerCtx<'_>) {}
}

/// Hardware-only timeout baseline for the VPU (paper §V-E): gate the unit
/// off after `timeout_cycles` without a vector operation, and wake it on
/// demand when one arrives. Requires a **non-semantic** controller — a
/// woken VPU executes vector code natively.
#[derive(Debug, Clone)]
pub struct TimeoutVpuManager {
    timeout_cycles: u64,
    last_vec_ops: u64,
    last_vec_cycle: u64,
}

impl TimeoutVpuManager {
    /// The timeout the paper selected after sweeping 100–100 K cycles:
    /// the most power saved at under 5 % worst-case slowdown.
    pub const PAPER_TIMEOUT_CYCLES: u64 = 20_000;

    /// Creates a timeout manager with the given idle threshold.
    #[must_use]
    pub fn new(timeout_cycles: u64) -> Self {
        TimeoutVpuManager {
            timeout_cycles,
            last_vec_ops: 0,
            last_vec_cycle: 0,
        }
    }
}

impl PowerManager for TimeoutVpuManager {
    fn name(&self) -> &'static str {
        "timeout-vpu"
    }

    fn on_translation(&mut self, _id: TranslationId, _n: u64, ctx: &mut ManagerCtx<'_>) {
        debug_assert!(
            !ctx.controller.is_semantic(),
            "timeout needs a non-semantic controller"
        );
        let vec_ops = ctx.core.stats().vec_ops;
        let now = ctx.core.cycles();
        let gated = !ctx.controller.current().vpu_on;
        if vec_ops > self.last_vec_ops {
            // The unit was needed: wake it (on-demand gate-on).
            self.last_vec_ops = vec_ops;
            self.last_vec_cycle = now;
            if gated {
                ctx.controller
                    .apply(GatingPolicy::FULL, ctx.core, ctx.ledger, ctx.trace);
            }
        } else if !gated && now.saturating_sub(self.last_vec_cycle) >= self.timeout_cycles {
            ctx.controller.apply(
                GatingPolicy {
                    vpu_on: false,
                    ..GatingPolicy::FULL
                },
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
        }
    }

    fn snapshot_to(&self, w: &mut ByteWriter) {
        w.put_u64(self.last_vec_ops);
        w.put_u64(self.last_vec_cycle);
    }

    fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        self.last_vec_ops = r.take_u64()?;
        self.last_vec_cycle = r.take_u64()?;
        Ok(())
    }
}

/// Which units PowerChop is allowed to manage. Unmanaged units stay
/// fully powered, which is how the paper's per-unit isolation studies
/// (Figs. 9, 10 and 16: "one unit is managed while the others are gated
/// on") are run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManagedSet {
    /// Manage the VPU.
    pub vpu: bool,
    /// Manage the BPU.
    pub bpu: bool,
    /// Manage the MLC.
    pub mlc: bool,
}

impl ManagedSet {
    /// All three units managed (the full PowerChop system).
    pub const ALL: ManagedSet = ManagedSet {
        vpu: true,
        bpu: true,
        mlc: true,
    };
    /// Only the VPU managed.
    pub const VPU_ONLY: ManagedSet = ManagedSet {
        vpu: true,
        bpu: false,
        mlc: false,
    };
    /// Only the BPU managed.
    pub const BPU_ONLY: ManagedSet = ManagedSet {
        vpu: false,
        bpu: true,
        mlc: false,
    };
    /// Only the MLC managed.
    pub const MLC_ONLY: ManagedSet = ManagedSet {
        vpu: false,
        bpu: false,
        mlc: true,
    };

    /// Forces unmanaged units to their fully-powered state.
    #[must_use]
    pub fn mask(self, policy: GatingPolicy) -> GatingPolicy {
        GatingPolicy {
            vpu_on: policy.vpu_on || !self.vpu,
            bpu_on: policy.bpu_on || !self.bpu,
            mlc: if self.mlc {
                policy.mlc
            } else {
                powerchop_uarch::cache::MlcWayState::Full
            },
        }
    }
}

impl Default for ManagedSet {
    fn default() -> Self {
        ManagedSet::ALL
    }
}

/// Drowsy-cache baseline for the MLC (Flautner et al., the paper's §VI
/// related work \[27\]): every `period_cycles`, all MLC lines drop to a
/// state-retentive low-voltage mode; an access to a drowsy line pays one
/// wake-up cycle. Unlike way-gating, no state is lost and the MLC's
/// effective capacity is unchanged — but drowsy lines still leak ~25 % of
/// nominal versus 5 % for a gated way, and tag/periphery logic stays hot.
#[derive(Debug, Clone)]
pub struct DrowsyMlcManager {
    period_cycles: u64,
    last_drowse: u64,
    drowse_events: u64,
}

impl DrowsyMlcManager {
    /// Flautner et al.'s "simple policy" window (4000 cycles).
    pub const DEFAULT_PERIOD_CYCLES: u64 = 4_000;

    /// Creates a drowsy-MLC manager with the given drowse period.
    #[must_use]
    pub fn new(period_cycles: u64) -> Self {
        DrowsyMlcManager {
            period_cycles: period_cycles.max(1),
            last_drowse: 0,
            drowse_events: 0,
        }
    }

    /// Number of global drowse events so far.
    #[must_use]
    pub fn drowse_events(&self) -> u64 {
        self.drowse_events
    }
}

impl PowerManager for DrowsyMlcManager {
    fn name(&self) -> &'static str {
        "drowsy-mlc"
    }

    fn on_translation(&mut self, _id: TranslationId, _n: u64, ctx: &mut ManagerCtx<'_>) {
        let now = ctx.core.cycles();
        // Account the elapsed interval at the MLC's current awake
        // fraction (all other units fully powered).
        let states = powerchop_power::UnitStates {
            mlc_awake_fraction: Some(ctx.core.mlc_awake_fraction()),
            ..powerchop_power::UnitStates::full(8)
        };
        ctx.ledger.account(now, &ctx.core.stats(), states);
        if now.saturating_sub(self.last_drowse) >= self.period_cycles {
            ctx.core.drowse_mlc();
            self.last_drowse = now;
            self.drowse_events += 1;
        }
    }

    fn snapshot_to(&self, w: &mut ByteWriter) {
        w.put_u64(self.last_drowse);
        w.put_u64(self.drowse_events);
    }

    fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        self.last_drowse = r.take_u64()?;
        self.drowse_events = r.take_u64()?;
        Ok(())
    }
}

/// Tuning parameters for PowerChop itself.
#[derive(Debug, Clone, PartialEq)]
pub struct ChopConfig {
    /// Execution-window size in translations (paper: 1000).
    pub window_translations: u32,
    /// Phase-signature length N (paper: 4).
    pub signature_len: usize,
    /// HTB capacity (paper: 128).
    pub htb_entries: usize,
    /// PVT capacity (paper: 16).
    pub pvt_entries: usize,
    /// Criticality thresholds.
    pub thresholds: Thresholds,
    /// Cycles the CDE software handler runs per PVT miss.
    pub pvt_miss_handler_cycles: u64,
    /// Which units PowerChop manages (others stay fully powered).
    pub managed: ManagedSet,
    /// Profiling warm-up windows discarded before measurement (the
    /// "insufficient information, keep collecting" arm of Algorithm 1).
    pub profile_warmup_windows: u32,
    /// Interrupted-profiling attempts before a transient phase is
    /// conservatively decided fully-powered.
    pub max_profile_attempts: u32,
    /// Enable the 4-state MLC policy extension (quarter-ways as a 4th
    /// state in the 2-bit policy field).
    pub extended_mlc_states: bool,
}

impl Default for ChopConfig {
    fn default() -> Self {
        ChopConfig {
            window_translations: crate::phase::WINDOW_TRANSLATIONS,
            signature_len: crate::phase::SIGNATURE_LEN,
            htb_entries: crate::htb::HTB_ENTRIES,
            pvt_entries: crate::pvt::PVT_ENTRIES,
            thresholds: Thresholds::default(),
            pvt_miss_handler_cycles: 2_000,
            managed: ManagedSet::ALL,
            profile_warmup_windows: 2,
            max_profile_attempts: 2,
            extended_mlc_states: false,
        }
    }
}

/// The PowerChop manager: phase-triggered unit-level power gating.
///
/// Hardware behaviour (HTB window tracking, PVT lookups) runs on every
/// translation; the CDE runs only on PVT misses, via nucleus interrupts.
/// New phases are profiled for two windows — the first with everything
/// fully powered and the large BPU, the second with the small BPU — then
/// scored and registered (paper Algorithm 1, §IV-C2).
#[derive(Debug, Clone)]
pub struct PowerChopManager {
    cfg: ChopConfig,
    htb: HotTranslationBuffer,
    pvt: PolicyVectorTable,
    cde: Cde,
    guard: DegradationGuard,
    window_count: u32,
    /// Global index of the last processed window (drives the guard's
    /// backoff timers).
    window_index: u64,
    window_start_stats: CoreStats,
    /// Signature whose profiling window is the one currently executing,
    /// plus the policy to fall back to if the phase proves transient.
    armed: Option<(PhaseSignature, GatingPolicy)>,
    record_windows: bool,
    records: Vec<WindowRecord>,
}

impl PowerChopManager {
    /// Creates a PowerChop manager.
    #[must_use]
    pub fn new(cfg: ChopConfig, record_windows: bool) -> Self {
        PowerChopManager {
            htb: HotTranslationBuffer::new(cfg.htb_entries, cfg.signature_len),
            pvt: PolicyVectorTable::new(cfg.pvt_entries),
            cde: Cde::with_config(
                cfg.thresholds,
                cfg.profile_warmup_windows,
                cfg.max_profile_attempts,
            )
            .with_extended_mlc_states(cfg.extended_mlc_states),
            cfg,
            guard: DegradationGuard::default(),
            window_count: 0,
            window_index: 0,
            window_start_stats: CoreStats::default(),
            armed: None,
            record_windows,
            records: Vec::new(),
        }
    }

    /// The PVT (for storage-cost reporting).
    #[must_use]
    pub fn pvt(&self) -> &PolicyVectorTable {
        &self.pvt
    }

    /// The HTB (for storage-cost reporting).
    #[must_use]
    pub fn htb(&self) -> &HotTranslationBuffer {
        &self.htb
    }

    fn end_of_window(&mut self, ctx: &mut ManagerCtx<'_>) {
        let signature = self.htb.signature();
        let counts = self.record_windows.then(|| self.htb.count_vector());
        self.htb.flush();
        self.window_count = 0;

        let now_stats = ctx.core.stats();
        let profile = WindowProfile::from_delta(&now_stats, &self.window_start_stats);
        self.window_start_stats = now_stats;
        if !DegradationGuard::profile_is_sane(&profile) {
            // The measurement is garbage (counter corruption, a flush
            // mid-window): drop it before it reaches the CDE and fail
            // safe for the window.
            self.guard.on_bad_profile();
            if let Some((armed_sig, resume)) = self.armed.take() {
                self.cde.discard_profile(armed_sig, resume);
            }
            let sig = signature.key();
            ctx.trace
                .emit(ctx.core.cycles(), Event::DegradeFailSafe { sig });
            ctx.controller.apply(
                self.cfg.managed.mask(GatingPolicy::FULL),
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
        } else if !signature.is_empty() {
            self.process_window(signature, profile, ctx);
        }
        if let Some(counts) = counts {
            self.records.push(WindowRecord {
                signature,
                counts,
                policy: ctx.controller.current(),
            });
        }
    }

    /// Looks the window's signature up in the PVT and enacts the outcome
    /// (Algorithm 1).
    fn process_window(
        &mut self,
        signature: PhaseSignature,
        profile: WindowProfile,
        ctx: &mut ManagerCtx<'_>,
    ) {
        self.window_index += 1;
        let sig = signature.key();
        ctx.trace
            .with(|r| r.on_phase_window(ctx.core.cycles(), sig));

        // A pinned phase bypasses Algorithm 1 entirely: the watchdog or
        // the backoff budget decided it cannot be trusted with gating.
        if let Some(pin) = self.guard.pinned(signature) {
            if let Some((armed_sig, resume)) = self.armed.take() {
                self.cde.discard_profile(armed_sig, resume);
            }
            ctx.controller
                .apply(self.cfg.managed.mask(pin), ctx.core, ctx.ledger, ctx.trace);
            return;
        }

        // The PVT is looked up by hardware at every window boundary; any
        // miss interrupts into the CDE software handler (Algorithm 1).
        let lookup = self.pvt.lookup(signature);
        if lookup.is_none() {
            ctx.trace.emit(ctx.core.cycles(), Event::PvtMiss { sig });
            ctx.nucleus
                .raise(ctx.core, self.cfg.pvt_miss_handler_cycles);
        } else {
            ctx.trace.emit(ctx.core.cycles(), Event::PvtHit { sig });
        }

        // A profiling measurement was armed for the window that just
        // ended.
        if let Some((armed_sig, resume)) = self.armed.take() {
            if armed_sig == signature {
                let mut decided = self.cde.on_profile_window(signature, profile);
                if decided.is_none()
                    && !self.cfg.managed.bpu
                    && matches!(
                        self.cde.record(signature),
                        Some(crate::cde::PhaseRecord::ProfilingSmall(_))
                    )
                {
                    // The BPU is not managed, so the second (small-BPU)
                    // profiling window is unnecessary: reuse the first
                    // window's measurement to close out profiling.
                    decided = self.cde.on_profile_window(signature, profile);
                }
                if let Some(policy) = decided {
                    // Oscillation watchdog: a phase that keeps re-deciding
                    // different policies pays switch costs on every flip,
                    // so it gets pinned to the fail-safe instead.
                    if let Some(pin) = self.guard.observe_decision(signature, policy) {
                        self.pvt.invalidate(signature);
                        ctx.trace.emit(
                            ctx.core.cycles(),
                            Event::DegradeRepin {
                                sig,
                                policy: pin.bits(),
                            },
                        );
                        ctx.controller.apply(
                            self.cfg.managed.mask(pin),
                            ctx.core,
                            ctx.ledger,
                            ctx.trace,
                        );
                        return;
                    }
                    ctx.trace
                        .with(|r| r.on_verdict(ctx.core.cycles(), sig, policy.bits()));
                    // Profiling complete: register and enact.
                    if let Some((evicted_sig, _)) = self.pvt.register(signature, policy) {
                        // Evicted entries live on in the CDE's store; it
                        // already holds every decided phase.
                        debug_assert!(self.cde.record(evicted_sig).is_some());
                        ctx.trace.emit(
                            ctx.core.cycles(),
                            Event::PvtEvict {
                                sig: evicted_sig.key(),
                            },
                        );
                    }
                    ctx.controller.apply(
                        self.cfg.managed.mask(policy),
                        ctx.core,
                        ctx.ledger,
                        ctx.trace,
                    );
                } else {
                    // More profiling. The MLC runs fully powered so hit
                    // counters are meaningful and the BPU is set per
                    // stage; the VPU is left alone — SIMD criticality is
                    // counted by architectural intent, so no 500-cycle
                    // register save/restore is needed just to profile.
                    self.armed = Some((signature, resume));
                    let current = ctx.controller.current();
                    ctx.controller.apply(
                        self.profiling_policy(signature, current, profile.vec_ops > 0),
                        ctx.core,
                        ctx.ledger,
                        ctx.trace,
                    );
                }
                return;
            }
            // The phase changed mid-profile: the measurement is polluted.
            self.cde.discard_profile(armed_sig, resume);
        }

        if let Some(policy) = lookup {
            // Scrubbing: the PVT is small exposed hardware, so a hit is
            // cross-checked against the CDE's memory-backed store. A
            // disagreement means the entry took a soft error — purge it
            // and fail safe; the store re-registers it on the next miss.
            if let Some(crate::cde::PhaseRecord::Decided(expected)) = self.cde.record(signature) {
                if expected != policy {
                    self.pvt.invalidate(signature);
                    self.guard.on_anomaly(signature, self.window_index);
                    ctx.trace
                        .emit(ctx.core.cycles(), Event::DegradeAnomaly { sig });
                    ctx.controller.apply(
                        self.cfg.managed.mask(GatingPolicy::FULL),
                        ctx.core,
                        ctx.ledger,
                        ctx.trace,
                    );
                    return;
                }
            }
            // A policy that starves a unit the phase measurably leans on
            // is clearly stale (the workload was perturbed): forget the
            // phase so it re-profiles, after a backed-off fail-safe wait.
            if DegradationGuard::policy_contradicts(policy, &profile) {
                self.pvt.invalidate(signature);
                self.cde.forget(signature);
                self.guard.on_anomaly(signature, self.window_index);
                ctx.trace
                    .emit(ctx.core.cycles(), Event::DegradeAnomaly { sig });
                ctx.controller.apply(
                    self.cfg.managed.mask(GatingPolicy::FULL),
                    ctx.core,
                    ctx.ledger,
                    ctx.trace,
                );
                return;
            }
            // PVT hit: hardware applies the stored policy directly.
            ctx.controller.apply(
                self.cfg.managed.mask(policy),
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
            return;
        }

        // A phase inside its post-anomaly backoff runs fail-safe; it may
        // not re-enter profiling until the backoff expires.
        if self.guard.deferred(signature, self.window_index) {
            ctx.trace
                .emit(ctx.core.cycles(), Event::DegradeFailSafe { sig });
            ctx.controller.apply(
                self.cfg.managed.mask(GatingPolicy::FULL),
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
            return;
        }

        // PVT miss: the CDE decides what to do (Algorithm 1). Cache
        // warm-up is only needed when the phase actually exercises the
        // MLC.
        let needs_warmup = profile.mlc_accesses > 0;
        if let Some(policy) = self.cde.on_pvt_miss(signature, needs_warmup) {
            // Capacity miss: re-register the stored policy.
            if let Some((evicted_sig, _)) = self.pvt.register(signature, policy) {
                ctx.trace.emit(
                    ctx.core.cycles(),
                    Event::PvtEvict {
                        sig: evicted_sig.key(),
                    },
                );
            }
            ctx.controller.apply(
                self.cfg.managed.mask(policy),
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
        } else {
            // Compulsory miss: profile the next window.
            let resume = ctx.controller.current();
            self.armed = Some((signature, resume));
            ctx.trace
                .with(|r| r.on_profile_start(ctx.core.cycles(), sig));
            ctx.controller.apply(
                self.profiling_policy(signature, resume, profile.vec_ops > 0),
                ctx.core,
                ctx.ledger,
                ctx.trace,
            );
        }
    }

    /// The unit configuration a profiling window runs under: MLC fully
    /// powered (hit counters must be meaningful), BPU large or small
    /// depending on the profiling stage, and the VPU woken only when the
    /// phase showed vector intent (SIMD criticality is counted by
    /// architectural intent, so scalar phases need no 500-cycle VPU
    /// save/restore just to be profiled).
    fn profiling_policy(
        &self,
        signature: PhaseSignature,
        current: GatingPolicy,
        saw_vector: bool,
    ) -> GatingPolicy {
        let bpu_on = !matches!(
            self.cde.record(signature),
            Some(crate::cde::PhaseRecord::ProfilingSmall(_))
        );
        self.cfg.managed.mask(GatingPolicy {
            vpu_on: current.vpu_on || saw_vector,
            bpu_on,
            mlc: powerchop_uarch::cache::MlcWayState::Full,
        })
    }
}

impl PowerManager for PowerChopManager {
    fn name(&self) -> &'static str {
        "powerchop"
    }

    fn init(&mut self, ctx: &mut ManagerCtx<'_>) {
        self.window_start_stats = ctx.core.stats();
    }

    fn on_translation(&mut self, id: TranslationId, instructions: u64, ctx: &mut ManagerCtx<'_>) {
        self.htb.record(id, instructions);
        self.window_count += 1;
        if self.window_count >= self.cfg.window_translations {
            self.end_of_window(ctx);
        }
    }

    fn pvt_stats(&self) -> Option<PvtStats> {
        Some(self.pvt.stats())
    }

    fn cde_stats(&self) -> Option<CdeStats> {
        Some(self.cde.stats())
    }

    fn take_window_records(&mut self) -> Vec<WindowRecord> {
        std::mem::take(&mut self.records)
    }

    fn on_fault(&mut self, kind: FaultKind, payload: u64, ctx: &mut ManagerCtx<'_>) {
        match kind {
            FaultKind::ContextSwitch => {
                // The HTB tracks the departing process: its window dies
                // with the switch, and an armed profiling measurement is
                // polluted by whatever ran in between.
                self.htb.flush();
                self.window_count = 0;
                self.window_start_stats = ctx.core.stats();
                if let Some((sig, resume)) = self.armed.take() {
                    self.cde.discard_profile(sig, resume);
                    ctx.controller.apply(
                        self.cfg.managed.mask(resume),
                        ctx.core,
                        ctx.ledger,
                        ctx.trace,
                    );
                }
            }
            FaultKind::PvtCorruption => {
                self.pvt.corrupt_entry(payload);
            }
            FaultKind::PvtEviction => {
                self.pvt.evict_forced(payload);
            }
            _ => {}
        }
    }

    fn degrade_stats(&self) -> Option<DegradeStats> {
        Some(self.guard.stats())
    }

    fn sample_metrics(&self, reg: &mut MetricsRegistry) {
        self.pvt.stats().sample_metrics(reg);
        self.cde.stats().sample_metrics(reg);
        self.guard.stats().sample_metrics(reg);
        reg.gauge_set("htb_occupancy", self.htb.len() as f64);
        reg.counter_set("htb_overflowed_total", self.htb.overflowed());
    }

    fn snapshot_to(&self, w: &mut ByteWriter) {
        self.htb.snapshot_to(w);
        self.pvt.snapshot_to(w);
        self.cde.snapshot_to(w);
        self.guard.snapshot_to(w);
        w.put_u32(self.window_count);
        w.put_u64(self.window_index);
        self.window_start_stats.snapshot_to(w);
        match self.armed {
            Some((sig, resume)) => {
                w.put_bool(true);
                sig.snapshot_to(w);
                w.put_u8(resume.bits());
            }
            None => w.put_bool(false),
        }
        w.put_usize(self.records.len());
        for rec in &self.records {
            rec.signature.snapshot_to(w);
            w.put_usize(rec.counts.len());
            for (id, execs) in &rec.counts {
                w.put_u32(id.0);
                w.put_u64(*execs);
            }
            w.put_u8(rec.policy.bits());
        }
    }

    fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        self.htb.restore_from(r)?;
        self.pvt.restore_from(r)?;
        self.cde.restore_from(r)?;
        self.guard.restore_from(r)?;
        self.window_count = r.take_u32()?;
        self.window_index = r.take_u64()?;
        self.window_start_stats = CoreStats::restore_from(r)?;
        self.armed = if r.take_bool()? {
            let sig = PhaseSignature::restore_from(r)?;
            let resume = GatingPolicy::from_bits(r.take_u8()?);
            Some((sig, resume))
        } else {
            None
        };
        let record_count = r.take_usize()?;
        self.records = Vec::with_capacity(record_count.min(1 << 16));
        for _ in 0..record_count {
            let signature = PhaseSignature::restore_from(r)?;
            let count_len = r.take_usize()?;
            let mut counts = Vec::with_capacity(count_len.min(1 << 16));
            for _ in 0..count_len {
                let id = TranslationId(r.take_u32()?);
                counts.push((id, r.take_u64()?));
            }
            let policy = GatingPolicy::from_bits(r.take_u8()?);
            self.records.push(WindowRecord {
                signature,
                counts,
                policy,
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_power::PowerParams;
    use powerchop_uarch::config::CoreConfig;

    fn ctx_parts() -> (CoreModel, EnergyLedger, GatingController, Nucleus) {
        let cfg = CoreConfig::server();
        (
            CoreModel::new(&cfg),
            EnergyLedger::new(PowerParams::server()),
            GatingController::new(&cfg, true),
            Nucleus::new(),
        )
    }

    /// Drives `windows` full windows of translation events with ids drawn
    /// from `ids`, round-robin.
    fn drive(
        mgr: &mut PowerChopManager,
        ids: &[u32],
        windows: u32,
        parts: &mut (CoreModel, EnergyLedger, GatingController, Nucleus),
    ) {
        let per_window = mgr.cfg.window_translations;
        let mut trace = Tracer::disabled();
        for w in 0..windows {
            for i in 0..per_window {
                // Advance time so windows are distinguishable.
                parts.0.add_stall(1);
                let id = ids[((w * per_window + i) as usize) % ids.len()];
                let (core, ledger, controller, nucleus) =
                    (&mut parts.0, &mut parts.1, &mut parts.2, &mut parts.3);
                let mut ctx = ManagerCtx {
                    core,
                    ledger,
                    controller,
                    nucleus,
                    trace: &mut trace,
                };
                mgr.on_translation(TranslationId(id), 10, &mut ctx);
            }
        }
    }

    #[test]
    fn stable_phase_is_profiled_then_hits_pvt() {
        let mut mgr = PowerChopManager::new(ChopConfig::default(), false);
        let mut parts = ctx_parts();
        drive(&mut mgr, &[1, 2, 3, 4], 8, &mut parts);
        let pvt = mgr.pvt_stats().unwrap();
        let cde = mgr.cde_stats().unwrap();
        assert_eq!(cde.new_phases, 1, "one recurring phase");
        assert_eq!(cde.decided, 1);
        // Window 1: compulsory miss; 2: warm-up; 3: profile large; 4:
        // profile small + register; 5..8: hits.
        assert!(pvt.hits >= 4, "later windows must hit: {pvt:?}");
        assert_eq!(mgr.take_window_records().len(), 0, "recording disabled");
    }

    #[test]
    fn decided_policy_gates_idle_units() {
        // Translation events report no vector ops, no branches, no MLC
        // hits -> the decided policy should be MINIMAL.
        let mut mgr = PowerChopManager::new(ChopConfig::default(), false);
        let mut parts = ctx_parts();
        drive(&mut mgr, &[7, 8], 5, &mut parts);
        assert_eq!(parts.2.current(), GatingPolicy::MINIMAL);
        assert!(!parts.0.vpu_active());
    }

    #[test]
    fn nucleus_interrupts_only_on_misses() {
        let mut mgr = PowerChopManager::new(ChopConfig::default(), false);
        let mut parts = ctx_parts();
        drive(&mut mgr, &[1], 10, &mut parts);
        let interrupts = parts.3.stats().interrupts;
        let misses = mgr.pvt_stats().unwrap().misses();
        assert_eq!(interrupts, misses, "every PVT miss interrupts into the CDE");
        // No MLC traffic -> warm-up skipped: compulsory miss plus two
        // profiling windows.
        assert_eq!(misses, 3);
    }

    #[test]
    fn window_records_capture_signatures() {
        let mut mgr = PowerChopManager::new(ChopConfig::default(), true);
        let mut parts = ctx_parts();
        drive(&mut mgr, &[5, 6], 3, &mut parts);
        let records = mgr.take_window_records();
        assert_eq!(records.len(), 3);
        assert_eq!(records[0].signature, records[1].signature);
        assert_eq!(records[0].counts.len(), 2);
    }

    #[test]
    fn timeout_manager_gates_after_idle_and_wakes_on_vector() {
        let cfg = CoreConfig::server();
        let mut core = CoreModel::new(&cfg);
        let mut ledger = EnergyLedger::new(PowerParams::server());
        let mut controller = GatingController::new(&cfg, false);
        let mut nucleus = Nucleus::new();
        let mut mgr = TimeoutVpuManager::new(1_000);

        // Idle long enough: gates off.
        core.add_stall(5_000);
        let mut trace = Tracer::disabled();
        let mut ctx = ManagerCtx {
            core: &mut core,
            ledger: &mut ledger,
            controller: &mut controller,
            nucleus: &mut nucleus,
            trace: &mut trace,
        };
        mgr.on_translation(TranslationId(1), 10, &mut ctx);
        assert!(!controller.current().vpu_on);

        // A vector op arrives: wakes up.
        let vstep = {
            let v = powerchop_gisa::VReg::new(0).expect("register index in range");
            let inst = powerchop_gisa::Inst::Vadd {
                vd: v,
                vs: v,
                vt: v,
            };
            powerchop_gisa::StepInfo {
                pc: powerchop_gisa::Pc(0),
                inst,
                class: inst.class(),
                next_pc: powerchop_gisa::Pc(1),
                mem: None,
                branch: None,
            }
        };
        core.on_step(&vstep, powerchop_uarch::core::ExecMode::Translated);
        let mut ctx = ManagerCtx {
            core: &mut core,
            ledger: &mut ledger,
            controller: &mut controller,
            nucleus: &mut nucleus,
            trace: &mut trace,
        };
        mgr.on_translation(TranslationId(1), 10, &mut ctx);
        assert!(controller.current().vpu_on);
        assert_eq!(controller.switches().vpu, 2);
    }

    #[test]
    fn drowsy_manager_drowses_periodically_and_accounts_leakage() {
        let cfg = CoreConfig::server();
        let mut core = CoreModel::new(&cfg);
        let mut ledger = EnergyLedger::new(PowerParams::server());
        let mut controller = GatingController::new(&cfg, true);
        let mut nucleus = Nucleus::new();
        let mut mgr = DrowsyMlcManager::new(1_000);

        // Touch some MLC lines so there is state to drowse.
        let r = powerchop_gisa::Reg::new(0).expect("register index in range");
        for i in 0..200u64 {
            let inst = powerchop_gisa::Inst::Load {
                rd: r,
                rs: r,
                imm: 0,
            };
            let step = powerchop_gisa::StepInfo {
                pc: powerchop_gisa::Pc(0),
                inst,
                class: inst.class(),
                next_pc: powerchop_gisa::Pc(1),
                mem: Some(powerchop_gisa::MemAccess {
                    addr: i * 4096,
                    size: 8,
                    is_store: false,
                }),
                branch: None,
            };
            core.on_step(&step, powerchop_uarch::core::ExecMode::Translated);
        }
        assert!(core.mlc_awake_fraction() > 0.99);
        core.add_stall(2_000);
        let mut trace = Tracer::disabled();
        let mut ctx = ManagerCtx {
            core: &mut core,
            ledger: &mut ledger,
            controller: &mut controller,
            nucleus: &mut nucleus,
            trace: &mut trace,
        };
        mgr.on_translation(TranslationId(1), 10, &mut ctx);
        assert_eq!(mgr.drowse_events(), 1);
        // Re-touching a drowsed line costs a wake.
        let inst = powerchop_gisa::Inst::Load {
            rd: r,
            rs: r,
            imm: 0,
        };
        let step = powerchop_gisa::StepInfo {
            pc: powerchop_gisa::Pc(0),
            inst,
            class: inst.class(),
            next_pc: powerchop_gisa::Pc(1),
            mem: Some(powerchop_gisa::MemAccess {
                addr: 0,
                size: 8,
                is_store: false,
            }),
            branch: None,
        };
        core.on_step(&step, powerchop_uarch::core::ExecMode::Translated);
        assert_eq!(core.stats().mlc_drowsy_wakes, 1);
    }

    #[test]
    fn minimal_manager_applies_floor_at_init() {
        let mut parts = ctx_parts();
        let (core, ledger, controller, nucleus) =
            (&mut parts.0, &mut parts.1, &mut parts.2, &mut parts.3);
        let mut trace = Tracer::disabled();
        let mut ctx = ManagerCtx {
            core,
            ledger,
            controller,
            nucleus,
            trace: &mut trace,
        };
        MinimalPowerManager.init(&mut ctx);
        assert_eq!(parts.2.current(), GatingPolicy::MINIMAL);
    }
}
