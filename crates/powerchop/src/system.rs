//! The integrated PowerChop system: guest program + BT layer + core
//! model + power manager + energy ledger. [`Simulation`] owns the full
//! deterministic run state and supports chunked stepping with crash-safe
//! [`Simulation::snapshot`]/[`Simulation::restore`]; [`run_program`] is
//! the one-shot entry point producing the [`RunReport`] that every
//! experiment in the paper's evaluation is derived from.

use powerchop_bt::nucleus::{Nucleus, NucleusStats};
use powerchop_bt::{BtConfig, BtStats, JitMode, JitReport, Machine, MachineEvent};
use powerchop_checkpoint::{fnv1a64, CheckpointError, Snapshot, SnapshotWriter};
use powerchop_faults::{FaultConfig, FaultKind, FaultSchedule, FaultStats};
use powerchop_gisa::Program;
use powerchop_power::{EnergyLedger, EnergyReport, PowerParams};
use powerchop_telemetry::{Event, MetricSource as _, Tracer};
use powerchop_uarch::config::{CoreConfig, CoreKind};
use powerchop_uarch::core::{CoreModel, CoreStats};

use crate::cde::CdeStats;
use crate::degrade::DegradeStats;
use crate::error::SimError;
use crate::gating::{GatedCycles, GatingController, SwitchCounts};
use crate::managers::{
    ChopConfig, DrowsyMlcManager, FullPowerManager, ManagerCtx, MinimalPowerManager,
    PowerChopManager, PowerManager, TimeoutVpuManager, WindowRecord,
};
use crate::pvt::PvtStats;

/// Which power-management policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerKind {
    /// PowerChop (the paper's contribution).
    PowerChop,
    /// Fully-powered baseline.
    FullPower,
    /// Lowest-power baseline.
    MinimalPower,
    /// Hardware-only idleness timeout on the VPU (paper §V-E).
    TimeoutVpu {
        /// Idle cycles before gating off.
        timeout_cycles: u64,
    },
    /// Drowsy-cache baseline on the MLC (paper §VI related work):
    /// periodic low-retention-voltage mode instead of way-gating.
    DrowsyMlc {
        /// Cycles between global drowse events.
        period_cycles: u64,
    },
}

/// Parses a manager name in its external spelling (the CLI's and the
/// serve protocol's, aliases included) into the kind with its
/// paper-default parameters. Returns `None` for unknown names.
#[must_use]
pub fn manager_kind_by_name(name: &str) -> Option<ManagerKind> {
    Some(match name {
        "powerchop" | "chop" => ManagerKind::PowerChop,
        "full" | "full-power" => ManagerKind::FullPower,
        "minimal" | "min" => ManagerKind::MinimalPower,
        "timeout" => ManagerKind::TimeoutVpu {
            timeout_cycles: crate::managers::TimeoutVpuManager::PAPER_TIMEOUT_CYCLES,
        },
        "drowsy" => ManagerKind::DrowsyMlc {
            period_cycles: crate::managers::DrowsyMlcManager::DEFAULT_PERIOD_CYCLES,
        },
        _ => return None,
    })
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Core design point.
    pub core: CoreConfig,
    /// BT-layer tuning.
    pub bt: BtConfig,
    /// Power-model parameters.
    pub power: PowerParams,
    /// PowerChop tuning (ignored by baselines).
    pub chop: ChopConfig,
    /// Stop after this many retired guest instructions (the SimPoint
    /// substitute — see `DESIGN.md`).
    pub max_instructions: u64,
    /// Record per-window phase-identification data (Fig. 8). Off by
    /// default; costs memory proportional to windows executed.
    pub record_windows: bool,
    /// Deterministic fault injection (stress testing). `None` runs clean.
    pub faults: Option<FaultConfig>,
    /// Native trace JIT mode (defaults to the `POWERCHOP_JIT` environment
    /// variable, else auto). An execution strategy, not simulated state:
    /// JIT-on and JIT-off runs produce bit-identical artifacts, so this
    /// field is deliberately excluded from [`config_fingerprint`] and
    /// checkpoints cross freely between modes.
    pub jit: JitMode,
}

impl RunConfig {
    /// A default configuration for the given design point. The
    /// instruction budget defaults to 12 M and can be overridden with the
    /// `POWERCHOP_BUDGET` environment variable.
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> Self {
        RunConfig {
            core: CoreConfig::for_kind(kind),
            bt: BtConfig::default(),
            power: PowerParams::for_kind(kind),
            chop: ChopConfig::default(),
            max_instructions: default_budget(),
            record_windows: false,
            faults: None,
            jit: JitMode::default_from_env(),
        }
    }

    /// Validates the configuration, naming the first unusable field.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a field has a value the
    /// simulation cannot run under.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_instructions == 0 {
            return Err(SimError::InvalidConfig {
                field: "max_instructions",
                reason: "must be greater than zero",
            });
        }
        // The PVT, HTB and phase-signature machinery index modulo their
        // configured sizes; a zero-sized table must be rejected here
        // with a typed error, not deep inside a `%` expression.
        if self.chop.pvt_entries == 0 {
            return Err(SimError::InvalidConfig {
                field: "chop.pvt_entries",
                reason: "the PVT must hold at least one policy entry",
            });
        }
        if self.chop.htb_entries == 0 {
            return Err(SimError::InvalidConfig {
                field: "chop.htb_entries",
                reason: "the HTB must hold at least one history entry",
            });
        }
        if self.chop.signature_len == 0 {
            return Err(SimError::InvalidConfig {
                field: "chop.signature_len",
                reason: "phase signatures need at least one window",
            });
        }
        if self.chop.window_translations == 0 {
            return Err(SimError::InvalidConfig {
                field: "chop.window_translations",
                reason: "execution windows must span at least one translation",
            });
        }
        if let Some(f) = &self.faults {
            if !f.region_invalidate_fraction.is_finite()
                || !(0.0..=1.0).contains(&f.region_invalidate_fraction)
            {
                return Err(SimError::InvalidConfig {
                    field: "faults.region_invalidate_fraction",
                    reason: "must be a finite fraction in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// The built-in per-run instruction budget when `POWERCHOP_BUDGET` is
/// unset.
const BUILTIN_BUDGET: u64 = 12_000_000;

/// The default per-run instruction budget, honouring `POWERCHOP_BUDGET`.
/// An unset variable silently uses the built-in default; a set-but-
/// unparseable value is a user mistake and gets a one-line warning on
/// stderr instead of being silently swallowed.
#[must_use]
pub fn default_budget() -> u64 {
    match std::env::var("POWERCHOP_BUDGET") {
        Ok(v) => v.parse().unwrap_or_else(|_| {
            eprintln!(
                "warning: POWERCHOP_BUDGET={v:?} is not a valid instruction \
                 count; using the default of {BUILTIN_BUDGET}"
            );
            BUILTIN_BUDGET
        }),
        Err(std::env::VarError::NotPresent) => BUILTIN_BUDGET,
        Err(std::env::VarError::NotUnicode(_)) => {
            eprintln!(
                "warning: POWERCHOP_BUDGET is not valid unicode; using the \
                 default of {BUILTIN_BUDGET}"
            );
            BUILTIN_BUDGET
        }
    }
}

/// The complete result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Manager name (`"powerchop"`, `"full-power"`, ...).
    pub manager: &'static str,
    /// Design point the run used.
    pub core_kind: CoreKind,
    /// Guest instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Core event counters.
    pub stats: CoreStats,
    /// BT-layer counters.
    pub bt: BtStats,
    /// Energy and average power.
    pub energy: EnergyReport,
    /// Time each unit spent gated.
    pub gated: GatedCycles,
    /// Gating switches per unit.
    pub switches: SwitchCounts,
    /// Nucleus (CDE-interrupt) activity.
    pub nucleus: NucleusStats,
    /// PVT statistics (PowerChop runs only).
    pub pvt: Option<PvtStats>,
    /// CDE statistics (PowerChop runs only).
    pub cde: Option<CdeStats>,
    /// Per-window phase records, when requested.
    pub windows: Vec<WindowRecord>,
    /// Injected-fault counts (fault-injection runs only).
    pub faults: Option<FaultStats>,
    /// Graceful-degradation activity (managers with a guard only).
    pub degrade: Option<DegradeStats>,
    /// Native-JIT counters (JIT-enabled runs only). Execution telemetry,
    /// not simulation output: deliberately excluded from run artifacts so
    /// JIT-on and JIT-off artifacts stay byte-identical.
    pub jit: Option<JitReport>,
}

impl RunReport {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Gating switches per million cycles for one unit (Fig. 11's metric).
    #[must_use]
    pub fn switches_per_mcycle(&self, switches: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            switches as f64 * 1e6 / self.cycles as f64
        }
    }

    /// Relative slowdown versus a baseline run of the same program
    /// (positive = slower than baseline).
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            1.0 - self.ipc() / baseline.ipc()
        }
    }

    /// Fractional reduction in average total power versus a baseline run.
    #[must_use]
    pub fn power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.avg_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.avg_power_w / baseline.energy.avg_power_w
        }
    }

    /// Fractional reduction in average leakage power versus a baseline.
    #[must_use]
    pub fn leakage_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.leakage_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.leakage_power_w / baseline.energy.leakage_power_w
        }
    }

    /// Fractional reduction in energy *for the same amount of work*
    /// versus a baseline run of the same program. Runs may retire
    /// different instruction counts under a shared budget, so energies
    /// are compared per instruction.
    #[must_use]
    pub fn energy_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.instructions == 0 || self.instructions == 0 || baseline.energy.total_j == 0.0 {
            return 0.0;
        }
        let epi = self.energy.total_j / self.instructions as f64;
        let epi_base = baseline.energy.total_j / baseline.instructions as f64;
        1.0 - epi / epi_base
    }
}

fn build_manager(kind: ManagerKind, cfg: &RunConfig) -> Box<dyn PowerManager> {
    match kind {
        ManagerKind::PowerChop => {
            Box::new(PowerChopManager::new(cfg.chop.clone(), cfg.record_windows))
        }
        ManagerKind::FullPower => Box::new(FullPowerManager),
        ManagerKind::MinimalPower => Box::new(MinimalPowerManager),
        ManagerKind::TimeoutVpu { timeout_cycles } => {
            Box::new(TimeoutVpuManager::new(timeout_cycles))
        }
        ManagerKind::DrowsyMlc { period_cycles } => Box::new(DrowsyMlcManager::new(period_cycles)),
    }
}

/// Section tags of the [`Simulation`] snapshot container (see
/// `DESIGN.md` for the format).
pub mod sections {
    /// Run metadata (benchmark name, scale, manager argument, fault
    /// seed) — readable without knowing the configuration.
    pub const META: u32 = 1;
    /// Simulation progress flags.
    pub const SIM: u32 = 2;
    /// BT machine: guest CPU, guest memory, region cache, profiling heat.
    pub const MACHINE: u32 = 3;
    /// Core timing model: BPU, caches, VPU, stats.
    pub const CORE: u32 = 4;
    /// Energy ledger.
    pub const LEDGER: u32 = 5;
    /// Gating controller.
    pub const CONTROLLER: u32 = 6;
    /// BT nucleus.
    pub const NUCLEUS: u32 = 7;
    /// Power-manager state (HTB/PVT/CDE/guard for PowerChop).
    pub const MANAGER: u32 = 8;
    /// Fault-schedule RNG streams and due times.
    pub const FAULTS: u32 = 9;
}

/// Self-describing run metadata embedded in every snapshot so a resuming
/// process can reconstruct the [`RunConfig`] without out-of-band state.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotMeta {
    /// Benchmark (or program) name.
    pub benchmark: String,
    /// Workload scale factor.
    pub scale: f64,
    /// Manager in its CLI-argument spelling (e.g. `"powerchop"`).
    pub manager: String,
    /// Instruction budget of the run.
    pub budget: u64,
    /// Fault-injection seed, when the run injects faults.
    pub fault_seed: Option<u64>,
    /// Whether the fault schedule uses the pathological storm rates.
    pub storm: bool,
}

/// Reads the [`SnapshotMeta`] out of snapshot `bytes` without needing
/// the run configuration (the config-hash check is deferred to
/// [`Simulation::restore`]).
///
/// # Errors
///
/// Returns a [`CheckpointError`] when the container is corrupt,
/// truncated, version-skewed or missing its metadata section.
pub fn read_meta(bytes: &[u8]) -> Result<SnapshotMeta, CheckpointError> {
    let snap = Snapshot::parse(bytes)?;
    let mut r = snap.section(sections::META)?;
    let benchmark = r.take_str()?;
    let scale = r.take_f64()?;
    let manager = r.take_str()?;
    let budget = r.take_u64()?;
    let fault_seed = if r.take_bool()? {
        Some(r.take_u64()?)
    } else {
        None
    };
    let storm = r.take_bool()?;
    r.expect_end("snapshot metadata")?;
    Ok(SnapshotMeta {
        benchmark,
        scale,
        manager,
        budget,
        fault_seed,
        storm,
    })
}

/// A deterministic fingerprint of everything that shapes a run's
/// trajectory: the manager kind and the full [`RunConfig`]. Snapshots
/// embed it so a resume under a different configuration is rejected
/// instead of silently diverging.
///
/// [`RunConfig::jit`] is deliberately *not* fingerprinted: JIT-on and
/// JIT-off execution is bit-identical, so a snapshot taken under either
/// mode must restore under the other.
#[must_use]
pub fn config_fingerprint(kind: ManagerKind, cfg: &RunConfig) -> u64 {
    let canon = format!(
        "{:?}|{:?}|{:?}|{:?}|{:?}|{}|{}|{:?}",
        kind,
        cfg.core,
        cfg.bt,
        cfg.power,
        cfg.chop,
        cfg.max_instructions,
        cfg.record_windows,
        cfg.faults
    );
    fnv1a64(canon.as_bytes())
}

/// A live simulation: the complete deterministic state of one run.
///
/// Stepping is chunked at guest-dispatch boundaries
/// ([`Simulation::step_chunk`]), which are exactly the boundaries the
/// one-shot loop iterates at — so a run snapshotted between chunks and
/// resumed from disk replays bit-identically to an uninterrupted run,
/// fault schedules included.
pub struct Simulation<'p> {
    cfg: RunConfig,
    name: String,
    config_hash: u64,
    core: CoreModel,
    ledger: EnergyLedger,
    controller: GatingController,
    nucleus: Nucleus,
    machine: Machine<'p>,
    manager: Box<dyn PowerManager>,
    schedule: Option<FaultSchedule>,
    tracer: Tracer,
    done: bool,
}

impl std::fmt::Debug for Simulation<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Simulation")
            .field("name", &self.name)
            .field("manager", &self.manager.name())
            .field("retired", &self.machine.retired())
            .field("done", &self.done)
            .finish_non_exhaustive()
    }
}

impl<'p> Simulation<'p> {
    /// Creates a fresh simulation of `program` under the chosen manager.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for configurations the
    /// simulation cannot run under.
    pub fn new(program: &'p Program, kind: ManagerKind, cfg: &RunConfig) -> Result<Self, SimError> {
        Simulation::new_traced(program, kind, cfg, Tracer::disabled())
    }

    /// Creates a fresh simulation with a flight recorder attached. The
    /// recorder observes events and samples metrics but never influences
    /// the run: a traced run is bit-identical to an untraced one.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for configurations the
    /// simulation cannot run under.
    pub fn new_traced(
        program: &'p Program,
        kind: ManagerKind,
        cfg: &RunConfig,
        mut tracer: Tracer,
    ) -> Result<Self, SimError> {
        cfg.validate()?;
        let mut core = CoreModel::new(&cfg.core);
        let mut ledger = EnergyLedger::new(cfg.power.clone());
        // The timeout baseline gates the power state only (vector ops
        // wake the unit on demand), so its controller must not drive the
        // core's unit models.
        let semantic = !matches!(kind, ManagerKind::TimeoutVpu { .. });
        let mut controller = GatingController::new(&cfg.core, semantic);
        let mut nucleus = Nucleus::new();
        let mut machine = Machine::new(program, cfg.bt);
        machine.set_jit_mode(cfg.jit);
        let mut manager = build_manager(kind, cfg);
        {
            let mut ctx = ManagerCtx {
                core: &mut core,
                ledger: &mut ledger,
                controller: &mut controller,
                nucleus: &mut nucleus,
                trace: &mut tracer,
            };
            manager.init(&mut ctx);
        }
        let schedule = cfg.faults.map(FaultSchedule::new);
        Ok(Simulation {
            name: program.name().to_owned(),
            config_hash: config_fingerprint(kind, cfg),
            cfg: cfg.clone(),
            core,
            ledger,
            controller,
            nucleus,
            machine,
            manager,
            schedule,
            tracer,
            done: false,
        })
    }

    /// Whether the run has reached its end (budget exhausted or guest
    /// halted).
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.done
    }

    /// Guest instructions retired so far.
    #[must_use]
    pub fn retired(&self) -> u64 {
        self.machine.retired()
    }

    /// The configuration fingerprint embedded in this run's snapshots.
    #[must_use]
    pub fn config_hash(&self) -> u64 {
        self.config_hash
    }

    /// One iteration of the dispatch loop: budget check, one machine
    /// step, manager notification, due-fault drain — exactly the body of
    /// the uninterrupted run loop.
    fn step_once(&mut self) -> Result<(), SimError> {
        if self.machine.retired() >= self.cfg.max_instructions {
            self.done = true;
            return Ok(());
        }
        match self.machine.step(&mut self.core)? {
            MachineEvent::Halted => {
                self.done = true;
                return Ok(());
            }
            MachineEvent::Translation { id, instructions } => {
                let mut ctx = ManagerCtx {
                    core: &mut self.core,
                    ledger: &mut self.ledger,
                    controller: &mut self.controller,
                    nucleus: &mut self.nucleus,
                    trace: &mut self.tracer,
                };
                self.manager.on_translation(id, instructions, &mut ctx);
            }
            MachineEvent::Installed { id, guest_len } => {
                self.tracer.emit(
                    self.core.cycles(),
                    Event::TranslationInstalled {
                        id: id.0,
                        guest_len: u32::try_from(guest_len).unwrap_or(u32::MAX),
                    },
                );
                // The JIT compiles eagerly at install time, so native code
                // for this translation (if it was eligible) exists now.
                if let Some(code_bytes) = self.machine.jit_code_len(id) {
                    self.tracer.emit(
                        self.core.cycles(),
                        Event::JitCompiled {
                            id: id.0,
                            code_bytes: u32::try_from(code_bytes).unwrap_or(u32::MAX),
                        },
                    );
                }
            }
            _ => {}
        }
        if let Some(sched) = self.schedule.as_mut() {
            // The config copy is hoisted behind the due check: the
            // schedule answers "nothing due" from a cached next-due
            // cycle, so the common per-step cost is one compare, not a
            // config copy.
            let mut pending = sched.next_due(self.core.cycles());
            let fcfg = pending.map(|_| *sched.config());
            while let Some(event) = pending.take() {
                // `fcfg` is Some whenever an event was due.
                let Some(fcfg) = fcfg else { break };
                self.tracer.emit(
                    self.core.cycles(),
                    Event::FaultDelivered {
                        kind: event.kind.code(),
                    },
                );
                match event.kind {
                    FaultKind::AsyncInterrupt => {
                        // A device interrupt runs its handler in the
                        // nucleus, stealing cycles from the guest.
                        let cycles = jittered(event.payload, fcfg.interrupt_handler_cycles);
                        self.nucleus.raise(&mut self.core, cycles);
                    }
                    FaultKind::ContextSwitch => {
                        // The OS scheduled another process: the machine's
                        // per-process heat decays and the manager's
                        // window state dies with it.
                        self.machine.on_context_switch();
                        self.core.add_stall(fcfg.context_switch_cycles.max(1));
                        let mut ctx = ManagerCtx {
                            core: &mut self.core,
                            ledger: &mut self.ledger,
                            controller: &mut self.controller,
                            nucleus: &mut self.nucleus,
                            trace: &mut self.tracer,
                        };
                        self.manager.on_fault(event.kind, event.payload, &mut ctx);
                    }
                    FaultKind::RegionCacheInvalidation => {
                        let dropped = self
                            .machine
                            .invalidate_regions(fcfg.region_invalidate_fraction, event.payload);
                        self.tracer.emit(
                            self.core.cycles(),
                            Event::RegionInvalidated {
                                dropped: dropped as u64,
                            },
                        );
                    }
                    FaultKind::PvtCorruption | FaultKind::PvtEviction => {
                        let mut ctx = ManagerCtx {
                            core: &mut self.core,
                            ledger: &mut self.ledger,
                            controller: &mut self.controller,
                            nucleus: &mut self.nucleus,
                            trace: &mut self.tracer,
                        };
                        self.manager.on_fault(event.kind, event.payload, &mut ctx);
                    }
                    FaultKind::WorkloadPerturbation => {
                        // A co-runner (or DVFS excursion) steals the core
                        // for a while without touching any state.
                        self.core
                            .add_stall(jittered(event.payload, fcfg.perturb_stall_cycles));
                    }
                }
                pending = sched.next_due(self.core.cycles());
            }
        }
        if self.tracer.is_enabled() {
            let cycle = self.core.cycles();
            let due = self
                .tracer
                .recorder_mut()
                .is_some_and(|r| r.sample_due(cycle));
            if due {
                self.sample_metrics_now();
            }
        }
        Ok(())
    }

    /// Folds the current state of every subsystem into the recorder's
    /// metrics registry, plus per-unit energy-delta histograms between
    /// consecutive samples. Read-only with respect to the simulation.
    fn sample_metrics_now(&mut self) {
        let bt = self.machine.stats();
        let nucleus_stats = self.nucleus.stats();
        let fault_stats = self.schedule.as_ref().map(FaultSchedule::stats);
        let retired = self.machine.retired();
        let Some(rec) = self.tracer.recorder_mut() else {
            return;
        };
        let reg = rec.metrics_mut();
        let prev_energy = UNIT_ENERGY_HISTOGRAMS.map(|(_, leak, dynamic)| {
            reg.gauge(leak).unwrap_or(0.0) + reg.gauge(dynamic).unwrap_or(0.0)
        });
        reg.counter_set("sim_instructions_total", retired);
        reg.counter_set("sim_cycles_total", self.core.cycles());
        self.core.sample_metrics(reg);
        bt.sample_metrics(reg);
        nucleus_stats.sample_metrics(reg);
        self.ledger.sample_metrics(reg);
        if let Some(fs) = fault_stats {
            fs.sample_metrics(reg);
        }
        self.manager.sample_metrics(reg);
        if let Some(jit) = self.machine.jit_report() {
            jit.sample_metrics(reg);
        }
        for ((hist, leak, dynamic), prev) in UNIT_ENERGY_HISTOGRAMS.into_iter().zip(prev_energy) {
            let now = reg.gauge(leak).unwrap_or(0.0) + reg.gauge(dynamic).unwrap_or(0.0);
            let delta_uj = ((now - prev).max(0.0) * 1e6) as u64;
            reg.observe(hist, delta_uj);
        }
    }

    /// Runs up to `iterations` dispatch-loop iterations, stopping early
    /// when the run completes. Check [`Simulation::is_done`] afterwards.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Guest`] for guest-execution faults.
    pub fn step_chunk(&mut self, iterations: u64) -> Result<(), SimError> {
        for _ in 0..iterations {
            if self.done {
                return Ok(());
            }
            self.step_once()?;
        }
        Ok(())
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Guest`] for guest-execution faults.
    pub fn run_to_completion(&mut self) -> Result<(), SimError> {
        while !self.done {
            self.step_once()?;
        }
        Ok(())
    }

    /// Finalizes accounting and produces the run report. Valid at any
    /// point (a mid-run report covers the work so far); the report of a
    /// resumed run is bit-identical to that of an uninterrupted one.
    #[must_use]
    pub fn into_report(self) -> RunReport {
        self.into_report_with_telemetry().0
    }

    /// Like [`Simulation::into_report`], but also takes a final metrics
    /// sample, closes open trace spans and hands the tracer back so the
    /// caller can export the flight recording.
    #[must_use]
    pub fn into_report_with_telemetry(mut self) -> (RunReport, Tracer) {
        self.controller.sync(&self.core, &mut self.ledger);
        if self.tracer.is_enabled() {
            self.sample_metrics_now();
        }
        let cycle = self.core.cycles();
        self.tracer.with(|r| r.finish(cycle));
        let tracer = std::mem::take(&mut self.tracer);
        let report = RunReport {
            name: self.name,
            manager: self.manager.name(),
            core_kind: self.cfg.core.kind,
            instructions: self.machine.retired(),
            cycles: self.core.cycles(),
            stats: self.core.stats(),
            bt: self.machine.stats(),
            energy: self.ledger.report(),
            gated: self.controller.gated_cycles(),
            switches: self.controller.switches(),
            nucleus: self.nucleus.stats(),
            pvt: self.manager.pvt_stats(),
            cde: self.manager.cde_stats(),
            windows: self.manager.take_window_records(),
            faults: self.schedule.as_ref().map(FaultSchedule::stats),
            degrade: self.manager.degrade_stats(),
            jit: self.machine.jit_report(),
        };
        (report, tracer)
    }

    /// Serializes the complete run state into the versioned, checksummed
    /// snapshot container, embedding `meta` so the snapshot is
    /// self-describing.
    ///
    /// Telemetry is deliberately *not* part of the snapshot: a resumed
    /// trace starts at the resume point. The write is recorded as a
    /// [`Event::CheckpointWritten`] trace event (hence `&mut self`).
    #[must_use]
    pub fn snapshot(&mut self, meta: &SnapshotMeta) -> Vec<u8> {
        self.tracer.emit(
            self.core.cycles(),
            Event::CheckpointWritten {
                retired: self.machine.retired(),
            },
        );
        let mut sw = SnapshotWriter::new(self.config_hash);
        sw.section(sections::META, |w| {
            w.put_str(&meta.benchmark);
            w.put_f64(meta.scale);
            w.put_str(&meta.manager);
            w.put_u64(meta.budget);
            match meta.fault_seed {
                Some(seed) => {
                    w.put_bool(true);
                    w.put_u64(seed);
                }
                None => w.put_bool(false),
            }
            w.put_bool(meta.storm);
        });
        sw.section(sections::SIM, |w| w.put_bool(self.done));
        sw.section(sections::MACHINE, |w| self.machine.snapshot_to(w));
        sw.section(sections::CORE, |w| self.core.snapshot_to(w));
        sw.section(sections::LEDGER, |w| self.ledger.snapshot_to(w));
        sw.section(sections::CONTROLLER, |w| self.controller.snapshot_to(w));
        sw.section(sections::NUCLEUS, |w| self.nucleus.snapshot_to(w));
        sw.section(sections::MANAGER, |w| self.manager.snapshot_to(w));
        if let Some(sched) = &self.schedule {
            sw.section(sections::FAULTS, |w| sched.snapshot_to(w));
        }
        sw.finish()
    }

    /// Reconstructs a run from snapshot `bytes`. The caller supplies the
    /// same program, manager kind and configuration the snapshot was
    /// captured under; mismatches are rejected via the embedded config
    /// fingerprint (and the machine section's program fingerprint).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Checkpoint`] when the snapshot is corrupt,
    /// truncated, version-skewed or captured under a different
    /// configuration, and [`SimError::InvalidConfig`] when `cfg` itself
    /// is unusable.
    pub fn restore(
        program: &'p Program,
        kind: ManagerKind,
        cfg: &RunConfig,
        bytes: &[u8],
    ) -> Result<Self, SimError> {
        let mut sim = Simulation::new(program, kind, cfg)?;
        let snap = Snapshot::parse(bytes).map_err(SimError::from)?;
        snap.require_config(sim.config_hash)
            .map_err(SimError::from)?;
        sim.restore_sections(&snap).map_err(SimError::from)?;
        Ok(sim)
    }

    /// Replaces the run's tracer. Telemetry is not checkpointed, so
    /// this is how a run restored via [`Simulation::restore`] gets a
    /// flight recorder: the recording starts at the attach point.
    pub fn attach_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn restore_sections(&mut self, snap: &Snapshot<'_>) -> Result<(), CheckpointError> {
        let mut r = snap.section(sections::SIM)?;
        self.done = r.take_bool()?;
        r.expect_end("simulation flags")?;

        let mut r = snap.section(sections::MACHINE)?;
        self.machine.restore_from(&mut r)?;
        r.expect_end("machine state")?;

        let mut r = snap.section(sections::CORE)?;
        self.core.restore_from(&mut r)?;
        r.expect_end("core state")?;

        let mut r = snap.section(sections::LEDGER)?;
        self.ledger.restore_from(&mut r)?;
        r.expect_end("energy ledger")?;

        let mut r = snap.section(sections::CONTROLLER)?;
        self.controller.restore_from(&mut r)?;
        r.expect_end("gating controller")?;

        let mut r = snap.section(sections::NUCLEUS)?;
        self.nucleus.restore_from(&mut r)?;
        r.expect_end("nucleus state")?;

        let mut r = snap.section(sections::MANAGER)?;
        self.manager.restore_from(&mut r)?;
        r.expect_end("manager state")?;

        match (&mut self.schedule, snap.has_section(sections::FAULTS)) {
            (Some(sched), true) => {
                let mut r = snap.section(sections::FAULTS)?;
                sched.restore_from(&mut r)?;
                r.expect_end("fault schedule")?;
            }
            (None, false) => {}
            _ => {
                return Err(CheckpointError::Malformed {
                    what: "fault-schedule presence differs between snapshot and configuration",
                });
            }
        }
        Ok(())
    }
}

/// Runs `program` under the chosen power manager, optionally under a
/// deterministic fault schedule (`cfg.faults`). A thin wrapper over
/// [`Simulation`].
///
/// # Errors
///
/// Returns [`SimError::Guest`] for guest-execution faults (a bug in the
/// guest program) and [`SimError::InvalidConfig`] for configurations the
/// simulation cannot run under. Injected faults never produce errors:
/// absorbing them — at worst by failing safe to full power — is the
/// degradation layer's contract.
pub fn run_program(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
) -> Result<RunReport, SimError> {
    let mut sim = Simulation::new(program, kind, cfg)?;
    sim.run_to_completion()?;
    Ok(sim.into_report())
}

/// Runs `program` with a flight recorder attached, returning both the
/// report and the tracer holding the recorded events and metrics. The
/// report is bit-identical to the one [`run_program`] produces for the
/// same inputs.
///
/// # Errors
///
/// Exactly as [`run_program`]: guest-execution faults and invalid
/// configurations.
pub fn run_program_traced(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
    tracer: Tracer,
) -> Result<(RunReport, Tracer), SimError> {
    let mut sim = Simulation::new_traced(program, kind, cfg, tracer)?;
    sim.run_to_completion()?;
    Ok(sim.into_report_with_telemetry())
}

/// Metric-name triples `(delta histogram, leakage gauge, dynamic gauge)`
/// for the per-unit energy-delta histograms sampled on the telemetry
/// interval.
const UNIT_ENERGY_HISTOGRAMS: [(&str, &str, &str); 3] = [
    (
        "energy_delta_vpu_microjoules",
        "power_leakage_vpu_joules",
        "power_dynamic_vpu_joules",
    ),
    (
        "energy_delta_bpu_microjoules",
        "power_leakage_bpu_joules",
        "power_dynamic_bpu_joules",
    ),
    (
        "energy_delta_mlc_microjoules",
        "power_leakage_mlc_joules",
        "power_dynamic_mlc_joules",
    ),
];

/// A payload-jittered fault magnitude in `[mean/2, mean)`, never zero.
fn jittered(payload: u64, mean: u64) -> u64 {
    let mean = mean.max(1);
    let half = mean / 2;
    (half + payload % (mean - half).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{ProgramBuilder, Reg};

    /// A long predictable scalar loop: every managed unit is non-critical.
    fn idle_units_program(iters: i64) -> Program {
        let r0 = Reg::new(0).expect("register index in range");
        let r1 = Reg::new(1).expect("register index in range");
        let r2 = Reg::new(2).expect("register index in range");
        let mut b = ProgramBuilder::new("idle-units");
        b.li(r0, 0).li(r1, iters);
        let top = b.bind_label();
        b.addi(r2, r2, 3);
        b.xor(r2, r2, r0);
        b.addi(r0, r0, 1);
        b.blt(r0, r1, top);
        b.halt();
        b.build().expect("test program is well-formed")
    }

    fn cfg() -> RunConfig {
        let mut c = RunConfig::for_kind(CoreKind::Server);
        c.max_instructions = 2_000_000;
        c
    }

    #[test]
    fn powerchop_gates_noncritical_units_with_small_slowdown() {
        let p = idle_units_program(1_000_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).expect("test run succeeds");
        let chop = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");

        // Units gated for the bulk of execution.
        assert!(
            chop.gated.vpu_off_frac() > 0.8,
            "vpu: {}",
            chop.gated.vpu_off_frac()
        );
        assert!(
            chop.gated.bpu_off_frac() > 0.8,
            "bpu: {}",
            chop.gated.bpu_off_frac()
        );
        assert!(
            chop.gated.mlc_one_frac() > 0.8,
            "mlc: {}",
            chop.gated.mlc_one_frac()
        );

        // Big leakage reduction, tiny slowdown.
        assert!(chop.leakage_reduction_vs(&full) > 0.3);
        let slowdown = chop.slowdown_vs(&full);
        assert!(slowdown < 0.05, "slowdown {slowdown}");
        assert!(chop.power_reduction_vs(&full) > 0.0);
    }

    #[test]
    fn minimal_power_is_cheapest_but_can_be_slow() {
        let p = idle_units_program(500_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).expect("test run succeeds");
        let min = run_program(&p, ManagerKind::MinimalPower, &cfg).expect("test run succeeds");
        assert!(min.energy.leakage_power_w < full.energy.leakage_power_w * 0.7);
        assert_eq!(min.switches.total(), 3, "one switch per unit at init");
    }

    #[test]
    fn reports_are_internally_consistent() {
        let p = idle_units_program(200_000);
        let cfg = cfg();
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");
        assert_eq!(r.manager, "powerchop");
        assert_eq!(r.core_kind, CoreKind::Server);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.gated.total, r.cycles);
        assert!(r.pvt.is_some() && r.cde.is_some());
        let pvt = r.pvt.unwrap();
        assert_eq!(pvt.lookups, pvt.hits + pvt.misses());
        assert_eq!(r.nucleus.interrupts, pvt.misses());
    }

    #[test]
    fn window_recording_captures_every_window() {
        let p = idle_units_program(500_000);
        let mut cfg = cfg();
        cfg.record_windows = true;
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");
        let pvt = r.pvt.unwrap();
        assert_eq!(r.windows.len() as u64, pvt.lookups);
        assert!(r.windows.len() > 10);
    }

    #[test]
    fn budget_limits_run_length() {
        let p = idle_units_program(100_000_000);
        let mut c = cfg();
        c.max_instructions = 100_000;
        let r = run_program(&p, ManagerKind::FullPower, &c).expect("test run succeeds");
        assert!(r.instructions >= 100_000);
        assert!(r.instructions < 110_000);
    }

    #[test]
    fn invalid_configs_are_rejected_before_running() {
        let p = idle_units_program(1_000);
        let mut c = cfg();
        c.max_instructions = 0;
        let err = run_program(&p, ManagerKind::FullPower, &c).expect_err("zero budget");
        assert!(matches!(
            err,
            crate::SimError::InvalidConfig {
                field: "max_instructions",
                ..
            }
        ));

        let mut c = cfg();
        c.faults = Some(powerchop_faults::FaultConfig {
            region_invalidate_fraction: f64::NAN,
            ..powerchop_faults::FaultConfig::default_rates(1)
        });
        let err = run_program(&p, ManagerKind::PowerChop, &c).expect_err("NaN fraction");
        assert!(matches!(err, crate::SimError::InvalidConfig { .. }));
    }

    #[test]
    fn zero_sized_chop_tables_are_rejected_with_typed_errors() {
        let p = idle_units_program(1_000);
        let expect_field = |mutate: &dyn Fn(&mut RunConfig), field: &'static str| {
            let mut c = cfg();
            mutate(&mut c);
            let err = run_program(&p, ManagerKind::PowerChop, &c)
                .expect_err("zero-sized table must be rejected");
            match err {
                crate::SimError::InvalidConfig { field: got, .. } => {
                    assert_eq!(got, field);
                }
                other => panic!("expected InvalidConfig for {field}, got {other}"),
            }
        };
        expect_field(&|c| c.chop.pvt_entries = 0, "chop.pvt_entries");
        expect_field(&|c| c.chop.htb_entries = 0, "chop.htb_entries");
        expect_field(&|c| c.chop.signature_len = 0, "chop.signature_len");
        expect_field(
            &|c| c.chop.window_translations = 0,
            "chop.window_translations",
        );
    }

    #[test]
    fn fault_injection_is_deterministic_and_counted() {
        let p = idle_units_program(400_000);
        let mut c = cfg();
        c.max_instructions = 800_000;
        c.faults = Some(powerchop_faults::FaultConfig::storm(0xFA11));
        let a = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        let b = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        let fa = a.faults.expect("fault stats present");
        assert_eq!(
            fa,
            b.faults.expect("fault stats present"),
            "same seed, same faults"
        );
        assert_eq!(a.cycles, b.cycles, "identical timing");
        assert_eq!(
            a.energy.total_j.to_bits(),
            b.energy.total_j.to_bits(),
            "identical energy"
        );
        assert!(fa.total() > 0, "storm rates must fire: {fa:?}");
        assert!(a.degrade.is_some(), "powerchop reports degradation stats");
    }

    #[test]
    fn faulted_runs_stay_close_to_clean_performance() {
        let p = idle_units_program(600_000);
        let mut c = cfg();
        c.max_instructions = 1_200_000;
        let clean = run_program(&p, ManagerKind::PowerChop, &c).expect("clean run succeeds");
        c.faults = Some(powerchop_faults::FaultConfig::default_rates(7));
        let faulted = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        assert!(faulted.faults.expect("stats").total() > 0);
        let slowdown = faulted.slowdown_vs(&clean);
        assert!(slowdown < 0.10, "default fault rates cost {slowdown} IPC");
    }

    #[test]
    fn checkpointed_run_resumes_bit_identically() {
        let p = idle_units_program(400_000);
        let mut c = cfg();
        c.max_instructions = 800_000;
        c.faults = Some(powerchop_faults::FaultConfig::default_rates(3));
        let kind = ManagerKind::PowerChop;
        let meta = SnapshotMeta {
            benchmark: "idle-units".to_owned(),
            scale: 1.0,
            manager: "powerchop".to_owned(),
            budget: 800_000,
            fault_seed: Some(3),
            storm: false,
        };

        let straight = run_program(&p, kind, &c).expect("uninterrupted run succeeds");

        let mut sim = Simulation::new(&p, kind, &c).expect("config is valid");
        sim.step_chunk(40_000).expect("first leg succeeds");
        assert!(!sim.is_done(), "checkpoint must land mid-run");
        let bytes = sim.snapshot(&meta);
        drop(sim);

        assert_eq!(read_meta(&bytes).expect("meta parses"), meta);
        let mut resumed = Simulation::restore(&p, kind, &c, &bytes).expect("snapshot restores");
        resumed.run_to_completion().expect("second leg succeeds");
        let report = resumed.into_report();

        assert_eq!(report.instructions, straight.instructions);
        assert_eq!(report.cycles, straight.cycles);
        assert_eq!(report.stats, straight.stats);
        assert_eq!(report.bt, straight.bt);
        assert_eq!(
            report.energy.total_j.to_bits(),
            straight.energy.total_j.to_bits(),
            "energy must be bit-identical"
        );
        assert_eq!(report.gated, straight.gated);
        assert_eq!(report.switches, straight.switches);
        assert_eq!(report.faults, straight.faults);
        assert_eq!(report.pvt, straight.pvt);
        assert_eq!(report.cde, straight.cde);
        assert_eq!(report.degrade, straight.degrade);
    }

    #[test]
    fn restore_rejects_config_and_program_mismatches() {
        let p = idle_units_program(100_000);
        let c = cfg();
        let kind = ManagerKind::PowerChop;
        let meta = SnapshotMeta {
            benchmark: "idle-units".to_owned(),
            scale: 1.0,
            manager: "powerchop".to_owned(),
            budget: 2_000_000,
            fault_seed: None,
            storm: false,
        };
        let mut sim = Simulation::new(&p, kind, &c).expect("config is valid");
        sim.step_chunk(10_000).expect("leg succeeds");
        let bytes = sim.snapshot(&meta);

        // Different manager => different config fingerprint.
        let err = Simulation::restore(&p, ManagerKind::FullPower, &c, &bytes)
            .expect_err("config mismatch");
        assert!(matches!(
            err,
            SimError::Checkpoint(CheckpointError::ConfigMismatch { .. })
        ));

        // Same config, different guest program => machine fingerprint
        // mismatch.
        let other = idle_units_program(90_000);
        let err = Simulation::restore(&other, kind, &c, &bytes).expect_err("program mismatch");
        assert!(matches!(
            err,
            SimError::Checkpoint(CheckpointError::Malformed { .. })
        ));

        // Truncation is detected, never a panic.
        let err = Simulation::restore(&p, kind, &c, &bytes[..bytes.len() / 2])
            .expect_err("truncated snapshot");
        assert!(matches!(err, SimError::Checkpoint(_)));
    }

    #[test]
    fn timeout_manager_runs_non_semantically() {
        let p = idle_units_program(300_000);
        let cfg = cfg();
        let r = run_program(
            &p,
            ManagerKind::TimeoutVpu {
                timeout_cycles: 10_000,
            },
            &cfg,
        )
        .unwrap();
        // No vector ops at all: the VPU gates off once and stays off.
        assert_eq!(r.switches.vpu, 1);
        assert!(r.gated.vpu_off_frac() > 0.9);
        assert!(r.pvt.is_none());
    }
}
