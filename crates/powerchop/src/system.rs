//! The integrated PowerChop system: guest program + BT layer + core
//! model + power manager + energy ledger, with a single entry point
//! ([`run_program`]) producing the [`RunReport`] that every experiment
//! in the paper's evaluation is derived from.

use powerchop_bt::nucleus::{Nucleus, NucleusStats};
use powerchop_bt::{BtConfig, BtStats, Machine, MachineEvent};
use powerchop_gisa::{GisaError, Program};
use powerchop_power::{EnergyLedger, EnergyReport, PowerParams};
use powerchop_uarch::config::{CoreConfig, CoreKind};
use powerchop_uarch::core::{CoreModel, CoreStats};

use crate::cde::CdeStats;
use crate::gating::{GatedCycles, GatingController, SwitchCounts};
use crate::managers::{
    ChopConfig, DrowsyMlcManager, FullPowerManager, ManagerCtx, MinimalPowerManager,
    PowerChopManager, PowerManager, TimeoutVpuManager, WindowRecord,
};
use crate::pvt::PvtStats;

/// Which power-management policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerKind {
    /// PowerChop (the paper's contribution).
    PowerChop,
    /// Fully-powered baseline.
    FullPower,
    /// Lowest-power baseline.
    MinimalPower,
    /// Hardware-only idleness timeout on the VPU (paper §V-E).
    TimeoutVpu {
        /// Idle cycles before gating off.
        timeout_cycles: u64,
    },
    /// Drowsy-cache baseline on the MLC (paper §VI related work):
    /// periodic low-retention-voltage mode instead of way-gating.
    DrowsyMlc {
        /// Cycles between global drowse events.
        period_cycles: u64,
    },
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Core design point.
    pub core: CoreConfig,
    /// BT-layer tuning.
    pub bt: BtConfig,
    /// Power-model parameters.
    pub power: PowerParams,
    /// PowerChop tuning (ignored by baselines).
    pub chop: ChopConfig,
    /// Stop after this many retired guest instructions (the SimPoint
    /// substitute — see `DESIGN.md`).
    pub max_instructions: u64,
    /// Record per-window phase-identification data (Fig. 8). Off by
    /// default; costs memory proportional to windows executed.
    pub record_windows: bool,
}

impl RunConfig {
    /// A default configuration for the given design point. The
    /// instruction budget defaults to 12 M and can be overridden with the
    /// `POWERCHOP_BUDGET` environment variable.
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> Self {
        RunConfig {
            core: CoreConfig::for_kind(kind),
            bt: BtConfig::default(),
            power: PowerParams::for_kind(kind),
            chop: ChopConfig::default(),
            max_instructions: default_budget(),
            record_windows: false,
        }
    }
}

/// The default per-run instruction budget, honouring `POWERCHOP_BUDGET`.
#[must_use]
pub fn default_budget() -> u64 {
    std::env::var("POWERCHOP_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000_000)
}

/// The complete result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Manager name (`"powerchop"`, `"full-power"`, ...).
    pub manager: &'static str,
    /// Design point the run used.
    pub core_kind: CoreKind,
    /// Guest instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Core event counters.
    pub stats: CoreStats,
    /// BT-layer counters.
    pub bt: BtStats,
    /// Energy and average power.
    pub energy: EnergyReport,
    /// Time each unit spent gated.
    pub gated: GatedCycles,
    /// Gating switches per unit.
    pub switches: SwitchCounts,
    /// Nucleus (CDE-interrupt) activity.
    pub nucleus: NucleusStats,
    /// PVT statistics (PowerChop runs only).
    pub pvt: Option<PvtStats>,
    /// CDE statistics (PowerChop runs only).
    pub cde: Option<CdeStats>,
    /// Per-window phase records, when requested.
    pub windows: Vec<WindowRecord>,
}

impl RunReport {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Gating switches per million cycles for one unit (Fig. 11's metric).
    #[must_use]
    pub fn switches_per_mcycle(&self, switches: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            switches as f64 * 1e6 / self.cycles as f64
        }
    }

    /// Relative slowdown versus a baseline run of the same program
    /// (positive = slower than baseline).
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            1.0 - self.ipc() / baseline.ipc()
        }
    }

    /// Fractional reduction in average total power versus a baseline run.
    #[must_use]
    pub fn power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.avg_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.avg_power_w / baseline.energy.avg_power_w
        }
    }

    /// Fractional reduction in average leakage power versus a baseline.
    #[must_use]
    pub fn leakage_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.leakage_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.leakage_power_w / baseline.energy.leakage_power_w
        }
    }

    /// Fractional reduction in energy *for the same amount of work*
    /// versus a baseline run of the same program. Runs may retire
    /// different instruction counts under a shared budget, so energies
    /// are compared per instruction.
    #[must_use]
    pub fn energy_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.instructions == 0 || self.instructions == 0 || baseline.energy.total_j == 0.0 {
            return 0.0;
        }
        let epi = self.energy.total_j / self.instructions as f64;
        let epi_base = baseline.energy.total_j / baseline.instructions as f64;
        1.0 - epi / epi_base
    }
}

fn build_manager(kind: ManagerKind, cfg: &RunConfig) -> Box<dyn PowerManager> {
    match kind {
        ManagerKind::PowerChop => {
            Box::new(PowerChopManager::new(cfg.chop.clone(), cfg.record_windows))
        }
        ManagerKind::FullPower => Box::new(FullPowerManager),
        ManagerKind::MinimalPower => Box::new(MinimalPowerManager),
        ManagerKind::TimeoutVpu { timeout_cycles } => {
            Box::new(TimeoutVpuManager::new(timeout_cycles))
        }
        ManagerKind::DrowsyMlc { period_cycles } => {
            Box::new(DrowsyMlcManager::new(period_cycles))
        }
    }
}

/// Runs `program` under the chosen power manager.
///
/// # Errors
///
/// Propagates guest-execution faults, which indicate a bug in the guest
/// program.
pub fn run_program(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
) -> Result<RunReport, GisaError> {
    let mut core = CoreModel::new(&cfg.core);
    let mut ledger = EnergyLedger::new(cfg.power.clone());
    // The timeout baseline gates the power state only (vector ops wake
    // the unit on demand), so its controller must not drive the core's
    // unit models.
    let semantic = !matches!(kind, ManagerKind::TimeoutVpu { .. });
    let mut controller = GatingController::new(&cfg.core, semantic);
    let mut nucleus = Nucleus::new();
    let mut machine = Machine::new(program, cfg.bt);
    let mut manager = build_manager(kind, cfg);

    {
        let mut ctx = ManagerCtx {
            core: &mut core,
            ledger: &mut ledger,
            controller: &mut controller,
            nucleus: &mut nucleus,
        };
        manager.init(&mut ctx);
    }

    loop {
        if machine.retired() >= cfg.max_instructions {
            break;
        }
        match machine.step(&mut core)? {
            MachineEvent::Halted => break,
            MachineEvent::Translation { id, instructions } => {
                let mut ctx = ManagerCtx {
                    core: &mut core,
                    ledger: &mut ledger,
                    controller: &mut controller,
                    nucleus: &mut nucleus,
                };
                manager.on_translation(id, instructions, &mut ctx);
            }
            _ => {}
        }
    }
    controller.sync(&core, &mut ledger);

    Ok(RunReport {
        name: program.name().to_owned(),
        manager: manager.name(),
        core_kind: cfg.core.kind,
        instructions: machine.retired(),
        cycles: core.cycles(),
        stats: core.stats(),
        bt: machine.stats(),
        energy: ledger.report(),
        gated: controller.gated_cycles(),
        switches: controller.switches(),
        nucleus: nucleus.stats(),
        pvt: manager.pvt_stats(),
        cde: manager.cde_stats(),
        windows: manager.take_window_records(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{ProgramBuilder, Reg};

    /// A long predictable scalar loop: every managed unit is non-critical.
    fn idle_units_program(iters: i64) -> Program {
        let r0 = Reg::new(0).unwrap();
        let r1 = Reg::new(1).unwrap();
        let r2 = Reg::new(2).unwrap();
        let mut b = ProgramBuilder::new("idle-units");
        b.li(r0, 0).li(r1, iters);
        let top = b.bind_label();
        b.addi(r2, r2, 3);
        b.xor(r2, r2, r0);
        b.addi(r0, r0, 1);
        b.blt(r0, r1, top);
        b.halt();
        b.build().unwrap()
    }

    fn cfg() -> RunConfig {
        let mut c = RunConfig::for_kind(CoreKind::Server);
        c.max_instructions = 2_000_000;
        c
    }

    #[test]
    fn powerchop_gates_noncritical_units_with_small_slowdown() {
        let p = idle_units_program(1_000_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).unwrap();
        let chop = run_program(&p, ManagerKind::PowerChop, &cfg).unwrap();

        // Units gated for the bulk of execution.
        assert!(chop.gated.vpu_off_frac() > 0.8, "vpu: {}", chop.gated.vpu_off_frac());
        assert!(chop.gated.bpu_off_frac() > 0.8, "bpu: {}", chop.gated.bpu_off_frac());
        assert!(chop.gated.mlc_one_frac() > 0.8, "mlc: {}", chop.gated.mlc_one_frac());

        // Big leakage reduction, tiny slowdown.
        assert!(chop.leakage_reduction_vs(&full) > 0.3);
        let slowdown = chop.slowdown_vs(&full);
        assert!(slowdown < 0.05, "slowdown {slowdown}");
        assert!(chop.power_reduction_vs(&full) > 0.0);
    }

    #[test]
    fn minimal_power_is_cheapest_but_can_be_slow() {
        let p = idle_units_program(500_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).unwrap();
        let min = run_program(&p, ManagerKind::MinimalPower, &cfg).unwrap();
        assert!(min.energy.leakage_power_w < full.energy.leakage_power_w * 0.7);
        assert_eq!(min.switches.total(), 3, "one switch per unit at init");
    }

    #[test]
    fn reports_are_internally_consistent() {
        let p = idle_units_program(200_000);
        let cfg = cfg();
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).unwrap();
        assert_eq!(r.manager, "powerchop");
        assert_eq!(r.core_kind, CoreKind::Server);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.gated.total, r.cycles);
        assert!(r.pvt.is_some() && r.cde.is_some());
        let pvt = r.pvt.unwrap();
        assert_eq!(pvt.lookups, pvt.hits + pvt.misses());
        assert_eq!(r.nucleus.interrupts, pvt.misses());
    }

    #[test]
    fn window_recording_captures_every_window() {
        let p = idle_units_program(500_000);
        let mut cfg = cfg();
        cfg.record_windows = true;
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).unwrap();
        let pvt = r.pvt.unwrap();
        assert_eq!(r.windows.len() as u64, pvt.lookups);
        assert!(r.windows.len() > 10);
    }

    #[test]
    fn budget_limits_run_length() {
        let p = idle_units_program(100_000_000);
        let mut c = cfg();
        c.max_instructions = 100_000;
        let r = run_program(&p, ManagerKind::FullPower, &c).unwrap();
        assert!(r.instructions >= 100_000);
        assert!(r.instructions < 110_000);
    }

    #[test]
    fn timeout_manager_runs_non_semantically() {
        let p = idle_units_program(300_000);
        let cfg = cfg();
        let r = run_program(
            &p,
            ManagerKind::TimeoutVpu { timeout_cycles: 10_000 },
            &cfg,
        )
        .unwrap();
        // No vector ops at all: the VPU gates off once and stays off.
        assert_eq!(r.switches.vpu, 1);
        assert!(r.gated.vpu_off_frac() > 0.9);
        assert!(r.pvt.is_none());
    }
}
