//! The integrated PowerChop system: guest program + BT layer + core
//! model + power manager + energy ledger, with a single entry point
//! ([`run_program`]) producing the [`RunReport`] that every experiment
//! in the paper's evaluation is derived from.

use powerchop_bt::nucleus::{Nucleus, NucleusStats};
use powerchop_bt::{BtConfig, BtStats, Machine, MachineEvent};
use powerchop_faults::{FaultConfig, FaultKind, FaultSchedule, FaultStats};
use powerchop_gisa::Program;
use powerchop_power::{EnergyLedger, EnergyReport, PowerParams};
use powerchop_uarch::config::{CoreConfig, CoreKind};
use powerchop_uarch::core::{CoreModel, CoreStats};

use crate::cde::CdeStats;
use crate::degrade::DegradeStats;
use crate::error::SimError;
use crate::gating::{GatedCycles, GatingController, SwitchCounts};
use crate::managers::{
    ChopConfig, DrowsyMlcManager, FullPowerManager, ManagerCtx, MinimalPowerManager,
    PowerChopManager, PowerManager, TimeoutVpuManager, WindowRecord,
};
use crate::pvt::PvtStats;

/// Which power-management policy to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerKind {
    /// PowerChop (the paper's contribution).
    PowerChop,
    /// Fully-powered baseline.
    FullPower,
    /// Lowest-power baseline.
    MinimalPower,
    /// Hardware-only idleness timeout on the VPU (paper §V-E).
    TimeoutVpu {
        /// Idle cycles before gating off.
        timeout_cycles: u64,
    },
    /// Drowsy-cache baseline on the MLC (paper §VI related work):
    /// periodic low-retention-voltage mode instead of way-gating.
    DrowsyMlc {
        /// Cycles between global drowse events.
        period_cycles: u64,
    },
}

/// Everything needed to run one experiment.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Core design point.
    pub core: CoreConfig,
    /// BT-layer tuning.
    pub bt: BtConfig,
    /// Power-model parameters.
    pub power: PowerParams,
    /// PowerChop tuning (ignored by baselines).
    pub chop: ChopConfig,
    /// Stop after this many retired guest instructions (the SimPoint
    /// substitute — see `DESIGN.md`).
    pub max_instructions: u64,
    /// Record per-window phase-identification data (Fig. 8). Off by
    /// default; costs memory proportional to windows executed.
    pub record_windows: bool,
    /// Deterministic fault injection (stress testing). `None` runs clean.
    pub faults: Option<FaultConfig>,
}

impl RunConfig {
    /// A default configuration for the given design point. The
    /// instruction budget defaults to 12 M and can be overridden with the
    /// `POWERCHOP_BUDGET` environment variable.
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> Self {
        RunConfig {
            core: CoreConfig::for_kind(kind),
            bt: BtConfig::default(),
            power: PowerParams::for_kind(kind),
            chop: ChopConfig::default(),
            max_instructions: default_budget(),
            record_windows: false,
            faults: None,
        }
    }

    /// Validates the configuration, naming the first unusable field.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] when a field has a value the
    /// simulation cannot run under.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.max_instructions == 0 {
            return Err(SimError::InvalidConfig {
                field: "max_instructions",
                reason: "must be greater than zero",
            });
        }
        if let Some(f) = &self.faults {
            if !f.region_invalidate_fraction.is_finite()
                || !(0.0..=1.0).contains(&f.region_invalidate_fraction)
            {
                return Err(SimError::InvalidConfig {
                    field: "faults.region_invalidate_fraction",
                    reason: "must be a finite fraction in [0, 1]",
                });
            }
        }
        Ok(())
    }
}

/// The default per-run instruction budget, honouring `POWERCHOP_BUDGET`.
#[must_use]
pub fn default_budget() -> u64 {
    std::env::var("POWERCHOP_BUDGET")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(12_000_000)
}

/// The complete result of one run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Program name.
    pub name: String,
    /// Manager name (`"powerchop"`, `"full-power"`, ...).
    pub manager: &'static str,
    /// Design point the run used.
    pub core_kind: CoreKind,
    /// Guest instructions retired.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// Core event counters.
    pub stats: CoreStats,
    /// BT-layer counters.
    pub bt: BtStats,
    /// Energy and average power.
    pub energy: EnergyReport,
    /// Time each unit spent gated.
    pub gated: GatedCycles,
    /// Gating switches per unit.
    pub switches: SwitchCounts,
    /// Nucleus (CDE-interrupt) activity.
    pub nucleus: NucleusStats,
    /// PVT statistics (PowerChop runs only).
    pub pvt: Option<PvtStats>,
    /// CDE statistics (PowerChop runs only).
    pub cde: Option<CdeStats>,
    /// Per-window phase records, when requested.
    pub windows: Vec<WindowRecord>,
    /// Injected-fault counts (fault-injection runs only).
    pub faults: Option<FaultStats>,
    /// Graceful-degradation activity (managers with a guard only).
    pub degrade: Option<DegradeStats>,
}

impl RunReport {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Gating switches per million cycles for one unit (Fig. 11's metric).
    #[must_use]
    pub fn switches_per_mcycle(&self, switches: u64) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            switches as f64 * 1e6 / self.cycles as f64
        }
    }

    /// Relative slowdown versus a baseline run of the same program
    /// (positive = slower than baseline).
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.ipc() == 0.0 {
            0.0
        } else {
            1.0 - self.ipc() / baseline.ipc()
        }
    }

    /// Fractional reduction in average total power versus a baseline run.
    #[must_use]
    pub fn power_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.avg_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.avg_power_w / baseline.energy.avg_power_w
        }
    }

    /// Fractional reduction in average leakage power versus a baseline.
    #[must_use]
    pub fn leakage_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.energy.leakage_power_w == 0.0 {
            0.0
        } else {
            1.0 - self.energy.leakage_power_w / baseline.energy.leakage_power_w
        }
    }

    /// Fractional reduction in energy *for the same amount of work*
    /// versus a baseline run of the same program. Runs may retire
    /// different instruction counts under a shared budget, so energies
    /// are compared per instruction.
    #[must_use]
    pub fn energy_reduction_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.instructions == 0 || self.instructions == 0 || baseline.energy.total_j == 0.0 {
            return 0.0;
        }
        let epi = self.energy.total_j / self.instructions as f64;
        let epi_base = baseline.energy.total_j / baseline.instructions as f64;
        1.0 - epi / epi_base
    }
}

fn build_manager(kind: ManagerKind, cfg: &RunConfig) -> Box<dyn PowerManager> {
    match kind {
        ManagerKind::PowerChop => {
            Box::new(PowerChopManager::new(cfg.chop.clone(), cfg.record_windows))
        }
        ManagerKind::FullPower => Box::new(FullPowerManager),
        ManagerKind::MinimalPower => Box::new(MinimalPowerManager),
        ManagerKind::TimeoutVpu { timeout_cycles } => {
            Box::new(TimeoutVpuManager::new(timeout_cycles))
        }
        ManagerKind::DrowsyMlc { period_cycles } => Box::new(DrowsyMlcManager::new(period_cycles)),
    }
}

/// Runs `program` under the chosen power manager, optionally under a
/// deterministic fault schedule (`cfg.faults`).
///
/// # Errors
///
/// Returns [`SimError::Guest`] for guest-execution faults (a bug in the
/// guest program) and [`SimError::InvalidConfig`] for configurations the
/// simulation cannot run under. Injected faults never produce errors:
/// absorbing them — at worst by failing safe to full power — is the
/// degradation layer's contract.
pub fn run_program(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
) -> Result<RunReport, SimError> {
    cfg.validate()?;
    let mut core = CoreModel::new(&cfg.core);
    let mut ledger = EnergyLedger::new(cfg.power.clone());
    // The timeout baseline gates the power state only (vector ops wake
    // the unit on demand), so its controller must not drive the core's
    // unit models.
    let semantic = !matches!(kind, ManagerKind::TimeoutVpu { .. });
    let mut controller = GatingController::new(&cfg.core, semantic);
    let mut nucleus = Nucleus::new();
    let mut machine = Machine::new(program, cfg.bt);
    let mut manager = build_manager(kind, cfg);

    {
        let mut ctx = ManagerCtx {
            core: &mut core,
            ledger: &mut ledger,
            controller: &mut controller,
            nucleus: &mut nucleus,
        };
        manager.init(&mut ctx);
    }

    let mut schedule = cfg.faults.map(FaultSchedule::new);

    loop {
        if machine.retired() >= cfg.max_instructions {
            break;
        }
        match machine.step(&mut core)? {
            MachineEvent::Halted => break,
            MachineEvent::Translation { id, instructions } => {
                let mut ctx = ManagerCtx {
                    core: &mut core,
                    ledger: &mut ledger,
                    controller: &mut controller,
                    nucleus: &mut nucleus,
                };
                manager.on_translation(id, instructions, &mut ctx);
            }
            _ => {}
        }
        if let Some(sched) = schedule.as_mut() {
            let fcfg = *sched.config();
            while let Some(event) = sched.next_due(core.cycles()) {
                match event.kind {
                    FaultKind::AsyncInterrupt => {
                        // A device interrupt runs its handler in the
                        // nucleus, stealing cycles from the guest.
                        let cycles = jittered(event.payload, fcfg.interrupt_handler_cycles);
                        nucleus.raise(&mut core, cycles);
                    }
                    FaultKind::ContextSwitch => {
                        // The OS scheduled another process: the machine's
                        // per-process heat decays and the manager's
                        // window state dies with it.
                        machine.on_context_switch();
                        core.add_stall(fcfg.context_switch_cycles.max(1));
                        let mut ctx = ManagerCtx {
                            core: &mut core,
                            ledger: &mut ledger,
                            controller: &mut controller,
                            nucleus: &mut nucleus,
                        };
                        manager.on_fault(event.kind, event.payload, &mut ctx);
                    }
                    FaultKind::RegionCacheInvalidation => {
                        machine.invalidate_regions(fcfg.region_invalidate_fraction, event.payload);
                    }
                    FaultKind::PvtCorruption | FaultKind::PvtEviction => {
                        let mut ctx = ManagerCtx {
                            core: &mut core,
                            ledger: &mut ledger,
                            controller: &mut controller,
                            nucleus: &mut nucleus,
                        };
                        manager.on_fault(event.kind, event.payload, &mut ctx);
                    }
                    FaultKind::WorkloadPerturbation => {
                        // A co-runner (or DVFS excursion) steals the core
                        // for a while without touching any state.
                        core.add_stall(jittered(event.payload, fcfg.perturb_stall_cycles));
                    }
                }
            }
        }
    }
    controller.sync(&core, &mut ledger);

    Ok(RunReport {
        name: program.name().to_owned(),
        manager: manager.name(),
        core_kind: cfg.core.kind,
        instructions: machine.retired(),
        cycles: core.cycles(),
        stats: core.stats(),
        bt: machine.stats(),
        energy: ledger.report(),
        gated: controller.gated_cycles(),
        switches: controller.switches(),
        nucleus: nucleus.stats(),
        pvt: manager.pvt_stats(),
        cde: manager.cde_stats(),
        windows: manager.take_window_records(),
        faults: schedule.as_ref().map(FaultSchedule::stats),
        degrade: manager.degrade_stats(),
    })
}

/// A payload-jittered fault magnitude in `[mean/2, mean)`, never zero.
fn jittered(payload: u64, mean: u64) -> u64 {
    let mean = mean.max(1);
    let half = mean / 2;
    (half + payload % (mean - half).max(1)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{ProgramBuilder, Reg};

    /// A long predictable scalar loop: every managed unit is non-critical.
    fn idle_units_program(iters: i64) -> Program {
        let r0 = Reg::new(0).expect("register index in range");
        let r1 = Reg::new(1).expect("register index in range");
        let r2 = Reg::new(2).expect("register index in range");
        let mut b = ProgramBuilder::new("idle-units");
        b.li(r0, 0).li(r1, iters);
        let top = b.bind_label();
        b.addi(r2, r2, 3);
        b.xor(r2, r2, r0);
        b.addi(r0, r0, 1);
        b.blt(r0, r1, top);
        b.halt();
        b.build().expect("test program is well-formed")
    }

    fn cfg() -> RunConfig {
        let mut c = RunConfig::for_kind(CoreKind::Server);
        c.max_instructions = 2_000_000;
        c
    }

    #[test]
    fn powerchop_gates_noncritical_units_with_small_slowdown() {
        let p = idle_units_program(1_000_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).expect("test run succeeds");
        let chop = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");

        // Units gated for the bulk of execution.
        assert!(
            chop.gated.vpu_off_frac() > 0.8,
            "vpu: {}",
            chop.gated.vpu_off_frac()
        );
        assert!(
            chop.gated.bpu_off_frac() > 0.8,
            "bpu: {}",
            chop.gated.bpu_off_frac()
        );
        assert!(
            chop.gated.mlc_one_frac() > 0.8,
            "mlc: {}",
            chop.gated.mlc_one_frac()
        );

        // Big leakage reduction, tiny slowdown.
        assert!(chop.leakage_reduction_vs(&full) > 0.3);
        let slowdown = chop.slowdown_vs(&full);
        assert!(slowdown < 0.05, "slowdown {slowdown}");
        assert!(chop.power_reduction_vs(&full) > 0.0);
    }

    #[test]
    fn minimal_power_is_cheapest_but_can_be_slow() {
        let p = idle_units_program(500_000);
        let cfg = cfg();
        let full = run_program(&p, ManagerKind::FullPower, &cfg).expect("test run succeeds");
        let min = run_program(&p, ManagerKind::MinimalPower, &cfg).expect("test run succeeds");
        assert!(min.energy.leakage_power_w < full.energy.leakage_power_w * 0.7);
        assert_eq!(min.switches.total(), 3, "one switch per unit at init");
    }

    #[test]
    fn reports_are_internally_consistent() {
        let p = idle_units_program(200_000);
        let cfg = cfg();
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");
        assert_eq!(r.manager, "powerchop");
        assert_eq!(r.core_kind, CoreKind::Server);
        assert!(r.ipc() > 0.0);
        assert_eq!(r.gated.total, r.cycles);
        assert!(r.pvt.is_some() && r.cde.is_some());
        let pvt = r.pvt.unwrap();
        assert_eq!(pvt.lookups, pvt.hits + pvt.misses());
        assert_eq!(r.nucleus.interrupts, pvt.misses());
    }

    #[test]
    fn window_recording_captures_every_window() {
        let p = idle_units_program(500_000);
        let mut cfg = cfg();
        cfg.record_windows = true;
        let r = run_program(&p, ManagerKind::PowerChop, &cfg).expect("test run succeeds");
        let pvt = r.pvt.unwrap();
        assert_eq!(r.windows.len() as u64, pvt.lookups);
        assert!(r.windows.len() > 10);
    }

    #[test]
    fn budget_limits_run_length() {
        let p = idle_units_program(100_000_000);
        let mut c = cfg();
        c.max_instructions = 100_000;
        let r = run_program(&p, ManagerKind::FullPower, &c).expect("test run succeeds");
        assert!(r.instructions >= 100_000);
        assert!(r.instructions < 110_000);
    }

    #[test]
    fn invalid_configs_are_rejected_before_running() {
        let p = idle_units_program(1_000);
        let mut c = cfg();
        c.max_instructions = 0;
        let err = run_program(&p, ManagerKind::FullPower, &c).expect_err("zero budget");
        assert!(matches!(
            err,
            crate::SimError::InvalidConfig {
                field: "max_instructions",
                ..
            }
        ));

        let mut c = cfg();
        c.faults = Some(powerchop_faults::FaultConfig {
            region_invalidate_fraction: f64::NAN,
            ..powerchop_faults::FaultConfig::default_rates(1)
        });
        let err = run_program(&p, ManagerKind::PowerChop, &c).expect_err("NaN fraction");
        assert!(matches!(err, crate::SimError::InvalidConfig { .. }));
    }

    #[test]
    fn fault_injection_is_deterministic_and_counted() {
        let p = idle_units_program(400_000);
        let mut c = cfg();
        c.max_instructions = 800_000;
        c.faults = Some(powerchop_faults::FaultConfig::storm(0xFA11));
        let a = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        let b = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        let fa = a.faults.expect("fault stats present");
        assert_eq!(
            fa,
            b.faults.expect("fault stats present"),
            "same seed, same faults"
        );
        assert_eq!(a.cycles, b.cycles, "identical timing");
        assert_eq!(
            a.energy.total_j.to_bits(),
            b.energy.total_j.to_bits(),
            "identical energy"
        );
        assert!(fa.total() > 0, "storm rates must fire: {fa:?}");
        assert!(a.degrade.is_some(), "powerchop reports degradation stats");
    }

    #[test]
    fn faulted_runs_stay_close_to_clean_performance() {
        let p = idle_units_program(600_000);
        let mut c = cfg();
        c.max_instructions = 1_200_000;
        let clean = run_program(&p, ManagerKind::PowerChop, &c).expect("clean run succeeds");
        c.faults = Some(powerchop_faults::FaultConfig::default_rates(7));
        let faulted = run_program(&p, ManagerKind::PowerChop, &c).expect("faulted run succeeds");
        assert!(faulted.faults.expect("stats").total() > 0);
        let slowdown = faulted.slowdown_vs(&clean);
        assert!(slowdown < 0.10, "default fault rates cost {slowdown} IPC");
    }

    #[test]
    fn timeout_manager_runs_non_semantically() {
        let p = idle_units_program(300_000);
        let cfg = cfg();
        let r = run_program(
            &p,
            ManagerKind::TimeoutVpu {
                timeout_cycles: 10_000,
            },
            &cfg,
        )
        .unwrap();
        // No vector ops at all: the VPU gates off once and stays off.
        assert_eq!(r.switches.vpu, 1);
        assert!(r.gated.vpu_off_frac() > 0.9);
        assert!(r.pvt.is_none());
    }
}
