//! Graceful degradation for the criticality layer.
//!
//! PowerChop's decisions are only as good as the profiling data and the
//! PVT contents behind them, and both can go bad in a real deployment:
//! PVT entries take soft errors, context switches truncate profiling
//! windows, and workload perturbations make old decisions contradict new
//! behaviour. The [`DegradationGuard`] is the manager's safety net. Its
//! contract: **when the management layer cannot trust its data, it fails
//! safe to the full-power policy** — PowerChop degrades to the baseline
//! processor, never below it.
//!
//! Three mechanisms, layered:
//!
//! 1. **Anomaly detection.** Window profiles are sanity-checked before
//!    they reach the CDE, and PVT hits are cross-checked against the
//!    CDE's memory-backed store (the PVT is small exposed hardware; the
//!    store lives in ECC-protected memory). A corrupt hit fails safe to
//!    full power for the window and purges the entry.
//! 2. **Bounded re-profiling with exponential backoff.** A phase whose
//!    stored policy contradicts its observed behaviour is re-profiled —
//!    but each anomaly doubles the wait before re-profiling may begin,
//!    so a noisy phase cannot consume the CDE with profiling churn.
//! 3. **An oscillation watchdog.** A phase whose decided policy keeps
//!    flip-flopping (each flip pays gate-on/off overheads) is pinned to
//!    full power: the fail-safe costs leakage, never correctness.

use std::collections::HashMap;

use crate::cde::WindowProfile;
use crate::phase::PhaseSignature;
use crate::policy::GatingPolicy;

/// Cumulative degradation activity, surfaced in run reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DegradeStats {
    /// Data-integrity anomalies detected (corrupt profiles, PVT entries
    /// contradicting the CDE store, policies contradicting behaviour).
    pub anomalies: u64,
    /// Windows in which the guard forced the fail-safe full-power policy.
    pub failsafe_transitions: u64,
    /// Re-profiling rounds scheduled (with backoff) after anomalies.
    pub reprofiles_scheduled: u64,
    /// Phases permanently pinned to full power (backoff exhausted or
    /// oscillation watchdog tripped).
    pub phases_pinned: u64,
}

impl powerchop_telemetry::MetricSource for DegradeStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("degrade_anomalies_total", self.anomalies);
        reg.counter_set(
            "degrade_failsafe_transitions_total",
            self.failsafe_transitions,
        );
        reg.counter_set(
            "degrade_reprofiles_scheduled_total",
            self.reprofiles_scheduled,
        );
        reg.counter_set("degrade_phases_pinned_total", self.phases_pinned);
    }
}

/// What to do about a phase after an anomaly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailSafeAction {
    /// Fail safe now; re-profile once `defer_until` windows have passed.
    Reprofile {
        /// Global window index before which the phase must not re-enter
        /// profiling (it runs fail-safe full-power meanwhile).
        defer_until: u64,
    },
    /// The phase has exhausted its re-profiling budget: it is pinned to
    /// full power for the rest of the run.
    Pin,
}

#[derive(Debug, Clone, Copy)]
struct Backoff {
    attempts: u32,
    defer_until: u64,
}

/// The degradation guard: anomaly detection, backoff bookkeeping and the
/// oscillation watchdog for one [`crate::managers::PowerChopManager`].
#[derive(Debug, Clone)]
pub struct DegradationGuard {
    /// Re-profiling rounds allowed per phase before pinning.
    max_reprofiles: u32,
    /// Decided-policy changes tolerated per phase before pinning.
    flip_limit: u32,
    backoff: HashMap<PhaseSignature, Backoff>,
    last_policy: HashMap<PhaseSignature, (GatingPolicy, u32)>,
    pinned: HashMap<PhaseSignature, GatingPolicy>,
    stats: DegradeStats,
}

impl Default for DegradationGuard {
    fn default() -> Self {
        DegradationGuard::new(3, 6)
    }
}

impl DegradationGuard {
    /// Creates a guard allowing `max_reprofiles` anomaly-triggered
    /// re-profiling rounds and `flip_limit` decided-policy changes per
    /// phase before pinning it to full power. Zero values are clamped to
    /// one (a guard that pins on the first event is the strictest
    /// meaningful configuration).
    #[must_use]
    pub fn new(max_reprofiles: u32, flip_limit: u32) -> Self {
        DegradationGuard {
            max_reprofiles: max_reprofiles.max(1),
            flip_limit: flip_limit.max(1),
            backoff: HashMap::new(),
            last_policy: HashMap::new(),
            pinned: HashMap::new(),
            stats: DegradeStats::default(),
        }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> DegradeStats {
        self.stats
    }

    /// Whether a window profile is internally consistent. Counter deltas
    /// violating these invariants mean the measurement is garbage
    /// (counter overflow, a flush mid-window) and must not reach the CDE.
    #[must_use]
    pub fn profile_is_sane(profile: &WindowProfile) -> bool {
        profile.mlc_hits <= profile.mlc_accesses
            && profile.mispredicts <= profile.branches
            && profile.vec_ops <= profile.instructions
            && profile.branches <= profile.instructions
    }

    /// Records a garbage profile: fail safe for this window and drop the
    /// measurement.
    pub fn on_bad_profile(&mut self) {
        self.stats.anomalies += 1;
        self.stats.failsafe_transitions += 1;
    }

    /// Whether a stored policy contradicts the behaviour just observed
    /// under it: gating a unit the phase measurably leans on. Only
    /// starvation directions are flagged (a policy that over-powers is
    /// wasteful, not wrong), and only when the window is big enough for
    /// its densities to mean anything.
    #[must_use]
    pub fn policy_contradicts(policy: GatingPolicy, observed: &WindowProfile) -> bool {
        if observed.instructions < 1_000 {
            return false;
        }
        let insts = observed.instructions as f64;
        // Thresholds are deliberately far looser than the CDE's decision
        // thresholds: re-profiling is for decisions that are *clearly*
        // wrong, not marginally stale.
        let vec_density = observed.vec_ops as f64 / insts;
        if !policy.vpu_on && vec_density > 0.05 {
            return true;
        }
        let miss_density = (observed.mlc_accesses - observed.mlc_hits) as f64 / insts;
        policy.mlc == powerchop_uarch::cache::MlcWayState::One && miss_density > 0.05
    }

    /// The pinned fail-safe policy for `signature`, if the watchdog or
    /// backoff exhaustion has pinned it.
    #[must_use]
    pub fn pinned(&self, signature: PhaseSignature) -> Option<GatingPolicy> {
        self.pinned.get(&signature).copied()
    }

    /// Whether `signature` is still inside its post-anomaly backoff
    /// window at global window index `window_idx` (runs fail-safe until
    /// the backoff expires).
    #[must_use]
    pub fn deferred(&self, signature: PhaseSignature, window_idx: u64) -> bool {
        self.backoff
            .get(&signature)
            .is_some_and(|b| window_idx < b.defer_until)
    }

    /// Registers an anomaly against `signature` at global window index
    /// `window_idx` and decides its fate: re-profile after an
    /// exponentially-backed-off wait, or pin to full power once the
    /// budget is spent. The caller applies the fail-safe policy either
    /// way.
    pub fn on_anomaly(&mut self, signature: PhaseSignature, window_idx: u64) -> FailSafeAction {
        self.stats.anomalies += 1;
        self.stats.failsafe_transitions += 1;
        let entry = self.backoff.entry(signature).or_insert(Backoff {
            attempts: 0,
            defer_until: 0,
        });
        entry.attempts += 1;
        if entry.attempts > self.max_reprofiles {
            self.pinned.insert(signature, GatingPolicy::FULL);
            self.stats.phases_pinned += 1;
            return FailSafeAction::Pin;
        }
        // Exponential backoff: 2, 4, 8, ... windows of fail-safe full
        // power before the phase may be re-profiled.
        let wait = 1u64 << entry.attempts.min(20);
        entry.defer_until = window_idx.saturating_add(wait);
        self.stats.reprofiles_scheduled += 1;
        FailSafeAction::Reprofile {
            defer_until: entry.defer_until,
        }
    }

    /// Serializes the guard's per-phase bookkeeping (backoff, flip
    /// history, pins — each sorted by signature for a deterministic
    /// encoding) and statistics. The limits are config-derived.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        let mut backoff: Vec<(&PhaseSignature, &Backoff)> = self.backoff.iter().collect();
        backoff.sort_unstable_by_key(|(sig, _)| **sig);
        w.put_usize(backoff.len());
        for (sig, b) in backoff {
            sig.snapshot_to(w);
            w.put_u32(b.attempts);
            w.put_u64(b.defer_until);
        }
        let mut last: Vec<(&PhaseSignature, &(GatingPolicy, u32))> =
            self.last_policy.iter().collect();
        last.sort_unstable_by_key(|(sig, _)| **sig);
        w.put_usize(last.len());
        for (sig, (policy, flips)) in last {
            sig.snapshot_to(w);
            w.put_u8(policy.bits());
            w.put_u32(*flips);
        }
        let mut pinned: Vec<(&PhaseSignature, &GatingPolicy)> = self.pinned.iter().collect();
        pinned.sort_unstable_by_key(|(sig, _)| **sig);
        w.put_usize(pinned.len());
        for (sig, policy) in pinned {
            sig.snapshot_to(w);
            w.put_u8(policy.bits());
        }
        w.put_u64(self.stats.anomalies);
        w.put_u64(self.stats.failsafe_transitions);
        w.put_u64(self.stats.reprofiles_scheduled);
        w.put_u64(self.stats.phases_pinned);
    }

    /// Restores state written by [`DegradationGuard::snapshot_to`] in
    /// place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let backoff_count = r.take_usize()?;
        self.backoff.clear();
        for _ in 0..backoff_count {
            let sig = PhaseSignature::restore_from(r)?;
            let attempts = r.take_u32()?;
            let defer_until = r.take_u64()?;
            self.backoff.insert(
                sig,
                Backoff {
                    attempts,
                    defer_until,
                },
            );
        }
        let last_count = r.take_usize()?;
        self.last_policy.clear();
        for _ in 0..last_count {
            let sig = PhaseSignature::restore_from(r)?;
            let policy = GatingPolicy::from_bits(r.take_u8()?);
            let flips = r.take_u32()?;
            self.last_policy.insert(sig, (policy, flips));
        }
        let pinned_count = r.take_usize()?;
        self.pinned.clear();
        for _ in 0..pinned_count {
            let sig = PhaseSignature::restore_from(r)?;
            let policy = GatingPolicy::from_bits(r.take_u8()?);
            self.pinned.insert(sig, policy);
        }
        self.stats.anomalies = r.take_u64()?;
        self.stats.failsafe_transitions = r.take_u64()?;
        self.stats.reprofiles_scheduled = r.take_u64()?;
        self.stats.phases_pinned = r.take_u64()?;
        Ok(())
    }

    /// Oscillation watchdog: records that `policy` was decided (or
    /// re-decided) for `signature`. Returns the pinned fail-safe policy
    /// if the phase has now changed decided policies too many times.
    pub fn observe_decision(
        &mut self,
        signature: PhaseSignature,
        policy: GatingPolicy,
    ) -> Option<GatingPolicy> {
        let (last, flips) = self.last_policy.entry(signature).or_insert((policy, 0));
        if *last != policy {
            *last = policy;
            *flips += 1;
            if *flips >= self.flip_limit && !self.pinned.contains_key(&signature) {
                self.pinned.insert(signature, GatingPolicy::FULL);
                self.stats.phases_pinned += 1;
                return Some(GatingPolicy::FULL);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_bt::TranslationId;
    use powerchop_uarch::cache::MlcWayState;

    fn sig(i: u32) -> PhaseSignature {
        PhaseSignature::new(&[TranslationId(i)])
    }

    #[test]
    fn sane_profiles_pass_garbage_fails() {
        let good = WindowProfile {
            instructions: 10_000,
            vec_ops: 100,
            branches: 1_000,
            mispredicts: 10,
            mlc_accesses: 500,
            mlc_hits: 400,
        };
        assert!(DegradationGuard::profile_is_sane(&good));
        let impossible_hits = WindowProfile {
            mlc_hits: 600,
            mlc_accesses: 500,
            ..good
        };
        assert!(!DegradationGuard::profile_is_sane(&impossible_hits));
        let impossible_misp = WindowProfile {
            mispredicts: 2_000,
            ..good
        };
        assert!(!DegradationGuard::profile_is_sane(&impossible_misp));
        let impossible_vec = WindowProfile {
            vec_ops: 20_000,
            ..good
        };
        assert!(!DegradationGuard::profile_is_sane(&impossible_vec));
    }

    #[test]
    fn starved_units_are_contradictions_overpowered_are_not() {
        let vector_heavy = WindowProfile {
            instructions: 10_000,
            vec_ops: 2_000,
            ..WindowProfile::default()
        };
        assert!(DegradationGuard::policy_contradicts(
            GatingPolicy::MINIMAL,
            &vector_heavy
        ));
        assert!(!DegradationGuard::policy_contradicts(
            GatingPolicy::FULL,
            &vector_heavy
        ));
        // Tiny windows are never judged.
        let tiny = WindowProfile {
            instructions: 100,
            vec_ops: 90,
            ..WindowProfile::default()
        };
        assert!(!DegradationGuard::policy_contradicts(
            GatingPolicy::MINIMAL,
            &tiny
        ));
        // Thrashing a one-way MLC is a contradiction.
        let missy = WindowProfile {
            instructions: 10_000,
            mlc_accesses: 2_000,
            mlc_hits: 100,
            ..WindowProfile::default()
        };
        let one_way = GatingPolicy {
            mlc: MlcWayState::One,
            ..GatingPolicy::FULL
        };
        assert!(DegradationGuard::policy_contradicts(one_way, &missy));
    }

    #[test]
    fn backoff_doubles_then_pins() {
        let mut g = DegradationGuard::new(3, 10);
        let s = sig(1);
        let a1 = g.on_anomaly(s, 100);
        assert_eq!(a1, FailSafeAction::Reprofile { defer_until: 102 });
        assert!(g.deferred(s, 101));
        assert!(!g.deferred(s, 102));
        let a2 = g.on_anomaly(s, 200);
        assert_eq!(a2, FailSafeAction::Reprofile { defer_until: 204 });
        let a3 = g.on_anomaly(s, 300);
        assert_eq!(a3, FailSafeAction::Reprofile { defer_until: 308 });
        // Fourth anomaly exhausts the budget.
        assert_eq!(g.on_anomaly(s, 400), FailSafeAction::Pin);
        assert_eq!(g.pinned(s), Some(GatingPolicy::FULL));
        let stats = g.stats();
        assert_eq!(stats.anomalies, 4);
        assert_eq!(stats.failsafe_transitions, 4);
        assert_eq!(stats.reprofiles_scheduled, 3);
        assert_eq!(stats.phases_pinned, 1);
    }

    #[test]
    fn oscillating_decisions_get_pinned() {
        let mut g = DegradationGuard::new(3, 3);
        let s = sig(2);
        assert!(g.observe_decision(s, GatingPolicy::FULL).is_none());
        assert!(g.observe_decision(s, GatingPolicy::MINIMAL).is_none()); // flip 1
        assert!(g.observe_decision(s, GatingPolicy::FULL).is_none()); // flip 2
        let pinned = g.observe_decision(s, GatingPolicy::MINIMAL); // flip 3
        assert_eq!(pinned, Some(GatingPolicy::FULL));
        assert_eq!(g.pinned(s), Some(GatingPolicy::FULL));
        // A stable phase never trips the watchdog.
        let stable = sig(3);
        for _ in 0..100 {
            assert!(g.observe_decision(stable, GatingPolicy::MINIMAL).is_none());
        }
        assert_eq!(g.stats().phases_pinned, 1);
    }

    #[test]
    fn distinct_phases_have_independent_budgets() {
        let mut g = DegradationGuard::new(1, 10);
        assert!(matches!(
            g.on_anomaly(sig(10), 0),
            FailSafeAction::Reprofile { .. }
        ));
        assert!(matches!(
            g.on_anomaly(sig(11), 0),
            FailSafeAction::Reprofile { .. }
        ));
        assert_eq!(g.on_anomaly(sig(10), 50), FailSafeAction::Pin);
        assert!(g.pinned(sig(11)).is_none());
    }
}
