//! # PowerChop
//!
//! A full reproduction of *PowerChop: Identifying and Managing
//! Non-critical Units in Hybrid Processor Architectures* (Laurenzano,
//! Zhang, Chen, Tang, Mars — ISCA 2016) as a Rust library.
//!
//! PowerChop power-gates three large, stateful, high-activity units — the
//! vector processing unit (VPU), the large branch predictor (BPU), and the
//! middle-level cache (MLC) — whenever the executing application *phase*
//! does not need them for performance. It exploits the HW/SW co-design of
//! hybrid (binary-translation-based) processors: two small hardware
//! structures detect phases from the stream of executed translations, and
//! the BT software layer characterizes each phase's unit criticality and
//! picks gating policies.
//!
//! The crate provides the paper's system:
//!
//! - [`phase`] — phase signatures (top-N hottest translations per window),
//! - [`htb`] — the Hot Translation Buffer hardware structure,
//! - [`pvt`] — the Policy Vector Table hardware structure,
//! - [`cde`] — the software Criticality Decision Engine (Algorithm 1),
//! - [`policy`] — 4-bit gating policies (V/B/M bits),
//! - [`gating`] — the gating controller with the paper's transition costs,
//! - [`managers`] — PowerChop plus the full-power, minimal-power and
//!   VPU-timeout baselines,
//! - [`degrade`] — graceful degradation (anomaly detection, bounded
//!   re-profiling, oscillation watchdog): fail safe to full power,
//! - [`error`] — the typed [`SimError`] every run returns on failure,
//! - [`system`] — [`system::run_program`], the integrated simulation loop,
//!   including deterministic fault injection via [`powerchop_faults`],
//!   plus [`Simulation`]: chunked stepping with crash-safe, checksummed
//!   [`Simulation::snapshot`]/[`Simulation::restore`] checkpoints.
//!
//! # Quick start
//!
//! ```
//! use powerchop::{ManagerKind, RunConfig};
//! use powerchop_uarch::config::CoreKind;
//! use powerchop_workloads as workloads;
//!
//! # fn main() -> Result<(), powerchop::SimError> {
//! let benchmark = workloads::by_name("hmmer").expect("known benchmark");
//! let program = benchmark.program(workloads::Scale(0.02));
//! let mut cfg = RunConfig::for_kind(CoreKind::Server);
//! cfg.max_instructions = 500_000;
//!
//! let full = powerchop::run_program(&program, ManagerKind::FullPower, &cfg)?;
//! let chop = powerchop::run_program(&program, ManagerKind::PowerChop, &cfg)?;
//! println!(
//!     "leakage power: {:.2} W -> {:.2} W ({:.0}% less), slowdown {:.1}%",
//!     full.energy.leakage_power_w,
//!     chop.energy.leakage_power_w,
//!     100.0 * chop.leakage_reduction_vs(&full),
//!     100.0 * chop.slowdown_vs(&full),
//! );
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cde;
pub mod degrade;
pub mod error;
pub mod gating;
pub mod htb;
pub mod managers;
pub mod phase;
pub mod policy;
pub mod pvt;
pub mod system;

pub use cde::{Cde, Thresholds};
pub use degrade::{DegradationGuard, DegradeStats};
pub use error::SimError;
pub use gating::{GatedCycles, GatingController, SwitchCounts};
pub use htb::HotTranslationBuffer;
pub use managers::{ChopConfig, DrowsyMlcManager, PowerChopManager, PowerManager};
pub use phase::PhaseSignature;
pub use policy::GatingPolicy;
pub use pvt::PolicyVectorTable;
pub use system::{
    config_fingerprint, manager_kind_by_name, read_meta, run_program, run_program_traced,
    ManagerKind, RunConfig, RunReport, Simulation, SnapshotMeta,
};
// Execution-strategy knobs surfaced through [`RunConfig`], re-exported so
// front ends need not depend on the BT crate directly.
pub use powerchop_bt::{JitMode, JitReport};
