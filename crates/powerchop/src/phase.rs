//! Phase signatures (paper §IV-B1).
//!
//! PowerChop identifies application phases by the set of the **N hottest
//! translations** executed during a fixed-size *execution window* (a run
//! of consecutively executed translations). The paper's sensitivity
//! analysis picked `N = 4` and a window of 1000 translations.

use powerchop_bt::TranslationId;

/// Paper-default signature length (hottest translations per window).
pub const SIGNATURE_LEN: usize = 4;

/// Paper-default execution-window size, in executed translations.
pub const WINDOW_TRANSLATIONS: u32 = 1000;

/// A phase signature: up to [`SIGNATURE_LEN`] translation IDs, stored
/// sorted so that signatures compare structurally (the hardware compares
/// the 128-bit concatenation; order is canonicalized at construction).
///
/// Windows containing fewer unique translations than the signature length
/// produce shorter signatures; unused slots hold `u32::MAX`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhaseSignature {
    ids: [u32; SIGNATURE_LEN],
}

impl PhaseSignature {
    /// Builds a signature from the window's hottest translation IDs
    /// (order-insensitive; duplicates are an error in the HTB, not here).
    #[must_use]
    pub fn new(hottest: &[TranslationId]) -> Self {
        let mut ids = [u32::MAX; SIGNATURE_LEN];
        for (slot, id) in ids.iter_mut().zip(hottest.iter()) {
            *slot = id.0;
        }
        ids.sort_unstable();
        PhaseSignature { ids }
    }

    /// The translation IDs in the signature (ascending; excludes empty
    /// slots).
    pub fn ids(&self) -> impl Iterator<Item = TranslationId> + '_ {
        self.ids
            .iter()
            .filter(|id| **id != u32::MAX)
            .map(|id| TranslationId(*id))
    }

    /// Number of translation IDs present.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.iter().filter(|id| **id != u32::MAX).count()
    }

    /// A stable 64-bit key for telemetry (FNV-1a fold over the sorted
    /// IDs). Equal signatures always produce equal keys; collisions are
    /// astronomically unlikely at trace scale and only affect labels.
    #[must_use]
    pub fn key(&self) -> u64 {
        self.ids.iter().fold(0xcbf2_9ce4_8422_2325u64, |h, id| {
            (h ^ u64::from(*id)).wrapping_mul(0x0000_0100_0000_01b3)
        })
    }

    /// Whether the signature is empty (a window with no translations).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids[0] == u32::MAX
    }

    /// Storage bits of one PVT signature field (4 × 32-bit PCs = 128 b,
    /// paper Fig. 6b).
    #[must_use]
    pub fn storage_bits() -> u32 {
        (SIGNATURE_LEN * 32) as u32
    }

    /// Serializes the canonical 4-word form (sorted, `u32::MAX` padding),
    /// so round-tripping reproduces the exact same signature.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        for id in self.ids {
            w.put_u32(id);
        }
    }

    /// Reads a signature written by [`PhaseSignature::snapshot_to`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<Self, powerchop_checkpoint::CheckpointError> {
        let mut ids = [u32::MAX; SIGNATURE_LEN];
        for slot in &mut ids {
            *slot = r.take_u32()?;
        }
        // Re-canonicalize so corrupted-but-parseable inputs cannot smuggle
        // a non-canonical signature into equality comparisons.
        ids.sort_unstable();
        Ok(PhaseSignature { ids })
    }
}

impl std::fmt::Display for PhaseSignature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "<")?;
        let mut first = true;
        for id in self.ids() {
            if !first {
                write!(f, ",")?;
            }
            write!(f, "{id}")?;
            first = false;
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(ids: &[u32]) -> PhaseSignature {
        let v: Vec<TranslationId> = ids.iter().map(|i| TranslationId(*i)).collect();
        PhaseSignature::new(&v)
    }

    #[test]
    fn order_is_canonicalized() {
        assert_eq!(sig(&[3, 1, 2, 9]), sig(&[9, 2, 1, 3]));
    }

    #[test]
    fn distinct_sets_differ() {
        assert_ne!(sig(&[1, 2, 3, 4]), sig(&[1, 2, 3, 5]));
    }

    #[test]
    fn short_windows_make_short_signatures() {
        let s = sig(&[7]);
        assert_eq!(s.len(), 1);
        assert!(!s.is_empty());
        assert_eq!(s.ids().collect::<Vec<_>>(), vec![TranslationId(7)]);
        assert!(sig(&[]).is_empty());
    }

    #[test]
    fn display_lists_ids() {
        assert_eq!(sig(&[4, 2]).to_string(), "<t2,t4>");
    }

    #[test]
    fn paper_storage_size() {
        assert_eq!(PhaseSignature::storage_bits(), 128);
        assert_eq!(WINDOW_TRANSLATIONS, 1000);
        assert_eq!(SIGNATURE_LEN, 4);
    }
}
