//! The Criticality Decision Engine (CDE), paper §IV-C and Algorithm 1.
//!
//! The CDE is the software half of PowerChop, implemented inside the BT
//! subsystem and invoked through the nucleus on PVT misses. It profiles
//! newly-seen phases with hardware performance counters, scores unit
//! criticality, assigns gating policies, and manages the PVT's backing
//! store in memory (re-registering evicted phases on capacity misses).
//!
//! Criticality scoring (paper §IV-C2):
//!
//! - **VPU**: `Criticality_VPU = Phase_SIMD / Phase_TotInsn` from one
//!   profiling window; gate off below `Threshold_VPU`.
//! - **BPU**: `Criticality_BPU = MisPred_Small − MisPred_Large` from two
//!   profiling windows (one per predictor); gate off below
//!   `Threshold_BPU`.
//! - **MLC**: `Criticality_MLC = Phase_L2Hit / Phase_TotInsn` from one
//!   window; all ways above `Threshold_MLC1`, one way below
//!   `Threshold_MLC2`, half the ways otherwise.

use std::collections::HashMap;

use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::core::CoreStats;

use crate::phase::PhaseSignature;
use crate::policy::GatingPolicy;

/// Criticality thresholds (paper §V-A; the literal values are elided in
/// the paper text, so these defaults are this reproduction's calibration —
/// see `DESIGN.md`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Thresholds {
    /// `Threshold_VPU`: minimum SIMD-instruction fraction to keep the VPU
    /// powered.
    pub vpu: f64,
    /// `Threshold_BPU`: minimum misprediction-rate improvement (small −
    /// large) to keep the large predictor powered.
    pub bpu: f64,
    /// `Threshold_MLC1`: L2-hits-per-instruction above which all ways stay
    /// active.
    pub mlc_high: f64,
    /// `Threshold_MLC2`: L2-hits-per-instruction below which a single way
    /// suffices.
    pub mlc_low: f64,
}

impl Default for Thresholds {
    fn default() -> Self {
        Thresholds {
            vpu: 0.01,
            bpu: 0.005,
            mlc_high: 0.01,
            mlc_low: 0.001,
        }
    }
}

impl Thresholds {
    /// An aggressive, energy-minimizing preset (paper §V-A: "more
    /// aggressive policies using higher thresholds that target energy
    /// minimization"): units must earn substantially more performance to
    /// stay powered.
    #[must_use]
    pub fn aggressive() -> Self {
        Thresholds {
            vpu: 0.05,
            bpu: 0.02,
            mlc_high: 0.05,
            mlc_low: 0.005,
        }
    }
}

/// Performance-counter deltas measured over one profiling window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WindowProfile {
    /// Instructions committed in the window.
    pub instructions: u64,
    /// Vector operations (by architectural intent).
    pub vec_ops: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Branch mispredictions (under whichever predictor was active).
    pub mispredicts: u64,
    /// MLC (L2) demand accesses.
    pub mlc_accesses: u64,
    /// MLC (L2) hits.
    pub mlc_hits: u64,
}

impl WindowProfile {
    /// Computes the deltas between two cumulative core-stats snapshots.
    #[must_use]
    pub fn from_delta(now: &CoreStats, earlier: &CoreStats) -> Self {
        WindowProfile {
            instructions: now.instructions - earlier.instructions,
            vec_ops: now.vec_ops - earlier.vec_ops,
            branches: now.branches - earlier.branches,
            mispredicts: now.mispredicts - earlier.mispredicts,
            mlc_accesses: now.mlc_accesses - earlier.mlc_accesses,
            mlc_hits: now.mlc_hits - earlier.mlc_hits,
        }
    }

    /// Misprediction rate per branch (0 when the window had no branches).
    #[must_use]
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

/// What the CDE knows about one phase signature.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum PhaseRecord {
    /// Seen; discarding `left` more windows so gated-state history (cold
    /// caches, cold predictors) stops polluting the measurement — the
    /// paper's "insufficient information, keep collecting" arm of
    /// Algorithm 1.
    Warming {
        /// Warm-up windows still to discard.
        left: u32,
    },
    /// Warmed up, awaiting the first (large-BPU) profiling window.
    ProfilingLarge,
    /// First window measured; awaiting the small-BPU window.
    ProfilingSmall(WindowProfile),
    /// Fully characterized.
    Decided(GatingPolicy),
}

/// Cumulative CDE activity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CdeStats {
    /// Phases seen for the first time (compulsory PVT misses).
    pub new_phases: u64,
    /// Phases fully characterized and registered.
    pub decided: u64,
    /// Capacity misses: evicted phases re-registered from memory.
    pub reregistered: u64,
    /// Profiling windows discarded because the phase changed mid-profile.
    pub profiles_discarded: u64,
}

impl powerchop_telemetry::MetricSource for CdeStats {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("cde_new_phases_total", self.new_phases);
        reg.counter_set("cde_decided_total", self.decided);
        reg.counter_set("cde_reregistered_total", self.reregistered);
        reg.counter_set("cde_profiles_discarded_total", self.profiles_discarded);
    }
}

/// The Criticality Decision Engine.
#[derive(Debug, Clone)]
pub struct Cde {
    thresholds: Thresholds,
    warmup_windows: u32,
    max_profile_attempts: u32,
    extended_mlc: bool,
    phases: HashMap<PhaseSignature, PhaseRecord>,
    attempts: HashMap<PhaseSignature, u32>,
    stats: CdeStats,
}

impl Cde {
    /// Creates a CDE with the given thresholds, one warm-up window, and
    /// at most 4 profiling attempts per phase.
    #[must_use]
    pub fn new(thresholds: Thresholds) -> Self {
        Cde::with_config(thresholds, 1, 4)
    }

    /// Creates a CDE with explicit profiling parameters.
    ///
    /// `warmup_windows` windows are discarded before measurement so a
    /// previously-gated configuration does not pollute the profile.
    /// Phases whose profiling is interrupted `max_profile_attempts` times
    /// (they never persist long enough to measure) are conservatively
    /// decided fully-powered so they stop oscillating the units.
    #[must_use]
    pub fn with_config(
        thresholds: Thresholds,
        warmup_windows: u32,
        max_profile_attempts: u32,
    ) -> Self {
        Cde {
            thresholds,
            warmup_windows,
            max_profile_attempts: max_profile_attempts.max(1),
            extended_mlc: false,
            phases: HashMap::new(),
            attempts: HashMap::new(),
            stats: CdeStats::default(),
        }
    }

    /// Enables the 4-state MLC policy extension (paper §IV-B3: the 2-bit
    /// policy field has room for a fourth state): phases in the lower
    /// part of the Half band are given a quarter of the ways instead.
    #[must_use]
    pub fn with_extended_mlc_states(mut self, enabled: bool) -> Self {
        self.extended_mlc = enabled;
        self
    }

    /// The thresholds in use.
    #[must_use]
    pub fn thresholds(&self) -> Thresholds {
        self.thresholds
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CdeStats {
        self.stats
    }

    /// Number of phases the CDE has records for (its memory-backed store).
    #[must_use]
    pub fn known_phases(&self) -> usize {
        self.phases.len()
    }

    /// The record for `signature`, if any.
    #[must_use]
    pub fn record(&self, signature: PhaseSignature) -> Option<PhaseRecord> {
        self.phases.get(&signature).copied()
    }

    /// Degradation hook: erases everything known about `signature`, so
    /// its next occurrence re-enters profiling from scratch (including a
    /// fresh interrupted-attempt budget).
    pub fn forget(&mut self, signature: PhaseSignature) {
        self.phases.remove(&signature);
        self.attempts.remove(&signature);
    }

    /// Handles a PVT miss for `signature` (Algorithm 1): returns the
    /// decided policy if this is a capacity miss, or `None` if the phase
    /// needs (more) profiling — in which case the caller must arm a
    /// profiling window.
    ///
    /// `needs_warmup` says whether cache warm-up windows are required
    /// before measurement; phases with no MLC traffic in the missing
    /// window skip warm-up, shortening profiling so short phases can
    /// still complete it.
    pub fn on_pvt_miss(
        &mut self,
        signature: PhaseSignature,
        needs_warmup: bool,
    ) -> Option<GatingPolicy> {
        match self.phases.get(&signature) {
            Some(PhaseRecord::Decided(policy)) => {
                self.stats.reregistered += 1;
                Some(*policy)
            }
            Some(_) => None,
            None => {
                self.stats.new_phases += 1;
                self.phases
                    .insert(signature, self.fresh_profiling_record(needs_warmup));
                None
            }
        }
    }

    fn fresh_profiling_record(&self, needs_warmup: bool) -> PhaseRecord {
        if needs_warmup && self.warmup_windows > 0 {
            PhaseRecord::Warming {
                left: self.warmup_windows,
            }
        } else {
            PhaseRecord::ProfilingLarge
        }
    }

    /// Feeds the measurement of one completed profiling window for
    /// `signature`. Returns the decided policy once profiling completes
    /// (after the second window).
    pub fn on_profile_window(
        &mut self,
        signature: PhaseSignature,
        profile: WindowProfile,
    ) -> Option<GatingPolicy> {
        match self.phases.get(&signature) {
            Some(PhaseRecord::Warming { left }) if *left > 1 => {
                self.phases
                    .insert(signature, PhaseRecord::Warming { left: left - 1 });
                None
            }
            Some(PhaseRecord::Warming { .. }) => {
                self.phases.insert(signature, PhaseRecord::ProfilingLarge);
                None
            }
            Some(PhaseRecord::ProfilingLarge) => {
                self.phases
                    .insert(signature, PhaseRecord::ProfilingSmall(profile));
                None
            }
            Some(PhaseRecord::ProfilingSmall(first)) => {
                let policy = self.decide(first, &profile);
                self.phases.insert(signature, PhaseRecord::Decided(policy));
                self.stats.decided += 1;
                Some(policy)
            }
            _ => None,
        }
    }

    /// Notes that a profiling window was polluted by a phase change and
    /// its measurement discarded. The phase re-enters profiling from
    /// scratch the next time it recurs — unless it has been interrupted
    /// too many times (a transient/boundary phase), in which case it is
    /// decided as `fallback`: the policy that was in force when its
    /// profiling began, so boundary windows between stable phases stop
    /// toggling units.
    pub fn discard_profile(&mut self, signature: PhaseSignature, fallback: GatingPolicy) {
        self.stats.profiles_discarded += 1;
        if !matches!(
            self.phases.get(&signature),
            Some(
                PhaseRecord::Warming { .. }
                    | PhaseRecord::ProfilingLarge
                    | PhaseRecord::ProfilingSmall(_)
            )
        ) {
            return;
        }
        let attempts = self.attempts.entry(signature).or_insert(0);
        *attempts += 1;
        if *attempts >= self.max_profile_attempts {
            // If the first (large-BPU) window was measured, its VPU and
            // MLC criticalities are valid — decide from the partial data,
            // conservatively keeping the large BPU as `fallback` has it.
            let policy = match self.phases.get(&signature) {
                Some(PhaseRecord::ProfilingSmall(first)) => {
                    let partial = self.decide(first, first);
                    GatingPolicy {
                        bpu_on: fallback.bpu_on,
                        ..partial
                    }
                }
                _ => fallback,
            };
            self.phases.insert(signature, PhaseRecord::Decided(policy));
            self.stats.decided += 1;
        } else {
            self.phases
                .insert(signature, self.fresh_profiling_record(true));
        }
    }

    /// Serializes the CDE's memory-backed phase store: per-phase records
    /// and interrupted-attempt counts (both sorted by signature for a
    /// deterministic encoding) plus statistics. Thresholds and profiling
    /// parameters are config-derived and not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        let mut phases: Vec<(&PhaseSignature, &PhaseRecord)> = self.phases.iter().collect();
        phases.sort_unstable_by_key(|(sig, _)| **sig);
        w.put_usize(phases.len());
        for (sig, record) in phases {
            sig.snapshot_to(w);
            match record {
                PhaseRecord::Warming { left } => {
                    w.put_u8(0);
                    w.put_u32(*left);
                }
                PhaseRecord::ProfilingLarge => w.put_u8(1),
                PhaseRecord::ProfilingSmall(p) => {
                    w.put_u8(2);
                    for v in [
                        p.instructions,
                        p.vec_ops,
                        p.branches,
                        p.mispredicts,
                        p.mlc_accesses,
                        p.mlc_hits,
                    ] {
                        w.put_u64(v);
                    }
                }
                PhaseRecord::Decided(policy) => {
                    w.put_u8(3);
                    w.put_u8(policy.bits());
                }
            }
        }
        let mut attempts: Vec<(&PhaseSignature, &u32)> = self.attempts.iter().collect();
        attempts.sort_unstable_by_key(|(sig, _)| **sig);
        w.put_usize(attempts.len());
        for (sig, count) in attempts {
            sig.snapshot_to(w);
            w.put_u32(*count);
        }
        w.put_u64(self.stats.new_phases);
        w.put_u64(self.stats.decided);
        w.put_u64(self.stats.reregistered);
        w.put_u64(self.stats.profiles_discarded);
    }

    /// Restores state written by [`Cde::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or a phase record has an unknown tag.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        let phase_count = r.take_usize()?;
        self.phases.clear();
        for _ in 0..phase_count {
            let sig = PhaseSignature::restore_from(r)?;
            let record = match r.take_u8()? {
                0 => PhaseRecord::Warming {
                    left: r.take_u32()?,
                },
                1 => PhaseRecord::ProfilingLarge,
                2 => PhaseRecord::ProfilingSmall(WindowProfile {
                    instructions: r.take_u64()?,
                    vec_ops: r.take_u64()?,
                    branches: r.take_u64()?,
                    mispredicts: r.take_u64()?,
                    mlc_accesses: r.take_u64()?,
                    mlc_hits: r.take_u64()?,
                }),
                3 => PhaseRecord::Decided(GatingPolicy::from_bits(r.take_u8()?)),
                _ => {
                    return Err(powerchop_checkpoint::CheckpointError::Malformed {
                        what: "unknown CDE phase record tag",
                    })
                }
            };
            self.phases.insert(sig, record);
        }
        let attempt_count = r.take_usize()?;
        self.attempts.clear();
        for _ in 0..attempt_count {
            let sig = PhaseSignature::restore_from(r)?;
            let count = r.take_u32()?;
            self.attempts.insert(sig, count);
        }
        self.stats.new_phases = r.take_u64()?;
        self.stats.decided = r.take_u64()?;
        self.stats.reregistered = r.take_u64()?;
        self.stats.profiles_discarded = r.take_u64()?;
        Ok(())
    }

    /// Scores unit criticality and assigns the phase's gating policy
    /// (paper §IV-C2). `first` was measured with everything fully powered
    /// (large BPU); `second` with the small BPU active.
    #[must_use]
    pub fn decide(&self, first: &WindowProfile, second: &WindowProfile) -> GatingPolicy {
        let t = &self.thresholds;
        let insts = first.instructions.max(1) as f64;

        let criticality_vpu = first.vec_ops as f64 / insts;
        let vpu_on = criticality_vpu > t.vpu;

        let criticality_bpu = second.mispredict_rate() - first.mispredict_rate();
        let bpu_on = criticality_bpu > t.bpu;

        let criticality_mlc = first.mlc_hits as f64 / insts;
        let mlc = if criticality_mlc > t.mlc_high {
            MlcWayState::Full
        } else if criticality_mlc <= t.mlc_low {
            MlcWayState::One
        } else if self.extended_mlc && criticality_mlc <= (t.mlc_high * t.mlc_low).sqrt() {
            // Extended 4th state: the lower part of the intermediate
            // band keeps a quarter of the ways.
            MlcWayState::Quarter
        } else {
            MlcWayState::Half
        };

        GatingPolicy {
            vpu_on,
            bpu_on,
            mlc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_bt::TranslationId;

    fn sig(i: u32) -> PhaseSignature {
        PhaseSignature::new(&[TranslationId(i)])
    }

    fn profile(insts: u64, vec: u64, branches: u64, misp: u64, hits: u64) -> WindowProfile {
        WindowProfile {
            instructions: insts,
            vec_ops: vec,
            branches,
            mispredicts: misp,
            mlc_accesses: hits,
            mlc_hits: hits,
        }
    }

    #[test]
    fn vector_dense_phase_keeps_vpu() {
        let cde = Cde::new(Thresholds::default());
        let dense = profile(10_000, 3_000, 100, 1, 0);
        let p = cde.decide(&dense, &dense);
        assert!(p.vpu_on);
    }

    #[test]
    fn sparse_vector_phase_gates_vpu() {
        let cde = Cde::new(Thresholds::default());
        // 5 vector ops in 10k instructions: below the 1% threshold but
        // non-zero — exactly the case timeouts cannot exploit.
        let sparse = profile(10_000, 5, 100, 1, 0);
        assert!(!cde.decide(&sparse, &sparse).vpu_on);
    }

    #[test]
    fn bpu_gated_when_small_predictor_is_as_good() {
        let cde = Cde::new(Thresholds::default());
        let large = profile(10_000, 0, 1_000, 20, 0); // 2% mispredicts
        let small = profile(10_000, 0, 1_000, 24, 0); // 2.4%: only +0.4pp
        assert!(!cde.decide(&large, &small).bpu_on);
    }

    #[test]
    fn bpu_kept_when_large_predictor_wins() {
        let cde = Cde::new(Thresholds::default());
        let large = profile(10_000, 0, 1_000, 50, 0); // 5%
        let small = profile(10_000, 0, 1_000, 450, 0); // 45%
        assert!(cde.decide(&large, &small).bpu_on);
    }

    #[test]
    fn mlc_three_way_decision() {
        let cde = Cde::new(Thresholds::default());
        let hot = profile(10_000, 0, 0, 0, 1_000); // 10% hit density
        let warm = profile(10_000, 0, 0, 0, 50); // 0.5%
        let cold = profile(10_000, 0, 0, 0, 2); // 0.02%
        assert_eq!(cde.decide(&hot, &hot).mlc, MlcWayState::Full);
        assert_eq!(cde.decide(&warm, &warm).mlc, MlcWayState::Half);
        assert_eq!(cde.decide(&cold, &cold).mlc, MlcWayState::One);
    }

    #[test]
    fn extended_mlc_states_split_the_middle_band() {
        let base = Cde::new(Thresholds::default());
        let ext = Cde::new(Thresholds::default()).with_extended_mlc_states(true);
        // Low-middle band: 0.2% hit density (between 0.1% and sqrt(0.1%*1%)).
        let low_mid = profile(10_000, 0, 0, 0, 20);
        assert_eq!(base.decide(&low_mid, &low_mid).mlc, MlcWayState::Half);
        assert_eq!(ext.decide(&low_mid, &low_mid).mlc, MlcWayState::Quarter);
        // High-middle band: 0.5% stays Half in both.
        let high_mid = profile(10_000, 0, 0, 0, 50);
        assert_eq!(base.decide(&high_mid, &high_mid).mlc, MlcWayState::Half);
        assert_eq!(ext.decide(&high_mid, &high_mid).mlc, MlcWayState::Half);
        // Extremes unchanged.
        let hot = profile(10_000, 0, 0, 0, 1_000);
        assert_eq!(ext.decide(&hot, &hot).mlc, MlcWayState::Full);
        let cold = profile(10_000, 0, 0, 0, 2);
        assert_eq!(ext.decide(&cold, &cold).mlc, MlcWayState::One);
    }

    #[test]
    fn aggressive_thresholds_gate_more() {
        let default = Cde::new(Thresholds::default());
        let aggressive = Cde::new(Thresholds::aggressive());
        // 3% SIMD density: critical under defaults, gated aggressively.
        let w = profile(10_000, 300, 1_000, 100, 300);
        assert!(default.decide(&w, &w).vpu_on);
        assert!(!aggressive.decide(&w, &w).vpu_on);
    }

    #[test]
    fn algorithm1_new_phase_flow() {
        // No warm-up: the strict two-window flow of the paper.
        let mut cde = Cde::with_config(Thresholds::default(), 0, 4);
        // New phase: PVT miss starts profiling.
        assert!(cde.on_pvt_miss(sig(1), true).is_none());
        assert_eq!(cde.record(sig(1)), Some(PhaseRecord::ProfilingLarge));
        // First window measured: still no policy.
        let w = profile(10_000, 5_000, 100, 1, 500);
        assert!(cde.on_profile_window(sig(1), w).is_none());
        // Second window: decided.
        let policy = cde.on_profile_window(sig(1), w).expect("decided");
        assert!(policy.vpu_on);
        assert_eq!(cde.record(sig(1)), Some(PhaseRecord::Decided(policy)));
        assert_eq!(cde.stats().new_phases, 1);
        assert_eq!(cde.stats().decided, 1);
    }

    #[test]
    fn warmup_windows_are_discarded_before_measurement() {
        let mut cde = Cde::with_config(Thresholds::default(), 2, 4);
        cde.on_pvt_miss(sig(9), true);
        assert_eq!(cde.record(sig(9)), Some(PhaseRecord::Warming { left: 2 }));
        // Two cold windows with zero hits are discarded...
        let cold = profile(10_000, 0, 0, 0, 0);
        assert!(cde.on_profile_window(sig(9), cold).is_none());
        assert!(cde.on_profile_window(sig(9), cold).is_none());
        assert_eq!(cde.record(sig(9)), Some(PhaseRecord::ProfilingLarge));
        // ...then two warm windows decide the policy from warm data.
        let warm = profile(10_000, 0, 0, 0, 500);
        assert!(cde.on_profile_window(sig(9), warm).is_none());
        let policy = cde.on_profile_window(sig(9), warm).unwrap();
        assert_eq!(policy.mlc, MlcWayState::Full);
    }

    #[test]
    fn algorithm1_evicted_phase_reregisters() {
        let mut cde = Cde::with_config(Thresholds::default(), 0, 4);
        cde.on_pvt_miss(sig(2), true);
        let w = profile(10_000, 0, 0, 0, 0);
        cde.on_profile_window(sig(2), w);
        let policy = cde.on_profile_window(sig(2), w).unwrap();
        // Later, after PVT eviction, the same signature misses again:
        assert_eq!(cde.on_pvt_miss(sig(2), true), Some(policy));
        assert_eq!(cde.stats().reregistered, 1);
        assert_eq!(cde.stats().new_phases, 1, "not a new phase");
    }

    #[test]
    fn discarded_profiles_restart() {
        let mut cde = Cde::with_config(Thresholds::default(), 0, 4);
        cde.on_pvt_miss(sig(3), true);
        cde.on_profile_window(sig(3), profile(10, 0, 0, 0, 0));
        assert!(matches!(
            cde.record(sig(3)),
            Some(PhaseRecord::ProfilingSmall(_))
        ));
        cde.discard_profile(sig(3), GatingPolicy::FULL);
        assert_eq!(cde.record(sig(3)), Some(PhaseRecord::ProfilingLarge));
        assert_eq!(cde.stats().profiles_discarded, 1);
    }

    #[test]
    fn transient_phases_are_capped_to_full_power() {
        let mut cde = Cde::with_config(Thresholds::default(), 0, 3);
        cde.on_pvt_miss(sig(4), true);
        for _ in 0..3 {
            cde.discard_profile(sig(4), GatingPolicy::MINIMAL);
        }
        assert_eq!(
            cde.record(sig(4)),
            Some(PhaseRecord::Decided(GatingPolicy::MINIMAL))
        );
        assert_eq!(cde.stats().profiles_discarded, 3);
        // Further misses re-register the fallback policy.
        assert_eq!(cde.on_pvt_miss(sig(4), true), Some(GatingPolicy::MINIMAL));
    }

    #[test]
    fn zero_branch_windows_do_not_divide_by_zero() {
        let w = profile(100, 0, 0, 0, 0);
        assert_eq!(w.mispredict_rate(), 0.0);
        let cde = Cde::new(Thresholds::default());
        let p = cde.decide(&w, &w);
        assert!(!p.bpu_on);
    }
}
