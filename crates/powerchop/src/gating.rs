//! The gating controller: applies policies to the core with full cost
//! accounting (paper §IV-D).
//!
//! Every policy transition charges:
//!
//! - the sleep-signal distribution stall (50/30/20 cycles for
//!   MLC/VPU/BPU),
//! - the VPU register-file save/restore (500 cycles per switch),
//! - MLC dirty-line writebacks when ways are deactivated,
//! - the Eq. 1 transition energy via the [`EnergyLedger`].
//!
//! It also integrates how long each unit spent in each power state, which
//! Figures 9, 10 and 16 report.

use powerchop_power::{EnergyLedger, ManagedUnit, UnitStates};
use powerchop_telemetry::{Tracer, Unit};
use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::config::{CoreConfig, GatingPenalties};
use powerchop_uarch::core::CoreModel;

use crate::policy::GatingPolicy;

/// Per-unit counts of power-gating state switches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SwitchCounts {
    /// VPU gate switches.
    pub vpu: u64,
    /// BPU gate switches.
    pub bpu: u64,
    /// MLC way-state switches.
    pub mlc: u64,
}

impl SwitchCounts {
    /// Total switches across units.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.vpu + self.bpu + self.mlc
    }
}

/// Cycles each unit spent in each power state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct GatedCycles {
    /// Cycles with the VPU gated off.
    pub vpu_off: u64,
    /// Cycles with the large BPU gated off.
    pub bpu_off: u64,
    /// Cycles with half the MLC ways active.
    pub mlc_half: u64,
    /// Cycles with a quarter of the MLC ways active (extended states).
    pub mlc_quarter: u64,
    /// Cycles with one MLC way active.
    pub mlc_one: u64,
    /// Total cycles accounted.
    pub total: u64,
}

impl GatedCycles {
    fn frac(n: u64, d: u64) -> f64 {
        if d == 0 {
            0.0
        } else {
            n as f64 / d as f64
        }
    }

    /// Fraction of cycles with the VPU gated off.
    #[must_use]
    pub fn vpu_off_frac(&self) -> f64 {
        Self::frac(self.vpu_off, self.total)
    }

    /// Fraction of cycles with the large BPU gated off.
    #[must_use]
    pub fn bpu_off_frac(&self) -> f64 {
        Self::frac(self.bpu_off, self.total)
    }

    /// Fraction of cycles with the MLC way-gated (any non-full state).
    #[must_use]
    pub fn mlc_gated_frac(&self) -> f64 {
        Self::frac(self.mlc_half + self.mlc_quarter + self.mlc_one, self.total)
    }

    /// Fraction of cycles with exactly one MLC way active.
    #[must_use]
    pub fn mlc_one_frac(&self) -> f64 {
        Self::frac(self.mlc_one, self.total)
    }
}

/// Applies gating policies to a core model with full cost accounting.
///
/// `semantic` controls whether state changes are pushed into the core's
/// unit models. PowerChop runs semantically (a gated VPU really is off and
/// vector code is BT-emulated). The timeout baseline gates the *power*
/// state only — a vector op arriving while gated wakes the unit, so
/// execution is always native — and therefore uses a non-semantic
/// controller (paper §V-E).
#[derive(Debug, Clone)]
pub struct GatingController {
    penalties: GatingPenalties,
    current: GatingPolicy,
    semantic: bool,
    switches: SwitchCounts,
    gated: GatedCycles,
    last_cycles: u64,
}

impl GatingController {
    /// Creates a controller starting from the fully-powered policy.
    #[must_use]
    pub fn new(cfg: &CoreConfig, semantic: bool) -> Self {
        GatingController {
            penalties: cfg.gating,
            current: GatingPolicy::FULL,
            semantic,
            switches: SwitchCounts::default(),
            gated: GatedCycles::default(),
            last_cycles: 0,
        }
    }

    /// The policy currently in force.
    #[must_use]
    pub fn current(&self) -> GatingPolicy {
        self.current
    }

    /// Whether this controller drives the core's unit models.
    #[must_use]
    pub fn is_semantic(&self) -> bool {
        self.semantic
    }

    /// The unit power states implied by the current policy (for energy
    /// accounting).
    #[must_use]
    pub fn states(&self, mlc_total_ways: u32) -> UnitStates {
        UnitStates {
            vpu_active: self.current.vpu_on,
            bpu_large_active: self.current.bpu_on,
            mlc_state: self.current.mlc,
            mlc_total_ways,
            mlc_awake_fraction: None,
        }
    }

    /// Per-unit switch counts so far.
    #[must_use]
    pub fn switches(&self) -> SwitchCounts {
        self.switches
    }

    /// Per-state cycle integrals so far (call [`GatingController::sync`]
    /// first for up-to-date totals).
    #[must_use]
    pub fn gated_cycles(&self) -> GatedCycles {
        self.gated
    }

    /// Brings time-in-state and energy accounting up to the present. Must
    /// be called (and is called by [`GatingController::apply`]) before any
    /// state change, and once at the end of a run.
    pub fn sync(&mut self, core: &CoreModel, ledger: &mut EnergyLedger) {
        let now = core.cycles();
        let dt = now.saturating_sub(self.last_cycles);
        if !self.current.vpu_on {
            self.gated.vpu_off += dt;
        }
        if !self.current.bpu_on {
            self.gated.bpu_off += dt;
        }
        match self.current.mlc {
            MlcWayState::Half => self.gated.mlc_half += dt,
            MlcWayState::Quarter => self.gated.mlc_quarter += dt,
            MlcWayState::One => self.gated.mlc_one += dt,
            MlcWayState::Full => {}
        }
        self.gated.total += dt;
        ledger.account(now, &core.stats(), self.states(core_mlc_ways(core)));
        self.last_cycles = now;
    }

    /// Transitions to `policy`, charging all switch costs. A no-op when
    /// the policy already matches.
    ///
    /// Each per-unit switch is reported to `trace` as a gate-on/off event
    /// carrying the stall cycles charged for the transition; pass
    /// [`Tracer::disabled`] when telemetry is off.
    pub fn apply(
        &mut self,
        policy: GatingPolicy,
        core: &mut CoreModel,
        ledger: &mut EnergyLedger,
        trace: &mut Tracer,
    ) {
        if policy == self.current {
            return;
        }
        self.sync(core, ledger);

        if policy.vpu_on != self.current.vpu_on {
            self.switches.vpu += 1;
            ledger.charge_transition(ManagedUnit::Vpu);
            core.add_stall(u64::from(self.penalties.vpu_switch));
            // The VPU register file is explicitly saved (gate-off) or
            // restored (gate-on) to memory (paper §IV-D: 500 cycles).
            core.add_stall(u64::from(self.penalties.vpu_save_restore));
            if self.semantic {
                core.set_vpu_active(policy.vpu_on);
            }
            let stall =
                u64::from(self.penalties.vpu_switch) + u64::from(self.penalties.vpu_save_restore);
            trace.with(|r| r.on_gate(core.cycles(), Unit::Vpu, !policy.vpu_on, stall));
        }
        if policy.bpu_on != self.current.bpu_on {
            self.switches.bpu += 1;
            ledger.charge_transition(ManagedUnit::Bpu);
            core.add_stall(u64::from(self.penalties.bpu_switch));
            if self.semantic {
                core.set_bpu_large_active(policy.bpu_on);
            }
            let stall = u64::from(self.penalties.bpu_switch);
            trace.with(|r| r.on_gate(core.cycles(), Unit::Bpu, !policy.bpu_on, stall));
        }
        if policy.mlc != self.current.mlc {
            self.switches.mlc += 1;
            ledger.charge_transition(ManagedUnit::Mlc);
            core.add_stall(u64::from(self.penalties.mlc_switch));
            let mut stall = u64::from(self.penalties.mlc_switch);
            if self.semantic {
                let flushed = core.set_mlc_way_state(policy.mlc);
                let writeback = flushed * u64::from(self.penalties.mlc_writeback_per_line);
                core.add_stall(writeback);
                stall += writeback;
            }
            // The MLC counts as "gated" in any non-full way state; the
            // recorder drops non-edges (e.g. Half -> One stays gated).
            trace.with(|r| {
                r.on_gate(
                    core.cycles(),
                    Unit::Mlc,
                    policy.mlc != MlcWayState::Full,
                    stall,
                )
            });
        }
        self.current = policy;
    }

    /// Serializes the mutable controller state: the policy in force, the
    /// switch counts, the per-state cycle integrals and the accounting
    /// watermark. Penalties and the semantic flag are config-derived and
    /// not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_u8(self.current.bits());
        w.put_u64(self.switches.vpu);
        w.put_u64(self.switches.bpu);
        w.put_u64(self.switches.mlc);
        w.put_u64(self.gated.vpu_off);
        w.put_u64(self.gated.bpu_off);
        w.put_u64(self.gated.mlc_half);
        w.put_u64(self.gated.mlc_quarter);
        w.put_u64(self.gated.mlc_one);
        w.put_u64(self.gated.total);
        w.put_u64(self.last_cycles);
    }

    /// Restores state written by [`GatingController::snapshot_to`] in
    /// place.
    ///
    /// The caller is responsible for restoring the core model itself;
    /// this only restores the controller's bookkeeping (the core's unit
    /// states are part of the core snapshot).
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        self.current = GatingPolicy::from_bits(r.take_u8()?);
        self.switches.vpu = r.take_u64()?;
        self.switches.bpu = r.take_u64()?;
        self.switches.mlc = r.take_u64()?;
        self.gated.vpu_off = r.take_u64()?;
        self.gated.bpu_off = r.take_u64()?;
        self.gated.mlc_half = r.take_u64()?;
        self.gated.mlc_quarter = r.take_u64()?;
        self.gated.mlc_one = r.take_u64()?;
        self.gated.total = r.take_u64()?;
        self.last_cycles = r.take_u64()?;
        Ok(())
    }
}

fn core_mlc_ways(_core: &CoreModel) -> u32 {
    // All design points in Table I use 8-way MLCs; the ledger only needs
    // the ratio implied by the way state.
    8
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_power::PowerParams;
    use powerchop_uarch::config::CoreConfig;

    fn setup() -> (CoreModel, EnergyLedger, GatingController) {
        let cfg = CoreConfig::server();
        (
            CoreModel::new(&cfg),
            EnergyLedger::new(PowerParams::server()),
            GatingController::new(&cfg, true),
        )
    }

    #[test]
    fn applying_same_policy_is_free() {
        let (mut core, mut ledger, mut ctl) = setup();
        ctl.apply(
            GatingPolicy::FULL,
            &mut core,
            &mut ledger,
            &mut Tracer::disabled(),
        );
        assert_eq!(core.cycles(), 0);
        assert_eq!(ctl.switches().total(), 0);
    }

    #[test]
    fn vpu_switch_costs_switch_plus_save_restore() {
        let (mut core, mut ledger, mut ctl) = setup();
        let policy = GatingPolicy {
            vpu_on: false,
            ..GatingPolicy::FULL
        };
        ctl.apply(policy, &mut core, &mut ledger, &mut Tracer::disabled());
        assert_eq!(core.cycles(), 30 + 500);
        assert_eq!(ctl.switches().vpu, 1);
        assert!(!core.vpu_active(), "semantic controller drives the core");
        assert_eq!(ledger.report().transitions, 1);
    }

    #[test]
    fn bpu_and_mlc_switch_costs() {
        let (mut core, mut ledger, mut ctl) = setup();
        let policy = GatingPolicy {
            bpu_on: false,
            ..GatingPolicy::FULL
        };
        ctl.apply(policy, &mut core, &mut ledger, &mut Tracer::disabled());
        assert_eq!(core.cycles(), 20);
        let policy = GatingPolicy {
            bpu_on: false,
            mlc: MlcWayState::One,
            ..policy
        };
        ctl.apply(policy, &mut core, &mut ledger, &mut Tracer::disabled());
        assert_eq!(core.cycles(), 20 + 50); // empty MLC: no writebacks
        assert_eq!(
            ctl.switches(),
            SwitchCounts {
                vpu: 0,
                bpu: 1,
                mlc: 1
            }
        );
    }

    #[test]
    fn non_semantic_controller_leaves_core_alone() {
        let cfg = CoreConfig::server();
        let mut core = CoreModel::new(&cfg);
        let mut ledger = EnergyLedger::new(PowerParams::server());
        let mut ctl = GatingController::new(&cfg, false);
        ctl.apply(
            GatingPolicy::MINIMAL,
            &mut core,
            &mut ledger,
            &mut Tracer::disabled(),
        );
        assert!(core.vpu_active());
        assert!(core.bpu_large_active());
        assert_eq!(core.mlc_way_state(), MlcWayState::Full);
        // But costs and accounting still apply.
        assert!(core.cycles() > 0);
        assert_eq!(ctl.switches().total(), 3);
    }

    #[test]
    fn gated_time_integrates_between_syncs() {
        let (mut core, mut ledger, mut ctl) = setup();
        ctl.apply(
            GatingPolicy {
                vpu_on: false,
                ..GatingPolicy::FULL
            },
            &mut core,
            &mut ledger,
            &mut Tracer::disabled(),
        );
        let start = core.cycles(); // transition stall cycles (530)
        core.add_stall(1000);
        ctl.sync(&core, &mut ledger);
        let g = ctl.gated_cycles();
        // Transition cycles are attributed to the new (gated) state.
        assert_eq!(g.vpu_off, start + 1000);
        assert_eq!(g.bpu_off, 0);
        assert_eq!(g.total, start + 1000);
        assert!((g.vpu_off_frac() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mlc_states_integrate_separately() {
        let (mut core, mut ledger, mut ctl) = setup();
        ctl.apply(
            GatingPolicy {
                mlc: MlcWayState::Half,
                ..GatingPolicy::FULL
            },
            &mut core,
            &mut ledger,
            &mut Tracer::disabled(),
        );
        core.add_stall(100);
        ctl.apply(
            GatingPolicy {
                mlc: MlcWayState::One,
                ..GatingPolicy::FULL
            },
            &mut core,
            &mut ledger,
            &mut Tracer::disabled(),
        );
        core.add_stall(200);
        ctl.sync(&core, &mut ledger);
        let g = ctl.gated_cycles();
        // Each interval includes its leading 50-cycle switch stall.
        assert_eq!(g.mlc_half, 150);
        assert_eq!(g.mlc_one, 250);
        assert!((g.mlc_gated_frac() - 1.0).abs() < 1e-12);
    }
}
