//! Property-based tests for PowerChop's hardware structures and policies.

use proptest::prelude::*;

use powerchop::cde::{Cde, Thresholds, WindowProfile};
use powerchop::htb::HotTranslationBuffer;
use powerchop::managers::ManagedSet;
use powerchop::phase::PhaseSignature;
use powerchop::policy::GatingPolicy;
use powerchop::pvt::PolicyVectorTable;
use powerchop_bt::TranslationId;
use powerchop_uarch::cache::MlcWayState;

fn arb_policy() -> impl Strategy<Value = GatingPolicy> {
    (any::<bool>(), any::<bool>(), 0u8..3).prop_map(|(vpu_on, bpu_on, m)| GatingPolicy {
        vpu_on,
        bpu_on,
        mlc: match m {
            0 => MlcWayState::One,
            1 => MlcWayState::Half,
            _ => MlcWayState::Full,
        },
    })
}

proptest! {
    /// The phase signature is a pure function of the *set* of recorded
    /// (id, weight) events — recording order never matters.
    #[test]
    fn htb_signature_is_order_independent(
        mut events in prop::collection::vec((0u32..64, 1u64..100), 1..300),
        seed in any::<u64>(),
    ) {
        let mut a = HotTranslationBuffer::paper_default();
        for (id, n) in &events {
            a.record(TranslationId(*id), *n);
        }
        // Deterministic shuffle from the seed.
        let mut s = seed;
        for i in (1..events.len()).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            events.swap(i, (s % (i as u64 + 1)) as usize);
        }
        let mut b = HotTranslationBuffer::paper_default();
        for (id, n) in &events {
            b.record(TranslationId(*id), *n);
        }
        prop_assert_eq!(a.signature(), b.signature());
        prop_assert_eq!(a.count_vector(), b.count_vector());
    }

    /// The signature always contains the single hottest translation.
    #[test]
    fn htb_signature_contains_the_hottest(
        ids in prop::collection::vec(0u32..32, 1..100),
    ) {
        let mut htb = HotTranslationBuffer::paper_default();
        for id in &ids {
            htb.record(TranslationId(*id), 10);
        }
        htb.record(TranslationId(999), 1_000_000);
        let sig_ids: Vec<_> = htb.signature().ids().collect();
        prop_assert!(sig_ids.contains(&TranslationId(999)));
    }

    /// PVT: after any interleaving of registers and lookups, a lookup of
    /// the most recently registered signature always hits with the
    /// registered policy (the clock sweep cannot evict the entry that was
    /// just referenced).
    #[test]
    fn pvt_most_recent_registration_hits(
        ops in prop::collection::vec((0u32..40, arb_policy()), 1..200),
    ) {
        let mut pvt = PolicyVectorTable::paper_default();
        for (id, policy) in ops {
            let sig = PhaseSignature::new(&[TranslationId(id)]);
            pvt.register(sig, policy);
            prop_assert_eq!(pvt.lookup(sig), Some(policy));
            prop_assert!(pvt.len() <= 16);
        }
    }

    /// PVT stats: lookups = hits + misses, and evictions only happen at
    /// capacity.
    #[test]
    fn pvt_stats_consistent(ids in prop::collection::vec(0u32..64, 1..300)) {
        let mut pvt = PolicyVectorTable::new(8);
        for id in ids {
            let sig = PhaseSignature::new(&[TranslationId(id)]);
            if pvt.lookup(sig).is_none() {
                pvt.register(sig, GatingPolicy::FULL);
            }
            let s = pvt.stats();
            prop_assert_eq!(s.lookups, s.hits + s.misses());
        }
    }

    /// The CDE decision is monotone in the VPU threshold: raising the
    /// threshold can only gate the VPU off, never turn it on.
    #[test]
    fn cde_vpu_decision_monotone_in_threshold(
        vec_ops in 0u64..2000,
        insts in 2000u64..20000,
        lo in 0.0f64..0.05,
        hi_delta in 0.0f64..0.3,
    ) {
        let make = |thr: f64| {
            let cde = Cde::new(Thresholds { vpu: thr, ..Thresholds::default() });
            let w = WindowProfile { instructions: insts, vec_ops, ..WindowProfile::default() };
            cde.decide(&w, &w).vpu_on
        };
        let low = make(lo);
        let high = make(lo + hi_delta);
        prop_assert!(low || !high, "raising the threshold cannot enable the VPU");
    }

    /// Masking is idempotent and only ever powers units *on*.
    #[test]
    fn managed_set_mask_is_idempotent_and_monotone(
        policy in arb_policy(),
        vpu in any::<bool>(), bpu in any::<bool>(), mlc in any::<bool>(),
    ) {
        let set = ManagedSet { vpu, bpu, mlc };
        let masked = set.mask(policy);
        prop_assert_eq!(set.mask(masked), masked, "mask must be idempotent");
        prop_assert!(masked.vpu_on || !policy.vpu_on);
        prop_assert!(masked.bpu_on || !policy.bpu_on);
        prop_assert!(masked.mlc >= policy.mlc);
        // Unmanaged units are forced fully on.
        if !vpu { prop_assert!(masked.vpu_on); }
        if !bpu { prop_assert!(masked.bpu_on); }
        if !mlc { prop_assert_eq!(masked.mlc, MlcWayState::Full); }
    }

    /// Policy bit encodings are stable and unique across all 12 states.
    #[test]
    fn policy_bits_roundtrip(policy in arb_policy()) {
        let bits = policy.bits();
        prop_assert!(bits < 16);
        // Re-derive fields from the encoding.
        prop_assert_eq!(bits & 1 != 0, policy.vpu_on);
        prop_assert_eq!(bits & 2 != 0, policy.bpu_on);
        prop_assert_eq!(bits >> 2, policy.mlc.policy_bits());
    }
}
