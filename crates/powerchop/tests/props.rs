//! Property-based tests for PowerChop's hardware structures and policies,
//! driven by the workspace's seeded harness (`powerchop_faults::check`).

use powerchop::cde::{Cde, Thresholds, WindowProfile};
use powerchop::htb::HotTranslationBuffer;
use powerchop::managers::ManagedSet;
use powerchop::phase::PhaseSignature;
use powerchop::policy::GatingPolicy;
use powerchop::pvt::PolicyVectorTable;
use powerchop_bt::TranslationId;
use powerchop_faults::check::cases;
use powerchop_faults::SimRng;
use powerchop_uarch::cache::MlcWayState;

fn arb_policy(rng: &mut SimRng) -> GatingPolicy {
    GatingPolicy {
        vpu_on: rng.gen_bool(0.5),
        bpu_on: rng.gen_bool(0.5),
        mlc: match rng.gen_range(3) {
            0 => MlcWayState::One,
            1 => MlcWayState::Half,
            _ => MlcWayState::Full,
        },
    }
}

/// The phase signature is a pure function of the *set* of recorded
/// (id, weight) events — recording order never matters.
#[test]
fn htb_signature_is_order_independent() {
    cases("htb order independence", 256, |rng| {
        let n = 1 + rng.gen_range(300) as usize;
        let mut events: Vec<(u32, u64)> = (0..n)
            .map(|_| (rng.gen_range(64) as u32, 1 + rng.gen_range(99)))
            .collect();
        let mut a = HotTranslationBuffer::paper_default();
        for (id, w) in &events {
            a.record(TranslationId(*id), *w);
        }
        // Deterministic shuffle.
        for i in (1..events.len()).rev() {
            let j = rng.gen_range(i as u64 + 1) as usize;
            events.swap(i, j);
        }
        let mut b = HotTranslationBuffer::paper_default();
        for (id, w) in &events {
            b.record(TranslationId(*id), *w);
        }
        assert_eq!(a.signature(), b.signature());
        assert_eq!(a.count_vector(), b.count_vector());
    });
}

/// The signature always contains the single hottest translation.
#[test]
fn htb_signature_contains_the_hottest() {
    cases("htb hottest present", 256, |rng| {
        let mut htb = HotTranslationBuffer::paper_default();
        for _ in 0..1 + rng.gen_range(100) {
            htb.record(TranslationId(rng.gen_range(32) as u32), 10);
        }
        htb.record(TranslationId(999), 1_000_000);
        let sig_ids: Vec<_> = htb.signature().ids().collect();
        assert!(sig_ids.contains(&TranslationId(999)));
    });
}

/// HTB under an eviction/flush storm: arbitrary interleavings of records,
/// flushes and degenerate weights never panic, never exceed capacity, and
/// signatures never exceed the configured length.
#[test]
fn htb_survives_record_flush_storms() {
    cases("htb storm", 200, |rng| {
        let capacity = rng.gen_range(20) as usize; // includes 0: clamped
        let sig_len = rng.gen_range(8) as usize; // includes 0: clamped
        let mut htb = HotTranslationBuffer::new(capacity, sig_len);
        for _ in 0..500 {
            match rng.gen_range(10) {
                0 => htb.flush(),
                1 => {
                    htb.record(TranslationId(rng.next_u64() as u32), u64::MAX);
                }
                _ => {
                    htb.record(TranslationId(rng.gen_range(64) as u32), rng.gen_range(1000));
                }
            }
            assert!(htb.len() <= capacity.max(1));
            assert!(htb.signature().ids().count() <= sig_len.max(1));
        }
    });
}

/// PVT: after any interleaving of registers and lookups, a lookup of the
/// most recently registered signature always hits with the registered
/// policy (the clock sweep cannot evict the entry that was just
/// referenced), and occupancy never exceeds capacity.
#[test]
fn pvt_most_recent_registration_hits() {
    cases("pvt recent registration hits", 256, |rng| {
        let mut pvt = PolicyVectorTable::paper_default();
        for _ in 0..1 + rng.gen_range(200) {
            let sig = PhaseSignature::new(&[TranslationId(rng.gen_range(40) as u32)]);
            let policy = arb_policy(rng);
            pvt.register(sig, policy);
            assert_eq!(pvt.lookup(sig), Some(policy));
            assert!(pvt.len() <= 16);
        }
    });
}

/// PVT stats: lookups = hits + misses, and they stay consistent across
/// any interleaving of lookups and registrations.
#[test]
fn pvt_stats_consistent() {
    cases("pvt stats consistent", 256, |rng| {
        let mut pvt = PolicyVectorTable::new(8);
        for _ in 0..1 + rng.gen_range(300) {
            let sig = PhaseSignature::new(&[TranslationId(rng.gen_range(64) as u32)]);
            if pvt.lookup(sig).is_none() {
                pvt.register(sig, GatingPolicy::FULL);
            }
            let s = pvt.stats();
            assert_eq!(s.lookups, s.hits + s.misses());
        }
    });
}

/// PVT under an injected corruption/eviction storm: interleaving normal
/// traffic with `corrupt_entry`, `evict_forced` and `invalidate` never
/// panics, never exceeds capacity, and every surviving entry still
/// decodes to a valid policy (lookups return *some* 4-bit-decodable
/// policy, the fail-safe layer's precondition).
#[test]
fn pvt_survives_corruption_and_eviction_storms() {
    cases("pvt corruption storm", 200, |rng| {
        let capacity = rng.gen_range(20) as usize; // includes 0: clamped
        let mut pvt = PolicyVectorTable::new(capacity);
        for _ in 0..400 {
            let sig = PhaseSignature::new(&[TranslationId(rng.gen_range(32) as u32)]);
            match rng.gen_range(10) {
                0 | 1 => {
                    pvt.corrupt_entry(rng.next_u64());
                }
                2 => {
                    pvt.evict_forced(rng.next_u64());
                }
                3 => {
                    pvt.invalidate(sig);
                }
                4..=6 => {
                    pvt.register(sig, arb_policy(rng));
                }
                _ => {
                    if let Some(policy) = pvt.lookup(sig) {
                        assert_eq!(GatingPolicy::from_bits(policy.bits()), policy);
                    }
                }
            }
            assert!(pvt.len() <= capacity.max(1));
        }
    });
}

/// The CDE decision is monotone in the VPU threshold: raising the
/// threshold can only gate the VPU off, never turn it on.
#[test]
fn cde_vpu_decision_monotone_in_threshold() {
    cases("cde monotone threshold", 256, |rng| {
        let vec_ops = rng.gen_range(2000);
        let insts = 2000 + rng.gen_range(18_000);
        let lo = rng.gen_f64() * 0.05;
        let hi = lo + rng.gen_f64() * 0.3;
        let make = |thr: f64| {
            let cde = Cde::new(Thresholds {
                vpu: thr,
                ..Thresholds::default()
            });
            let w = WindowProfile {
                instructions: insts,
                vec_ops,
                ..WindowProfile::default()
            };
            cde.decide(&w, &w).vpu_on
        };
        assert!(
            make(lo) || !make(hi),
            "raising the threshold cannot enable the VPU"
        );
    });
}

/// Masking is idempotent and only ever powers units *on*.
#[test]
fn managed_set_mask_is_idempotent_and_monotone() {
    cases("managed set mask", 256, |rng| {
        let policy = arb_policy(rng);
        let (vpu, bpu, mlc) = (rng.gen_bool(0.5), rng.gen_bool(0.5), rng.gen_bool(0.5));
        let set = ManagedSet { vpu, bpu, mlc };
        let masked = set.mask(policy);
        assert_eq!(set.mask(masked), masked, "mask must be idempotent");
        assert!(masked.vpu_on || !policy.vpu_on);
        assert!(masked.bpu_on || !policy.bpu_on);
        assert!(masked.mlc >= policy.mlc);
        // Unmanaged units are forced fully on.
        if !vpu {
            assert!(masked.vpu_on);
        }
        if !bpu {
            assert!(masked.bpu_on);
        }
        if !mlc {
            assert_eq!(masked.mlc, MlcWayState::Full);
        }
    });
}

/// Policy bit encodings are stable, unique, and roundtrip through
/// `from_bits` for every reachable policy.
#[test]
fn policy_bits_roundtrip() {
    cases("policy bits roundtrip", 256, |rng| {
        let policy = arb_policy(rng);
        let bits = policy.bits();
        assert!(bits < 16);
        assert_eq!(bits & 1 != 0, policy.vpu_on);
        assert_eq!(bits & 2 != 0, policy.bpu_on);
        assert_eq!(bits >> 2, policy.mlc.policy_bits());
        assert_eq!(GatingPolicy::from_bits(bits), policy);
    });
}
