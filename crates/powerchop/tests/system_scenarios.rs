//! Scenario tests for the integrated system: capacity misses, extended
//! MLC states, threshold presets, and drowsy operation, driven through
//! synthetic guest programs built for each scenario.

use powerchop::cde::Thresholds;
use powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_gisa::{Program, ProgramBuilder, Reg};
use powerchop_uarch::config::CoreKind;

fn r(i: u8) -> Reg {
    Reg::new(i).unwrap()
}

/// A program with `phases` distinct compute loops, repeated `reps` times:
/// each loop is its own code region, so each contributes distinct phase
/// signatures.
fn many_phase_program(phases: usize, iters_per_phase: i64, reps: i64) -> Program {
    let mut b = ProgramBuilder::new("many-phases");
    b.li(r(28), 0).li(r(29), reps);
    let outer = b.bind_label();
    for p in 0..phases {
        b.li(r(1), 0).li(r(2), iters_per_phase);
        let top = b.bind_label();
        // A distinct body per phase so the code regions differ.
        for k in 0..(2 + p % 3) {
            b.addi(r(3 + (k as u8 % 4)), r(3), (p as i64) + 1);
        }
        b.addi(r(1), r(1), 1);
        b.blt(r(1), r(2), top);
    }
    b.addi(r(28), r(28), 1);
    b.blt(r(28), r(29), outer);
    b.halt();
    b.build().unwrap()
}

fn cfg() -> RunConfig {
    let mut c = RunConfig::for_kind(CoreKind::Server);
    c.max_instructions = 20_000_000;
    c
}

#[test]
fn pvt_capacity_misses_reregister_from_the_cde_store() {
    // More distinct phases than the 16-entry PVT holds: recurrences after
    // eviction must re-register from the CDE's backing store, not
    // re-profile.
    let program = many_phase_program(24, 30_000, 3);
    let report = run_program(&program, ManagerKind::PowerChop, &cfg()).unwrap();
    let pvt = report.pvt.unwrap();
    let cde = report.cde.unwrap();
    assert!(pvt.evictions > 0, "24 phases must overflow a 16-entry PVT");
    assert!(
        cde.reregistered > 0,
        "evicted phases must re-register on recurrence"
    );
    assert!(
        cde.new_phases >= 24,
        "each distinct loop is (at least) one phase: {}",
        cde.new_phases
    );
    // Re-registration must not re-profile: decided count stays bounded by
    // the phases seen.
    assert!(cde.decided <= cde.new_phases);
}

#[test]
fn extended_mlc_states_run_end_to_end() {
    let b = powerchop_workloads::by_name("gems").unwrap();
    let program = b.program(powerchop_workloads::Scale(0.2));
    let mut c = cfg();
    c.max_instructions = 2_000_000;
    c.chop.extended_mlc_states = true;
    let report = run_program(&program, ManagerKind::PowerChop, &c).unwrap();
    // The run completes and accounts quarter-state time separately.
    assert_eq!(
        report.gated.total, report.cycles,
        "quarter cycles must be part of the accounted total"
    );
}

#[test]
fn aggressive_thresholds_save_at_least_as_much_leakage() {
    let b = powerchop_workloads::by_name("sphinx3").unwrap();
    let program = b.program(powerchop_workloads::Scale(0.2));
    let mut c = cfg();
    c.max_instructions = 2_500_000;
    let full = run_program(&program, ManagerKind::FullPower, &c).unwrap();
    let default = run_program(&program, ManagerKind::PowerChop, &c).unwrap();
    c.chop.thresholds = Thresholds::aggressive();
    let aggressive = run_program(&program, ManagerKind::PowerChop, &c).unwrap();
    assert!(
        aggressive.leakage_reduction_vs(&full) >= default.leakage_reduction_vs(&full) - 0.02,
        "aggressive thresholds must not save (noticeably) less leakage: {} vs {}",
        aggressive.leakage_reduction_vs(&full),
        default.leakage_reduction_vs(&full)
    );
}

#[test]
fn superblocks_reduce_dispatches_without_changing_results() {
    let b = powerchop_workloads::by_name("msn").unwrap();
    let program = b.program(powerchop_workloads::Scale(0.15));
    let mut c = RunConfig::for_kind(CoreKind::Mobile);
    c.max_instructions = 1_500_000;
    let plain = run_program(&program, ManagerKind::FullPower, &c).unwrap();
    c.bt.superblocks = true;
    let sb = run_program(&program, ManagerKind::FullPower, &c).unwrap();
    assert!(sb.bt.translation_executions <= plain.bt.translation_executions);
    // Same instructions retired under the same budget semantics.
    assert_eq!(sb.instructions, plain.instructions);
}

#[test]
fn drowsy_period_sweep_is_monotone_in_wakes() {
    let b = powerchop_workloads::by_name("hmmer").unwrap();
    let program = b.program(powerchop_workloads::Scale(0.15));
    let mut c = cfg();
    c.max_instructions = 1_500_000;
    let frequent = run_program(
        &program,
        ManagerKind::DrowsyMlc {
            period_cycles: 1_000,
        },
        &c,
    )
    .unwrap();
    let rare = run_program(
        &program,
        ManagerKind::DrowsyMlc {
            period_cycles: 100_000,
        },
        &c,
    )
    .unwrap();
    assert!(
        frequent.stats.mlc_drowsy_wakes > rare.stats.mlc_drowsy_wakes,
        "drowsing more often must wake more lines: {} vs {}",
        frequent.stats.mlc_drowsy_wakes,
        rare.stats.mlc_drowsy_wakes
    );
    // And save at least as much MLC leakage power.
    let rate = |r: &powerchop::RunReport| r.energy.leakage.mlc / r.energy.seconds;
    assert!(rate(&frequent) <= rate(&rare) + 1e-9);
}

#[test]
fn tiny_windows_still_work() {
    // Degenerate-but-legal configuration: window of 10 translations,
    // signature length 1, PVT of 2 entries.
    let b = powerchop_workloads::by_name("hmmer").unwrap();
    let program = b.program(powerchop_workloads::Scale(0.1));
    let mut c = cfg();
    c.max_instructions = 800_000;
    c.chop.window_translations = 10;
    c.chop.signature_len = 1;
    c.chop.pvt_entries = 2;
    c.chop.htb_entries = 4;
    let report = run_program(&program, ManagerKind::PowerChop, &c).unwrap();
    let pvt = report.pvt.unwrap();
    assert!(pvt.lookups > 1_000, "tiny windows mean many lookups");
    assert!(report.ipc() > 0.0);
}
