//! The supervised batch runner: a crash-safe work queue for benchmark
//! sweeps.
//!
//! Each benchmark run gets a wall-clock deadline (enforced by a watchdog
//! thread that cancels the run cooperatively), panic isolation via
//! `catch_unwind`, retries with exponential backoff up to a capped
//! attempt count, and periodic crash-safe checkpoints. Progress is
//! journaled to an append-only file, so killing the sweep at any point —
//! including `kill -9` — and re-invoking it continues where it left off:
//! completed benchmarks are skipped outright and the in-flight one
//! resumes from its last checkpoint instead of starting over.
//!
//! The sweep fans out over `--jobs` slots on the `powerchop-exec` pool.
//! Each slot owns its benchmark end-to-end: its watchdog is spawned at
//! that run's own start (a slot never inherits wall-clock time another
//! slot has already burned), journal appends are mutex-serialized around
//! the fsync, and console output is buffered per run so slots don't
//! interleave lines. The final summary folds rows in benchmark order, so
//! it is identical at every thread count.
//!
//! See `DESIGN.md` for the supervisor state machine.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use powerchop::{RunReport, Simulation};
use powerchop_telemetry::Tracer;

use crate::args::{RunOpts, SuperviseOpts};
use crate::commands::{
    per_bench_path, prepare_run, tracer_for, write_atomic, write_telemetry, PreparedRun, STEP_CHUNK,
};
use crate::CliError;

/// The journal file name inside the supervisor state directory.
pub const JOURNAL_FILE: &str = "journal.log";

/// Terminal states a benchmark can reach (recorded in the journal; a
/// bench with a terminal record is never re-run).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Terminal {
    /// Completed successfully.
    Done,
    /// Killed by the per-run deadline on its final attempt.
    DeadlineKilled,
    /// Panicked or errored on its final attempt.
    Failed,
}

/// How one attempt of one benchmark ended. A completed attempt carries
/// the tracer back so the supervisor can export the flight recording
/// and fold a metric summary into the journal.
enum AttemptOutcome {
    Completed(Box<RunReport>, Box<Tracer>),
    DeadlineKilled,
    Panicked(String),
    Errored(String),
}

/// Parses the journal into each benchmark's terminal state (if any).
/// Lines that don't parse are ignored: the journal is append-only and a
/// `kill -9` can truncate its final line mid-write.
fn read_journal(path: &Path) -> HashMap<String, Terminal> {
    let mut out = HashMap::new();
    let Ok(text) = std::fs::read_to_string(path) else {
        return out;
    };
    for line in text.lines() {
        let mut parts = line.split_whitespace();
        let (Some(verb), Some(bench)) = (parts.next(), parts.next()) else {
            continue;
        };
        let terminal = match verb {
            "done" => Terminal::Done,
            "deadline" => Terminal::DeadlineKilled,
            "failed" => Terminal::Failed,
            _ => continue,
        };
        out.insert(bench.to_owned(), terminal);
    }
    out
}

/// Appends one line to the journal and syncs it to disk, so a `kill -9`
/// immediately afterwards cannot lose the record.
fn journal_append(path: &Path, line: &str) -> Result<(), CliError> {
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)?;
    writeln!(f, "{line}")?;
    f.sync_all()?;
    Ok(())
}

/// State shared by every parallel supervision slot.
struct Shared<'a> {
    /// Journal path.
    journal: &'a Path,
    /// Serializes journal appends (open + write + fsync as one unit).
    journal_lock: Mutex<()>,
    /// Serializes per-run console blocks so slots never interleave lines.
    stdout_lock: Mutex<()>,
}

impl Shared<'_> {
    /// Mutex-serialized [`journal_append`]. A poisoned lock (another slot
    /// panicked mid-append) still appends: losing journal records would
    /// repeat completed work on the next invocation.
    fn append(&self, line: &str) -> Result<(), CliError> {
        let _guard = self
            .journal_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        journal_append(self.journal, line)
    }

    /// Prints one run's buffered console block atomically.
    fn print_block(&self, block: &str) {
        let _guard = self
            .stdout_lock
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        print!("{block}");
        let _ = std::io::stdout().flush();
    }
}

/// The compact per-run metric summary folded into the journal after a
/// traced run completes (`None` when the run was untraced). Its verb,
/// `metrics`, is not a terminal state, so the journal parser skips it.
fn metric_summary(name: &str, tracer: &Tracer) -> Option<String> {
    let m = tracer.recorder()?.metrics();
    Some(format!(
        "metrics {name} events {} dropped {} phase {} gating {} cde {} faults {}",
        m.counter("telemetry_events_recorded_total"),
        m.counter("telemetry_events_dropped_total"),
        m.counter("events_phase_total"),
        m.counter("events_gating_total"),
        m.counter("events_cde_total"),
        m.counter("events_faults_total"),
    ))
}

/// Extracts a displayable message from a caught panic payload.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_owned()
    }
}

/// Runs one attempt of one benchmark: resume from the checkpoint when a
/// usable one exists, step in chunks, checkpoint periodically, and bail
/// out (persisting progress) when the watchdog raises `cancel`. Returns
/// the outcome plus whether the attempt resumed from a checkpoint.
fn run_attempt(
    pr: &PreparedRun,
    opts: &RunOpts,
    ckpt_path: &Path,
    checkpoint_every: u64,
    cancel: &AtomicBool,
) -> (AttemptOutcome, bool) {
    let mut resumed = false;
    let result = catch_unwind(AssertUnwindSafe(|| -> Result<AttemptOutcome, CliError> {
        let mut sim = match std::fs::read(ckpt_path) {
            Ok(bytes) => match Simulation::restore(&pr.program, pr.kind, &pr.cfg, &bytes) {
                Ok(sim) => {
                    resumed = true;
                    sim
                }
                Err(e) => {
                    // A corrupt or stale checkpoint is a typed error,
                    // never a panic: report it and start from scratch.
                    eprintln!(
                        "warning: checkpoint {} unusable ({e}); starting fresh",
                        ckpt_path.display()
                    );
                    Simulation::new(&pr.program, pr.kind, &pr.cfg)?
                }
            },
            Err(_) => Simulation::new(&pr.program, pr.kind, &pr.cfg)?,
        };
        // Telemetry is not checkpointed: a resumed attempt's recording
        // simply starts at the resume point.
        if opts.wants_telemetry() {
            sim.attach_tracer(tracer_for(opts));
        }
        let mut last_checkpoint = sim.retired();
        while !sim.is_done() {
            if cancel.load(Ordering::Relaxed) {
                // Persist progress before dying so the retry (or the
                // next invocation) resumes instead of starting over.
                write_atomic(ckpt_path, &sim.snapshot(&pr.meta))?;
                return Ok(AttemptOutcome::DeadlineKilled);
            }
            sim.step_chunk(STEP_CHUNK)?;
            if sim.retired().saturating_sub(last_checkpoint) >= checkpoint_every {
                last_checkpoint = sim.retired();
                write_atomic(ckpt_path, &sim.snapshot(&pr.meta))?;
            }
        }
        let (report, tracer) = sim.into_report_with_telemetry();
        Ok(AttemptOutcome::Completed(
            Box::new(report),
            Box::new(tracer),
        ))
    }));
    let outcome = match result {
        Ok(Ok(outcome)) => outcome,
        Ok(Err(e)) => AttemptOutcome::Errored(e.to_string()),
        Err(payload) => AttemptOutcome::Panicked(panic_message(payload)),
    };
    (outcome, resumed)
}

/// Per-benchmark bookkeeping for the final summary.
struct Row {
    name: String,
    terminal: Terminal,
    attempts: u32,
    resumed: bool,
    skipped: bool,
}

/// Supervises one benchmark in one pool slot: skip when already terminal,
/// otherwise up to `max_attempts` watchdogged attempts with retries and
/// backoff. The watchdog is spawned here, at each attempt's own start, so
/// a slot's deadline covers only its own run — never wall-clock time
/// other slots or earlier runs already burned. Console output is buffered
/// and printed as one block per finished run.
#[allow(clippy::too_many_arguments)]
fn supervise_slot(
    name: &str,
    index: usize,
    total: usize,
    opts: &RunOpts,
    sup: &SuperviseOpts,
    dir: &Path,
    shared: &Shared<'_>,
    already: Option<Terminal>,
) -> Result<Row, CliError> {
    let ordinal = format!("[{}/{}]", index + 1, total);
    let mut block = String::new();
    if let Some(terminal) = already {
        let _ = writeln!(
            block,
            "{ordinal} {name}: already {} — skipped",
            verb(terminal)
        );
        shared.print_block(&block);
        return Ok(Row {
            name: name.to_owned(),
            terminal,
            attempts: 0,
            resumed: false,
            skipped: true,
        });
    }
    let pr = prepare_run(
        name,
        opts.manager,
        opts.budget,
        opts.scale,
        opts.seed,
        opts.storm,
    )?;
    let ckpt_path = dir.join(format!("{name}.ckpt"));
    let max_attempts = sup.max_attempts.max(1);
    let mut row = Row {
        name: name.to_owned(),
        terminal: Terminal::Failed,
        attempts: 0,
        resumed: false,
        skipped: false,
    };
    for attempt in 1..=max_attempts {
        row.attempts = attempt;
        shared.append(&format!("start {name} attempt {attempt}"))?;

        // Watchdog: trips the cancel flag once the deadline passes;
        // released early through the channel when the attempt ends.
        // A zero deadline is already expired, so it trips here
        // rather than racing the watchdog thread's first schedule.
        let cancel = Arc::new(AtomicBool::new(sup.deadline_ms == 0));
        let watchdog_flag = Arc::clone(&cancel);
        let (release, released) = mpsc::channel::<()>();
        let deadline = Duration::from_millis(sup.deadline_ms);
        let watchdog = std::thread::spawn(move || {
            if released.recv_timeout(deadline).is_err() {
                watchdog_flag.store(true, Ordering::Relaxed);
            }
        });
        let started = Instant::now();
        let (outcome, resumed) = run_attempt(&pr, opts, &ckpt_path, sup.checkpoint_every, &cancel);
        let _ = release.send(());
        let _ = watchdog.join();
        row.resumed = row.resumed || resumed;
        let elapsed = started.elapsed();

        match outcome {
            AttemptOutcome::Completed(report, tracer) => {
                shared.append(&format!(
                    "done {name} attempts {attempt} instructions {} cycles {} energy_bits {}",
                    report.instructions,
                    report.cycles,
                    report.energy.total_j.to_bits()
                ))?;
                if let Some(line) = metric_summary(name, &tracer) {
                    shared.append(&line)?;
                }
                write_telemetry(
                    &tracer,
                    opts.trace
                        .as_deref()
                        .map(|p| per_bench_path(p, name))
                        .as_deref(),
                    opts.metrics
                        .as_deref()
                        .map(|p| per_bench_path(p, name))
                        .as_deref(),
                )?;
                let _ = std::fs::remove_file(&ckpt_path);
                let _ =
                    writeln!(
                    block,
                    "{ordinal} {name}: completed in {:.1}s ({} instructions, attempt {attempt}{})",
                    elapsed.as_secs_f64(),
                    report.instructions,
                    if resumed { ", resumed from checkpoint" } else { "" },
                );
                row.terminal = Terminal::Done;
                break;
            }
            AttemptOutcome::DeadlineKilled => {
                let _ = writeln!(
                    block,
                    "{ordinal} {name}: deadline exceeded after {:.1}s (attempt {attempt}/{max_attempts})",
                    elapsed.as_secs_f64()
                );
                row.terminal = Terminal::DeadlineKilled;
                if attempt == max_attempts {
                    shared.append(&format!("deadline {name} attempts {attempt}"))?;
                }
            }
            AttemptOutcome::Panicked(msg) | AttemptOutcome::Errored(msg) => {
                let _ = writeln!(
                    block,
                    "{ordinal} {name}: attempt {attempt}/{max_attempts} failed: {msg}"
                );
                row.terminal = Terminal::Failed;
                if attempt == max_attempts {
                    shared.append(&format!("failed {name} attempts {attempt} {msg}"))?;
                }
            }
        }
        if row.terminal != Terminal::Done && attempt < max_attempts {
            let pause = backoff_delay_ms(sup.backoff_ms, opts.seed, name, attempt);
            std::thread::sleep(Duration::from_millis(pause));
        }
    }
    shared.print_block(&block);
    Ok(row)
}

/// Retry backoff for one benchmark attempt: exponential doubling from
/// `base_ms` with deterministic seeded jitter, capped so a misconfigured
/// base cannot stall the sweep for minutes.
///
/// The jitter draw depends only on the run seed, the benchmark name and
/// the attempt number — never on thread scheduling — so a given
/// `(seed, bench, attempt)` always pauses for the same duration while
/// distinct seeds decorrelate their retry storms.
fn backoff_delay_ms(base_ms: u64, seed: Option<u64>, bench: &str, attempt: u32) -> u64 {
    let policy = powerchop_resilience::RetryPolicy::new(base_ms, 30_000);
    let seed = seed.unwrap_or(powerchop_serve::DEFAULT_FAULT_SEED);
    let stream = powerchop_resilience::retry::stream_label(bench);
    policy.delay_ms(seed, stream, attempt)
}

/// The `supervise` command: sweeps `benches` (all benchmarks when empty)
/// under the supervisor.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown benchmarks or unusable state
/// directories, and after the sweep when any benchmark ended
/// deadline-killed or permanently failed (completed work is journaled
/// first, so a re-invocation never repeats it).
pub fn supervise(benches: &[String], opts: RunOpts, sup: &SuperviseOpts) -> Result<(), CliError> {
    let names: Vec<String> = if benches.is_empty() {
        powerchop_workloads::all()
            .iter()
            .map(|b| b.name().to_owned())
            .collect()
    } else {
        benches.to_vec()
    };
    // Validate every name up front so a typo fails before any work runs.
    for name in &names {
        prepare_run(
            name,
            opts.manager,
            opts.budget,
            opts.scale,
            opts.seed,
            opts.storm,
        )?;
    }

    let dir = PathBuf::from(&sup.dir);
    std::fs::create_dir_all(&dir)?;
    let journal = dir.join(JOURNAL_FILE);
    let already = read_journal(&journal);
    let jobs = powerchop_exec::resolve_jobs(opts.jobs);

    println!(
        "supervising {} benchmarks (deadline {} ms, {} attempts, checkpoints every {} instructions, {} slot(s), state in {})",
        names.len(),
        sup.deadline_ms,
        sup.max_attempts,
        sup.checkpoint_every,
        jobs,
        dir.display()
    );

    let shared = Shared {
        journal: &journal,
        journal_lock: Mutex::new(()),
        stdout_lock: Mutex::new(()),
    };
    let total = names.len();
    let results = powerchop_exec::run_jobs(&names, jobs, |index, name| {
        supervise_slot(
            name,
            index,
            total,
            &opts,
            sup,
            &dir,
            &shared,
            already.get(name.as_str()).copied(),
        )
    });
    let mut rows: Vec<Row> = Vec::with_capacity(names.len());
    for (name, result) in names.iter().zip(results) {
        match result {
            Ok(row) => rows.push(row?),
            Err(p) => {
                // A panic that escaped the per-attempt catch (journal I/O,
                // bookkeeping): record the failure rather than lose the slot.
                eprintln!("{name}: supervisor slot panicked: {}", p.message);
                rows.push(Row {
                    name: name.clone(),
                    terminal: Terminal::Failed,
                    attempts: 0,
                    resumed: false,
                    skipped: false,
                });
            }
        }
    }

    print_summary(&rows);
    let bad = rows.iter().filter(|r| r.terminal != Terminal::Done).count();
    if bad > 0 {
        return Err(CliError(format!(
            "{bad} benchmark(s) did not complete (see summary above)"
        )));
    }
    Ok(())
}

fn verb(t: Terminal) -> &'static str {
    match t {
        Terminal::Done => "done",
        Terminal::DeadlineKilled => "deadline-killed",
        Terminal::Failed => "failed",
    }
}

fn print_summary(rows: &[Row]) {
    let fresh = rows.iter().filter(|r| !r.skipped);
    let completed: Vec<&Row> = fresh
        .clone()
        .filter(|r| r.terminal == Terminal::Done)
        .collect();
    let retried = completed.iter().filter(|r| r.attempts > 1).count();
    let resumed = completed.iter().filter(|r| r.resumed).count();
    let skipped = rows.iter().filter(|r| r.skipped).count();
    let deadline: Vec<&Row> = fresh
        .clone()
        .filter(|r| r.terminal == Terminal::DeadlineKilled)
        .collect();
    let failed: Vec<&Row> = fresh.filter(|r| r.terminal == Terminal::Failed).collect();
    println!("\nsupervised sweep summary:");
    println!(
        "  completed        {} ({retried} after retries, {resumed} resumed from checkpoints)",
        completed.len()
    );
    println!("  skipped (done)   {skipped}");
    println!(
        "  deadline-killed  {}{}",
        deadline.len(),
        name_list(&deadline)
    );
    println!("  failed           {}{}", failed.len(), name_list(&failed));
}

fn name_list(rows: &[&Row]) -> String {
    if rows.is_empty() {
        String::new()
    } else {
        let names: Vec<&str> = rows.iter().map(|r| r.name.as_str()).collect();
        format!(" ({})", names.join(", "))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ManagerArg;

    fn tmp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("powerchop-supervise-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("temp dir creates");
        dir
    }

    fn small_opts() -> RunOpts {
        RunOpts {
            manager: ManagerArg::PowerChop,
            budget: 200_000,
            scale: 0.05,
            ..RunOpts::default()
        }
    }

    #[test]
    fn backoff_delays_are_reproducible_per_seed_and_distinct_across_seeds() {
        // Same (seed, bench, attempt) → identical pause, every time.
        for attempt in 1..=5 {
            assert_eq!(
                backoff_delay_ms(100, Some(7), "hmmer", attempt),
                backoff_delay_ms(100, Some(7), "hmmer", attempt),
                "attempt {attempt} must be deterministic"
            );
        }
        // Jittered delays stay in the equal-jitter envelope [raw/2, raw].
        for attempt in 1..=5 {
            let raw = (100u64 << (attempt - 1)).min(30_000);
            let d = backoff_delay_ms(100, Some(7), "hmmer", attempt);
            assert!(
                d >= raw / 2 && d <= raw,
                "attempt {attempt}: {d} not in [{}, {raw}]",
                raw / 2
            );
        }
        // Different seeds (and different benches) decorrelate: at least one
        // attempt in the schedule must differ.
        let schedule = |seed, bench: &str| -> Vec<u64> {
            (1..=8)
                .map(|a| backoff_delay_ms(100, Some(seed), bench, a))
                .collect()
        };
        assert_ne!(
            schedule(7, "hmmer"),
            schedule(8, "hmmer"),
            "seeds decorrelate"
        );
        assert_ne!(
            schedule(7, "hmmer"),
            schedule(7, "namd"),
            "benches decorrelate"
        );
        // No seed falls back to the daemon's default fault seed.
        assert_eq!(
            backoff_delay_ms(100, None, "hmmer", 3),
            backoff_delay_ms(100, Some(powerchop_serve::DEFAULT_FAULT_SEED), "hmmer", 3),
        );
    }

    #[test]
    fn sweep_completes_and_second_invocation_skips_done_work() {
        let dir = tmp_dir("skip");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            deadline_ms: 60_000,
            max_attempts: 2,
            backoff_ms: 1,
            checkpoint_every: 50_000,
        };
        let benches = vec!["hmmer".to_owned(), "namd".to_owned()];
        supervise(&benches, small_opts(), &sup).expect("sweep completes");

        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert_eq!(journal.matches("done hmmer").count(), 1);
        assert_eq!(journal.matches("done namd").count(), 1);

        // Re-invoking must not repeat completed work: no new start lines.
        supervise(&benches, small_opts(), &sup).expect("second sweep completes");
        let journal2 = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert_eq!(journal2, journal, "second invocation did zero work");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn parallel_slots_complete_with_independent_deadlines() {
        let dir = tmp_dir("parallel");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            deadline_ms: 60_000,
            max_attempts: 1,
            backoff_ms: 1,
            checkpoint_every: u64::MAX,
        };
        let opts = RunOpts {
            jobs: Some(3),
            ..small_opts()
        };
        let benches = vec!["hmmer".to_owned(), "namd".to_owned(), "msn".to_owned()];
        supervise(&benches, opts, &sup).expect("parallel sweep completes");
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        // Every slot journals its own terminal record exactly once, even
        // though appends raced through the mutex.
        for name in ["hmmer", "namd", "msn"] {
            assert_eq!(
                journal.matches(&format!("done {name}")).count(),
                1,
                "journal: {journal}"
            );
        }
        // No torn lines: each journaled line starts with a known verb.
        for line in journal.lines() {
            let verb = line.split_whitespace().next().unwrap_or("");
            assert!(
                ["start", "done", "deadline", "failed", "metrics"].contains(&verb),
                "torn or interleaved journal line: {line:?}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn traced_sweep_folds_metric_summaries_into_journal() {
        let dir = tmp_dir("telemetry");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            deadline_ms: 60_000,
            max_attempts: 1,
            backoff_ms: 1,
            checkpoint_every: u64::MAX,
        };
        let metrics_path = dir.join("m.prom");
        let opts = RunOpts {
            metrics: Some(metrics_path.to_string_lossy().into_owned()),
            ..small_opts()
        };
        supervise(&["hmmer".to_owned()], opts, &sup).expect("sweep completes");
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert!(
            journal.contains("metrics hmmer events "),
            "journal folds metric summaries: {journal}"
        );
        // The metrics verb is not terminal: parsing still sees `done`.
        assert_eq!(
            read_journal(&dir.join(JOURNAL_FILE)).get("hmmer"),
            Some(&Terminal::Done)
        );
        let prom = std::fs::read_to_string(dir.join("m-hmmer.prom"))
            .expect("per-bench prometheus dump exists");
        assert!(prom.contains("sim_instructions_total"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn mid_run_checkpoint_lets_next_invocation_resume_not_restart() {
        let dir = tmp_dir("resume");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            deadline_ms: 60_000,
            max_attempts: 1,
            backoff_ms: 1,
            checkpoint_every: 50_000,
        };
        let opts = small_opts();

        // Simulate a sweep killed mid-run: leave a valid mid-run
        // checkpoint and a journal with a dangling `start` line.
        let pr = prepare_run("hmmer", opts.manager, opts.budget, opts.scale, None, false)
            .expect("prepare succeeds");
        let mut sim = Simulation::new(&pr.program, pr.kind, &pr.cfg).expect("config valid");
        while sim.retired() < 60_000 {
            sim.step_chunk(1024).expect("stepping succeeds");
        }
        assert!(!sim.is_done());
        write_atomic(&dir.join("hmmer.ckpt"), &sim.snapshot(&pr.meta)).expect("snapshot writes");
        journal_append(&dir.join(JOURNAL_FILE), "start hmmer attempt 1").expect("journal writes");

        supervise(&["hmmer".to_owned()], opts, &sup).expect("sweep completes");
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert!(journal.contains("done hmmer"), "run completed: {journal}");
        assert!(
            !dir.join("hmmer.ckpt").exists(),
            "checkpoint cleaned up after completion"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn deadline_kills_are_reported_and_checkpointed() {
        let dir = tmp_dir("deadline");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            // A 0 ms deadline trips the watchdog immediately.
            deadline_ms: 0,
            max_attempts: 2,
            backoff_ms: 1,
            checkpoint_every: u64::MAX,
        };
        let err = supervise(&["hmmer".to_owned()], small_opts(), &sup)
            .expect_err("deadline-killed sweeps report failure");
        assert!(err.to_string().contains("did not complete"));
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert!(journal.contains("deadline hmmer"), "journal: {journal}");
        assert!(
            dir.join("hmmer.ckpt").exists(),
            "killed runs persist their progress"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_checkpoint_is_survived_with_a_fresh_start() {
        let dir = tmp_dir("corrupt");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            deadline_ms: 60_000,
            max_attempts: 1,
            backoff_ms: 1,
            checkpoint_every: u64::MAX,
        };
        std::fs::write(dir.join("hmmer.ckpt"), b"definitely not a snapshot").expect("write");
        supervise(&["hmmer".to_owned()], small_opts(), &sup)
            .expect("corrupt checkpoint falls back to a fresh run");
        let journal = std::fs::read_to_string(dir.join(JOURNAL_FILE)).expect("journal exists");
        assert!(journal.contains("done hmmer"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unknown_benchmarks_fail_before_any_work() {
        let dir = tmp_dir("unknown");
        let sup = SuperviseOpts {
            dir: dir.to_string_lossy().into_owned(),
            ..SuperviseOpts::default()
        };
        let err = supervise(&["doom".to_owned()], small_opts(), &sup).expect_err("unknown bench");
        assert!(err.to_string().contains("unknown benchmark"));
        assert!(!dir.join(JOURNAL_FILE).exists(), "no journal written");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn journal_parser_ignores_torn_lines() {
        let dir = tmp_dir("torn");
        let path = dir.join(JOURNAL_FILE);
        std::fs::write(
            &path,
            "done hmmer attempts 1 instructions 5 cycles 9 energy_bits 0\nstart namd attempt 1\ndone na",
        )
        .expect("write");
        let map = read_journal(&path);
        assert_eq!(map.get("hmmer"), Some(&Terminal::Done));
        assert_eq!(map.get("namd"), None, "start lines are not terminal");
        // The torn final line parses as verb `done` bench `na` — harmless:
        // `na` is not a real benchmark name.
        let _ = std::fs::remove_dir_all(&dir);
    }
}
