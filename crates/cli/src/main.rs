//! `powerchop-cli`: command-line front end for the PowerChop reproduction.

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if let Err(e) = powerchop_cli::run(&argv) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
