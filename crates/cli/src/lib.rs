//! Implementation of the `powerchop-cli` command-line tool.
//!
//! Kept as a library so the argument parsing and command logic are unit
//! testable; `main.rs` is a thin shim. Run `powerchop-cli help` for usage.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod args;
pub mod commands;
pub mod soak;
pub mod supervise;
pub mod supervisor;
pub mod top;

use std::fmt;

/// CLI-level errors (bad usage, unknown benchmarks, guest faults).
#[derive(Debug)]
pub struct CliError(pub String);

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<powerchop_gisa::GisaError> for CliError {
    fn from(e: powerchop_gisa::GisaError) -> Self {
        CliError(format!("guest program faulted: {e}"))
    }
}

impl From<powerchop::SimError> for CliError {
    fn from(e: powerchop::SimError) -> Self {
        CliError(e.to_string())
    }
}

impl From<powerchop_gisa::asm::AsmError> for CliError {
    fn from(e: powerchop_gisa::asm::AsmError) -> Self {
        CliError(e.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(e.to_string())
    }
}

/// Entry point used by the binary: parses `argv` and dispatches.
///
/// # Errors
///
/// Returns a [`CliError`] for unknown commands, bad flags, unknown
/// benchmarks, unreadable files, or guest faults.
pub fn run(argv: &[String]) -> Result<(), CliError> {
    let parsed = args::parse(argv)?;
    commands::dispatch(parsed)
}
