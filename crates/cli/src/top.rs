//! `top`: a live terminal dashboard over a running `powerchop-serve`.
//!
//! Dependency-free by construction: each frame polls the daemon's HTTP
//! `GET /metrics` endpoint for the Prometheus exposition (counters,
//! gauges and the per-op latency quantile estimates the daemon derives
//! from its log2 histograms) and the JSON `health` op for the
//! breaker/worker/recovery story, then redraws one compact screen with
//! ANSI escapes. The qps history renders through
//! [`powerchop_telemetry::timeline::sparkline`] — the same rendering
//! primitives the `trace` timeline uses.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

use powerchop_serve::json::Json;
use powerchop_telemetry::timeline;

use crate::args::TopOpts;
use crate::CliError;

/// Socket timeout for each poll: a wedged daemon must stall one frame,
/// not the dashboard forever.
const POLL_TIMEOUT: Duration = Duration::from_secs(5);

/// Sparkline width in columns.
const SPARK_WIDTH: usize = 48;

/// One polled view of the daemon, flattened from `/metrics` + `health`.
#[derive(Debug, Default, Clone)]
struct Snapshot {
    requests_total: f64,
    inflight_requests: f64,
    queued: f64,
    connections: f64,
    p50: f64,
    p90: f64,
    p99: f64,
    p999: f64,
    healthy: bool,
    draining: bool,
    breaker: String,
    breaker_trips: f64,
    workers: f64,
    workers_alive: f64,
    respawns: f64,
    recovery_active: bool,
    runs_resumed: f64,
}

/// Parses a Prometheus text exposition into `full-key -> value`,
/// keeping label syntax inside the key (`lat_p50{op="run"}`). Comment
/// and malformed lines are skipped — the dashboard degrades, never
/// dies, on exposition drift.
fn parse_exposition(text: &str) -> HashMap<String, f64> {
    let mut out = HashMap::new();
    for line in text.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(name), Some(value)) = (parts.next(), parts.next()) {
            if let Ok(v) = value.parse::<f64>() {
                out.insert(name.to_owned(), v);
            }
        }
    }
    out
}

/// Scrapes `GET /metrics` over a fresh connection (the daemon closes
/// it after one response) and returns the exposition body.
fn scrape_metrics(addr: &str) -> Result<String, CliError> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_write_timeout(Some(POLL_TIMEOUT))?;
    write!(stream, "GET /metrics HTTP/1.1\r\nHost: {addr}\r\n\r\n")?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    response
        .split_once("\r\n\r\n")
        .map(|(_, body)| body.to_owned())
        .ok_or_else(|| CliError(format!("{addr}: malformed HTTP response from /metrics")))
}

/// Polls the JSON `health` op over a fresh connection.
fn poll_health(addr: &str) -> Result<Json, CliError> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(POLL_TIMEOUT))?;
    stream.set_write_timeout(Some(POLL_TIMEOUT))?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writeln!(writer, "{{\"op\":\"health\"}}")?;
    writer.flush()?;
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Json::parse(line.trim()).map_err(|e| CliError(format!("{addr}: malformed health reply: {e}")))
}

/// Folds one `/metrics` + `health` poll into a [`Snapshot`].
fn snapshot(metrics: &HashMap<String, f64>, health: &Json) -> Snapshot {
    let m = |key: &str| metrics.get(key).copied().unwrap_or(0.0);
    let hu = |key: &str| health.get(key).and_then(Json::as_f64).unwrap_or(0.0);
    let hb = |key: &str| health.get(key).and_then(Json::as_bool).unwrap_or(false);
    Snapshot {
        requests_total: m("serve_requests_total"),
        inflight_requests: m("serve_inflight_requests"),
        queued: m("serve_queue_depth"),
        connections: m("serve_connections"),
        p50: m(r#"serve_request_duration_ms_p50{op="run"}"#),
        p90: m(r#"serve_request_duration_ms_p90{op="run"}"#),
        p99: m(r#"serve_request_duration_ms_p99{op="run"}"#),
        p999: m(r#"serve_request_duration_ms_p999{op="run"}"#),
        healthy: hb("healthy"),
        draining: hb("draining"),
        breaker: health
            .get("breaker")
            .and_then(Json::as_str)
            .unwrap_or("?")
            .to_owned(),
        breaker_trips: hu("breaker_trips"),
        workers: hu("workers"),
        workers_alive: hu("workers_alive"),
        respawns: hu("worker_respawns"),
        recovery_active: hb("recovery_active"),
        runs_resumed: hu("runs_resumed"),
    }
}

/// Renders one dashboard frame (without the screen-clear escape, so
/// the pure text is unit-testable).
fn render_frame(addr: &str, snap: &Snapshot, qps: f64, history: &[f64]) -> String {
    let verdict = if snap.draining {
        "DRAINING"
    } else if snap.healthy {
        "healthy"
    } else {
        "UNHEALTHY"
    };
    let recovery = if snap.recovery_active {
        "resuming"
    } else {
        "idle"
    };
    let mut out = String::new();
    out.push_str(&format!("powerchop-serve top — {addr}   [{verdict}]\n"));
    out.push_str(&format!(
        "traffic   {qps:8.1} qps   in-flight {:>3}   queued {:>3}   connections {:>3}\n",
        snap.inflight_requests as u64, snap.queued as u64, snap.connections as u64,
    ));
    out.push_str(&format!(
        "latency   p50 {:.0}ms   p90 {:.0}ms   p99 {:.0}ms   p999 {:.0}ms   (op=run)\n",
        snap.p50, snap.p90, snap.p99, snap.p999,
    ));
    out.push_str(&format!(
        "workers   {}/{} alive   {} respawned   breaker {} ({} trips)\n",
        snap.workers_alive as u64,
        snap.workers as u64,
        snap.respawns as u64,
        snap.breaker,
        snap.breaker_trips as u64,
    ));
    out.push_str(&format!(
        "recovery  {recovery}   {} runs resumed\n",
        snap.runs_resumed as u64,
    ));
    out.push_str(&format!(
        "qps       {}\n",
        timeline::sparkline(history, SPARK_WIDTH)
    ));
    out
}

/// The `top` command: poll, diff, redraw, sleep — until the frame
/// budget runs out or the daemon goes away.
///
/// # Errors
///
/// Returns a [`CliError`] when the very first poll fails (wrong
/// address, daemon not running). After a successful first frame a
/// failing poll ends the dashboard cleanly — the usual way out is the
/// daemon shutting down.
pub fn top_cmd(opts: &TopOpts) -> Result<(), CliError> {
    let mut history: Vec<f64> = Vec::new();
    let mut prev_requests: Option<f64> = None;
    let mut frame = 0u64;
    loop {
        let polled =
            scrape_metrics(&opts.addr).and_then(|text| poll_health(&opts.addr).map(|h| (text, h)));
        let (text, health) = match polled {
            Ok(ok) => ok,
            Err(e) if frame == 0 => return Err(e),
            Err(_) => {
                println!("powerchop-serve top: {} went away; exiting", opts.addr);
                return Ok(());
            }
        };
        let snap = snapshot(&parse_exposition(&text), &health);
        let interval_s = opts.interval_ms as f64 / 1_000.0;
        let qps = prev_requests
            .map(|prev| ((snap.requests_total - prev) / interval_s).max(0.0))
            .unwrap_or(0.0);
        prev_requests = Some(snap.requests_total);
        history.push(qps);
        if history.len() > SPARK_WIDTH {
            history.remove(0);
        }
        // ANSI clear-and-home between frames; harmless when redirected.
        print!(
            "\x1b[2J\x1b[H{}",
            render_frame(&opts.addr, &snap, qps, &history)
        );
        std::io::stdout().flush()?;
        frame += 1;
        if opts.frames != 0 && frame >= opts.frames {
            return Ok(());
        }
        std::thread::sleep(Duration::from_millis(opts.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exposition_parsing_keeps_labeled_keys_and_skips_comments() {
        let text = "# HELP serve_requests_total Request lines received.\n\
                    # TYPE serve_requests_total counter\n\
                    serve_requests_total 42\n\
                    serve_request_duration_ms_p99{op=\"run\"} 7.5\n\
                    garbage-line-without-value\n";
        let m = parse_exposition(text);
        assert_eq!(m.get("serve_requests_total"), Some(&42.0));
        assert_eq!(
            m.get(r#"serve_request_duration_ms_p99{op="run"}"#),
            Some(&7.5)
        );
        assert_eq!(m.len(), 2, "comments and malformed lines are skipped");
    }

    #[test]
    fn snapshot_folds_metrics_and_health_and_degrades_on_missing_keys() {
        let mut metrics = HashMap::new();
        metrics.insert("serve_requests_total".to_owned(), 10.0);
        metrics.insert(r#"serve_request_duration_ms_p50{op="run"}"#.to_owned(), 3.0);
        let health = Json::parse(
            "{\"healthy\":true,\"draining\":false,\"breaker\":\"closed\",\
             \"breaker_trips\":1,\"workers\":4,\"workers_alive\":4,\
             \"worker_respawns\":0,\"recovery_active\":false,\"runs_resumed\":2}",
        )
        .expect("valid health");
        let s = snapshot(&metrics, &health);
        assert!((s.requests_total - 10.0).abs() < f64::EPSILON);
        assert!((s.p50 - 3.0).abs() < f64::EPSILON);
        assert!((s.p99).abs() < f64::EPSILON, "missing quantile reads as 0");
        assert!(s.healthy);
        assert_eq!(s.breaker, "closed");
        assert!((s.runs_resumed - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn rendered_frame_carries_every_dashboard_row() {
        let snap = Snapshot {
            requests_total: 100.0,
            inflight_requests: 2.0,
            queued: 1.0,
            connections: 3.0,
            p50: 4.0,
            p90: 9.0,
            p99: 20.0,
            p999: 21.0,
            healthy: true,
            draining: false,
            breaker: "closed".into(),
            breaker_trips: 0.0,
            workers: 4.0,
            workers_alive: 4.0,
            respawns: 1.0,
            recovery_active: true,
            runs_resumed: 5.0,
        };
        let frame = render_frame("127.0.0.1:7077", &snap, 12.5, &[0.0, 6.0, 12.5]);
        assert!(frame.contains("[healthy]"), "{frame}");
        assert!(frame.contains("12.5 qps"), "{frame}");
        assert!(frame.contains("p99 20ms"), "{frame}");
        assert!(frame.contains("4/4 alive"), "{frame}");
        assert!(frame.contains("breaker closed"), "{frame}");
        assert!(frame.contains("resuming"), "{frame}");
        assert!(frame.contains('█'), "sparkline renders: {frame}");
        let drained = Snapshot {
            draining: true,
            ..snap
        };
        assert!(render_frame("x", &drained, 0.0, &[]).contains("[DRAINING]"));
    }
}
