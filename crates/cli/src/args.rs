//! Hand-rolled argument parsing (no external dependencies).

use powerchop::managers::{DrowsyMlcManager, TimeoutVpuManager};
use powerchop::ManagerKind;

use crate::CliError;

/// Which power manager a run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerArg {
    /// PowerChop (default).
    PowerChop,
    /// Fully powered baseline.
    Full,
    /// Minimal-power baseline.
    Minimal,
    /// VPU idleness timeout baseline.
    Timeout,
    /// Drowsy-MLC baseline.
    Drowsy,
}

impl ManagerArg {
    /// Converts to the runtime manager kind.
    #[must_use]
    pub fn kind(self) -> ManagerKind {
        match self {
            ManagerArg::PowerChop => ManagerKind::PowerChop,
            ManagerArg::Full => ManagerKind::FullPower,
            ManagerArg::Minimal => ManagerKind::MinimalPower,
            ManagerArg::Timeout => ManagerKind::TimeoutVpu {
                timeout_cycles: TimeoutVpuManager::PAPER_TIMEOUT_CYCLES,
            },
            ManagerArg::Drowsy => ManagerKind::DrowsyMlc {
                period_cycles: DrowsyMlcManager::DEFAULT_PERIOD_CYCLES,
            },
        }
    }

    /// The canonical spelling, accepted back by [`ManagerArg::parse`]
    /// (used to make snapshots self-describing).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ManagerArg::PowerChop => "powerchop",
            ManagerArg::Full => "full",
            ManagerArg::Minimal => "minimal",
            ManagerArg::Timeout => "timeout",
            ManagerArg::Drowsy => "drowsy",
        }
    }

    /// Parses a manager name (several aliases per manager).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the expected spellings.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "powerchop" | "chop" => Ok(ManagerArg::PowerChop),
            "full" | "full-power" => Ok(ManagerArg::Full),
            "minimal" | "min" => Ok(ManagerArg::Minimal),
            "timeout" => Ok(ManagerArg::Timeout),
            "drowsy" => Ok(ManagerArg::Drowsy),
            other => Err(CliError(format!(
                "unknown manager `{other}` (expected powerchop|full|minimal|timeout|drowsy)"
            ))),
        }
    }
}

/// Options shared by run-like commands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Manager to use.
    pub manager: ManagerArg,
    /// Instruction budget.
    pub budget: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Emit machine-readable JSON instead of the human summary.
    pub json: bool,
    /// Fault-schedule seed (`None` uses the default when faults run).
    pub seed: Option<u64>,
    /// Use the 10× pathological fault rates.
    pub storm: bool,
    /// Chrome trace-event JSON output path (enables the flight recorder).
    pub trace: Option<String>,
    /// Prometheus metrics output path (enables the flight recorder).
    pub metrics: Option<String>,
    /// Worker threads for fan-out commands (`None` resolves through
    /// `POWERCHOP_JOBS` and then the machine's available parallelism).
    pub jobs: Option<usize>,
}

impl RunOpts {
    /// Whether any flag asked for the flight recorder.
    #[must_use]
    pub fn wants_telemetry(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            manager: ManagerArg::PowerChop,
            budget: 8_000_000,
            scale: 1.0,
            json: false,
            seed: None,
            storm: false,
            trace: None,
            metrics: None,
            jobs: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `help`
    Help,
    /// `info` — print the design points.
    Info,
    /// `list [suite]` — list benchmarks.
    List {
        /// Optional suite filter (`spec-int`, `spec-fp`, `parsec`, `mobile`).
        suite: Option<String>,
    },
    /// `run <bench>` — run one benchmark and print its report.
    Run {
        /// Benchmark name.
        bench: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `run --all` — run every benchmark on the job pool and print each
    /// report (in benchmark order, regardless of thread count).
    RunAll {
        /// Run options.
        opts: RunOpts,
    },
    /// `compare <bench>` — full-power vs PowerChop.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `timeline <bench>` — per-window phase/policy timeline.
    Timeline {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `asm <file>` — assemble a guest-ISA text file and run it.
    Asm {
        /// Path to the assembly source.
        path: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `profile <bench>` — architectural instruction-mix profile.
    Profile {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `trace <bench>` — run with the flight recorder and render the
    /// event-stream phase/gating timeline in the terminal.
    Trace {
        /// Benchmark name.
        bench: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `stress [bench]` — run under deterministic fault injection and
    /// report survival, degradation activity and bounded slowdown.
    Stress {
        /// Benchmark to stress; `None` stresses every benchmark.
        bench: Option<String>,
        /// Run options.
        opts: RunOpts,
    },
    /// `checkpoint <bench>` — run until an instruction mark and write a
    /// crash-safe snapshot.
    Checkpoint {
        /// Benchmark name.
        bench: String,
        /// Instructions to retire before snapshotting.
        at: u64,
        /// Snapshot output path (`None` uses `<bench>.ckpt`).
        out: Option<String>,
        /// Run options.
        opts: RunOpts,
    },
    /// `resume <file>` — restore a snapshot, run it to completion and
    /// print the report.
    Resume {
        /// Snapshot path.
        path: String,
        /// Emit the report as JSON.
        json: bool,
    },
    /// `supervise [bench...]` — crash-safe supervised batch sweep with
    /// deadlines, retries, panic isolation and a resumable journal.
    Supervise {
        /// Benchmarks to sweep; empty sweeps every benchmark.
        benches: Vec<String>,
        /// Run options.
        opts: RunOpts,
        /// Supervisor tuning.
        sup: SuperviseOpts,
    },
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseOpts {
    /// State directory holding the journal and checkpoints.
    pub dir: String,
    /// Per-run wall-clock deadline in milliseconds.
    pub deadline_ms: u64,
    /// Maximum attempts per benchmark (first try + retries).
    pub max_attempts: u32,
    /// Base retry backoff in milliseconds (doubles per attempt).
    pub backoff_ms: u64,
    /// Instructions between periodic checkpoints.
    pub checkpoint_every: u64,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            dir: "powerchop-supervise".into(),
            deadline_ms: 120_000,
            max_attempts: 3,
            backoff_ms: 100,
            checkpoint_every: 2_000_000,
        }
    }
}

/// Usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
powerchop-cli — run the PowerChop reproduction from the command line

USAGE:
    powerchop-cli <COMMAND> [OPTIONS]

COMMANDS:
    list [suite]           list benchmarks (suites: spec-int spec-fp parsec mobile)
    info                   print the server/mobile design points (Table I)
    run <bench>|--all      run one benchmark (or every benchmark) and print the
                           full report(s)
    compare <bench>        run full-power and PowerChop, print the comparison
    timeline <bench>       print the per-window phase/policy timeline
    asm <file.s>           assemble a guest-ISA text file and run it
    profile <bench>        architectural instruction-mix profile (no timing)
    trace <bench>          run with the flight recorder on and print the
                           phase/gating timeline from the event stream
    stress [bench]         run under deterministic fault injection (all benchmarks
                           when no operand) and report survival + degradation
    checkpoint <bench>     run until --at instructions, write a crash-safe snapshot
    resume <file.ckpt>     restore a snapshot, run to completion, print the report
    supervise [bench...]   crash-safe supervised sweep (all benchmarks when no
                           operand): deadlines, retries, panic isolation, and a
                           journal that survives kill -9
    help                   show this message

OPTIONS (run/compare/timeline/asm/stress/checkpoint/supervise):
    --manager <m>          powerchop|full|minimal|timeout|drowsy [default: powerchop]
    --budget <N>           instruction budget                    [default: 8000000]
    --scale <F>            workload scale factor                 [default: 1.0]
    --json                 (run/asm/stress/resume) print the report as JSON
    --seed <N>             (run/trace/stress/checkpoint/supervise) fault seed
    --storm                (run/trace/stress/checkpoint/supervise) 10x fault rates
    --trace <file>         (run/trace/stress/supervise) write a Chrome trace-event
                           JSON file (stress/supervise write one per benchmark)
    --metrics <file>       (run/trace/stress/supervise) write a Prometheus text
                           metrics dump (stress/supervise write one per benchmark)
    --jobs <N>             (run --all/stress/supervise) worker threads for the
                           sweep [default: $POWERCHOP_JOBS, then the number of
                           CPUs]; output is identical at every thread count

OPTIONS (checkpoint):
    --at <N>               instructions before the snapshot      [default: budget/2]
    --out <file>           snapshot path                         [default: <bench>.ckpt]

OPTIONS (supervise):
    --dir <path>           journal + checkpoint directory [default: powerchop-supervise]
    --deadline-ms <N>      per-run wall-clock deadline    [default: 120000]
    --max-attempts <N>     attempts per benchmark         [default: 3]
    --backoff-ms <N>       base retry backoff (doubles)   [default: 100]
    --checkpoint-every <N> instructions between snapshots [default: 2000000]
";

/// Parses the shared run flags, handing unrecognized flags to `extra`
/// (which returns whether it consumed the flag).
fn parse_flags(
    rest: &[String],
    mut extra: impl FnMut(&str, &mut dyn FnMut() -> Result<String, CliError>) -> Result<bool, CliError>,
) -> Result<RunOpts, CliError> {
    let mut opts = RunOpts::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--manager" => opts.manager = ManagerArg::parse(&value()?)?,
            "--budget" => {
                opts.budget = value()?
                    .parse()
                    .map_err(|_| CliError("--budget must be an integer".into()))?;
            }
            "--scale" => {
                opts.scale = value()?
                    .parse()
                    .map_err(|_| CliError("--scale must be a number".into()))?;
            }
            "--json" => opts.json = true,
            "--seed" => {
                opts.seed = Some(
                    value()?
                        .parse()
                        .map_err(|_| CliError("--seed must be an integer".into()))?,
                );
            }
            "--storm" => opts.storm = true,
            "--trace" => opts.trace = Some(value()?),
            "--metrics" => opts.metrics = Some(value()?),
            "--jobs" => {
                let n: usize = value()?
                    .parse()
                    .map_err(|_| CliError("--jobs must be an integer".into()))?;
                if n == 0 {
                    return Err(CliError("--jobs must be at least 1".into()));
                }
                opts.jobs = Some(n);
            }
            other => {
                if !extra(other, &mut value)? {
                    return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}")));
                }
            }
        }
    }
    Ok(opts)
}

fn parse_opts(rest: &[String]) -> Result<RunOpts, CliError> {
    parse_flags(rest, |_, _| Ok(false))
}

fn parse_int<T: std::str::FromStr>(flag: &str, raw: &str) -> Result<T, CliError> {
    raw.parse()
        .map_err(|_| CliError(format!("{flag} must be an integer")))
}

/// Parses `argv` (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns usage errors for unknown commands/flags and missing operands.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(command) = argv.first() else {
        return Ok(Command::Help);
    };
    let operand = || -> Result<String, CliError> {
        argv.get(1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .ok_or_else(|| CliError(format!("`{command}` needs an operand\n\n{USAGE}")))
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "list" => Ok(Command::List {
            suite: argv.get(1).cloned(),
        }),
        "run" => {
            if argv.get(1).map(String::as_str) == Some("--all") {
                return Ok(Command::RunAll {
                    opts: parse_opts(&argv[2..])?,
                });
            }
            Ok(Command::Run {
                bench: operand()?,
                opts: parse_opts(&argv[2..])?,
            })
        }
        "compare" => Ok(Command::Compare {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "timeline" => Ok(Command::Timeline {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "asm" => Ok(Command::Asm {
            path: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "profile" => Ok(Command::Profile {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "trace" => Ok(Command::Trace {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "stress" => {
            // The operand is optional: `stress` alone stresses everything.
            let bench = argv.get(1).filter(|a| !a.starts_with("--")).cloned();
            let rest = if bench.is_some() {
                &argv[2..]
            } else {
                &argv[1..]
            };
            Ok(Command::Stress {
                bench,
                opts: parse_opts(rest)?,
            })
        }
        "checkpoint" => {
            let bench = operand()?;
            let mut at = None;
            let mut out = None;
            let opts = parse_flags(&argv[2..], |flag, value| match flag {
                "--at" => {
                    at = Some(parse_int(flag, &value()?)?);
                    Ok(true)
                }
                "--out" => {
                    out = Some(value()?);
                    Ok(true)
                }
                _ => Ok(false),
            })?;
            Ok(Command::Checkpoint {
                bench,
                at: at.unwrap_or(opts.budget / 2),
                out,
                opts,
            })
        }
        "resume" => {
            let path = operand()?;
            let mut json = false;
            for flag in &argv[2..] {
                match flag.as_str() {
                    "--json" => json = true,
                    other => return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}"))),
                }
            }
            Ok(Command::Resume { path, json })
        }
        "supervise" => {
            // Leading non-flag operands are benchmark names.
            let mut benches = Vec::new();
            let mut i = 1;
            while let Some(a) = argv.get(i) {
                if a.starts_with("--") {
                    break;
                }
                benches.push(a.clone());
                i += 1;
            }
            let mut sup = SuperviseOpts::default();
            let opts = parse_flags(&argv[i..], |flag, value| match flag {
                "--dir" => {
                    sup.dir = value()?;
                    Ok(true)
                }
                "--deadline-ms" => {
                    sup.deadline_ms = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                "--max-attempts" => {
                    sup.max_attempts = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                "--backoff-ms" => {
                    sup.backoff_ms = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                "--checkpoint-every" => {
                    sup.checkpoint_every = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                _ => Ok(false),
            })?;
            Ok(Command::Supervise { benches, opts, sup })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults() {
        let c = parse(&argv("run gobmk")).unwrap();
        assert_eq!(
            c,
            Command::Run {
                bench: "gobmk".into(),
                opts: RunOpts::default()
            }
        );
    }

    #[test]
    fn run_with_options() {
        let c = parse(&argv(
            "run namd --manager timeout --budget 1000 --scale 0.5",
        ))
        .unwrap();
        match c {
            Command::Run { bench, opts } => {
                assert_eq!(bench, "namd");
                assert_eq!(opts.manager, ManagerArg::Timeout);
                assert_eq!(opts.budget, 1000);
                assert!((opts.scale - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn manager_aliases() {
        assert_eq!(ManagerArg::parse("drowsy").unwrap(), ManagerArg::Drowsy);
        assert_eq!(ManagerArg::parse("chop").unwrap(), ManagerArg::PowerChop);
        assert_eq!(ManagerArg::parse("full-power").unwrap(), ManagerArg::Full);
        assert_eq!(ManagerArg::parse("min").unwrap(), ManagerArg::Minimal);
        assert!(ManagerArg::parse("bogus").is_err());
    }

    #[test]
    fn errors_on_missing_operand_and_bad_flags() {
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run gobmk --bogus 1")).is_err());
        assert!(parse(&argv("run gobmk --budget abc")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn stress_parses_with_and_without_operand() {
        match parse(&argv("stress --seed 42 --storm --budget 1000")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench, None);
                assert_eq!(opts.seed, Some(42));
                assert!(opts.storm);
                assert_eq!(opts.budget, 1000);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("stress hmmer --json")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench.as_deref(), Some("hmmer"));
                assert!(opts.json);
                assert_eq!(opts.seed, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("stress --seed nope")).is_err());
    }

    #[test]
    fn checkpoint_resume_supervise_parse() {
        match parse(&argv("checkpoint hmmer --at 1000 --out snap.ckpt --seed 7")).unwrap() {
            Command::Checkpoint {
                bench,
                at,
                out,
                opts,
            } => {
                assert_eq!(bench, "hmmer");
                assert_eq!(at, 1000);
                assert_eq!(out.as_deref(), Some("snap.ckpt"));
                assert_eq!(opts.seed, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `--at` defaults to half the budget.
        match parse(&argv("checkpoint hmmer --budget 4000")).unwrap() {
            Command::Checkpoint { at, out, .. } => {
                assert_eq!(at, 2000);
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv("resume snap.ckpt --json")).unwrap(),
            Command::Resume {
                path: "snap.ckpt".into(),
                json: true
            }
        );
        assert!(parse(&argv("resume snap.ckpt --bogus")).is_err());
        match parse(&argv(
            "supervise hmmer namd --dir state --deadline-ms 500 --max-attempts 2 \
             --backoff-ms 10 --checkpoint-every 5000 --budget 9000",
        ))
        .unwrap()
        {
            Command::Supervise { benches, opts, sup } => {
                assert_eq!(benches, vec!["hmmer".to_owned(), "namd".to_owned()]);
                assert_eq!(opts.budget, 9000);
                assert_eq!(sup.dir, "state");
                assert_eq!(sup.deadline_ms, 500);
                assert_eq!(sup.max_attempts, 2);
                assert_eq!(sup.backoff_ms, 10);
                assert_eq!(sup.checkpoint_every, 5000);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("supervise")).unwrap() {
            Command::Supervise { benches, sup, .. } => {
                assert!(benches.is_empty());
                assert_eq!(sup, SuperviseOpts::default());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn manager_canonical_names_round_trip() {
        for m in [
            ManagerArg::PowerChop,
            ManagerArg::Full,
            ManagerArg::Minimal,
            ManagerArg::Timeout,
            ManagerArg::Drowsy,
        ] {
            assert_eq!(ManagerArg::parse(m.as_str()).unwrap(), m);
        }
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        match parse(&argv(
            "run gobmk --trace out.json --metrics out.prom --seed 9",
        ))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(opts.trace.as_deref(), Some("out.json"));
                assert_eq!(opts.metrics.as_deref(), Some("out.prom"));
                assert_eq!(opts.seed, Some(9));
                assert!(opts.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("trace hmmer --storm --budget 5000")).unwrap() {
            Command::Trace { bench, opts } => {
                assert_eq!(bench, "hmmer");
                assert!(opts.storm);
                assert_eq!(opts.budget, 5000);
                assert!(!opts.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("run gobmk --trace")).is_err());
    }

    #[test]
    fn jobs_flag_and_run_all_parse() {
        match parse(&argv("run --all --jobs 4 --budget 1000 --json")).unwrap() {
            Command::RunAll { opts } => {
                assert_eq!(opts.jobs, Some(4));
                assert_eq!(opts.budget, 1000);
                assert!(opts.json);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("stress --jobs 2")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench, None);
                assert_eq!(opts.jobs, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        // An unspecified `--jobs` resolves later (env, then CPU count).
        match parse(&argv("run gobmk")).unwrap() {
            Command::Run { opts, .. } => assert_eq!(opts.jobs, None),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --all --jobs 0")).is_err());
        assert!(parse(&argv("run --all --jobs nope")).is_err());
    }

    #[test]
    fn json_flag_parses() {
        match parse(&argv("run gcc --json")).unwrap() {
            Command::Run { opts, .. } => assert!(opts.json),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_accepts_optional_suite() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List { suite: None });
        assert_eq!(
            parse(&argv("list mobile")).unwrap(),
            Command::List {
                suite: Some("mobile".into())
            }
        );
    }

    #[test]
    fn timeout_manager_uses_paper_cycles() {
        match ManagerArg::Timeout.kind() {
            powerchop::ManagerKind::TimeoutVpu { timeout_cycles } => {
                assert_eq!(timeout_cycles, 20_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
