//! Hand-rolled argument parsing (no external dependencies).

use powerchop::managers::{DrowsyMlcManager, TimeoutVpuManager};
use powerchop::ManagerKind;

use crate::CliError;

/// Which power manager a run should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ManagerArg {
    /// PowerChop (default).
    PowerChop,
    /// Fully powered baseline.
    Full,
    /// Minimal-power baseline.
    Minimal,
    /// VPU idleness timeout baseline.
    Timeout,
    /// Drowsy-MLC baseline.
    Drowsy,
}

impl ManagerArg {
    /// Converts to the runtime manager kind.
    #[must_use]
    pub fn kind(self) -> ManagerKind {
        match self {
            ManagerArg::PowerChop => ManagerKind::PowerChop,
            ManagerArg::Full => ManagerKind::FullPower,
            ManagerArg::Minimal => ManagerKind::MinimalPower,
            ManagerArg::Timeout => ManagerKind::TimeoutVpu {
                timeout_cycles: TimeoutVpuManager::PAPER_TIMEOUT_CYCLES,
            },
            ManagerArg::Drowsy => ManagerKind::DrowsyMlc {
                period_cycles: DrowsyMlcManager::DEFAULT_PERIOD_CYCLES,
            },
        }
    }

    /// The canonical spelling, accepted back by [`ManagerArg::parse`]
    /// (used to make snapshots self-describing).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            ManagerArg::PowerChop => "powerchop",
            ManagerArg::Full => "full",
            ManagerArg::Minimal => "minimal",
            ManagerArg::Timeout => "timeout",
            ManagerArg::Drowsy => "drowsy",
        }
    }

    /// Parses a manager name (several aliases per manager).
    ///
    /// # Errors
    ///
    /// Returns a [`CliError`] naming the expected spellings.
    pub fn parse(s: &str) -> Result<Self, CliError> {
        match s {
            "powerchop" | "chop" => Ok(ManagerArg::PowerChop),
            "full" | "full-power" => Ok(ManagerArg::Full),
            "minimal" | "min" => Ok(ManagerArg::Minimal),
            "timeout" => Ok(ManagerArg::Timeout),
            "drowsy" => Ok(ManagerArg::Drowsy),
            other => Err(CliError(format!(
                "unknown manager `{other}` (expected powerchop|full|minimal|timeout|drowsy)"
            ))),
        }
    }
}

/// Options shared by run-like commands.
#[derive(Debug, Clone, PartialEq)]
pub struct RunOpts {
    /// Manager to use.
    pub manager: ManagerArg,
    /// Instruction budget.
    pub budget: u64,
    /// Workload scale factor.
    pub scale: f64,
    /// Emit machine-readable JSON instead of the human summary.
    pub json: bool,
    /// Fault-schedule seed (`None` uses the default when faults run).
    pub seed: Option<u64>,
    /// Use the 10× pathological fault rates.
    pub storm: bool,
    /// Chrome trace-event JSON output path (enables the flight recorder).
    pub trace: Option<String>,
    /// Prometheus metrics output path (enables the flight recorder).
    pub metrics: Option<String>,
    /// Worker threads for fan-out commands (`None` resolves through
    /// `POWERCHOP_JOBS` and then the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Native-JIT mode override (`None` honours `POWERCHOP_JIT`, then
    /// auto). JIT-on and JIT-off runs produce bit-identical reports; this
    /// only selects how guest code executes.
    pub jit: Option<powerchop::JitMode>,
}

impl RunOpts {
    /// Whether any flag asked for the flight recorder.
    #[must_use]
    pub fn wants_telemetry(&self) -> bool {
        self.trace.is_some() || self.metrics.is_some()
    }
}

impl Default for RunOpts {
    fn default() -> Self {
        RunOpts {
            manager: ManagerArg::PowerChop,
            budget: 8_000_000,
            scale: 1.0,
            json: false,
            seed: None,
            storm: false,
            trace: None,
            metrics: None,
            jobs: None,
            jit: None,
        }
    }
}

/// A parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// `help`
    Help,
    /// `info` — print the design points.
    Info,
    /// `list [suite]` — list benchmarks.
    List {
        /// Optional suite filter (`spec-int`, `spec-fp`, `parsec`, `mobile`).
        suite: Option<String>,
    },
    /// `run <bench>` — run one benchmark and print its report.
    Run {
        /// Benchmark name.
        bench: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `run --all` — run every benchmark on the job pool and print each
    /// report (in benchmark order, regardless of thread count).
    RunAll {
        /// Run options.
        opts: RunOpts,
    },
    /// `compare <bench>` — full-power vs PowerChop.
    Compare {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `timeline <bench>` — per-window phase/policy timeline.
    Timeline {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `asm <file>` — assemble a guest-ISA text file and run it.
    Asm {
        /// Path to the assembly source.
        path: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `profile <bench>` — architectural instruction-mix profile.
    Profile {
        /// Benchmark name.
        bench: String,
        /// Run options (manager ignored).
        opts: RunOpts,
    },
    /// `trace <bench>` — run with the flight recorder and render the
    /// event-stream phase/gating timeline in the terminal.
    Trace {
        /// Benchmark name.
        bench: String,
        /// Run options.
        opts: RunOpts,
    },
    /// `stress [bench]` — run under deterministic fault injection and
    /// report survival, degradation activity and bounded slowdown.
    Stress {
        /// Benchmark to stress; `None` stresses every benchmark.
        bench: Option<String>,
        /// Run options.
        opts: RunOpts,
    },
    /// `checkpoint <bench>` — run until an instruction mark and write a
    /// crash-safe snapshot.
    Checkpoint {
        /// Benchmark name.
        bench: String,
        /// Instructions to retire before snapshotting.
        at: u64,
        /// Snapshot output path (`None` uses `<bench>.ckpt`).
        out: Option<String>,
        /// Run options.
        opts: RunOpts,
    },
    /// `resume <file>` — restore a snapshot, run it to completion and
    /// print the report.
    Resume {
        /// Snapshot path.
        path: String,
        /// Emit the report as JSON.
        json: bool,
    },
    /// `supervise [bench...]` — crash-safe supervised batch sweep with
    /// deadlines, retries, panic isolation and a resumable journal.
    Supervise {
        /// Benchmarks to sweep; empty sweeps every benchmark.
        benches: Vec<String>,
        /// Run options.
        opts: RunOpts,
        /// Supervisor tuning.
        sup: SuperviseOpts,
    },
    /// `serve` — long-lived TCP daemon speaking newline-delimited JSON
    /// requests, with a Prometheus `/metrics` endpoint.
    Serve {
        /// Daemon tuning.
        opts: ServeOpts,
    },
    /// `soak` — boot an in-process daemon and drive a seeded storm of
    /// hostile and honest clients against it, then report whether it
    /// stayed correct and drained cleanly.
    Soak {
        /// Storm tuning.
        opts: SoakOpts,
    },
    /// `top` — live terminal dashboard over a running daemon: polls
    /// `/metrics` and the `health` op and renders qps, in-flight,
    /// latency quantiles, breaker/respawn/recovery state and a
    /// sparkline history.
    Top {
        /// Dashboard tuning.
        opts: TopOpts,
    },
}

/// `top` dashboard tuning knobs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopOpts {
    /// Daemon address to poll.
    pub addr: String,
    /// Milliseconds between polls.
    pub interval_ms: u64,
    /// Frames to render before exiting (0 runs until the daemon goes
    /// away or the terminal is closed).
    pub frames: u64,
}

impl Default for TopOpts {
    fn default() -> Self {
        TopOpts {
            addr: "127.0.0.1:7077".into(),
            interval_ms: 1_000,
            frames: 0,
        }
    }
}

/// `serve` daemon tuning knobs (mirrors `powerchop_serve::ServerConfig`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOpts {
    /// Address to listen on (`host:port`; port 0 picks an ephemeral one).
    pub addr: String,
    /// Simulation worker threads (`None` resolves through
    /// `POWERCHOP_JOBS` and then the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Waiting jobs admitted before `submit` sheds load with a busy
    /// reply.
    pub queue_depth: usize,
    /// Result-cache capacity in entries (0 disables the cache).
    pub cache_entries: usize,
    /// Per-request wall-clock deadline in milliseconds (0 disables the
    /// watchdog).
    pub deadline_ms: u64,
    /// Largest accepted request line in bytes.
    pub max_request_bytes: usize,
    /// Largest accepted per-run instruction budget.
    pub max_budget: u64,
    /// Concurrent connections admitted before the listener sheds new
    /// sockets with an `overloaded` reply.
    pub max_connections: usize,
    /// Per-socket read timeout in milliseconds (0 disables it).
    pub read_timeout_ms: u64,
    /// Per-socket write timeout in milliseconds (0 disables it).
    pub write_timeout_ms: u64,
    /// Per-connection cap on unflushed reply bytes before a slow
    /// consumer is disconnected with a typed 408.
    pub max_outbox_bytes: usize,
    /// Allow fault-injection ops (`"chaos"` on run requests).
    pub chaos_ops: bool,
    /// Write-ahead journal + checkpoint-spill directory (`None`
    /// disables crash consistency).
    pub journal_dir: Option<String>,
    /// Persistent result-cache directory (`None` keeps the cache
    /// memory-only).
    pub cache_dir: Option<String>,
    /// Instructions between checkpoint spills of in-flight runs.
    pub spill_every: u64,
    /// Run under the self-healing supervisor: the daemon is respawned
    /// after crashes at a bounded rate (requires `--journal-dir` to be
    /// useful, but works without it).
    pub supervised: bool,
    /// Supervisor give-up threshold: crashes tolerated inside the
    /// restart window before the supervisor latches a storm verdict.
    pub max_restarts: u32,
    /// Supervisor restart-rate window in milliseconds.
    pub restart_window_ms: u64,
    /// Structured JSONL access-log path (`None` disables the log).
    pub access_log: Option<String>,
    /// End-to-end latency threshold promoting a request to a detailed
    /// access-log record (`None` never promotes).
    pub slow_ms: Option<u64>,
    /// Trace-id seed (`None` uses per-process OS entropy; fixing it
    /// makes the trace-id sequence deterministic).
    pub seed: Option<u64>,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts {
            addr: "127.0.0.1:7077".into(),
            jobs: None,
            queue_depth: 16,
            cache_entries: 64,
            deadline_ms: 120_000,
            max_request_bytes: 1 << 20,
            max_budget: 1_000_000_000,
            max_connections: 64,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            max_outbox_bytes: 1 << 20,
            chaos_ops: false,
            journal_dir: None,
            cache_dir: None,
            spill_every: 2_000_000,
            supervised: false,
            max_restarts: 10,
            restart_window_ms: 10_000,
            access_log: None,
            slow_ms: None,
            seed: None,
        }
    }
}

/// `soak` storm tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakOpts {
    /// Master seed: every client's chaos schedule and request mix forks
    /// deterministically from it.
    pub seed: u64,
    /// Hostile clients (chaos-wrapped sockets).
    pub hostile: usize,
    /// Honest clients (well-formed requests, replies must be
    /// bit-identical to a local run).
    pub honest: usize,
    /// Requests each client sends.
    pub requests: usize,
    /// Injected worker kills (chaos `run` ops that panic mid-run).
    pub kill_workers: usize,
    /// Instruction budget per soak run (kept small: the storm exercises
    /// the transport, not the simulator).
    pub budget: u64,
    /// Workload scale factor for soak runs.
    pub scale: f64,
    /// Daemon worker threads (`None` resolves through `POWERCHOP_JOBS`
    /// and then the machine's available parallelism).
    pub jobs: Option<usize>,
    /// Crash-recovery drill cycles: each cycle SIGKILLs a real child
    /// daemon mid-sweep and restarts it, then the final boot must
    /// finish the sweep from its spill checkpoints with zero re-done
    /// chunks and bit-identical reports. Zero skips the drill.
    pub crash_cycles: usize,
}

impl Default for SoakOpts {
    fn default() -> Self {
        SoakOpts {
            seed: powerchop_serve::DEFAULT_FAULT_SEED,
            hostile: 4,
            honest: 2,
            requests: 8,
            kill_workers: 1,
            budget: 200_000,
            scale: 0.05,
            jobs: Some(2),
            crash_cycles: 0,
        }
    }
}

/// Supervisor tuning knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct SuperviseOpts {
    /// State directory holding the journal and checkpoints.
    pub dir: String,
    /// Per-run wall-clock deadline in milliseconds.
    pub deadline_ms: u64,
    /// Maximum attempts per benchmark (first try + retries).
    pub max_attempts: u32,
    /// Base retry backoff in milliseconds (doubles per attempt).
    pub backoff_ms: u64,
    /// Instructions between periodic checkpoints.
    pub checkpoint_every: u64,
}

impl Default for SuperviseOpts {
    fn default() -> Self {
        SuperviseOpts {
            dir: "powerchop-supervise".into(),
            deadline_ms: 120_000,
            max_attempts: 3,
            backoff_ms: 100,
            checkpoint_every: 2_000_000,
        }
    }
}

/// Usage text printed by `help` and on parse errors.
pub const USAGE: &str = "\
powerchop-cli — run the PowerChop reproduction from the command line

USAGE:
    powerchop-cli <COMMAND> [OPTIONS]

COMMANDS:
    list [suite]           list benchmarks (suites: spec-int spec-fp parsec mobile)
    info                   print the server/mobile design points (Table I)
    run <bench>|--all      run one benchmark (or every benchmark) and print the
                           full report(s)
    compare <bench>        run full-power and PowerChop, print the comparison
    timeline <bench>       print the per-window phase/policy timeline
    asm <file.s>           assemble a guest-ISA text file and run it
    profile <bench>        architectural instruction-mix profile (no timing)
    trace <bench>          run with the flight recorder on and print the
                           phase/gating timeline from the event stream
    stress [bench]         run under deterministic fault injection (all benchmarks
                           when no operand) and report survival + degradation
    checkpoint <bench>     run until --at instructions, write a crash-safe snapshot
    resume <file.ckpt>     restore a snapshot, run to completion, print the report
    supervise [bench...]   crash-safe supervised sweep (all benchmarks when no
                           operand): deadlines, retries, panic isolation, and a
                           journal that survives kill -9
    serve                  long-lived TCP daemon: newline-delimited JSON requests
                           (run/sweep/status/health/metrics/shutdown), result
                           cache, bounded queue, connection hardening, and an
                           HTTP GET /metrics endpoint
    soak                   chaos soak: boot an in-process daemon, drive a seeded
                           storm of hostile + honest clients, verify honest
                           replies stayed bit-identical and the drain was clean
    top                    live terminal dashboard over a running daemon: qps,
                           in-flight, latency quantiles, breaker/recovery state
                           and a sparkline history from /metrics + health
    help                   show this message

OPTIONS (run/compare/timeline/asm/stress/checkpoint/supervise):
    --manager <m>          powerchop|full|minimal|timeout|drowsy [default: powerchop]
    --budget <N>           instruction budget                    [default: 8000000]
    --scale <F>            workload scale factor                 [default: 1.0]
    --json                 (run/asm/stress/resume) print the report as JSON
    --seed <N>             (run/trace/stress/checkpoint/supervise) fault seed
    --storm                (run/trace/stress/checkpoint/supervise) 10x fault rates
    --trace <file>         (run/trace/stress/supervise) write a Chrome trace-event
                           JSON file (stress/supervise write one per benchmark)
    --metrics <file>       (run/trace/stress/supervise) write a Prometheus text
                           metrics dump (stress/supervise write one per benchmark)
    --jobs <N>             (run --all/stress/supervise) worker threads for the
                           sweep [default: $POWERCHOP_JOBS, then the number of
                           CPUs]; output is identical at every thread count
    --jit <m>              on|off|auto: native trace JIT for guest execution
                           [default: $POWERCHOP_JIT, then auto]. Reports are
                           bit-identical in every mode; only wall-clock changes

OPTIONS (checkpoint):
    --at <N>               instructions before the snapshot      [default: budget/2]
    --out <file>           snapshot path                         [default: <bench>.ckpt]

OPTIONS (supervise):
    --dir <path>           journal + checkpoint directory [default: powerchop-supervise]
    --deadline-ms <N>      per-run wall-clock deadline    [default: 120000]
    --max-attempts <N>     attempts per benchmark         [default: 3]
    --backoff-ms <N>       base retry backoff (doubles)   [default: 100]
    --checkpoint-every <N> instructions between snapshots [default: 2000000]

OPTIONS (serve):
    --addr <host:port>     listen address (port 0 = ephemeral) [default: 127.0.0.1:7077]
    --jobs <N>             simulation worker threads      [default: $POWERCHOP_JOBS,
                           then the number of CPUs]
    --queue-depth <N>      waiting jobs before busy replies    [default: 16]
    --cache-entries <N>    LRU result-cache size (0 disables)  [default: 64]
    --deadline-ms <N>      per-request deadline (0 disables)   [default: 120000]
    --max-request-bytes <N> largest accepted request line      [default: 1048576]
    --max-budget <N>       largest accepted instruction budget [default: 1000000000]
    --max-connections <N>  concurrent connections before typed 503 shedding
                           [default: 64]
    --read-timeout-ms <N>  per-socket read timeout, 0 disables  [default: 30000]
    --write-timeout-ms <N> per-socket write timeout, 0 disables [default: 10000]
    --max-outbox-bytes <N> unflushed reply bytes one connection may queue before
                           the slow consumer is shed with a typed 408
                           [default: 1048576]
    --chaos-ops            allow fault-injection ops (worker-kill runs); for
                           test harnesses only
    --journal-dir <path>   fsync'd write-ahead intent journal + checkpoint
                           spills: accepted requests survive kill -9 and are
                           resumed on the next boot (omit to disable)
    --cache-dir <path>     persistent result-cache log: cache hits survive a
                           restart bit-identically (omit to keep memory-only)
    --spill-every <N>      instructions between checkpoint spills of in-flight
                           runs                                [default: 2000000]
    --supervised           self-healing mode: respawn the daemon after crashes
                           at a bounded rate, give up on a crash storm
    --max-restarts <N>     crashes tolerated per window before giving up
                           [default: 10]
    --restart-window-ms <N> restart-rate window                [default: 10000]
    --access-log <path>    structured JSONL access log: one RFC 8259 record per
                           request with its trace id, op, status and full span
                           breakdown (omit to disable)
    --slow-ms <N>          promote requests slower than N ms end to end to a
                           detailed access-log record (omit to never promote)
    --seed <N>             trace-id seed; fixing it makes the trace-id sequence
                           deterministic [default: per-process OS entropy]

OPTIONS (top):
    --addr <host:port>     daemon address to poll     [default: 127.0.0.1:7077]
    --interval-ms <N>      milliseconds between polls [default: 1000]
    --frames <N>           frames to render before exiting (0 = run until the
                           daemon goes away)          [default: 0]

OPTIONS (soak):
    --seed <N>             master storm seed (forks per client) [default: 3405691582]
    --hostile <N>          hostile (chaos-wrapped) clients      [default: 4]
    --honest <N>           honest clients                       [default: 2]
    --requests <N>         requests per client                  [default: 8]
    --kill-workers <N>     injected mid-run worker kills        [default: 1]
    --budget <N>           instruction budget per soak run      [default: 200000]
    --scale <F>            workload scale factor                [default: 0.05]
    --jobs <N>             daemon worker threads                [default: 2]
    --crash-cycles <N>     crash-recovery drill: SIGKILL a real child daemon
                           mid-sweep N times, restart it, then verify the sweep
                           finishes from its spills with zero re-done chunks
                           and bit-identical reports            [default: 0 (off)]
";

/// Parses the shared run flags, handing unrecognized flags to `extra`
/// (which returns whether it consumed the flag).
fn parse_flags(
    rest: &[String],
    mut extra: impl FnMut(&str, &mut dyn FnMut() -> Result<String, CliError>) -> Result<bool, CliError>,
) -> Result<RunOpts, CliError> {
    let mut opts = RunOpts::default();
    let mut it = rest.iter();
    while let Some(flag) = it.next() {
        let mut value = || {
            it.next()
                .cloned()
                .ok_or_else(|| CliError(format!("{flag} requires a value")))
        };
        match flag.as_str() {
            "--manager" => opts.manager = ManagerArg::parse(&value()?)?,
            "--budget" => opts.budget = parse_positive(flag, &value()?)?,
            "--scale" => opts.scale = parse_scale(flag, &value()?)?,
            "--json" => opts.json = true,
            "--seed" => opts.seed = Some(parse_int(flag, &value()?)?),
            "--storm" => opts.storm = true,
            "--trace" => opts.trace = Some(value()?),
            "--metrics" => opts.metrics = Some(value()?),
            "--jit" => {
                let v = value()?;
                opts.jit =
                    Some(powerchop::JitMode::parse(&v).ok_or_else(|| {
                        CliError(format!("--jit expects on|off|auto, got `{v}`"))
                    })?);
            }
            "--jobs" => {
                let n: usize = parse_int(flag, &value()?)?;
                opts.jobs = Some(if n == 0 {
                    // An empty pool can run nothing; clamp rather than
                    // error so scripted `--jobs $(nproc --ignore=...)`
                    // invocations degrade gracefully.
                    eprintln!("warning: --jobs 0 would make an empty pool; clamping to 1 worker");
                    1
                } else {
                    n
                });
            }
            other => {
                if !extra(other, &mut value)? {
                    return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}")));
                }
            }
        }
    }
    Ok(opts)
}

fn parse_opts(rest: &[String]) -> Result<RunOpts, CliError> {
    parse_flags(rest, |_, _| Ok(false))
}

/// An integer type a numeric flag can carry, with a printable range for
/// error messages.
trait NumFlag: std::str::FromStr + Copy {
    /// The type's full value range, spelled for humans.
    const RANGE: &'static str;
    /// Whether the parsed value is zero (for the `>= 1` checks).
    fn is_zero(self) -> bool;
}

impl NumFlag for u32 {
    const RANGE: &'static str = "0..=4294967295";
    fn is_zero(self) -> bool {
        self == 0
    }
}

impl NumFlag for u64 {
    const RANGE: &'static str = "0..=18446744073709551615";
    fn is_zero(self) -> bool {
        self == 0
    }
}

impl NumFlag for usize {
    const RANGE: &'static str = "0..=18446744073709551615";
    fn is_zero(self) -> bool {
        self == 0
    }
}

/// Parses a numeric flag value. The error names the flag, quotes the
/// offending raw value, carries the parser's own diagnosis (empty,
/// non-digit, overflow, ...) and states the expected range — everything
/// needed to fix the invocation without reading the source.
fn parse_int<T: NumFlag>(flag: &str, raw: &str) -> Result<T, CliError>
where
    <T as std::str::FromStr>::Err: std::fmt::Display,
{
    raw.parse().map_err(|e| {
        CliError(format!(
            "{flag}: invalid value {raw:?}: {e} (expected an integer in {})",
            T::RANGE
        ))
    })
}

/// Like [`parse_int`], additionally rejecting zero (for counts and
/// budgets where an empty quantity is meaningless).
fn parse_positive<T: NumFlag>(flag: &str, raw: &str) -> Result<T, CliError>
where
    <T as std::str::FromStr>::Err: std::fmt::Display,
{
    let n: T = parse_int(flag, raw)?;
    if n.is_zero() {
        return Err(CliError(format!(
            "{flag}: invalid value {raw:?}: must be at least 1"
        )));
    }
    Ok(n)
}

/// Parses a scale-factor flag: any finite number greater than zero.
/// `f64::from_str` happily accepts `NaN` and `inf`, which would poison
/// every downstream size computation, so they are rejected here.
fn parse_scale(flag: &str, raw: &str) -> Result<f64, CliError> {
    let v: f64 = raw.parse().map_err(|e| {
        CliError(format!(
            "{flag}: invalid value {raw:?}: {e} (expected a number)"
        ))
    })?;
    if !v.is_finite() || v <= 0.0 {
        return Err(CliError(format!(
            "{flag}: invalid value {raw:?}: must be a finite number greater than 0"
        )));
    }
    Ok(v)
}

/// Parses `argv` (without the program name) into a [`Command`].
///
/// # Errors
///
/// Returns usage errors for unknown commands/flags and missing operands.
pub fn parse(argv: &[String]) -> Result<Command, CliError> {
    let Some(command) = argv.first() else {
        return Ok(Command::Help);
    };
    let operand = || -> Result<String, CliError> {
        argv.get(1)
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .ok_or_else(|| CliError(format!("`{command}` needs an operand\n\n{USAGE}")))
    };
    match command.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "list" => Ok(Command::List {
            suite: argv.get(1).cloned(),
        }),
        "run" => {
            if argv.get(1).map(String::as_str) == Some("--all") {
                return Ok(Command::RunAll {
                    opts: parse_opts(&argv[2..])?,
                });
            }
            Ok(Command::Run {
                bench: operand()?,
                opts: parse_opts(&argv[2..])?,
            })
        }
        "compare" => Ok(Command::Compare {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "timeline" => Ok(Command::Timeline {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "asm" => Ok(Command::Asm {
            path: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "profile" => Ok(Command::Profile {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "trace" => Ok(Command::Trace {
            bench: operand()?,
            opts: parse_opts(&argv[2..])?,
        }),
        "stress" => {
            // The operand is optional: `stress` alone stresses everything.
            let bench = argv.get(1).filter(|a| !a.starts_with("--")).cloned();
            let rest = if bench.is_some() {
                &argv[2..]
            } else {
                &argv[1..]
            };
            Ok(Command::Stress {
                bench,
                opts: parse_opts(rest)?,
            })
        }
        "checkpoint" => {
            let bench = operand()?;
            let mut at = None;
            let mut out = None;
            let opts = parse_flags(&argv[2..], |flag, value| match flag {
                "--at" => {
                    at = Some(parse_int(flag, &value()?)?);
                    Ok(true)
                }
                "--out" => {
                    out = Some(value()?);
                    Ok(true)
                }
                _ => Ok(false),
            })?;
            Ok(Command::Checkpoint {
                bench,
                at: at.unwrap_or(opts.budget / 2),
                out,
                opts,
            })
        }
        "resume" => {
            let path = operand()?;
            let mut json = false;
            for flag in &argv[2..] {
                match flag.as_str() {
                    "--json" => json = true,
                    other => return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}"))),
                }
            }
            Ok(Command::Resume { path, json })
        }
        "supervise" => {
            // Leading non-flag operands are benchmark names.
            let mut benches = Vec::new();
            let mut i = 1;
            while let Some(a) = argv.get(i) {
                if a.starts_with("--") {
                    break;
                }
                benches.push(a.clone());
                i += 1;
            }
            let mut sup = SuperviseOpts::default();
            let opts = parse_flags(&argv[i..], |flag, value| match flag {
                "--dir" => {
                    sup.dir = value()?;
                    Ok(true)
                }
                "--deadline-ms" => {
                    sup.deadline_ms = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                "--max-attempts" => {
                    sup.max_attempts = parse_positive(flag, &value()?)?;
                    Ok(true)
                }
                "--backoff-ms" => {
                    sup.backoff_ms = parse_int(flag, &value()?)?;
                    Ok(true)
                }
                "--checkpoint-every" => {
                    sup.checkpoint_every = parse_positive(flag, &value()?)?;
                    Ok(true)
                }
                _ => Ok(false),
            })?;
            Ok(Command::Supervise { benches, opts, sup })
        }
        "serve" => {
            let mut opts = ServeOpts::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{flag} requires a value")))
                };
                match flag.as_str() {
                    "--addr" => opts.addr = value()?,
                    "--jobs" => {
                        let n: usize = parse_int(flag, &value()?)?;
                        opts.jobs = Some(if n == 0 {
                            eprintln!(
                                "warning: --jobs 0 would make an empty pool; clamping to 1 worker"
                            );
                            1
                        } else {
                            n
                        });
                    }
                    "--queue-depth" => opts.queue_depth = parse_positive(flag, &value()?)?,
                    "--cache-entries" => opts.cache_entries = parse_int(flag, &value()?)?,
                    "--deadline-ms" => opts.deadline_ms = parse_int(flag, &value()?)?,
                    "--max-request-bytes" => {
                        opts.max_request_bytes = parse_positive(flag, &value()?)?;
                    }
                    "--max-budget" => opts.max_budget = parse_positive(flag, &value()?)?,
                    "--max-connections" => opts.max_connections = parse_positive(flag, &value()?)?,
                    "--read-timeout-ms" => opts.read_timeout_ms = parse_int(flag, &value()?)?,
                    "--write-timeout-ms" => opts.write_timeout_ms = parse_int(flag, &value()?)?,
                    "--max-outbox-bytes" => {
                        opts.max_outbox_bytes = parse_positive(flag, &value()?)?;
                    }
                    "--chaos-ops" => opts.chaos_ops = true,
                    "--journal-dir" => opts.journal_dir = Some(value()?),
                    "--cache-dir" => opts.cache_dir = Some(value()?),
                    "--spill-every" => opts.spill_every = parse_positive(flag, &value()?)?,
                    "--supervised" => opts.supervised = true,
                    "--max-restarts" => opts.max_restarts = parse_positive(flag, &value()?)?,
                    "--restart-window-ms" => {
                        opts.restart_window_ms = parse_positive(flag, &value()?)?;
                    }
                    "--access-log" => opts.access_log = Some(value()?),
                    "--slow-ms" => opts.slow_ms = Some(parse_int(flag, &value()?)?),
                    "--seed" => opts.seed = Some(parse_int(flag, &value()?)?),
                    other => return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}"))),
                }
            }
            Ok(Command::Serve { opts })
        }
        "top" => {
            let mut opts = TopOpts::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{flag} requires a value")))
                };
                match flag.as_str() {
                    "--addr" => opts.addr = value()?,
                    "--interval-ms" => opts.interval_ms = parse_positive(flag, &value()?)?,
                    "--frames" => opts.frames = parse_int(flag, &value()?)?,
                    other => return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}"))),
                }
            }
            Ok(Command::Top { opts })
        }
        "soak" => {
            let mut opts = SoakOpts::default();
            let mut it = argv[1..].iter();
            while let Some(flag) = it.next() {
                let mut value = || {
                    it.next()
                        .cloned()
                        .ok_or_else(|| CliError(format!("{flag} requires a value")))
                };
                match flag.as_str() {
                    "--seed" => opts.seed = parse_int(flag, &value()?)?,
                    "--hostile" => opts.hostile = parse_int(flag, &value()?)?,
                    "--honest" => opts.honest = parse_int(flag, &value()?)?,
                    "--requests" => opts.requests = parse_positive(flag, &value()?)?,
                    "--kill-workers" => opts.kill_workers = parse_int(flag, &value()?)?,
                    "--budget" => opts.budget = parse_positive(flag, &value()?)?,
                    "--scale" => opts.scale = parse_scale(flag, &value()?)?,
                    "--jobs" => opts.jobs = Some(parse_positive(flag, &value()?)?),
                    "--crash-cycles" => opts.crash_cycles = parse_int(flag, &value()?)?,
                    other => return Err(CliError(format!("unknown option `{other}`\n\n{USAGE}"))),
                }
            }
            Ok(Command::Soak { opts })
        }
        other => Err(CliError(format!("unknown command `{other}`\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(str::to_owned).collect()
    }

    #[test]
    fn empty_argv_is_help() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
    }

    #[test]
    fn run_with_defaults() {
        let c = parse(&argv("run gobmk")).unwrap();
        assert_eq!(
            c,
            Command::Run {
                bench: "gobmk".into(),
                opts: RunOpts::default()
            }
        );
    }

    #[test]
    fn run_with_options() {
        let c = parse(&argv(
            "run namd --manager timeout --budget 1000 --scale 0.5",
        ))
        .unwrap();
        match c {
            Command::Run { bench, opts } => {
                assert_eq!(bench, "namd");
                assert_eq!(opts.manager, ManagerArg::Timeout);
                assert_eq!(opts.budget, 1000);
                assert!((opts.scale - 0.5).abs() < 1e-12);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn manager_aliases() {
        assert_eq!(ManagerArg::parse("drowsy").unwrap(), ManagerArg::Drowsy);
        assert_eq!(ManagerArg::parse("chop").unwrap(), ManagerArg::PowerChop);
        assert_eq!(ManagerArg::parse("full-power").unwrap(), ManagerArg::Full);
        assert_eq!(ManagerArg::parse("min").unwrap(), ManagerArg::Minimal);
        assert!(ManagerArg::parse("bogus").is_err());
    }

    #[test]
    fn errors_on_missing_operand_and_bad_flags() {
        assert!(parse(&argv("run")).is_err());
        assert!(parse(&argv("run gobmk --bogus 1")).is_err());
        assert!(parse(&argv("run gobmk --budget abc")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
    }

    #[test]
    fn stress_parses_with_and_without_operand() {
        match parse(&argv("stress --seed 42 --storm --budget 1000")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench, None);
                assert_eq!(opts.seed, Some(42));
                assert!(opts.storm);
                assert_eq!(opts.budget, 1000);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("stress hmmer --json")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench.as_deref(), Some("hmmer"));
                assert!(opts.json);
                assert_eq!(opts.seed, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("stress --seed nope")).is_err());
    }

    #[test]
    fn checkpoint_resume_supervise_parse() {
        match parse(&argv("checkpoint hmmer --at 1000 --out snap.ckpt --seed 7")).unwrap() {
            Command::Checkpoint {
                bench,
                at,
                out,
                opts,
            } => {
                assert_eq!(bench, "hmmer");
                assert_eq!(at, 1000);
                assert_eq!(out.as_deref(), Some("snap.ckpt"));
                assert_eq!(opts.seed, Some(7));
            }
            other => panic!("unexpected {other:?}"),
        }
        // `--at` defaults to half the budget.
        match parse(&argv("checkpoint hmmer --budget 4000")).unwrap() {
            Command::Checkpoint { at, out, .. } => {
                assert_eq!(at, 2000);
                assert_eq!(out, None);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(
            parse(&argv("resume snap.ckpt --json")).unwrap(),
            Command::Resume {
                path: "snap.ckpt".into(),
                json: true
            }
        );
        assert!(parse(&argv("resume snap.ckpt --bogus")).is_err());
        match parse(&argv(
            "supervise hmmer namd --dir state --deadline-ms 500 --max-attempts 2 \
             --backoff-ms 10 --checkpoint-every 5000 --budget 9000",
        ))
        .unwrap()
        {
            Command::Supervise { benches, opts, sup } => {
                assert_eq!(benches, vec!["hmmer".to_owned(), "namd".to_owned()]);
                assert_eq!(opts.budget, 9000);
                assert_eq!(sup.dir, "state");
                assert_eq!(sup.deadline_ms, 500);
                assert_eq!(sup.max_attempts, 2);
                assert_eq!(sup.backoff_ms, 10);
                assert_eq!(sup.checkpoint_every, 5000);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("supervise")).unwrap() {
            Command::Supervise { benches, sup, .. } => {
                assert!(benches.is_empty());
                assert_eq!(sup, SuperviseOpts::default());
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn manager_canonical_names_round_trip() {
        for m in [
            ManagerArg::PowerChop,
            ManagerArg::Full,
            ManagerArg::Minimal,
            ManagerArg::Timeout,
            ManagerArg::Drowsy,
        ] {
            assert_eq!(ManagerArg::parse(m.as_str()).unwrap(), m);
        }
    }

    #[test]
    fn trace_and_metrics_flags_parse() {
        match parse(&argv(
            "run gobmk --trace out.json --metrics out.prom --seed 9",
        ))
        .unwrap()
        {
            Command::Run { opts, .. } => {
                assert_eq!(opts.trace.as_deref(), Some("out.json"));
                assert_eq!(opts.metrics.as_deref(), Some("out.prom"));
                assert_eq!(opts.seed, Some(9));
                assert!(opts.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("trace hmmer --storm --budget 5000")).unwrap() {
            Command::Trace { bench, opts } => {
                assert_eq!(bench, "hmmer");
                assert!(opts.storm);
                assert_eq!(opts.budget, 5000);
                assert!(!opts.wants_telemetry());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("trace")).is_err());
        assert!(parse(&argv("run gobmk --trace")).is_err());
    }

    #[test]
    fn jobs_flag_and_run_all_parse() {
        match parse(&argv("run --all --jobs 4 --budget 1000 --json")).unwrap() {
            Command::RunAll { opts } => {
                assert_eq!(opts.jobs, Some(4));
                assert_eq!(opts.budget, 1000);
                assert!(opts.json);
            }
            other => panic!("unexpected {other:?}"),
        }
        match parse(&argv("stress --jobs 2")).unwrap() {
            Command::Stress { bench, opts } => {
                assert_eq!(bench, None);
                assert_eq!(opts.jobs, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
        // An unspecified `--jobs` resolves later (env, then CPU count).
        match parse(&argv("run gobmk")).unwrap() {
            Command::Run { opts, .. } => assert_eq!(opts.jobs, None),
            other => panic!("unexpected {other:?}"),
        }
        // `--jobs 0` clamps to one worker (with a warning) instead of
        // erroring out or building an empty pool.
        match parse(&argv("run --all --jobs 0")).unwrap() {
            Command::RunAll { opts } => assert_eq!(opts.jobs, Some(1)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("run --all --jobs nope")).is_err());
    }

    #[test]
    fn numeric_flag_errors_name_flag_value_and_range() {
        let err = parse(&argv("run gobmk --budget 12x")).unwrap_err().0;
        assert!(err.contains("--budget"), "{err}");
        assert!(err.contains("\"12x\""), "{err}");
        assert!(err.contains("0..=18446744073709551615"), "{err}");
        let err = parse(&argv("supervise --max-attempts -1")).unwrap_err().0;
        assert!(err.contains("--max-attempts"), "{err}");
        assert!(err.contains("\"-1\""), "{err}");
        assert!(err.contains("0..=4294967295"), "{err}");
    }

    #[test]
    fn numeric_flags_reject_out_of_range_values() {
        // Zero budgets/counts are meaningless and refused up front.
        assert!(parse(&argv("run gobmk --budget 0")).is_err());
        assert!(parse(&argv("supervise --max-attempts 0")).is_err());
        assert!(parse(&argv("supervise --checkpoint-every 0")).is_err());
        // A scale must be a finite number greater than zero; the float
        // parser itself would happily accept NaN/inf.
        for bad in ["0", "-1", "nan", "NaN", "inf", "-inf", "1e999"] {
            let err = parse(&[
                "run".into(),
                "gobmk".into(),
                "--scale".into(),
                (*bad).into(),
            ])
            .unwrap_err()
            .0;
            assert!(err.contains("--scale"), "{bad}: {err}");
        }
        // Zero remains meaningful where it has defined semantics.
        assert!(parse(&argv("supervise --deadline-ms 0")).is_ok());
        assert!(parse(&argv("checkpoint hmmer --at 0")).is_ok());
    }

    #[test]
    fn serve_command_parses_with_defaults_and_overrides() {
        assert_eq!(
            parse(&argv("serve")).unwrap(),
            Command::Serve {
                opts: ServeOpts::default()
            }
        );
        match parse(&argv(
            "serve --addr 127.0.0.1:0 --jobs 2 --queue-depth 3 --cache-entries 5 \
             --deadline-ms 9000 --max-request-bytes 4096 --max-budget 500000 \
             --max-connections 7 --read-timeout-ms 1500 --write-timeout-ms 900 \
             --max-outbox-bytes 65536 --chaos-ops",
        ))
        .unwrap()
        {
            Command::Serve { opts } => {
                assert_eq!(opts.addr, "127.0.0.1:0");
                assert_eq!(opts.jobs, Some(2));
                assert_eq!(opts.queue_depth, 3);
                assert_eq!(opts.cache_entries, 5);
                assert_eq!(opts.deadline_ms, 9000);
                assert_eq!(opts.max_request_bytes, 4096);
                assert_eq!(opts.max_budget, 500_000);
                assert_eq!(opts.max_connections, 7);
                assert_eq!(opts.read_timeout_ms, 1500);
                assert_eq!(opts.write_timeout_ms, 900);
                assert_eq!(opts.max_outbox_bytes, 65_536);
                assert!(opts.chaos_ops);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(!ServeOpts::default().chaos_ops, "chaos ops are opt-in");
        assert_eq!(ServeOpts::default().max_outbox_bytes, 1 << 20);
        assert!(parse(&argv("serve --queue-depth 0")).is_err());
        assert!(parse(&argv("serve --max-connections 0")).is_err());
        // A zero outbox cap would shed every pipelined client instantly.
        assert!(parse(&argv("serve --max-outbox-bytes 0")).is_err());
        assert!(parse(&argv("serve --bogus")).is_err());
        // Durability and supervision are opt-in and parse together.
        match parse(&argv(
            "serve --journal-dir wal --cache-dir cache --spill-every 50000 \
             --supervised --max-restarts 3 --restart-window-ms 5000",
        ))
        .unwrap()
        {
            Command::Serve { opts } => {
                assert_eq!(opts.journal_dir.as_deref(), Some("wal"));
                assert_eq!(opts.cache_dir.as_deref(), Some("cache"));
                assert_eq!(opts.spill_every, 50_000);
                assert!(opts.supervised);
                assert_eq!(opts.max_restarts, 3);
                assert_eq!(opts.restart_window_ms, 5_000);
            }
            other => panic!("unexpected {other:?}"),
        }
        let d = ServeOpts::default();
        assert_eq!(d.journal_dir, None, "durability is opt-in");
        assert_eq!(d.cache_dir, None);
        assert!(!d.supervised);
        // A zero spill interval would spill every chunk forever; a zero
        // restart budget could never respawn.
        assert!(parse(&argv("serve --spill-every 0")).is_err());
        assert!(parse(&argv("serve --max-restarts 0")).is_err());
        assert!(parse(&argv("serve --restart-window-ms 0")).is_err());
        assert!(
            parse(&argv("serve --journal-dir")).is_err(),
            "needs a value"
        );
        // Cache 0 (disabled), deadline 0 (no watchdog) and socket
        // timeouts 0 (blocking sockets) stay legal.
        assert!(parse(&argv(
            "serve --cache-entries 0 --deadline-ms 0 --read-timeout-ms 0 --write-timeout-ms 0"
        ))
        .is_ok());
    }

    #[test]
    fn serve_observability_flags_parse() {
        match parse(&argv(
            "serve --access-log access.jsonl --slow-ms 250 --seed 42",
        ))
        .unwrap()
        {
            Command::Serve { opts } => {
                assert_eq!(opts.access_log.as_deref(), Some("access.jsonl"));
                assert_eq!(opts.slow_ms, Some(250));
                assert_eq!(opts.seed, Some(42));
            }
            other => panic!("unexpected {other:?}"),
        }
        let d = ServeOpts::default();
        assert_eq!(d.access_log, None, "the access log is opt-in");
        assert_eq!(d.slow_ms, None);
        assert_eq!(d.seed, None, "trace ids default to entropy");
        // `--slow-ms 0` promotes everything — legal, for harnesses.
        assert!(parse(&argv("serve --slow-ms 0")).is_ok());
        assert!(parse(&argv("serve --access-log")).is_err(), "needs a value");
        assert!(parse(&argv("serve --seed nope")).is_err());
    }

    #[test]
    fn top_command_parses_with_defaults_and_overrides() {
        assert_eq!(
            parse(&argv("top")).unwrap(),
            Command::Top {
                opts: TopOpts::default()
            }
        );
        match parse(&argv("top --addr 127.0.0.1:9 --interval-ms 100 --frames 3")).unwrap() {
            Command::Top { opts } => {
                assert_eq!(opts.addr, "127.0.0.1:9");
                assert_eq!(opts.interval_ms, 100);
                assert_eq!(opts.frames, 3);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A zero poll interval would spin on the daemon.
        assert!(parse(&argv("top --interval-ms 0")).is_err());
        assert!(parse(&argv("top --bogus")).is_err());
    }

    #[test]
    fn soak_command_parses_with_defaults_and_overrides() {
        assert_eq!(
            parse(&argv("soak")).unwrap(),
            Command::Soak {
                opts: SoakOpts::default()
            }
        );
        match parse(&argv(
            "soak --seed 9 --hostile 6 --honest 3 --requests 4 --kill-workers 2 \
             --budget 100000 --scale 0.1 --jobs 1",
        ))
        .unwrap()
        {
            Command::Soak { opts } => {
                assert_eq!(opts.seed, 9);
                assert_eq!(opts.hostile, 6);
                assert_eq!(opts.honest, 3);
                assert_eq!(opts.requests, 4);
                assert_eq!(opts.kill_workers, 2);
                assert_eq!(opts.budget, 100_000);
                assert!((opts.scale - 0.1).abs() < 1e-12);
                assert_eq!(opts.jobs, Some(1));
            }
            other => panic!("unexpected {other:?}"),
        }
        // A storm with no clients at all is legal (it only checks boot +
        // drain), but zero requests per client is meaningless.
        assert!(parse(&argv("soak --hostile 0 --honest 0")).is_ok());
        assert!(parse(&argv("soak --requests 0")).is_err());
        assert!(parse(&argv("soak --bogus")).is_err());
        // The crash-recovery drill is off by default and opt-in by count.
        assert_eq!(SoakOpts::default().crash_cycles, 0);
        match parse(&argv("soak --crash-cycles 3")).unwrap() {
            Command::Soak { opts } => assert_eq!(opts.crash_cycles, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert!(parse(&argv("soak --crash-cycles x")).is_err());
    }

    #[test]
    fn json_flag_parses() {
        match parse(&argv("run gcc --json")).unwrap() {
            Command::Run { opts, .. } => assert!(opts.json),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn list_accepts_optional_suite() {
        assert_eq!(parse(&argv("list")).unwrap(), Command::List { suite: None });
        assert_eq!(
            parse(&argv("list mobile")).unwrap(),
            Command::List {
                suite: Some("mobile".into())
            }
        );
    }

    #[test]
    fn timeout_manager_uses_paper_cycles() {
        match ManagerArg::Timeout.kind() {
            powerchop::ManagerKind::TimeoutVpu { timeout_cycles } => {
                assert_eq!(timeout_cycles, 20_000);
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
