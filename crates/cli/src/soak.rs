//! The chaos-soak harness: boots an in-process `powerchop-serve` daemon
//! and drives a seeded storm of hostile and honest clients against it.
//!
//! Hostile clients wrap their sockets in
//! [`powerchop_resilience::chaos::ChaosStream`], so every frame they
//! send may be delayed, split mid-write, byte-corrupted, truncated or
//! reset — all drawn from one SplitMix64 seed, so a storm replays
//! bit-for-bit. Honest clients send well-formed `run` requests and
//! demand replies bit-identical to a local in-process run. A kill
//! client (when `--kill-workers` is nonzero) sends chaos `run` ops that
//! panic a pool worker mid-run, exercising the supervisor's respawn
//! path on demand.
//!
//! The storm passes only when every reply line received by any client
//! is valid RFC 8259 JSON, every honest reply embedded the exact
//! expected report bytes, every requested worker kill was confirmed
//! (and visible as a respawn in the `health` op), the pool never gave
//! up, and the daemon drained cleanly through an in-protocol shutdown.

use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_faults::SimRng;
use powerchop_resilience::chaos::{ChaosConfig, ChaosSchedule, ChaosStream};
use powerchop_resilience::retry::stream_label;
use powerchop_serve::{report_to_json, Server, ServerConfig};
use powerchop_telemetry::validate_json;
use powerchop_workloads::Scale;

use crate::args::SoakOpts;
use crate::CliError;

/// Benchmarks the storm cycles through. Kept small so the local
/// expected-report precomputation stays fast.
const ROSTER: [&str; 3] = ["hmmer", "namd", "gobmk"];

/// Hard numbers out of one soak storm.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Reply lines received (and validated) across all clients.
    pub replies: u64,
    /// Reply lines that failed RFC 8259 validation (must be 0).
    pub malformed: u64,
    /// Honest requests answered with the exact expected report bytes.
    pub honest_ok: u64,
    /// Honest requests that got a wrong or missing reply (must be 0).
    pub honest_mismatches: u64,
    /// Hostile connections dropped by chaos (truncate/reset) or I/O.
    pub hostile_drops: u64,
    /// Worker kills the storm was asked to inject.
    pub kills_requested: u64,
    /// Worker kills confirmed by a typed 500 reply.
    pub kills_confirmed: u64,
    /// Worker respawns the daemon's `health` op reported afterwards.
    pub worker_respawns: u64,
    /// Circuit-breaker trips the `health` op reported afterwards.
    pub breaker_trips: u64,
    /// Whether the pool latched its restart-storm give-up (must not).
    pub pool_gave_up: bool,
    /// Whether the in-protocol shutdown drained within the time limit.
    pub clean_drain: bool,
    /// First few diagnostics behind any failed invariant.
    pub notes: Vec<String>,
}

impl SoakReport {
    /// Whether every soak invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.malformed == 0
            && self.honest_mismatches == 0
            && self.kills_confirmed == self.kills_requested
            && self.worker_respawns >= self.kills_confirmed
            && !self.pool_gave_up
            && self.clean_drain
    }
}

/// Counters shared by every client thread in the storm.
#[derive(Default)]
struct Counters {
    replies: AtomicU64,
    malformed: AtomicU64,
    honest_ok: AtomicU64,
    honest_mismatches: AtomicU64,
    hostile_drops: AtomicU64,
    kills_confirmed: AtomicU64,
    notes: Mutex<Vec<String>>,
}

impl Counters {
    /// Records one diagnostic, keeping only the first few (a storm that
    /// goes wrong goes wrong thousands of times the same way).
    fn note(&self, msg: String) {
        let mut notes = self.notes.lock().unwrap_or_else(PoisonError::into_inner);
        if notes.len() < 16 {
            notes.push(msg);
        }
    }

    /// Counts one received reply line and validates it as JSON — the
    /// storm-wide "no malformed replies" invariant lives here.
    fn saw_reply(&self, line: &str) {
        self.replies.fetch_add(1, Ordering::SeqCst);
        if validate_json(line).is_err() {
            self.malformed.fetch_add(1, Ordering::SeqCst);
            self.note(format!("malformed reply: {line:?}"));
        }
    }
}

/// One benchmark's request line and the only two replies the daemon is
/// allowed to give for it.
struct Expected {
    bench: &'static str,
    request: String,
    fresh: String,
    cached: String,
}

/// Precomputes, locally and in-process, the exact report bytes the
/// daemon must embed for each roster benchmark at the storm's knobs.
fn expected_replies(opts: &SoakOpts) -> Result<Vec<Expected>, CliError> {
    ROSTER
        .iter()
        .map(|&bench| {
            let b = powerchop_workloads::by_name(bench)
                .ok_or_else(|| CliError(format!("soak roster benchmark {bench:?} is missing")))?;
            let mut cfg = RunConfig::for_kind(b.core_kind());
            cfg.max_instructions = opts.budget;
            let program = b.program(Scale(opts.scale));
            let report = run_program(&program, ManagerKind::PowerChop, &cfg)?;
            let json = report_to_json(&report);
            Ok(Expected {
                bench,
                request: format!(
                    r#"{{"op":"run","bench":"{bench}","budget":{},"scale":{}}}"#,
                    opts.budget, opts.scale
                ),
                fresh: format!(r#"{{"ok":true,"op":"run","cached":false,"report":{json}}}"#),
                cached: format!(r#"{{"ok":true,"op":"run","cached":true,"report":{json}}}"#),
            })
        })
        .collect()
}

/// One request over one fresh connection: connect, send the line, read
/// exactly one newline-terminated reply.
fn request_once(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    if !reply.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "reply was not newline-terminated",
        ));
    }
    Ok(reply.trim_end().to_owned())
}

/// Whether a typed error reply is transient backpressure worth retrying
/// (queue full, draining-adjacent 503s like breaker-open).
fn is_retryable(reply: &str) -> bool {
    reply.contains("\"code\":429") || reply.contains("\"code\":503")
}

/// One honest request with bounded retries through transient
/// backpressure; the final reply must be byte-identical to one of the
/// two allowed forms.
fn honest_once(addr: SocketAddr, exp: &Expected, c: &Counters) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match request_once(addr, &exp.request) {
            Ok(reply) => {
                c.saw_reply(&reply);
                if reply == exp.fresh || reply == exp.cached {
                    c.honest_ok.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                if is_retryable(&reply) && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                c.honest_mismatches.fetch_add(1, Ordering::SeqCst);
                c.note(format!("honest {}: wrong reply: {reply}", exp.bench));
                return;
            }
            Err(e) => {
                if Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                c.honest_mismatches.fetch_add(1, Ordering::SeqCst);
                c.note(format!("honest {}: i/o error: {e}", exp.bench));
                return;
            }
        }
    }
}

/// An honest client: `requests` well-formed runs, cycling the roster.
fn honest_client(
    addr: SocketAddr,
    id: usize,
    requests: usize,
    expected: &[Expected],
    c: &Counters,
) {
    for j in 0..requests {
        honest_once(addr, &expected[(id + j) % expected.len()], c);
    }
}

/// The kill client: chaos `run` ops that panic a worker mid-run. Each
/// uses a distinct budget so the result cache can never answer instead
/// of the pool. Expects the typed 500 the supervisor turns the panic
/// into; service for everyone else must continue (the honest clients
/// are asserting exactly that, concurrently).
fn kill_client(addr: SocketAddr, opts: &SoakOpts, c: &Counters) {
    for k in 0..opts.kill_workers {
        let budget = opts.budget + 7919 + k as u64;
        let line = format!(
            r#"{{"op":"run","bench":"hmmer","budget":{budget},"scale":{},"chaos":"panic"}}"#,
            opts.scale
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match request_once(addr, &line) {
                Ok(reply) => {
                    c.saw_reply(&reply);
                    if reply.contains("\"code\":500") && reply.contains("killed") {
                        c.kills_confirmed.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    if is_retryable(&reply) && Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    c.note(format!("worker-kill {k}: unexpected reply: {reply}"));
                    break;
                }
                Err(e) => {
                    if Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    c.note(format!("worker-kill {k}: i/o error: {e}"));
                    break;
                }
            }
        }
        // Space the kills out so they read as crashes under load, not a
        // restart storm (storms are the give-up path, tested separately).
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A hostile client's live connection: the chaos-wrapped writer, a raw
/// reader clone, and any partial reply carried across read timeouts so
/// a slow reply is never mistaken for a torn one.
struct HostileConn {
    chaos: ChaosStream<TcpStream>,
    reader: BufReader<TcpStream>,
    partial: Vec<u8>,
}

/// Opens one hostile connection with a fresh chaos schedule drawn from
/// the client's deterministic stream.
fn hostile_connect(addr: SocketAddr, rng: &mut SimRng, c: &Counters) -> Option<HostileConn> {
    // The seed is drawn before the fallible I/O so the schedule stream
    // stays aligned no matter how the connect attempt goes.
    let conn_seed = rng.next_u64();
    let connected = TcpStream::connect(addr).and_then(|stream| {
        stream.set_read_timeout(Some(Duration::from_millis(150)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok((stream, reader))
    });
    match connected {
        Ok((stream, reader)) => Some(HostileConn {
            chaos: ChaosStream::new(
                stream,
                ChaosSchedule::new(ChaosConfig::hostile(), conn_seed),
            ),
            reader,
            partial: Vec::new(),
        }),
        Err(e) => {
            c.note(format!("hostile connect failed: {e}"));
            None
        }
    }
}

/// Drains whatever complete reply lines are available within
/// `quiet_ms`, validating each. A timeout mid-line keeps the partial in
/// the connection for the next drain; a clean EOF with bytes still
/// pending is a torn reply and counts as malformed.
fn drain_replies(conn: &mut HostileConn, c: &Counters, quiet_ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(quiet_ms.max(1));
    loop {
        match conn.reader.read_until(b'\n', &mut conn.partial) {
            Ok(0) => {
                if !conn.partial.is_empty() {
                    c.malformed.fetch_add(1, Ordering::SeqCst);
                    c.note(format!(
                        "torn reply at EOF: {:?}",
                        String::from_utf8_lossy(&conn.partial)
                    ));
                    conn.partial.clear();
                }
                return;
            }
            Ok(_) if conn.partial.last() == Some(&b'\n') => {
                let line = String::from_utf8_lossy(&conn.partial).trim_end().to_owned();
                c.saw_reply(&line);
                conn.partial.clear();
            }
            // read_until only returns Ok without a trailing newline at
            // EOF, which the arm above consumed; anything else is a
            // timeout-style error and the partial stays buffered.
            Ok(_) | Err(_) => {}
        }
        if Instant::now() >= deadline {
            return;
        }
    }
}

/// Deterministically picks the next hostile frame: a mix of valid ops,
/// valid runs, typed-error bait and raw garbage.
fn hostile_frame(rng: &mut SimRng, expected: &[Expected]) -> Vec<u8> {
    match rng.gen_range(6) {
        0 => b"{\"op\":\"status\"}\n".to_vec(),
        1 => b"{\"op\":\"health\"}\n".to_vec(),
        2 => {
            let pick = rng.gen_range(expected.len() as u64) as usize;
            let mut frame = expected[pick].request.clone().into_bytes();
            frame.push(b'\n');
            frame
        }
        3 => b"{\"op\":\"run\",\"bench\":\"no-such-bench\"}\n".to_vec(),
        // An unterminated fragment: glues onto the next frame, or ages
        // into the server's slow-client 408 if the connection idles.
        4 => b"{\"op\":\"run\",\"bench\":".to_vec(),
        _ => {
            // Raw garbage, newline-terminated; often invalid UTF-8.
            let mut frame: Vec<u8> = (0..16).map(|_| (rng.gen_range(255) + 1) as u8).collect();
            frame.retain(|&b| b != b'\n');
            frame.push(b'\n');
            frame
        }
    }
}

/// A hostile client: `requests` chaos-mangled frames, reconnecting
/// whenever chaos (or the daemon) drops the connection, validating
/// every reply line it manages to read.
fn hostile_client(
    addr: SocketAddr,
    master_seed: u64,
    id: usize,
    requests: usize,
    expected: &[Expected],
    c: &Counters,
) {
    let mut rng = SimRng::new(master_seed)
        .fork(stream_label("soak-hostile"))
        .fork(id as u64);
    let mut conn = hostile_connect(addr, &mut rng, c);
    for _ in 0..requests {
        let frame = hostile_frame(&mut rng, expected);
        if conn.is_none() {
            c.hostile_drops.fetch_add(1, Ordering::SeqCst);
            conn = hostile_connect(addr, &mut rng, c);
        }
        let Some(live) = conn.as_mut() else {
            return; // could not connect at all; already noted
        };
        match live.chaos.send_frame(&frame) {
            Ok(_) if live.chaos.alive() => drain_replies(live, c, 50),
            // Chaos truncated/reset the connection, or the daemon shed
            // us (slow-client disconnect, connection gate): reconnect
            // on the next frame.
            _ => conn = None,
        }
    }
    if let Some(live) = conn.as_mut() {
        drain_replies(live, c, 300);
    }
}

/// Extracts `"name":<u64>` from a one-line JSON reply (the soak only
/// reads numeric health fields, so a full parser is not needed).
fn json_u64_field(text: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = text.find(&key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Reads the daemon's post-storm `health` report, waiting briefly for
/// any in-flight worker respawn to land. Returns
/// `(worker_respawns, breaker_trips, pool_gave_up)`.
fn final_health(addr: SocketAddr, expect_respawns: u64, c: &Counters) -> (u64, u64, bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut respawns = 0;
    let mut trips = 0;
    let mut gave_up = false;
    loop {
        if let Ok(reply) = request_once(addr, r#"{"op":"health"}"#) {
            c.saw_reply(&reply);
            respawns = json_u64_field(&reply, "worker_respawns").unwrap_or(0);
            trips = json_u64_field(&reply, "breaker_trips").unwrap_or(0);
            gave_up = reply.contains("\"pool_gave_up\":true");
            if respawns >= expect_respawns {
                break;
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    (respawns, trips, gave_up)
}

/// Sends the in-protocol shutdown and waits for the server thread to
/// finish draining. `true` only for a clean, in-time exit.
fn drain(addr: SocketAddr, done_rx: &mpsc::Receiver<std::io::Result<()>>, c: &Counters) -> bool {
    match request_once(addr, r#"{"op":"shutdown"}"#) {
        Ok(reply) => {
            c.saw_reply(&reply);
            if !reply.contains("\"draining\":true") {
                c.note(format!("shutdown not acknowledged: {reply}"));
                return false;
            }
        }
        Err(e) => {
            c.note(format!("shutdown request failed: {e}"));
            return false;
        }
    }
    match done_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(Ok(())) => true,
        Ok(Err(e)) => {
            c.note(format!("server exited with an error: {e}"));
            false
        }
        Err(_) => {
            c.note("server failed to drain within 60s of shutdown".into());
            false
        }
    }
}

/// Runs one full soak storm: boot, storm, verify, drain.
///
/// # Errors
///
/// Returns a [`CliError`] only for setup failures (unknown roster
/// benchmark, bind failure). Invariant violations are reported in the
/// returned [`SoakReport`], not as errors, so callers can print the
/// full picture.
pub fn run_soak(opts: &SoakOpts) -> Result<SoakReport, CliError> {
    let expected = expected_replies(opts)?;
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: opts.jobs,
        queue_depth: 32,
        max_connections: opts.hostile + opts.honest + 8,
        // Short enough that truncated hostile frames age into typed
        // slow-client 408s while the storm is still running.
        read_timeout_ms: 2_000,
        write_timeout_ms: 5_000,
        chaos_ops: opts.kill_workers > 0,
        ..ServerConfig::default()
    };
    let server = Server::bind(&cfg)?;
    let addr = server.local_addr();
    let (done_tx, done_rx) = mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let _ = done_tx.send(server.run());
    });

    let counters = Counters::default();
    std::thread::scope(|scope| {
        let c = &counters;
        let e = &expected;
        for i in 0..opts.hostile {
            scope.spawn(move || hostile_client(addr, opts.seed, i, opts.requests, e, c));
        }
        for i in 0..opts.honest {
            scope.spawn(move || honest_client(addr, i, opts.requests, e, c));
        }
        if opts.kill_workers > 0 {
            scope.spawn(move || kill_client(addr, opts, c));
        }
    });

    // Post-storm sweep: the daemon must still serve every roster bench
    // bit-identically — the "continued service" guarantee.
    for exp in &expected {
        honest_once(addr, exp, &counters);
    }
    let kills_confirmed = counters.kills_confirmed.load(Ordering::SeqCst);
    let (worker_respawns, breaker_trips, pool_gave_up) =
        final_health(addr, kills_confirmed, &counters);
    let clean_drain = drain(addr, &done_rx, &counters);
    let _ = server_thread.join();

    let notes = counters
        .notes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    Ok(SoakReport {
        replies: counters.replies.load(Ordering::SeqCst),
        malformed: counters.malformed.load(Ordering::SeqCst),
        honest_ok: counters.honest_ok.load(Ordering::SeqCst),
        honest_mismatches: counters.honest_mismatches.load(Ordering::SeqCst),
        hostile_drops: counters.hostile_drops.load(Ordering::SeqCst),
        kills_requested: opts.kill_workers as u64,
        kills_confirmed,
        worker_respawns,
        breaker_trips,
        pool_gave_up,
        clean_drain,
        notes,
    })
}

/// The `soak` command: run the storm, print the verdict, fail loudly.
///
/// # Errors
///
/// Returns a [`CliError`] for setup failures or any violated storm
/// invariant.
pub fn soak_cmd(opts: &SoakOpts) -> Result<(), CliError> {
    println!(
        "chaos soak: seed {}, {} hostile + {} honest clients x {} requests, {} worker kill(s)",
        opts.seed, opts.hostile, opts.honest, opts.requests, opts.kill_workers
    );
    let report = run_soak(opts)?;
    println!(
        "replies {} ({} malformed), honest {} ok / {} mismatched, hostile drops {}",
        report.replies,
        report.malformed,
        report.honest_ok,
        report.honest_mismatches,
        report.hostile_drops
    );
    println!(
        "worker kills {}/{} confirmed, respawns {}, breaker trips {}, pool gave up: {}, clean drain: {}",
        report.kills_confirmed,
        report.kills_requested,
        report.worker_respawns,
        report.breaker_trips,
        if report.pool_gave_up { "yes" } else { "no" },
        if report.clean_drain { "yes" } else { "no" }
    );
    if report.passed() {
        println!("soak PASSED");
        Ok(())
    } else {
        for note in &report.notes {
            eprintln!("soak: {note}");
        }
        Err(CliError("chaos soak failed (see notes above)".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_u64_field_extracts_numeric_fields() {
        let line = r#"{"ok":true,"worker_respawns":3,"breaker_trips":0,"s":"x"}"#;
        assert_eq!(json_u64_field(line, "worker_respawns"), Some(3));
        assert_eq!(json_u64_field(line, "breaker_trips"), Some(0));
        assert_eq!(json_u64_field(line, "missing"), None);
        assert_eq!(json_u64_field(line, "s"), None);
    }

    #[test]
    fn hostile_frames_are_reproducible_per_seed() {
        let expected: Vec<Expected> = ROSTER
            .iter()
            .map(|&bench| Expected {
                bench,
                request: format!(r#"{{"op":"run","bench":"{bench}"}}"#),
                fresh: String::new(),
                cached: String::new(),
            })
            .collect();
        let frames = |seed: u64| -> Vec<Vec<u8>> {
            let mut rng = SimRng::new(seed).fork(stream_label("soak-hostile")).fork(0);
            (0..64)
                .map(|_| hostile_frame(&mut rng, &expected))
                .collect()
        };
        assert_eq!(frames(7), frames(7), "same seed, same storm");
        assert_ne!(frames(7), frames(8), "different seeds diverge");
        // Every frame class shows up across a modest draw count.
        let all = frames(7);
        assert!(all.iter().any(|f| f.starts_with(b"{\"op\":\"status\"}")));
        assert!(
            all.iter().any(|f| f.last() != Some(&b'\n')),
            "fragment bait"
        );
        assert!(
            all.iter().any(|f| std::str::from_utf8(f).is_err()),
            "raw garbage"
        );
    }

    #[test]
    fn is_retryable_matches_backpressure_codes_only() {
        assert!(is_retryable(r#"{"ok":false,"code":429,"error":"busy"}"#));
        assert!(is_retryable(
            r#"{"ok":false,"code":503,"error":"breaker-open"}"#
        ));
        assert!(!is_retryable(
            r#"{"ok":false,"code":400,"error":"bad-request"}"#
        ));
        assert!(!is_retryable(r#"{"ok":true,"op":"run","cached":false}"#));
    }
}
