//! The chaos-soak harness: boots an in-process `powerchop-serve` daemon
//! and drives a seeded storm of hostile and honest clients against it.
//!
//! Hostile clients wrap their sockets in
//! [`powerchop_resilience::chaos::ChaosStream`], so every frame they
//! send may be delayed, split mid-write, byte-corrupted, truncated or
//! reset — all drawn from one SplitMix64 seed, so a storm replays
//! bit-for-bit. Honest clients send well-formed `run` requests and
//! demand replies bit-identical to a local in-process run. A kill
//! client (when `--kill-workers` is nonzero) sends chaos `run` ops that
//! panic a pool worker mid-run, exercising the supervisor's respawn
//! path on demand.
//!
//! The storm passes only when every reply line received by any client
//! is valid RFC 8259 JSON, every honest reply embedded the exact
//! expected report bytes, every requested worker kill was confirmed
//! (and visible as a respawn in the `health` op), the pool never gave
//! up, and the daemon drained cleanly through an in-protocol shutdown.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Mutex, PoisonError};
use std::time::{Duration, Instant};

use powerchop::{run_program, ManagerKind, RunConfig};
use powerchop_faults::SimRng;
use powerchop_resilience::chaos::{ChaosConfig, ChaosSchedule, ChaosStream};
use powerchop_resilience::retry::stream_label;
use powerchop_serve::{report_to_json, Server, ServerConfig};
use powerchop_telemetry::validate_json;
use powerchop_workloads::Scale;

use crate::args::SoakOpts;
use crate::CliError;

/// Benchmarks the storm cycles through. Kept small so the local
/// expected-report precomputation stays fast.
const ROSTER: [&str; 3] = ["hmmer", "namd", "gobmk"];

/// Hard numbers out of one soak storm.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// Reply lines received (and validated) across all clients.
    pub replies: u64,
    /// Reply lines that failed RFC 8259 validation (must be 0).
    pub malformed: u64,
    /// Honest requests answered with the exact expected report bytes.
    pub honest_ok: u64,
    /// Honest requests that got a wrong or missing reply (must be 0).
    pub honest_mismatches: u64,
    /// Hostile connections dropped by chaos (truncate/reset) or I/O.
    pub hostile_drops: u64,
    /// Worker kills the storm was asked to inject.
    pub kills_requested: u64,
    /// Worker kills confirmed by a typed 500 reply.
    pub kills_confirmed: u64,
    /// Worker respawns the daemon's `health` op reported afterwards.
    pub worker_respawns: u64,
    /// Circuit-breaker trips the `health` op reported afterwards.
    pub breaker_trips: u64,
    /// Whether the pool latched its restart-storm give-up (must not).
    pub pool_gave_up: bool,
    /// Whether the in-protocol shutdown drained within the time limit.
    pub clean_drain: bool,
    /// First few diagnostics behind any failed invariant.
    pub notes: Vec<String>,
}

impl SoakReport {
    /// Whether every soak invariant held.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.malformed == 0
            && self.honest_mismatches == 0
            && self.kills_confirmed == self.kills_requested
            && self.worker_respawns >= self.kills_confirmed
            && !self.pool_gave_up
            && self.clean_drain
    }
}

/// Counters shared by every client thread in the storm.
#[derive(Default)]
struct Counters {
    replies: AtomicU64,
    malformed: AtomicU64,
    honest_ok: AtomicU64,
    honest_mismatches: AtomicU64,
    hostile_drops: AtomicU64,
    kills_confirmed: AtomicU64,
    notes: Mutex<Vec<String>>,
}

impl Counters {
    /// Records one diagnostic, keeping only the first few (a storm that
    /// goes wrong goes wrong thousands of times the same way).
    fn note(&self, msg: String) {
        let mut notes = self.notes.lock().unwrap_or_else(PoisonError::into_inner);
        if notes.len() < 16 {
            notes.push(msg);
        }
    }

    /// Counts one received reply line and validates it as JSON — the
    /// storm-wide "no malformed replies" invariant lives here.
    fn saw_reply(&self, line: &str) {
        self.replies.fetch_add(1, Ordering::SeqCst);
        if validate_json(line).is_err() {
            self.malformed.fetch_add(1, Ordering::SeqCst);
            self.note(format!("malformed reply: {line:?}"));
        }
    }
}

/// One benchmark's request line and the only two replies the daemon is
/// allowed to give for it.
struct Expected {
    bench: &'static str,
    request: String,
    fresh: String,
    cached: String,
}

/// Precomputes, locally and in-process, the exact report bytes the
/// daemon must embed for each roster benchmark at the storm's knobs.
fn expected_replies(opts: &SoakOpts) -> Result<Vec<Expected>, CliError> {
    ROSTER
        .iter()
        .map(|&bench| {
            let b = powerchop_workloads::by_name(bench)
                .ok_or_else(|| CliError(format!("soak roster benchmark {bench:?} is missing")))?;
            let mut cfg = RunConfig::for_kind(b.core_kind());
            cfg.max_instructions = opts.budget;
            let program = b.program(Scale(opts.scale));
            let report = run_program(&program, ManagerKind::PowerChop, &cfg)?;
            let json = report_to_json(&report);
            Ok(Expected {
                bench,
                request: format!(
                    r#"{{"op":"run","bench":"{bench}","budget":{},"scale":{}}}"#,
                    opts.budget, opts.scale
                ),
                fresh: format!(r#"{{"ok":true,"op":"run","cached":false,"report":{json}}}"#),
                cached: format!(r#"{{"ok":true,"op":"run","cached":true,"report":{json}}}"#),
            })
        })
        .collect()
}

/// One request over one fresh connection: connect, send the line, read
/// exactly one newline-terminated reply.
fn request_once(addr: SocketAddr, line: &str) -> std::io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    stream.write_all(line.as_bytes())?;
    stream.write_all(b"\n")?;
    stream.flush()?;
    let mut reader = BufReader::new(stream);
    let mut reply = String::new();
    reader.read_line(&mut reply)?;
    if !reply.ends_with('\n') {
        return Err(std::io::Error::new(
            std::io::ErrorKind::UnexpectedEof,
            "reply was not newline-terminated",
        ));
    }
    Ok(reply.trim_end().to_owned())
}

/// Whether a typed error reply is transient backpressure worth retrying
/// (queue full, draining-adjacent 503s like breaker-open).
fn is_retryable(reply: &str) -> bool {
    reply.contains("\"code\":429") || reply.contains("\"code\":503")
}

/// One honest request with bounded retries through transient
/// backpressure; the final reply must be byte-identical to one of the
/// two allowed forms.
fn honest_once(addr: SocketAddr, exp: &Expected, c: &Counters) {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        match request_once(addr, &exp.request) {
            Ok(reply) => {
                c.saw_reply(&reply);
                // Trace ids are per-request by design; everything else
                // must still be byte-identical to a local run.
                let reply_untraced = powerchop_serve::strip_trace_id(&reply);
                if reply_untraced == exp.fresh || reply_untraced == exp.cached {
                    c.honest_ok.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                if is_retryable(&reply) && Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                c.honest_mismatches.fetch_add(1, Ordering::SeqCst);
                c.note(format!("honest {}: wrong reply: {reply}", exp.bench));
                return;
            }
            Err(e) => {
                if Instant::now() < deadline {
                    std::thread::sleep(Duration::from_millis(25));
                    continue;
                }
                c.honest_mismatches.fetch_add(1, Ordering::SeqCst);
                c.note(format!("honest {}: i/o error: {e}", exp.bench));
                return;
            }
        }
    }
}

/// An honest client: `requests` well-formed runs, cycling the roster.
fn honest_client(
    addr: SocketAddr,
    id: usize,
    requests: usize,
    expected: &[Expected],
    c: &Counters,
) {
    for j in 0..requests {
        honest_once(addr, &expected[(id + j) % expected.len()], c);
    }
}

/// The kill client: chaos `run` ops that panic a worker mid-run. Each
/// uses a distinct budget so the result cache can never answer instead
/// of the pool. Expects the typed 500 the supervisor turns the panic
/// into; service for everyone else must continue (the honest clients
/// are asserting exactly that, concurrently).
fn kill_client(addr: SocketAddr, opts: &SoakOpts, c: &Counters) {
    for k in 0..opts.kill_workers {
        let budget = opts.budget + 7919 + k as u64;
        let line = format!(
            r#"{{"op":"run","bench":"hmmer","budget":{budget},"scale":{},"chaos":"panic"}}"#,
            opts.scale
        );
        let deadline = Instant::now() + Duration::from_secs(30);
        loop {
            match request_once(addr, &line) {
                Ok(reply) => {
                    c.saw_reply(&reply);
                    if reply.contains("\"code\":500") && reply.contains("killed") {
                        c.kills_confirmed.fetch_add(1, Ordering::SeqCst);
                        break;
                    }
                    if is_retryable(&reply) && Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    c.note(format!("worker-kill {k}: unexpected reply: {reply}"));
                    break;
                }
                Err(e) => {
                    if Instant::now() < deadline {
                        std::thread::sleep(Duration::from_millis(25));
                        continue;
                    }
                    c.note(format!("worker-kill {k}: i/o error: {e}"));
                    break;
                }
            }
        }
        // Space the kills out so they read as crashes under load, not a
        // restart storm (storms are the give-up path, tested separately).
        std::thread::sleep(Duration::from_millis(50));
    }
}

/// A hostile client's live connection: the chaos-wrapped writer, a raw
/// reader clone, and any partial reply carried across read timeouts so
/// a slow reply is never mistaken for a torn one.
struct HostileConn {
    chaos: ChaosStream<TcpStream>,
    reader: BufReader<TcpStream>,
    partial: Vec<u8>,
}

/// Opens one hostile connection with a fresh chaos schedule drawn from
/// the client's deterministic stream.
fn hostile_connect(addr: SocketAddr, rng: &mut SimRng, c: &Counters) -> Option<HostileConn> {
    // The seed is drawn before the fallible I/O so the schedule stream
    // stays aligned no matter how the connect attempt goes.
    let conn_seed = rng.next_u64();
    let connected = TcpStream::connect(addr).and_then(|stream| {
        stream.set_read_timeout(Some(Duration::from_millis(150)))?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok((stream, reader))
    });
    match connected {
        Ok((stream, reader)) => Some(HostileConn {
            chaos: ChaosStream::new(
                stream,
                ChaosSchedule::new(ChaosConfig::hostile(), conn_seed),
            ),
            reader,
            partial: Vec::new(),
        }),
        Err(e) => {
            c.note(format!("hostile connect failed: {e}"));
            None
        }
    }
}

/// Drains whatever complete reply lines are available within
/// `quiet_ms`, validating each. A timeout mid-line keeps the partial in
/// the connection for the next drain; a clean EOF with bytes still
/// pending is a torn reply and counts as malformed.
fn drain_replies(conn: &mut HostileConn, c: &Counters, quiet_ms: u64) {
    let deadline = Instant::now() + Duration::from_millis(quiet_ms.max(1));
    loop {
        match conn.reader.read_until(b'\n', &mut conn.partial) {
            Ok(0) => {
                if !conn.partial.is_empty() {
                    c.malformed.fetch_add(1, Ordering::SeqCst);
                    c.note(format!(
                        "torn reply at EOF: {:?}",
                        String::from_utf8_lossy(&conn.partial)
                    ));
                    conn.partial.clear();
                }
                return;
            }
            Ok(_) if conn.partial.last() == Some(&b'\n') => {
                let line = String::from_utf8_lossy(&conn.partial).trim_end().to_owned();
                c.saw_reply(&line);
                conn.partial.clear();
            }
            // read_until only returns Ok without a trailing newline at
            // EOF, which the arm above consumed; anything else is a
            // timeout-style error and the partial stays buffered.
            Ok(_) | Err(_) => {}
        }
        if Instant::now() >= deadline {
            return;
        }
    }
}

/// Deterministically picks the next hostile frame: a mix of valid ops,
/// valid runs, typed-error bait and raw garbage.
fn hostile_frame(rng: &mut SimRng, expected: &[Expected]) -> Vec<u8> {
    match rng.gen_range(6) {
        0 => b"{\"op\":\"status\"}\n".to_vec(),
        1 => b"{\"op\":\"health\"}\n".to_vec(),
        2 => {
            let pick = rng.gen_range(expected.len() as u64) as usize;
            let mut frame = expected[pick].request.clone().into_bytes();
            frame.push(b'\n');
            frame
        }
        3 => b"{\"op\":\"run\",\"bench\":\"no-such-bench\"}\n".to_vec(),
        // An unterminated fragment: glues onto the next frame, or ages
        // into the server's slow-client 408 if the connection idles.
        4 => b"{\"op\":\"run\",\"bench\":".to_vec(),
        _ => {
            // Raw garbage, newline-terminated; often invalid UTF-8.
            let mut frame: Vec<u8> = (0..16).map(|_| (rng.gen_range(255) + 1) as u8).collect();
            frame.retain(|&b| b != b'\n');
            frame.push(b'\n');
            frame
        }
    }
}

/// A hostile client: `requests` chaos-mangled frames, reconnecting
/// whenever chaos (or the daemon) drops the connection, validating
/// every reply line it manages to read.
fn hostile_client(
    addr: SocketAddr,
    master_seed: u64,
    id: usize,
    requests: usize,
    expected: &[Expected],
    c: &Counters,
) {
    let mut rng = SimRng::new(master_seed)
        .fork(stream_label("soak-hostile"))
        .fork(id as u64);
    let mut conn = hostile_connect(addr, &mut rng, c);
    for _ in 0..requests {
        let frame = hostile_frame(&mut rng, expected);
        if conn.is_none() {
            c.hostile_drops.fetch_add(1, Ordering::SeqCst);
            conn = hostile_connect(addr, &mut rng, c);
        }
        let Some(live) = conn.as_mut() else {
            return; // could not connect at all; already noted
        };
        match live.chaos.send_frame(&frame) {
            Ok(_) if live.chaos.alive() => drain_replies(live, c, 50),
            // Chaos truncated/reset the connection, or the daemon shed
            // us (slow-client disconnect, connection gate): reconnect
            // on the next frame.
            _ => conn = None,
        }
    }
    if let Some(live) = conn.as_mut() {
        drain_replies(live, c, 300);
    }
}

/// Extracts `"name":<u64>` from a one-line JSON reply (the soak only
/// reads numeric health fields, so a full parser is not needed).
fn json_u64_field(text: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let at = text.find(&key)? + key.len();
    let digits: String = text[at..]
        .chars()
        .take_while(char::is_ascii_digit)
        .collect();
    digits.parse().ok()
}

/// Reads the daemon's post-storm `health` report, waiting briefly for
/// any in-flight worker respawn to land. Returns
/// `(worker_respawns, breaker_trips, pool_gave_up)`.
fn final_health(addr: SocketAddr, expect_respawns: u64, c: &Counters) -> (u64, u64, bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    let mut respawns = 0;
    let mut trips = 0;
    let mut gave_up = false;
    loop {
        if let Ok(reply) = request_once(addr, r#"{"op":"health"}"#) {
            c.saw_reply(&reply);
            respawns = json_u64_field(&reply, "worker_respawns").unwrap_or(0);
            trips = json_u64_field(&reply, "breaker_trips").unwrap_or(0);
            gave_up = reply.contains("\"pool_gave_up\":true");
            if respawns >= expect_respawns {
                break;
            }
        }
        if Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    (respawns, trips, gave_up)
}

/// Sends the in-protocol shutdown and waits for the server thread to
/// finish draining. `true` only for a clean, in-time exit.
fn drain(addr: SocketAddr, done_rx: &mpsc::Receiver<std::io::Result<()>>, c: &Counters) -> bool {
    match request_once(addr, r#"{"op":"shutdown"}"#) {
        Ok(reply) => {
            c.saw_reply(&reply);
            if !reply.contains("\"draining\":true") {
                c.note(format!("shutdown not acknowledged: {reply}"));
                return false;
            }
        }
        Err(e) => {
            c.note(format!("shutdown request failed: {e}"));
            return false;
        }
    }
    match done_rx.recv_timeout(Duration::from_secs(60)) {
        Ok(Ok(())) => true,
        Ok(Err(e)) => {
            c.note(format!("server exited with an error: {e}"));
            false
        }
        Err(_) => {
            c.note("server failed to drain within 60s of shutdown".into());
            false
        }
    }
}

/// Runs one full soak storm: boot, storm, verify, drain.
///
/// # Errors
///
/// Returns a [`CliError`] only for setup failures (unknown roster
/// benchmark, bind failure). Invariant violations are reported in the
/// returned [`SoakReport`], not as errors, so callers can print the
/// full picture.
pub fn run_soak(opts: &SoakOpts) -> Result<SoakReport, CliError> {
    let expected = expected_replies(opts)?;
    let cfg = ServerConfig {
        addr: "127.0.0.1:0".into(),
        jobs: opts.jobs,
        queue_depth: 32,
        max_connections: opts.hostile + opts.honest + 8,
        // Short enough that truncated hostile frames age into typed
        // slow-client 408s while the storm is still running.
        read_timeout_ms: 2_000,
        write_timeout_ms: 5_000,
        chaos_ops: opts.kill_workers > 0,
        ..ServerConfig::default()
    };
    let server = Server::bind(&cfg)?;
    let addr = server.local_addr();
    let (done_tx, done_rx) = mpsc::channel();
    let server_thread = std::thread::spawn(move || {
        let _ = done_tx.send(server.run());
    });

    let counters = Counters::default();
    std::thread::scope(|scope| {
        let c = &counters;
        let e = &expected;
        for i in 0..opts.hostile {
            scope.spawn(move || hostile_client(addr, opts.seed, i, opts.requests, e, c));
        }
        for i in 0..opts.honest {
            scope.spawn(move || honest_client(addr, i, opts.requests, e, c));
        }
        if opts.kill_workers > 0 {
            scope.spawn(move || kill_client(addr, opts, c));
        }
    });

    // Post-storm sweep: the daemon must still serve every roster bench
    // bit-identically — the "continued service" guarantee.
    for exp in &expected {
        honest_once(addr, exp, &counters);
    }
    let kills_confirmed = counters.kills_confirmed.load(Ordering::SeqCst);
    let (worker_respawns, breaker_trips, pool_gave_up) =
        final_health(addr, kills_confirmed, &counters);
    let clean_drain = drain(addr, &done_rx, &counters);
    let _ = server_thread.join();

    let notes = counters
        .notes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    Ok(SoakReport {
        replies: counters.replies.load(Ordering::SeqCst),
        malformed: counters.malformed.load(Ordering::SeqCst),
        honest_ok: counters.honest_ok.load(Ordering::SeqCst),
        honest_mismatches: counters.honest_mismatches.load(Ordering::SeqCst),
        hostile_drops: counters.hostile_drops.load(Ordering::SeqCst),
        kills_requested: opts.kill_workers as u64,
        kills_confirmed,
        worker_respawns,
        breaker_trips,
        pool_gave_up,
        clean_drain,
        notes,
    })
}

/// Minimum per-benchmark instruction budget for the crash drill: high
/// enough that no roster program is ever budget-truncated — run length
/// is governed by [`DRILL_MIN_SCALE`], and the reports must describe
/// complete programs so the baseline comparison is meaningful.
const DRILL_MIN_BUDGET: u64 = 60_000_000;

/// Minimum workload scale for the crash drill. Scale, not budget, sets
/// how many instructions a roster program actually retires (roughly 8M
/// per benchmark per unit of scale); at 2.0 a full sweep takes the
/// simulator long enough that several kill cycles all land mid-sweep
/// with an order-of-magnitude margin over the poll latency.
const DRILL_MIN_SCALE: f64 = 2.0;

/// Instructions between checkpoint spills in the crash drill: frequent
/// enough that every cycle observes fresh spill progress within
/// milliseconds, coarse enough that fsync traffic stays reasonable.
const DRILL_SPILL_EVERY: u64 = 250_000;

/// Hard numbers out of one crash-recovery drill.
#[derive(Debug, Clone)]
pub struct CrashDrillReport {
    /// Mid-sweep SIGKILLs delivered (must equal `--crash-cycles`).
    pub kills: u64,
    /// Journal records the final boot replayed (must be nonzero).
    pub journal_replayed: u64,
    /// Instructions the final boot resumed from spill checkpoints
    /// instead of re-executing (must be nonzero).
    pub resumed_instructions: u64,
    /// Checkpointed instructions the final boot re-executed (must be
    /// zero: recovery never re-does work a spill promised was durable).
    pub redone_instructions: u64,
    /// Whether the final boot reported `clean_boot:false`.
    pub recovered_boot: bool,
    /// Whether re-requesting the sweep after recovery returned every
    /// row from cache, byte-identical to an uninterrupted local run.
    pub final_sweep_identical: bool,
    /// Whether the recovery counters showed up in a `/metrics` scrape.
    pub counters_scraped: bool,
    /// Whether the final daemon drained cleanly through `shutdown`.
    pub clean_drain: bool,
    /// First few diagnostics behind any failed invariant.
    pub notes: Vec<String>,
}

impl CrashDrillReport {
    /// Whether every crash-drill invariant held.
    #[must_use]
    pub fn passed(&self, cycles: usize) -> bool {
        self.kills == cycles as u64
            && self.journal_replayed > 0
            && self.resumed_instructions > 0
            && self.redone_instructions == 0
            && self.recovered_boot
            && self.final_sweep_identical
            && self.counters_scraped
            && self.clean_drain
    }
}

/// One real (out-of-process) daemon generation in the crash drill: the
/// child, its parsed listen address, and the stdout pipe held open so
/// the child's own prints never hit a closed pipe.
struct DrillChild {
    child: std::process::Child,
    stdout: BufReader<std::process::ChildStdout>,
    addr: SocketAddr,
}

impl DrillChild {
    /// Spawns `powerchop-cli serve` (this very executable, re-invoked)
    /// with durability on, and waits for its listen banner.
    fn spawn(journal_dir: &str, cache_dir: &str, budget_cap: u64) -> Result<Self, CliError> {
        let exe = std::env::current_exe()
            .map_err(|e| CliError(format!("crash drill: cannot locate own executable: {e}")))?;
        let mut child = std::process::Command::new(exe)
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--jobs",
                "1",
                "--journal-dir",
                journal_dir,
                "--cache-dir",
                cache_dir,
                "--spill-every",
                &DRILL_SPILL_EVERY.to_string(),
                "--max-budget",
                &budget_cap.to_string(),
            ])
            .stdout(std::process::Stdio::piped())
            .spawn()
            .map_err(|e| CliError(format!("crash drill: cannot spawn daemon: {e}")))?;
        let out = child
            .stdout
            .take()
            .ok_or_else(|| CliError("crash drill: child stdout was not piped".into()))?;
        let mut stdout = BufReader::new(out);
        let mut line = String::new();
        loop {
            line.clear();
            let n = stdout
                .read_line(&mut line)
                .map_err(|e| CliError(format!("crash drill: reading child banner: {e}")))?;
            if n == 0 {
                let _ = child.kill();
                let _ = child.wait();
                return Err(CliError(
                    "crash drill: daemon exited before announcing its address".into(),
                ));
            }
            if let Some(rest) = line
                .trim_end()
                .strip_prefix("powerchop-serve listening on ")
            {
                let addr = rest.parse().map_err(|e| {
                    CliError(format!("crash drill: bad listen address {rest:?}: {e}"))
                })?;
                return Ok(DrillChild {
                    child,
                    stdout,
                    addr,
                });
            }
        }
    }

    /// SIGKILLs the daemon — no drain, no flush, exactly the crash the
    /// journal exists for — and reaps it.
    fn kill(mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }

    /// Requests an in-protocol shutdown and waits for a clean exit.
    fn drain(mut self, c: &Counters) -> bool {
        match request_once(self.addr, r#"{"op":"shutdown"}"#) {
            Ok(reply) => c.saw_reply(&reply),
            Err(e) => {
                c.note(format!("drill shutdown request failed: {e}"));
                let _ = self.child.kill();
                let _ = self.child.wait();
                return false;
            }
        }
        // Drain the remaining stdout so the child never blocks on a
        // full pipe, then require a zero exit status.
        let mut rest = String::new();
        let _ = self.stdout.read_to_string(&mut rest);
        match self.child.wait() {
            Ok(status) if status.success() => true,
            Ok(status) => {
                c.note(format!("drill daemon exited uncleanly: {status}"));
                false
            }
            Err(e) => {
                c.note(format!("drill daemon wait failed: {e}"));
                false
            }
        }
    }
}

/// What one cycle's journal poll concluded.
enum SpillWatch {
    /// New spill progress landed; the daemon is mid-sweep right now.
    Progressed(u64),
    /// The pending intent disappeared: the sweep finished before the
    /// kill could land (the drill budget is sized to prevent this).
    Completed,
    /// No movement within the timeout.
    Stalled,
}

/// Sums the per-benchmark spill checkpoints the journal currently
/// promises for pending intents.
fn spilled_sum(replay: &powerchop_durable::JournalReplay) -> u64 {
    replay.pending.iter().flat_map(|p| p.spilled.values()).sum()
}

/// Polls the journal until a spill checkpoint beyond `prev` is durably
/// promised (the moment a kill is guaranteed to be mid-sweep), the
/// pending intent completes, or the timeout expires. Torn tails from
/// racing the daemon's appends are expected and simply re-polled.
fn await_spill_progress(jpath: &std::path::Path, prev: u64, saw_pending: bool) -> SpillWatch {
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut pending_seen = saw_pending;
    loop {
        if let Ok(replay) = powerchop_durable::replay(jpath) {
            if !replay.pending.is_empty() {
                pending_seen = true;
            }
            let sum = spilled_sum(&replay);
            if sum > prev {
                return SpillWatch::Progressed(sum);
            }
            if pending_seen && replay.pending.is_empty() {
                return SpillWatch::Completed;
            }
        }
        if Instant::now() >= deadline {
            return SpillWatch::Stalled;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Scrapes the daemon's HTTP `GET /metrics` endpoint and extracts one
/// counter's value.
fn scrape_counter(addr: SocketAddr, name: &str) -> Option<u64> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .ok()?;
    stream
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: drill\r\nConnection: close\r\n\r\n")
        .ok()?;
    let mut body = String::new();
    BufReader::new(stream).read_to_string(&mut body).ok()?;
    body.lines().find_map(|line| {
        line.strip_prefix(name)
            .and_then(|rest| rest.trim().parse().ok())
    })
}

/// Polls the daemon's `health` op until boot-time recovery finishes,
/// returning the final health reply line.
fn await_recovery(addr: SocketAddr, c: &Counters) -> Option<String> {
    let deadline = Instant::now() + Duration::from_secs(180);
    loop {
        if let Ok(reply) = request_once(addr, r#"{"op":"health"}"#) {
            c.saw_reply(&reply);
            if reply.contains("\"recovery_active\":false") {
                return Some(reply);
            }
        }
        if Instant::now() >= deadline {
            c.note("recovery did not finish within 180s".into());
            return None;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
}

/// Runs the crash-recovery drill: repeatedly SIGKILL a real child
/// daemon mid-sweep, then prove the final boot resumes from its spill
/// checkpoints with zero re-done instructions and finishes the sweep
/// bit-identical to an uninterrupted local run.
///
/// # Errors
///
/// Returns a [`CliError`] only for setup failures (spawn failure,
/// missing roster benchmark). Invariant violations land in the returned
/// [`CrashDrillReport`].
pub fn run_crash_drill(opts: &SoakOpts) -> Result<CrashDrillReport, CliError> {
    let budget = opts.budget.max(DRILL_MIN_BUDGET);
    let drill_opts = SoakOpts {
        budget,
        scale: opts.scale.max(DRILL_MIN_SCALE),
        ..opts.clone()
    };
    let expected = expected_replies(&drill_opts)?;
    let benches: Vec<String> = expected
        .iter()
        .map(|e| format!("\"{}\"", e.bench))
        .collect();
    let sweep_request = format!(
        r#"{{"op":"sweep","benches":[{}],"budget":{budget},"scale":{}}}"#,
        benches.join(","),
        drill_opts.scale
    );
    // The only reply recovery is allowed to leave behind: every row a
    // cache hit, every report byte-identical to the local baseline.
    let mut rows = Vec::with_capacity(expected.len());
    for exp in &expected {
        rows.push(format!(
            r#"{{"bench":"{}","ok":true,"cached":true,"report":{}}}"#,
            exp.bench,
            exp.fresh
                .strip_prefix(r#"{"ok":true,"op":"run","cached":false,"report":"#)
                .and_then(|r| r.strip_suffix('}'))
                .ok_or_else(|| CliError("crash drill: unexpected baseline reply shape".into()))?
        ));
    }
    let expected_sweep = format!(
        r#"{{"ok":true,"op":"sweep","count":{n},"completed":{n},"results":[{rows}]}}"#,
        n = rows.len(),
        rows = rows.join(",")
    );

    let root = std::env::temp_dir().join(format!("powerchop-crash-drill-{}", std::process::id()));
    let journal_dir = root.join("journal");
    let cache_dir = root.join("cache");
    std::fs::create_dir_all(&journal_dir)?;
    std::fs::create_dir_all(&cache_dir)?;
    let jdir = journal_dir.to_string_lossy().into_owned();
    let cdir = cache_dir.to_string_lossy().into_owned();
    let jpath = powerchop_durable::journal_path(&journal_dir);

    let c = Counters::default();
    let mut kills = 0u64;
    let mut spill_mark = 0u64;
    for cycle in 0..opts.crash_cycles {
        let daemon = DrillChild::spawn(&jdir, &cdir, budget)?;
        // The first cycle seeds the sweep over the wire; every later
        // boot resumes it from the journal without any client at all.
        let seed_conn = if cycle == 0 {
            match TcpStream::connect(daemon.addr) {
                Ok(mut stream) => {
                    stream.write_all(sweep_request.as_bytes())?;
                    stream.write_all(b"\n")?;
                    stream.flush()?;
                    Some(stream)
                }
                Err(e) => {
                    c.note(format!("drill cycle {cycle}: sweep connect failed: {e}"));
                    None
                }
            }
        } else {
            None
        };
        match await_spill_progress(&jpath, spill_mark, cycle > 0) {
            SpillWatch::Progressed(sum) => {
                spill_mark = sum;
                daemon.kill();
                kills += 1;
            }
            SpillWatch::Completed => {
                c.note(format!(
                    "drill cycle {cycle}: sweep completed before the kill landed"
                ));
                daemon.kill();
            }
            SpillWatch::Stalled => {
                c.note(format!(
                    "drill cycle {cycle}: no spill progress within 120s"
                ));
                daemon.kill();
            }
        }
        drop(seed_conn);
    }

    // Final generation: boot, let recovery finish the sweep, then prove
    // the recovered state byte for byte.
    let daemon = DrillChild::spawn(&jdir, &cdir, budget)?;
    let health = await_recovery(daemon.addr, &c).unwrap_or_default();
    let journal_replayed = json_u64_field(&health, "journal_replayed").unwrap_or(0);
    let resumed_instructions = json_u64_field(&health, "resumed_instructions").unwrap_or(0);
    let redone_instructions = json_u64_field(&health, "redone_instructions").unwrap_or(u64::MAX);
    let recovered_boot = health.contains("\"clean_boot\":false");
    let final_sweep_identical = match request_once(daemon.addr, &sweep_request) {
        Ok(reply) => {
            c.saw_reply(&reply);
            if powerchop_serve::strip_trace_id(&reply) == expected_sweep {
                true
            } else {
                c.note(format!("post-recovery sweep diverged: {reply}"));
                false
            }
        }
        Err(e) => {
            c.note(format!("post-recovery sweep failed: {e}"));
            false
        }
    };
    let counters_scraped = ["serve_recoveries_total", "serve_journal_replayed_total"]
        .iter()
        .all(|name| match scrape_counter(daemon.addr, name) {
            Some(v) if v > 0 => true,
            got => {
                c.note(format!("metrics counter {name}: expected > 0, got {got:?}"));
                false
            }
        });
    let clean_drain = daemon.drain(&c);
    let _ = std::fs::remove_dir_all(&root);

    let notes = c
        .notes
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone();
    Ok(CrashDrillReport {
        kills,
        journal_replayed,
        resumed_instructions,
        redone_instructions,
        recovered_boot,
        final_sweep_identical,
        counters_scraped,
        clean_drain,
        notes,
    })
}

/// Prints and verdicts one crash-drill report.
///
/// # Errors
///
/// Returns a [`CliError`] when any drill invariant failed.
fn crash_drill_verdict(opts: &SoakOpts, report: &CrashDrillReport) -> Result<(), CliError> {
    println!(
        "crash drill: {} mid-sweep kill(s), journal replayed {}, resumed {} instr, re-done {} instr",
        report.kills, report.journal_replayed, report.resumed_instructions,
        report.redone_instructions
    );
    println!(
        "crash drill: recovered boot: {}, sweep bit-identical: {}, counters scraped: {}, clean drain: {}",
        if report.recovered_boot { "yes" } else { "no" },
        if report.final_sweep_identical { "yes" } else { "no" },
        if report.counters_scraped { "yes" } else { "no" },
        if report.clean_drain { "yes" } else { "no" }
    );
    if report.passed(opts.crash_cycles) {
        println!("crash drill PASSED");
        Ok(())
    } else {
        for note in &report.notes {
            eprintln!("crash drill: {note}");
        }
        Err(CliError(
            "crash-recovery drill failed (see notes above)".into(),
        ))
    }
}

/// The `soak` command: run the storm, print the verdict, fail loudly.
///
/// # Errors
///
/// Returns a [`CliError`] for setup failures or any violated storm
/// invariant.
pub fn soak_cmd(opts: &SoakOpts) -> Result<(), CliError> {
    println!(
        "chaos soak: seed {}, {} hostile + {} honest clients x {} requests, {} worker kill(s)",
        opts.seed, opts.hostile, opts.honest, opts.requests, opts.kill_workers
    );
    let report = run_soak(opts)?;
    println!(
        "replies {} ({} malformed), honest {} ok / {} mismatched, hostile drops {}",
        report.replies,
        report.malformed,
        report.honest_ok,
        report.honest_mismatches,
        report.hostile_drops
    );
    println!(
        "worker kills {}/{} confirmed, respawns {}, breaker trips {}, pool gave up: {}, clean drain: {}",
        report.kills_confirmed,
        report.kills_requested,
        report.worker_respawns,
        report.breaker_trips,
        if report.pool_gave_up { "yes" } else { "no" },
        if report.clean_drain { "yes" } else { "no" }
    );
    if !report.passed() {
        for note in &report.notes {
            eprintln!("soak: {note}");
        }
        return Err(CliError("chaos soak failed (see notes above)".into()));
    }
    println!("soak PASSED");
    if opts.crash_cycles > 0 {
        println!(
            "crash drill: {} cycle(s) of mid-sweep SIGKILL + restart",
            opts.crash_cycles
        );
        let drill = run_crash_drill(opts)?;
        crash_drill_verdict(opts, &drill)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_u64_field_extracts_numeric_fields() {
        let line = r#"{"ok":true,"worker_respawns":3,"breaker_trips":0,"s":"x"}"#;
        assert_eq!(json_u64_field(line, "worker_respawns"), Some(3));
        assert_eq!(json_u64_field(line, "breaker_trips"), Some(0));
        assert_eq!(json_u64_field(line, "missing"), None);
        assert_eq!(json_u64_field(line, "s"), None);
    }

    #[test]
    fn hostile_frames_are_reproducible_per_seed() {
        let expected: Vec<Expected> = ROSTER
            .iter()
            .map(|&bench| Expected {
                bench,
                request: format!(r#"{{"op":"run","bench":"{bench}"}}"#),
                fresh: String::new(),
                cached: String::new(),
            })
            .collect();
        let frames = |seed: u64| -> Vec<Vec<u8>> {
            let mut rng = SimRng::new(seed).fork(stream_label("soak-hostile")).fork(0);
            (0..64)
                .map(|_| hostile_frame(&mut rng, &expected))
                .collect()
        };
        assert_eq!(frames(7), frames(7), "same seed, same storm");
        assert_ne!(frames(7), frames(8), "different seeds diverge");
        // Every frame class shows up across a modest draw count.
        let all = frames(7);
        assert!(all.iter().any(|f| f.starts_with(b"{\"op\":\"status\"}")));
        assert!(
            all.iter().any(|f| f.last() != Some(&b'\n')),
            "fragment bait"
        );
        assert!(
            all.iter().any(|f| std::str::from_utf8(f).is_err()),
            "raw garbage"
        );
    }

    #[test]
    fn is_retryable_matches_backpressure_codes_only() {
        assert!(is_retryable(r#"{"ok":false,"code":429,"error":"busy"}"#));
        assert!(is_retryable(
            r#"{"ok":false,"code":503,"error":"breaker-open"}"#
        ));
        assert!(!is_retryable(
            r#"{"ok":false,"code":400,"error":"bad-request"}"#
        ));
        assert!(!is_retryable(r#"{"ok":true,"op":"run","cached":false}"#));
    }
}
