//! The `serve --supervised` self-healing loop.
//!
//! A crash-consistent daemon is only half a durability story: someone
//! has to restart it. This module is that someone — a parent process
//! that respawns the daemon after crashes at a bounded rate, using
//! [`powerchop_resilience::RestartTracker`]'s sliding-window policy,
//! and gives up (latched, loudly) on a crash storm instead of melting
//! the host with a respawn loop. Paired with `--journal-dir`, every
//! respawn replays the journal and resumes interrupted work, so the
//! crash-restart cycle converges instead of re-doing the same runs
//! forever.
//!
//! The loop itself is pure control flow over two injected closures
//! (spawn a child, read a clock), so the storm/give-up policy is unit
//! tested without ever forking a process; the production entry point
//! re-invokes the current executable with the same `serve` flags minus
//! the supervision ones.

use std::time::Instant;

use powerchop_resilience::{RestartPolicy, RestartTracker, RestartVerdict, RetryPolicy};

use crate::args::ServeOpts;
use crate::CliError;

/// How one supervised child generation ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChildOutcome {
    /// The daemon exited successfully (in-protocol shutdown drained it).
    Drained,
    /// The daemon died: killed by a signal or exited nonzero. The
    /// string is a human-readable status for the log line.
    Crashed(String),
}

/// How a supervision session ended.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SupervisorVerdict {
    /// The daemon drained cleanly after `respawns` crash recoveries.
    Drained {
        /// Crashes survived before the clean exit.
        respawns: u64,
    },
    /// The restart-rate cap latched: the daemon is crashing faster than
    /// the policy tolerates and respawning it would be a fork bomb.
    GaveUp {
        /// Crashes recorded, the last one included.
        crashes: u64,
    },
}

/// The supervision loop, decoupled from process spawning: `spawn` runs
/// one child generation to its end, `now_ms` is the restart-rate clock,
/// `backoff` sleeps between a crash and its respawn (attempt-numbered
/// for seeded jitter). Only `spawn`'s own errors (the binary cannot
/// even be launched) propagate as `Err`.
///
/// # Errors
///
/// Propagates spawn failures verbatim.
pub fn supervise_loop(
    policy: RestartPolicy,
    mut spawn: impl FnMut() -> Result<ChildOutcome, CliError>,
    mut now_ms: impl FnMut() -> u64,
    mut backoff: impl FnMut(u32),
) -> Result<SupervisorVerdict, CliError> {
    let mut tracker = RestartTracker::new(policy);
    let mut attempt = 0u32;
    loop {
        match spawn()? {
            ChildOutcome::Drained => {
                return Ok(SupervisorVerdict::Drained {
                    respawns: tracker.total(),
                });
            }
            ChildOutcome::Crashed(status) => {
                let verdict = tracker.record(now_ms());
                eprintln!(
                    "powerchop-serve[supervisor]: daemon died ({status}); {} crash(es) in window",
                    tracker.in_window()
                );
                if verdict == RestartVerdict::Storm {
                    eprintln!(
                        "powerchop-serve[supervisor]: crash storm — giving up after {} crashes",
                        tracker.total()
                    );
                    return Ok(SupervisorVerdict::GaveUp {
                        crashes: tracker.total(),
                    });
                }
                attempt = attempt.saturating_add(1);
                backoff(attempt);
            }
        }
    }
}

/// Rebuilds the child's `serve` argv from the parsed options, minus the
/// supervision flags (the child must serve, not supervise) and with
/// every durability/hardening flag spelled back out.
pub fn child_argv(opts: &ServeOpts) -> Vec<String> {
    let mut argv = vec![
        "serve".to_owned(),
        "--addr".to_owned(),
        opts.addr.clone(),
        "--queue-depth".to_owned(),
        opts.queue_depth.to_string(),
        "--cache-entries".to_owned(),
        opts.cache_entries.to_string(),
        "--deadline-ms".to_owned(),
        opts.deadline_ms.to_string(),
        "--max-request-bytes".to_owned(),
        opts.max_request_bytes.to_string(),
        "--max-budget".to_owned(),
        opts.max_budget.to_string(),
        "--max-connections".to_owned(),
        opts.max_connections.to_string(),
        "--read-timeout-ms".to_owned(),
        opts.read_timeout_ms.to_string(),
        "--write-timeout-ms".to_owned(),
        opts.write_timeout_ms.to_string(),
        "--max-outbox-bytes".to_owned(),
        opts.max_outbox_bytes.to_string(),
        "--spill-every".to_owned(),
        opts.spill_every.to_string(),
    ];
    if let Some(jobs) = opts.jobs {
        argv.push("--jobs".to_owned());
        argv.push(jobs.to_string());
    }
    if let Some(dir) = &opts.journal_dir {
        argv.push("--journal-dir".to_owned());
        argv.push(dir.clone());
    }
    if let Some(dir) = &opts.cache_dir {
        argv.push("--cache-dir".to_owned());
        argv.push(dir.clone());
    }
    if opts.chaos_ops {
        argv.push("--chaos-ops".to_owned());
    }
    if let Some(path) = &opts.access_log {
        argv.push("--access-log".to_owned());
        argv.push(path.clone());
    }
    if let Some(ms) = opts.slow_ms {
        argv.push("--slow-ms".to_owned());
        argv.push(ms.to_string());
    }
    if let Some(seed) = opts.seed {
        argv.push("--seed".to_owned());
        argv.push(seed.to_string());
    }
    argv
}

/// The production `serve --supervised` entry point: respawn the real
/// daemon (this very executable, re-invoked) until it drains cleanly or
/// the crash-rate policy gives up.
///
/// # Errors
///
/// Fails when the executable cannot be re-invoked or when supervision
/// ends in a latched give-up.
pub fn serve_supervised(opts: &ServeOpts) -> Result<(), CliError> {
    let exe = std::env::current_exe()
        .map_err(|e| CliError(format!("--supervised: cannot locate own executable: {e}")))?;
    let argv = child_argv(opts);
    let policy = RestartPolicy::new(opts.restart_window_ms, opts.max_restarts);
    // Seeded-jitter backoff between respawns: enough to let a transient
    // cause (port teardown, filesystem pressure) clear, deterministic
    // for a given address.
    let retry = RetryPolicy::new(50, 2_000);
    let stream = powerchop_resilience::retry::stream_label(&opts.addr);
    let epoch = Instant::now();
    let verdict = supervise_loop(
        policy,
        || {
            let status = std::process::Command::new(&exe)
                .args(&argv)
                .status()
                .map_err(|e| CliError(format!("--supervised: cannot spawn daemon: {e}")))?;
            if status.success() {
                Ok(ChildOutcome::Drained)
            } else {
                Ok(ChildOutcome::Crashed(status.to_string()))
            }
        },
        || u64::try_from(epoch.elapsed().as_millis()).unwrap_or(u64::MAX),
        |attempt| {
            std::thread::sleep(std::time::Duration::from_millis(
                retry.delay_ms(0xD1CE, stream, attempt),
            ));
        },
    )?;
    match verdict {
        SupervisorVerdict::Drained { respawns } => {
            if respawns > 0 {
                println!("powerchop-serve supervisor: drained cleanly after {respawns} respawn(s)");
            }
            Ok(())
        }
        SupervisorVerdict::GaveUp { crashes } => Err(CliError(format!(
            "--supervised: daemon crashed {crashes} time(s), exceeding {} per {}ms; giving up",
            opts.max_restarts, opts.restart_window_ms
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::args::ServeOpts;

    fn policy() -> RestartPolicy {
        RestartPolicy::new(1_000, 2)
    }

    #[test]
    fn clean_exit_ends_supervision_immediately() {
        let mut spawns = 0;
        let verdict = supervise_loop(
            policy(),
            || {
                spawns += 1;
                Ok(ChildOutcome::Drained)
            },
            || 0,
            |_| {},
        )
        .expect("no spawn errors");
        assert_eq!(spawns, 1);
        assert_eq!(verdict, SupervisorVerdict::Drained { respawns: 0 });
    }

    #[test]
    fn crashes_under_the_rate_cap_are_respawned() {
        let mut spawns = 0;
        let mut backoffs = Vec::new();
        let verdict = supervise_loop(
            policy(),
            || {
                spawns += 1;
                Ok(if spawns <= 2 {
                    ChildOutcome::Crashed("signal: 9".into())
                } else {
                    ChildOutcome::Drained
                })
            },
            // Spread the crashes over time so the window never fills.
            {
                let mut clock = 0;
                move || {
                    clock += 10_000;
                    clock
                }
            },
            |attempt| backoffs.push(attempt),
        )
        .expect("no spawn errors");
        assert_eq!(spawns, 3, "two crashes, then the clean generation");
        assert_eq!(verdict, SupervisorVerdict::Drained { respawns: 2 });
        assert_eq!(backoffs, vec![1, 2], "attempt-numbered backoff");
    }

    #[test]
    fn a_crash_storm_latches_give_up() {
        let mut spawns = 0;
        let verdict = supervise_loop(
            policy(),
            || {
                spawns += 1;
                Ok(ChildOutcome::Crashed("exit status: 101".into()))
            },
            || 0, // every crash inside one window
            |_| {},
        )
        .expect("no spawn errors");
        // max_restarts = 2: the third crash inside the window is the storm.
        assert_eq!(verdict, SupervisorVerdict::GaveUp { crashes: 3 });
        assert_eq!(spawns, 3, "no respawn after the storm verdict");
    }

    #[test]
    fn spawn_errors_propagate() {
        let err = supervise_loop(
            policy(),
            || Err(CliError("no such binary".into())),
            || 0,
            |_| {},
        )
        .expect_err("spawn failure is fatal");
        assert!(err.0.contains("no such binary"));
    }

    #[test]
    fn child_argv_strips_supervision_and_keeps_durability() {
        let opts = ServeOpts {
            addr: "127.0.0.1:0".into(),
            jobs: Some(2),
            journal_dir: Some("wal".into()),
            cache_dir: Some("cache".into()),
            spill_every: 50_000,
            supervised: true,
            chaos_ops: true,
            ..ServeOpts::default()
        };
        let argv = child_argv(&opts);
        assert_eq!(argv[0], "serve");
        assert!(!argv.iter().any(|a| a == "--supervised"));
        assert!(!argv.iter().any(|a| a == "--max-restarts"));
        assert!(!argv.iter().any(|a| a == "--restart-window-ms"));
        for (flag, value) in [
            ("--journal-dir", "wal"),
            ("--cache-dir", "cache"),
            ("--spill-every", "50000"),
            ("--jobs", "2"),
            ("--addr", "127.0.0.1:0"),
            ("--max-outbox-bytes", "1048576"),
        ] {
            let i = argv
                .iter()
                .position(|a| a == flag)
                .unwrap_or_else(|| panic!("{flag} missing from {argv:?}"));
            assert_eq!(argv[i + 1], value);
        }
        assert!(argv.iter().any(|a| a == "--chaos-ops"));
        // The child argv must re-parse to an equivalent unsupervised config.
        match crate::args::parse(&argv).expect("child argv parses") {
            crate::args::Command::Serve { opts: reparsed } => {
                assert!(!reparsed.supervised);
                assert_eq!(reparsed.journal_dir.as_deref(), Some("wal"));
                assert_eq!(reparsed.spill_every, 50_000);
                assert_eq!(reparsed.jobs, Some(2));
            }
            other => panic!("unexpected {other:?}"),
        }
    }
}
