//! Command implementations.

use std::collections::HashMap;

use powerchop::{
    read_meta, run_program, run_program_traced, ManagerKind, RunConfig, RunReport, Simulation,
    SnapshotMeta,
};
use powerchop_faults::FaultConfig;
use powerchop_gisa::Program;
use powerchop_telemetry::export::JsonWriter;
use powerchop_telemetry::{export, timeline, TelemetryConfig, Tracer};
use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::config::{CoreConfig, CoreKind};
use powerchop_workloads::{Benchmark, Scale, Suite};

use crate::args::{Command, ManagerArg, RunOpts, USAGE};
use crate::CliError;

/// Dispatch-loop iterations per [`Simulation::step_chunk`] call when a
/// command steps a run incrementally (checkpointing, supervision).
pub(crate) const STEP_CHUNK: u64 = 65_536;

/// Executes a parsed command.
///
/// # Errors
///
/// Propagates [`CliError`]s from lookups, I/O and guest execution.
pub fn dispatch(command: Command) -> Result<(), CliError> {
    match command {
        Command::Help => {
            println!("{USAGE}");
            Ok(())
        }
        Command::Info => info(),
        Command::List { suite } => list(suite.as_deref()),
        Command::Run { bench, opts } => run_one(&bench, &opts),
        Command::RunAll { opts } => run_all(&opts),
        Command::Compare { bench, opts } => compare(&bench, &opts),
        Command::Timeline { bench, opts } => timeline_cmd(&bench, &opts),
        Command::Asm { path, opts } => run_asm(&path, &opts),
        Command::Profile { bench, opts } => profile_bench(&bench, &opts),
        Command::Trace { bench, opts } => trace_cmd(&bench, &opts),
        Command::Stress { bench, opts } => stress(bench.as_deref(), &opts),
        Command::Checkpoint {
            bench,
            at,
            out,
            opts,
        } => checkpoint_cmd(&bench, at, out.as_deref(), opts),
        Command::Resume { path, json } => resume_cmd(&path, json),
        Command::Supervise { benches, opts, sup } => {
            crate::supervise::supervise(&benches, opts, &sup)
        }
        Command::Serve { opts } => serve_cmd(&opts),
        Command::Soak { opts } => crate::soak::soak_cmd(&opts),
        Command::Top { opts } => crate::top::top_cmd(&opts),
    }
}

/// Validates a directory flag up front: the path must be creatable and
/// writable *now*, so a typo'd `--journal-dir` fails at startup with
/// the flag name and raw value (the parse-error convention) instead of
/// surfacing as a confusing bind error — or worse, a daemon that only
/// discovers its journal is read-only at the first crash.
fn validate_writable_dir(flag: &str, raw: &str) -> Result<(), CliError> {
    let check = || -> std::io::Result<()> {
        std::fs::create_dir_all(raw)?;
        let probe = std::path::Path::new(raw).join(".powerchop-writable");
        std::fs::write(&probe, b"probe")?;
        std::fs::remove_file(&probe)
    };
    check().map_err(|e| {
        CliError(format!(
            "{flag}: invalid value {raw:?}: {e} (expected a writable directory path)"
        ))
    })
}

/// The `serve` command: bind the daemon, announce the resolved address
/// on stdout (port 0 picks a free port, so callers need the real one),
/// and block until an in-protocol shutdown drains it. With
/// `--supervised` this process instead becomes the self-healing parent
/// and the daemon runs as a respawnable child.
fn serve_cmd(opts: &crate::args::ServeOpts) -> Result<(), CliError> {
    // Both modes validate the durability directories up front; the
    // supervisor additionally needs them validated *before* the first
    // child is forked, not on its own crash path.
    if let Some(dir) = &opts.journal_dir {
        validate_writable_dir("--journal-dir", dir)?;
    }
    if let Some(dir) = &opts.cache_dir {
        validate_writable_dir("--cache-dir", dir)?;
    }
    if opts.supervised {
        return crate::supervisor::serve_supervised(opts);
    }
    let cfg = powerchop_serve::ServerConfig {
        addr: opts.addr.clone(),
        jobs: opts.jobs,
        queue_depth: opts.queue_depth,
        cache_entries: opts.cache_entries,
        deadline_ms: opts.deadline_ms,
        max_request_bytes: opts.max_request_bytes,
        max_budget: opts.max_budget,
        max_connections: opts.max_connections,
        read_timeout_ms: opts.read_timeout_ms,
        write_timeout_ms: opts.write_timeout_ms,
        max_outbox_bytes: opts.max_outbox_bytes,
        chaos_ops: opts.chaos_ops,
        journal_dir: opts.journal_dir.clone(),
        cache_dir: opts.cache_dir.clone(),
        spill_every: opts.spill_every,
        access_log: opts.access_log.clone(),
        slow_ms: opts.slow_ms,
        seed: opts.seed,
    };
    let server = powerchop_serve::Server::bind(&cfg)?;
    println!("powerchop-serve listening on {}", server.local_addr());
    std::io::Write::flush(&mut std::io::stdout())?;
    server.run()?;
    println!("powerchop-serve drained; exiting");
    Ok(())
}

fn suite_by_name(name: &str) -> Result<Suite, CliError> {
    match name {
        "spec-int" | "specint" => Ok(Suite::SpecInt),
        "spec-fp" | "specfp" => Ok(Suite::SpecFp),
        "parsec" => Ok(Suite::Parsec),
        "mobile" | "mobilebench" => Ok(Suite::MobileBench),
        other => Err(CliError(format!(
            "unknown suite `{other}` (expected spec-int|spec-fp|parsec|mobile)"
        ))),
    }
}

fn benchmark(name: &str) -> Result<&'static Benchmark, CliError> {
    powerchop_workloads::by_name(name).ok_or_else(|| {
        CliError(format!(
            "unknown benchmark `{name}` — try `powerchop-cli list`"
        ))
    })
}

fn config(kind: CoreKind, opts: &RunOpts) -> RunConfig {
    let mut cfg = RunConfig::for_kind(kind);
    cfg.max_instructions = opts.budget;
    if let Some(jit) = opts.jit {
        cfg.jit = jit;
    }
    cfg
}

/// The tracer a command's options ask for: recording when `--trace` or
/// `--metrics` was given, the no-op tracer otherwise.
pub(crate) fn tracer_for(opts: &RunOpts) -> Tracer {
    if opts.wants_telemetry() {
        Tracer::enabled(TelemetryConfig::default())
    } else {
        Tracer::disabled()
    }
}

/// Writes the requested telemetry artifacts from a finished tracer: the
/// Chrome trace-event JSON to `trace` and the Prometheus text dump to
/// `metrics` (each skipped when not requested or the tracer is inert).
pub(crate) fn write_telemetry(
    tracer: &Tracer,
    trace: Option<&str>,
    metrics: Option<&str>,
) -> Result<(), CliError> {
    let Some(rec) = tracer.recorder() else {
        return Ok(());
    };
    if let Some(path) = trace {
        std::fs::write(path, export::chrome_trace_json(&rec.events()))?;
        eprintln!("wrote Chrome trace to {path}");
    }
    if let Some(path) = metrics {
        std::fs::write(path, rec.metrics().to_prometheus_text())?;
        eprintln!("wrote Prometheus metrics to {path}");
    }
    Ok(())
}

/// Derives the per-benchmark output path sweeps use: `out.json` becomes
/// `out-<bench>.json` so one `--trace`/`--metrics` flag fans out without
/// the runs overwriting each other.
pub(crate) fn per_bench_path(path: &str, bench: &str) -> String {
    let p = std::path::Path::new(path);
    let stem = p
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("telemetry");
    let ext = p
        .extension()
        .and_then(|s| s.to_str())
        .map(|e| format!(".{e}"))
        .unwrap_or_default();
    p.with_file_name(format!("{stem}-{bench}{ext}"))
        .to_string_lossy()
        .into_owned()
}

fn list(suite: Option<&str>) -> Result<(), CliError> {
    let filter = suite.map(suite_by_name).transpose()?;
    println!("{:<14} {:<12} {:<7}", "benchmark", "suite", "core");
    for b in powerchop_workloads::all() {
        if filter.is_some_and(|s| s != b.suite()) {
            continue;
        }
        println!(
            "{:<14} {:<12} {:<7}",
            b.name(),
            b.suite().to_string(),
            b.core_kind()
        );
    }
    Ok(())
}

fn info() -> Result<(), CliError> {
    for cfg in [CoreConfig::server(), CoreConfig::mobile()] {
        println!(
            "{}: {}-wide issue, {}-lane VPU ({:.0}% area), {} KiB {}-way MLC ({:.0}% area), \
             tournament BPU {}-entry BTB ({:.0}% area)",
            cfg.kind,
            cfg.issue_width,
            cfg.simd_lanes,
            100.0 * cfg.area.vpu,
            cfg.mlc.size_kib,
            cfg.mlc.ways,
            100.0 * cfg.area.mlc,
            cfg.bpu.large_btb_entries,
            100.0 * cfg.area.bpu,
        );
    }
    Ok(())
}

fn print_report(r: &RunReport) {
    println!("program        {}", r.name);
    println!("manager        {}", r.manager);
    println!("core           {}", r.core_kind);
    println!("instructions   {}", r.instructions);
    println!("cycles         {}", r.cycles);
    println!("IPC            {:.3}", r.ipc());
    println!("avg power      {:.3} W", r.energy.avg_power_w);
    println!("  leakage      {:.3} W", r.energy.leakage_power_w);
    println!("  dynamic      {:.3} W", r.energy.dynamic_power_w);
    println!("energy         {:.3} mJ", r.energy.total_j * 1e3);
    println!("VPU gated      {:.1} %", 100.0 * r.gated.vpu_off_frac());
    println!("BPU gated      {:.1} %", 100.0 * r.gated.bpu_off_frac());
    println!("MLC way-gated  {:.1} %", 100.0 * r.gated.mlc_gated_frac());
    println!(
        "switches       {} (VPU {}, BPU {}, MLC {})",
        r.switches.total(),
        r.switches.vpu,
        r.switches.bpu,
        r.switches.mlc
    );
    if let (Some(pvt), Some(cde)) = (r.pvt, r.cde) {
        println!(
            "phases         {} decided ({} PVT lookups, {} misses, {} re-registered)",
            cde.decided,
            pvt.lookups,
            pvt.misses(),
            cde.reregistered
        );
    }
}

fn run_one(bench: &str, opts: &RunOpts) -> Result<(), CliError> {
    let b = benchmark(bench)?;
    let mut cfg = config(b.core_kind(), opts);
    cfg.faults = fault_config(opts.seed, opts.storm);
    let program = b.program(Scale(opts.scale));
    let (report, tracer) =
        run_program_traced(&program, opts.manager.kind(), &cfg, tracer_for(opts))?;
    write_telemetry(&tracer, opts.trace.as_deref(), opts.metrics.as_deref())?;
    if opts.json {
        println!("{}", report_to_json(&report));
    } else {
        print_report(&report);
    }
    Ok(())
}

/// The `trace` command: run with the flight recorder always on and
/// render the phase/gating timeline from the recorded event stream
/// (plus any `--trace`/`--metrics` files the flags asked for).
fn trace_cmd(bench: &str, opts: &RunOpts) -> Result<(), CliError> {
    let b = benchmark(bench)?;
    let mut cfg = config(b.core_kind(), opts);
    cfg.faults = fault_config(opts.seed, opts.storm);
    let program = b.program(Scale(opts.scale));
    let tracer = Tracer::enabled(TelemetryConfig::default());
    let (report, tracer) = run_program_traced(&program, opts.manager.kind(), &cfg, tracer)?;
    write_telemetry(&tracer, opts.trace.as_deref(), opts.metrics.as_deref())?;
    if let Some(rec) = tracer.recorder() {
        println!(
            "{bench} ({}, {} manager): {} instructions, {} cycles",
            report.core_kind, report.manager, report.instructions, report.cycles
        );
        print!("{}", timeline::render(&rec.events(), report.cycles, 96));
        if rec.ring().dropped() > 0 {
            println!(
                "note: ring wrapped — {} oldest event(s) dropped; early history is missing",
                rec.ring().dropped()
            );
        }
    }
    Ok(())
}

// The report serializer lives in `powerchop-serve` now (the daemon's
// bit-identical-reply contract depends on it); re-exported here so
// existing `cli::commands::report_to_json` callers keep working.
pub use powerchop_serve::report_to_json;

/// `run --all`: every benchmark, fanned out on the work-stealing pool.
/// Jobs only compute; all printing happens after the pool drains, folding
/// results in benchmark order, so stdout is byte-identical at any
/// `--jobs` value.
fn run_all(opts: &RunOpts) -> Result<(), CliError> {
    let benches: Vec<&'static Benchmark> = powerchop_workloads::all().iter().collect();
    let jobs = powerchop_exec::resolve_jobs(opts.jobs);
    let results = powerchop_exec::run_jobs(&benches, jobs, |_, b| -> Result<RunReport, CliError> {
        let mut cfg = config(b.core_kind(), opts);
        cfg.faults = fault_config(opts.seed, opts.storm);
        let program = b.program(Scale(opts.scale));
        let (report, tracer) =
            run_program_traced(&program, opts.manager.kind(), &cfg, tracer_for(opts))?;
        // Telemetry paths are per-benchmark, so concurrent writes never
        // collide; the "wrote ..." notes go to stderr, not the report.
        write_telemetry(
            &tracer,
            opts.trace
                .as_deref()
                .map(|p| per_bench_path(p, b.name()))
                .as_deref(),
            opts.metrics
                .as_deref()
                .map(|p| per_bench_path(p, b.name()))
                .as_deref(),
        )?;
        Ok(report)
    });

    let mut reports = Vec::with_capacity(benches.len());
    let mut failures = Vec::new();
    for (b, result) in benches.iter().zip(results) {
        match result {
            Ok(Ok(report)) => reports.push(report),
            Ok(Err(e)) => failures.push(format!("{}: {e}", b.name())),
            Err(p) => failures.push(format!("{}: panicked: {}", b.name(), p.message)),
        }
    }
    if opts.json {
        let mut w = JsonWriter::array();
        for r in &reports {
            w.push_raw(&report_to_json(r));
        }
        println!("{}", w.finish());
    } else {
        for (i, r) in reports.iter().enumerate() {
            if i > 0 {
                println!();
            }
            print_report(r);
        }
        // Stderr, so stdout stays identical at every thread count.
        eprintln!(
            "ran {} benchmarks on {jobs} worker thread(s)",
            reports.len()
        );
    }
    if !failures.is_empty() {
        return Err(CliError(format!(
            "{} benchmark(s) failed: {}",
            failures.len(),
            failures.join("; ")
        )));
    }
    Ok(())
}

fn compare(bench: &str, opts: &RunOpts) -> Result<(), CliError> {
    let b = benchmark(bench)?;
    let cfg = config(b.core_kind(), opts);
    let program = b.program(Scale(opts.scale));
    let full = run_program(&program, ManagerKind::FullPower, &cfg)?;
    let chop = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    println!("{bench} on the {} core:", b.core_kind());
    println!("  IPC            {:.3} -> {:.3}", full.ipc(), chop.ipc());
    println!(
        "  power          {:.2} W -> {:.2} W ({:+.1} %)",
        full.energy.avg_power_w,
        chop.energy.avg_power_w,
        -100.0 * chop.power_reduction_vs(&full)
    );
    println!(
        "  leakage        {:.2} W -> {:.2} W ({:+.1} %)",
        full.energy.leakage_power_w,
        chop.energy.leakage_power_w,
        -100.0 * chop.leakage_reduction_vs(&full)
    );
    println!("  slowdown       {:.2} %", 100.0 * chop.slowdown_vs(&full));
    println!(
        "  energy/instr   {:+.1} %",
        -100.0 * chop.energy_reduction_vs(&full)
    );
    Ok(())
}

fn timeline_cmd(bench: &str, opts: &RunOpts) -> Result<(), CliError> {
    let b = benchmark(bench)?;
    let mut cfg = config(b.core_kind(), opts);
    cfg.record_windows = true;
    let program = b.program(Scale(opts.scale));
    let report = run_program(&program, ManagerKind::PowerChop, &cfg)?;
    print_timeline(&report);
    Ok(())
}

fn print_timeline(report: &RunReport) {
    let mut names: HashMap<_, char> = HashMap::new();
    let mut next = b'A';
    let line = |f: &dyn Fn(&powerchop::managers::WindowRecord) -> char, tag: &str| {
        print!("{tag:<10}");
        for w in &report.windows {
            print!("{}", f(w));
        }
        println!();
    };
    print!("{:<10}", "phase");
    for w in &report.windows {
        let c = *names.entry(w.signature).or_insert_with(|| {
            let c = next as char;
            next = (next + 1).min(b'z');
            c
        });
        print!("{c}");
    }
    println!();
    line(&|w| if w.policy.vpu_on { '#' } else { '.' }, "VPU");
    line(&|w| if w.policy.bpu_on { '#' } else { '.' }, "BPU");
    line(
        &|w| match w.policy.mlc {
            MlcWayState::Full => '8',
            MlcWayState::Half => '4',
            MlcWayState::Quarter => '2',
            MlcWayState::One => '1',
        },
        "MLC",
    );
    println!(
        "\n{} windows, {} phases, {} policy switches ('#' on, '.' gated, MLC digit = ways)",
        report.windows.len(),
        names.len(),
        report.switches.total()
    );
}

fn run_asm(path: &str, opts: &RunOpts) -> Result<(), CliError> {
    let source = std::fs::read_to_string(path)?;
    let name = std::path::Path::new(path)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("program");
    let program: Program = powerchop_gisa::asm::assemble(name, &source)?;
    let cfg = config(CoreKind::Server, opts);
    let report = run_program(&program, opts.manager.kind(), &cfg)?;
    if opts.json {
        println!("{}", report_to_json(&report));
    } else {
        print_report(&report);
    }
    Ok(())
}

/// The `stress` fault-schedule seed when `--seed` is not given (the
/// daemon shares it, so `stress` and a seedless storm request agree).
pub const DEFAULT_STRESS_SEED: u64 = powerchop_serve::DEFAULT_FAULT_SEED;

// The fault schedule implied by `--seed`/`--storm` (`None` runs clean)
// is shared with the daemon so both derive identical schedules.
use powerchop_serve::fault_config;

/// Everything a checkpointable run needs, bundled so `checkpoint`,
/// `resume` and `supervise` reconstruct runs identically.
pub(crate) struct PreparedRun {
    /// The guest program.
    pub program: Program,
    /// The manager kind.
    pub kind: ManagerKind,
    /// The full run configuration.
    pub cfg: RunConfig,
    /// Self-describing metadata embedded in snapshots.
    pub meta: SnapshotMeta,
}

/// Builds a [`PreparedRun`] from its five run-shaping inputs; the
/// resulting metadata round-trips through a snapshot back into the same
/// prepared run.
pub(crate) fn prepare_run(
    bench: &str,
    manager: ManagerArg,
    budget: u64,
    scale: f64,
    seed: Option<u64>,
    storm: bool,
) -> Result<PreparedRun, CliError> {
    let b = benchmark(bench)?;
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = budget;
    let faults = fault_config(seed, storm);
    let fault_seed = faults.as_ref().map(|_| seed.unwrap_or(DEFAULT_STRESS_SEED));
    cfg.faults = faults;
    Ok(PreparedRun {
        program: b.program(Scale(scale)),
        kind: manager.kind(),
        cfg,
        meta: SnapshotMeta {
            benchmark: b.name().to_owned(),
            scale,
            manager: manager.as_str().to_owned(),
            budget,
            fault_seed,
            storm,
        },
    })
}

/// Writes `bytes` to `path` atomically (temp file + rename), so a crash
/// mid-write can never leave a half-written snapshot under the real name.
pub(crate) fn write_atomic(path: &std::path::Path, bytes: &[u8]) -> Result<(), CliError> {
    let tmp = path.with_extension("ckpt.tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)?;
    Ok(())
}

fn checkpoint_cmd(bench: &str, at: u64, out: Option<&str>, opts: RunOpts) -> Result<(), CliError> {
    let pr = prepare_run(
        bench,
        opts.manager,
        opts.budget,
        opts.scale,
        opts.seed,
        opts.storm,
    )?;
    let mut sim = Simulation::new(&pr.program, pr.kind, &pr.cfg)?;
    while !sim.is_done() && sim.retired() < at {
        sim.step_chunk(STEP_CHUNK)?;
    }
    let bytes = sim.snapshot(&pr.meta);
    let default_name = format!("{bench}.ckpt");
    let path = std::path::Path::new(out.unwrap_or(&default_name));
    write_atomic(path, &bytes)?;
    println!(
        "wrote {} ({} bytes) at {} retired instructions{}",
        path.display(),
        bytes.len(),
        sim.retired(),
        if sim.is_done() {
            " (run already complete)"
        } else {
            ""
        }
    );
    Ok(())
}

fn resume_cmd(path: &str, json: bool) -> Result<(), CliError> {
    let bytes = std::fs::read(path)?;
    let meta = read_meta(&bytes).map_err(|e| CliError(format!("{path}: {e}")))?;
    let pr = prepare_run(
        &meta.benchmark,
        ManagerArg::parse(&meta.manager)?,
        meta.budget,
        meta.scale,
        meta.fault_seed,
        meta.storm,
    )?;
    let mut sim = Simulation::restore(&pr.program, pr.kind, &pr.cfg, &bytes)
        .map_err(|e| CliError(format!("{path}: {e}")))?;
    let resumed_at = sim.retired();
    sim.run_to_completion()?;
    let report = sim.into_report();
    if json {
        println!("{}", report_to_json(&report));
    } else {
        println!(
            "resumed {} at {} retired instructions",
            meta.benchmark, resumed_at
        );
        print_report(&report);
    }
    Ok(())
}

/// One benchmark's stress outcome.
struct StressRow {
    name: &'static str,
    survived: bool,
    instructions: u64,
    slowdown: f64,
    faults: u64,
    anomalies: u64,
    failsafes: u64,
    pinned: u64,
}

fn stress_one(
    b: &'static Benchmark,
    fault_cfg: FaultConfig,
    opts: &RunOpts,
) -> Result<StressRow, CliError> {
    let program = b.program(Scale(opts.scale));
    let clean_cfg = config(b.core_kind(), opts);
    let mut faulted_cfg = clean_cfg.clone();
    faulted_cfg.faults = Some(fault_cfg);

    // The survival guarantee is the whole point of the stress command, so
    // a panic in one benchmark is reported as a failed row rather than
    // taking down the sweep.
    let outcome =
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| -> Result<_, CliError> {
            let clean = run_program(&program, ManagerKind::FullPower, &clean_cfg)?;
            let (faulted, tracer) = run_program_traced(
                &program,
                opts.manager.kind(),
                &faulted_cfg,
                tracer_for(opts),
            )?;
            Ok((clean, faulted, tracer))
        }));
    match outcome {
        Ok(Ok((clean, faulted, tracer))) => {
            write_telemetry(
                &tracer,
                opts.trace
                    .as_deref()
                    .map(|p| per_bench_path(p, b.name()))
                    .as_deref(),
                opts.metrics
                    .as_deref()
                    .map(|p| per_bench_path(p, b.name()))
                    .as_deref(),
            )?;
            let degrade = faulted.degrade.unwrap_or_default();
            Ok(StressRow {
                name: b.name(),
                survived: true,
                instructions: faulted.instructions,
                slowdown: faulted.slowdown_vs(&clean),
                faults: faulted.faults.map_or(0, |f| f.total()),
                anomalies: degrade.anomalies,
                failsafes: degrade.failsafe_transitions,
                pinned: degrade.phases_pinned,
            })
        }
        Ok(Err(e)) => Err(e),
        Err(_) => Ok(StressRow {
            name: b.name(),
            survived: false,
            instructions: 0,
            slowdown: 0.0,
            faults: 0,
            anomalies: 0,
            failsafes: 0,
            pinned: 0,
        }),
    }
}

fn stress(bench: Option<&str>, opts: &RunOpts) -> Result<(), CliError> {
    let seed = opts.seed.unwrap_or(DEFAULT_STRESS_SEED);
    let fault_cfg = if opts.storm {
        FaultConfig::storm(seed)
    } else {
        FaultConfig::default_rates(seed)
    };
    let benches: Vec<&'static Benchmark> = match bench {
        Some(name) => vec![benchmark(name)?],
        None => powerchop_workloads::all().iter().collect(),
    };

    // Fan the per-benchmark runs out on the job pool; rows fold back in
    // benchmark order, so the table and JSON below are byte-identical at
    // any thread count. A job that panics outside `stress_one`'s own
    // catch (e.g. while building the workload) becomes a failed row.
    let jobs = powerchop_exec::resolve_jobs(opts.jobs);
    let results = powerchop_exec::run_jobs(&benches, jobs, |_, b| stress_one(b, fault_cfg, opts));
    let mut rows = Vec::with_capacity(benches.len());
    for (b, result) in benches.iter().zip(results) {
        match result {
            Ok(row) => rows.push(row?),
            Err(_) => rows.push(StressRow {
                name: b.name(),
                survived: false,
                instructions: 0,
                slowdown: 0.0,
                faults: 0,
                anomalies: 0,
                failsafes: 0,
                pinned: 0,
            }),
        }
    }

    if opts.json {
        let mut runs = JsonWriter::array();
        for r in &rows {
            let mut o = JsonWriter::object();
            o.field_str("benchmark", r.name);
            o.field_bool("survived", r.survived);
            o.field_u64("instructions", r.instructions);
            o.field_f64("slowdown", r.slowdown, 6);
            o.field_u64("faults", r.faults);
            o.field_u64("anomalies", r.anomalies);
            o.field_u64("failsafe_transitions", r.failsafes);
            o.field_u64("phases_pinned", r.pinned);
            runs.push_raw(&o.finish());
        }
        let mut w = JsonWriter::object();
        w.field_u64("seed", seed);
        w.field_bool("storm", opts.storm);
        w.field_raw("runs", &runs.finish());
        println!("{}", w.finish());
    } else {
        println!(
            "fault injection: seed {seed}{} — slowdown is vs a clean full-power run",
            if opts.storm {
                ", storm rates (10x)"
            } else {
                ", default rates"
            }
        );
        println!(
            "{:<14} {:>8} {:>12} {:>9} {:>8} {:>9} {:>9} {:>7}",
            "benchmark",
            "status",
            "insts",
            "slowdown",
            "faults",
            "anomalies",
            "failsafes",
            "pinned"
        );
        for r in &rows {
            println!(
                "{:<14} {:>8} {:>12} {:>8.2}% {:>8} {:>9} {:>9} {:>7}",
                r.name,
                if r.survived { "ok" } else { "PANIC" },
                r.instructions,
                100.0 * r.slowdown,
                r.faults,
                r.anomalies,
                r.failsafes,
                r.pinned
            );
        }
        let survivors = rows.iter().filter(|r| r.survived).count();
        let worst = rows.iter().fold(0.0f64, |m, r| m.max(r.slowdown));
        println!(
            "\n{survivors}/{} survived; worst slowdown {:.2}%",
            rows.len(),
            100.0 * worst
        );
    }
    if rows.iter().any(|r| !r.survived) {
        return Err(CliError(
            "at least one benchmark panicked under fault injection".into(),
        ));
    }
    Ok(())
}

fn profile_bench(bench: &str, opts: &RunOpts) -> Result<(), CliError> {
    use powerchop_gisa::InstClass;
    let b = benchmark(bench)?;
    let program = b.program(Scale(opts.scale));
    let prof = powerchop_workloads::stats::profile(&program, opts.budget)?;
    println!("{bench} ({} suite, {} core):", b.suite(), b.core_kind());
    println!("  instructions   {}", prof.instructions);
    println!("  completed      {}", prof.completed);
    println!("  vector share   {:.2} %", 100.0 * prof.vector_share());
    println!("  branch share   {:.2} %", 100.0 * prof.branch_share());
    println!("  memory share   {:.2} %", 100.0 * prof.memory_share());
    println!("  data span      {} KiB", prof.touched_span_bytes / 1024);
    println!(
        "  sparse-V shards {:.1} % (0 < V <= 4 per 1000 insts)",
        100.0 * prof.sparse_vector_shard_fraction()
    );
    let mut classes: Vec<_> = prof.class_counts.iter().collect();
    classes.sort_by_key(|(_, n)| std::cmp::Reverse(**n));
    println!("  instruction mix:");
    for (class, n) in classes {
        println!(
            "    {:<10} {:>6.2} % ({n})",
            format!("{class:?}"),
            100.0 * *n as f64 / prof.instructions as f64
        );
    }
    let _ = InstClass::IntAlu; // anchor the import
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_writable_dir_names_the_flag_and_raw_value() {
        let dir = std::env::temp_dir().join(format!("powerchop-cli-wdir-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ok = dir.join("journal");
        validate_writable_dir("--journal-dir", &ok.to_string_lossy()).unwrap();
        // A regular file is not a writable directory.
        let file = dir.join("not-a-dir");
        std::fs::write(&file, b"x").unwrap();
        let raw = file.to_string_lossy().into_owned();
        let err = validate_writable_dir("--cache-dir", &raw).unwrap_err();
        assert!(err.0.starts_with("--cache-dir: invalid value"), "{err}");
        assert!(err.0.contains(&format!("{raw:?}")), "{err}");
        assert!(
            err.0.contains("expected a writable directory path"),
            "{err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn suite_names_parse() {
        assert_eq!(suite_by_name("spec-int").unwrap(), Suite::SpecInt);
        assert_eq!(suite_by_name("mobilebench").unwrap(), Suite::MobileBench);
        assert!(suite_by_name("nope").is_err());
    }

    #[test]
    fn benchmark_lookup_errors_are_helpful() {
        let err = benchmark("doom").unwrap_err();
        assert!(err.to_string().contains("powerchop-cli list"));
        assert!(benchmark("gobmk").is_ok());
    }

    #[test]
    fn list_and_info_do_not_error() {
        list(None).unwrap();
        list(Some("parsec")).unwrap();
        info().unwrap();
    }

    #[test]
    fn run_compare_timeline_work_end_to_end() {
        let opts = RunOpts {
            budget: 300_000,
            scale: 0.05,
            ..RunOpts::default()
        };
        run_one("hmmer", &opts).unwrap();
        compare("hmmer", &opts).unwrap();
        timeline_cmd("hmmer", &opts).unwrap();
    }

    #[test]
    fn run_with_trace_writes_artifacts_and_trace_cmd_renders() {
        let dir = std::env::temp_dir().join(format!("powerchop-cli-trace-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let trace_path = dir.join("out.json");
        let metrics_path = dir.join("out.prom");
        let opts = RunOpts {
            budget: 300_000,
            scale: 0.05,
            seed: Some(7),
            trace: Some(trace_path.to_string_lossy().into_owned()),
            metrics: Some(metrics_path.to_string_lossy().into_owned()),
            ..RunOpts::default()
        };
        run_one("hmmer", &opts).unwrap();
        let trace = std::fs::read_to_string(&trace_path).unwrap();
        powerchop_telemetry::validate_json(&trace).expect("chrome trace is well-formed JSON");
        assert!(trace.contains("\"cat\":\"phase\""));
        let prom = std::fs::read_to_string(&metrics_path).unwrap();
        assert!(prom.contains("sim_instructions_total"));
        trace_cmd(
            "hmmer",
            &RunOpts {
                trace: None,
                metrics: None,
                ..opts
            },
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn per_bench_paths_keep_extension_and_directory() {
        assert_eq!(per_bench_path("out.json", "hmmer"), "out-hmmer.json");
        assert_eq!(per_bench_path("a/b/out.prom", "gcc"), "a/b/out-gcc.prom");
        assert_eq!(per_bench_path("noext", "namd"), "noext-namd");
    }

    #[test]
    fn json_report_is_well_formed() {
        let b = benchmark("hmmer").unwrap();
        let opts = RunOpts {
            budget: 200_000,
            scale: 0.05,
            ..RunOpts::default()
        };
        let cfg = config(b.core_kind(), &opts);
        let program = b.program(Scale(opts.scale));
        let report = run_program(&program, opts.manager.kind(), &cfg).unwrap();
        let json = report_to_json(&report);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        for key in [
            "\"ipc\"",
            "\"pvt_misses\"",
            "\"phases_decided\"",
            "\"vpu_off_frac\"",
        ] {
            assert!(json.contains(key), "missing {key} in {json}");
        }
        // No trailing commas and keys are comma-separated.
        assert!(!json.contains(",}"));
    }

    #[test]
    fn stress_single_bench_survives_and_reports() {
        let opts = RunOpts {
            budget: 300_000,
            scale: 0.05,
            seed: Some(1234),
            ..RunOpts::default()
        };
        stress(Some("hmmer"), &opts).unwrap();
        let storm = RunOpts {
            storm: true,
            ..opts.clone()
        };
        stress(Some("hmmer"), &storm).unwrap();
        assert!(stress(Some("doom"), &opts).is_err());
    }

    #[test]
    fn profile_command_prints_mix() {
        let opts = RunOpts {
            budget: 200_000,
            scale: 0.05,
            ..RunOpts::default()
        };
        profile_bench("namd", &opts).unwrap();
        assert!(profile_bench("doom", &opts).is_err());
    }

    #[test]
    fn asm_command_assembles_and_runs() {
        let dir = std::env::temp_dir().join("powerchop-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("loop.s");
        std::fs::write(
            &path,
            "li r0, 0\nli r1, 50000\ntop:\naddi r0, r0, 1\nblt r0, r1, top\nhalt\n",
        )
        .unwrap();
        run_asm(path.to_str().unwrap(), &RunOpts::default()).unwrap();
    }
}
