//! Figure 3: 128 KB 1-way vs 1024 KB 8-way MLC over `gems` (GemsFDTD) —
//! the full MLC helps only when the working set fits it but not L1.

use powerchop_bench::{banner, mean, write_csv};
use powerchop_uarch::cache::MlcWayState;

fn main() {
    banner(
        "Figure 3 — 1-way vs 8-way MLC IPC over gems (server core)",
        "full MLC wins when the working set fits it; no benefit when the \
         set fits L1 or streams from memory",
    );
    let b = powerchop_workloads::by_name("gems").expect("gems exists");
    let budget = powerchop::system::default_budget();
    let interval = 100_000;
    let full = powerchop_bench::ipc_series(b, interval, budget, |_| {});
    let one = powerchop_bench::ipc_series(b, interval, budget, |core| {
        core.set_mlc_way_state(MlcWayState::One);
    });

    let n = full.len().min(one.len());
    let mut rows = Vec::new();
    println!("{:>6} {:>10} {:>10} {:>8}", "Minst", "8way-IPC", "1way-IPC", "gain%");
    let mut gains = Vec::new();
    for i in 0..n {
        let gain = 100.0 * (full[i] / one[i] - 1.0);
        gains.push(gain);
        if i % 4 == 0 {
            println!(
                "{:>6.1} {:>10.3} {:>10.3} {:>8.1}",
                (i + 1) as f64 * interval as f64 / 1e6,
                full[i],
                one[i],
                gain
            );
        }
        rows.push(format!("{},{:.4},{:.4}", i, full[i], one[i]));
    }
    write_csv("fig03_mlc_ipc", "interval,full_ipc,one_way_ipc", &rows);

    println!(
        "\naverage IPC: 8-way {:.3} vs 1-way {:.3}",
        mean(&full[..n]),
        mean(&one[..n])
    );
    let big_gain = gains.iter().filter(|g| **g > 20.0).count();
    let no_gain = gains.iter().filter(|g| **g < 2.0).count();
    println!(
        "intervals with >20% benefit: {big_gain}/{n}; with <2% benefit: {no_gain}/{n}"
    );
    assert!(big_gain > 0, "MLC-resident phases must benefit from the full MLC");
    assert!(no_gain > 0, "L1-resident/streaming phases must not");
}
