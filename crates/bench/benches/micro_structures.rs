//! Criterion micro-benchmarks of PowerChop's core structures and the
//! simulation substrate: HTB updates, PVT lookups, branch predictors,
//! cache accesses, and interpreted vs translated execution.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use powerchop::htb::HotTranslationBuffer;
use powerchop::phase::PhaseSignature;
use powerchop::policy::GatingPolicy;
use powerchop::pvt::PolicyVectorTable;
use powerchop_bt::{BtConfig, Machine, TranslationId};
use powerchop_gisa::{ProgramBuilder, Reg};
use powerchop_uarch::bpu::Bpu;
use powerchop_uarch::cache::Cache;
use powerchop_uarch::config::CoreConfig;
use powerchop_uarch::core::CoreModel;

fn bench_htb(c: &mut Criterion) {
    c.bench_function("htb_record_and_signature_window", |bench| {
        bench.iter(|| {
            let mut htb = HotTranslationBuffer::paper_default();
            for i in 0..1000u32 {
                htb.record(TranslationId(i % 40), 10);
            }
            let sig = htb.signature();
            htb.flush();
            black_box(sig)
        });
    });
}

fn bench_pvt(c: &mut Criterion) {
    let mut pvt = PolicyVectorTable::paper_default();
    let sigs: Vec<PhaseSignature> = (0..16u32)
        .map(|i| PhaseSignature::new(&[TranslationId(i), TranslationId(i + 100)]))
        .collect();
    for sig in &sigs {
        pvt.register(*sig, GatingPolicy::FULL);
    }
    c.bench_function("pvt_lookup_hit", |bench| {
        let mut i = 0usize;
        bench.iter(|| {
            i = (i + 1) % sigs.len();
            black_box(pvt.lookup(sigs[i]))
        });
    });
}

fn bench_bpu(c: &mut Criterion) {
    let cfg = CoreConfig::server();
    let mut bpu = Bpu::new(&cfg.bpu);
    c.bench_function("bpu_predict_and_update", |bench| {
        let mut i = 0u32;
        bench.iter(|| {
            i = i.wrapping_add(1);
            black_box(bpu.predict_and_update(i % 512, i.is_multiple_of(3), i % 64))
        });
    });
}

fn bench_cache(c: &mut Criterion) {
    let cfg = CoreConfig::server();
    let mut cache = Cache::new(&cfg.mlc);
    c.bench_function("mlc_access", |bench| {
        let mut addr = 0u64;
        bench.iter(|| {
            addr = addr.wrapping_add(64) & ((1 << 22) - 1);
            black_box(cache.access(addr, false))
        });
    });
}

fn hot_loop_program() -> powerchop_gisa::Program {
    let r0 = Reg::new(0).unwrap();
    let r1 = Reg::new(1).unwrap();
    let mut b = ProgramBuilder::new("bench-loop");
    b.li(r0, 0).li(r1, i64::MAX / 2);
    let top = b.bind_label();
    b.addi(r0, r0, 1);
    b.xor(r0, r0, r1);
    b.xor(r0, r0, r1);
    b.blt(r0, r1, top);
    b.halt();
    b.build().unwrap()
}

fn bench_execution(c: &mut Criterion) {
    let program = hot_loop_program();
    c.bench_function("hybrid_execution_10k_insts", |bench| {
        bench.iter(|| {
            let cfg = CoreConfig::server();
            let mut core = CoreModel::new(&cfg);
            let mut machine = Machine::new(&program, BtConfig::default());
            machine.run(&mut core, 10_000).unwrap();
            black_box(core.cycles())
        });
    });
    c.bench_function("interpreter_10k_insts", |bench| {
        bench.iter(|| {
            let cfg = CoreConfig::server();
            let mut core = CoreModel::new(&cfg);
            let mut machine = Machine::new(
                &program,
                BtConfig { hot_threshold: u32::MAX, ..BtConfig::default() },
            );
            machine.run(&mut core, 10_000).unwrap();
            black_box(core.cycles())
        });
    });
}

fn bench_assembler(c: &mut Criterion) {
    let program = powerchop_workloads::by_name("hmmer")
        .expect("known benchmark")
        .program(powerchop_workloads::Scale(0.01));
    let text = powerchop_gisa::asm::disassemble(&program);
    c.bench_function("assemble_benchmark_text", |bench| {
        bench.iter(|| black_box(powerchop_gisa::asm::assemble("bench", &text).unwrap()));
    });
}

fn bench_ledger(c: &mut Criterion) {
    use powerchop_power::{EnergyLedger, PowerParams, UnitStates};
    use powerchop_uarch::core::CoreStats;
    c.bench_function("energy_ledger_account", |bench| {
        let mut ledger = EnergyLedger::new(PowerParams::server());
        let mut cycles = 0u64;
        let mut stats = CoreStats::default();
        bench.iter(|| {
            cycles += 1000;
            stats.instructions += 900;
            stats.branches += 120;
            stats.mlc_accesses += 10;
            ledger.account(cycles, &stats, UnitStates::full(8));
            black_box(())
        });
    });
}

criterion_group!(
    benches,
    bench_htb,
    bench_pvt,
    bench_bpu,
    bench_cache,
    bench_execution,
    bench_assembler,
    bench_ledger
);
criterion_main!(benches);
