//! Ablation (paper §IV-B3): "the number of states for each unit can be
//! increased by increasing the number of bits used in the PVT". The 2-bit
//! MLC field has a free encoding; this ablation enables a fourth
//! (quarter-ways) state and measures what finer-grained way-gating buys.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, run_with, write_csv};

fn main() {
    banner(
        "Ablation — 3-state vs 4-state MLC way-gating",
        "the PVT policy field has room for a 4th state (quarter-ways)",
    );
    let subset: Vec<_> = ["gems", "astar", "msn", "bzip2", "dedup", "sphinx3"]
        .iter()
        .map(|n| powerchop_workloads::by_name(n).expect("subset exists"))
        .collect();

    println!(
        "{:<10} {:>10} {:>9} {:>10} {:>9} {:>9}",
        "bench", "slow-3st%", "leak-3st%", "slow-4st%", "leak-4st%", "qtr-cyc%"
    );
    let mut rows = Vec::new();
    let (mut l3, mut l4) = (Vec::new(), Vec::new());
    for b in &subset {
        let full = run(b, ManagerKind::FullPower);
        let three = run(b, ManagerKind::PowerChop);
        let four = run_with(b, ManagerKind::PowerChop, |c| c.chop.extended_mlc_states = true);
        let s3 = 100.0 * three.slowdown_vs(&full);
        let k3 = 100.0 * three.leakage_reduction_vs(&full);
        let s4 = 100.0 * four.slowdown_vs(&full);
        let k4 = 100.0 * four.leakage_reduction_vs(&full);
        let q = 100.0 * four.gated.mlc_quarter as f64 / four.gated.total.max(1) as f64;
        println!("{:<10} {:>10.1} {:>9.1} {:>10.1} {:>9.1} {:>9.1}", b.name(), s3, k3, s4, k4, q);
        rows.push(format!("{},{s3:.2},{k3:.2},{s4:.2},{k4:.2},{q:.2}", b.name()));
        l3.push(k3);
        l4.push(k4);
    }
    write_csv(
        "abl_mlc_states",
        "bench,slow_3state,leak_3state,slow_4state,leak_4state,quarter_cycles_pct",
        &rows,
    );
    println!(
        "\naverage leakage reduction: 3-state {:.1}% vs 4-state {:.1}%",
        mean(&l3),
        mean(&l4)
    );
    println!("(the middle band is rare in these workloads, so gains are modest —");
    println!(" consistent with the paper shipping 3 states in the 2-bit field)");
}
