//! Figure 13: total core power and energy reduction with PowerChop
//! managing all three units. The paper reports total power reductions of
//! 10 % (SPEC-INT), 6 % (SPEC-FP), 8 % (PARSEC) and 19 % (MobileBench),
//! up to 40 % per app; energy reductions average 9 % (up to 37 %).

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, suites, sweep, write_csv};

fn main() {
    banner(
        "Figure 13 — total core power and energy reduction",
        "SPEC-INT 10%, SPEC-FP 6%, PARSEC 8%, MobileBench 19%; up to 40% \
         power / 37% energy per app; >10% power on 13/29 apps",
    );
    println!("{:<14} {:>10} {:>9} {:>10}", "bench", "suite", "power-%", "energy-%");
    let mut rows = Vec::new();
    let mut per_suite: Vec<(String, Vec<f64>)> = Vec::new();
    let mut all_power = Vec::new();
    let mut all_energy = Vec::new();
    for suite in suites() {
        let mut suite_power = Vec::new();
        let benches: Vec<&powerchop_workloads::Benchmark> =
            powerchop_workloads::suite(suite).collect();
        let reports = sweep(&benches, |b| {
            let b = *b;
            (run(b, ManagerKind::FullPower), run(b, ManagerKind::PowerChop))
        });
        for (b, (full, chop)) in benches.iter().zip(reports) {
            let power = 100.0 * chop.power_reduction_vs(&full);
            let energy = 100.0 * chop.energy_reduction_vs(&full);
            println!("{:<14} {:>10} {:>9.1} {:>10.1}", b.name(), suite.to_string(), power, energy);
            rows.push(format!("{},{suite},{power:.2},{energy:.2}", b.name()));
            suite_power.push(power);
            all_power.push(power);
            all_energy.push(energy);
        }
        per_suite.push((suite.to_string(), suite_power));
    }
    write_csv("fig13_power_energy", "bench,suite,power_reduction_pct,energy_reduction_pct", &rows);
    println!("\nper-suite average total power reduction:");
    for (name, vals) in &per_suite {
        println!("  {:<12} {:>5.1}%", name, mean(vals));
    }
    let over10 = all_power.iter().filter(|p| **p > 10.0).count();
    println!(
        "\napps with >10% power reduction: {over10}/29 (paper: 13/29); max power {:.0}%, max energy {:.0}%; avg energy {:.1}% (paper 9%)",
        all_power.iter().cloned().fold(0.0f64, f64::max),
        all_energy.iter().cloned().fold(0.0f64, f64::max),
        mean(&all_energy)
    );
    let mobile = &per_suite[3].1;
    let fp = &per_suite[1].1;
    assert!(mean(mobile) > mean(fp), "MobileBench must see the largest reductions");
    assert!(over10 >= 8, "a large set of apps must see >10% reductions");
}
