//! Figure 12: application performance under PowerChop vs a fully-powered
//! core and a minimally-powered core. The paper reports PowerChop within
//! 2.2 % of full power on average, while minimal power loses ~84 %.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, sweep, write_csv};

fn main() {
    banner(
        "Figure 12 — performance: full vs PowerChop vs minimal",
        "PowerChop loses 2.2% on average; minimal power loses ~84%",
    );
    println!("{:<14} {:>9} {:>10} {:>10} {:>10}", "bench", "full-IPC", "chop-IPC", "chop-slow%", "min-slow%");
    let mut rows = Vec::new();
    let (mut chop_slow, mut min_slow) = (Vec::new(), Vec::new());
    let benches: Vec<&powerchop_workloads::Benchmark> = powerchop_workloads::all().iter().collect();
    let reports = sweep(&benches, |b| {
        let b = *b;
        (
            run(b, ManagerKind::FullPower),
            run(b, ManagerKind::PowerChop),
            run(b, ManagerKind::MinimalPower),
        )
    });
    for (b, (full, chop, min)) in benches.iter().zip(reports) {
        let cs = 100.0 * chop.slowdown_vs(&full);
        let ms = 100.0 * min.slowdown_vs(&full);
        println!(
            "{:<14} {:>9.3} {:>10.3} {:>10.1} {:>10.1}",
            b.name(), full.ipc(), chop.ipc(), cs, ms
        );
        rows.push(format!("{},{:.4},{:.4},{:.4},{cs:.2},{ms:.2}", b.name(), full.ipc(), chop.ipc(), min.ipc()));
        chop_slow.push(cs);
        min_slow.push(ms);
    }
    write_csv("fig12_performance", "bench,full_ipc,chop_ipc,min_ipc,chop_slowdown,min_slowdown", &rows);
    println!(
        "\naverage slowdown: PowerChop {:.1}% (paper 2.2%), minimal {:.1}% (paper ~84%... \
         shape: minimal must be drastically worse)",
        mean(&chop_slow),
        mean(&min_slow)
    );
    assert!(mean(&chop_slow) < 8.0, "PowerChop slowdown out of band");
    assert!(
        mean(&min_slow) > 4.0 * mean(&chop_slow),
        "minimal power must be drastically slower than PowerChop"
    );
}
