//! Figure 11: frequency of unit power-gating state changes under
//! PowerChop. The paper reports averages below 50 (BPU), 10 (VPU) and 5
//! (MLC) switches per million cycles — low enough to amortize switching
//! overheads.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, write_csv};

fn main() {
    banner(
        "Figure 11 — unit state changes per million cycles",
        "averages: BPU < 50, VPU < 10, MLC < 5 switches per Mcycle",
    );
    println!("{:<14} {:>9} {:>9} {:>9}", "bench", "VPU/Mcyc", "BPU/Mcyc", "MLC/Mcyc");
    let mut rows = Vec::new();
    let (mut v, mut p, mut m) = (Vec::new(), Vec::new(), Vec::new());
    for b in powerchop_workloads::all() {
        let r = run(b, ManagerKind::PowerChop);
        let vpu = r.switches_per_mcycle(r.switches.vpu);
        let bpu = r.switches_per_mcycle(r.switches.bpu);
        let mlc = r.switches_per_mcycle(r.switches.mlc);
        println!("{:<14} {:>9.2} {:>9.2} {:>9.2}", b.name(), vpu, bpu, mlc);
        rows.push(format!("{},{vpu:.3},{bpu:.3},{mlc:.3}", b.name()));
        v.push(vpu);
        p.push(bpu);
        m.push(mlc);
    }
    write_csv("fig11_switch_frequency", "bench,vpu_per_mcyc,bpu_per_mcyc,mlc_per_mcyc", &rows);
    println!(
        "\naverages: VPU {:.1} (paper <10), BPU {:.1} (paper <50), MLC {:.1} (paper <5)",
        mean(&v),
        mean(&p),
        mean(&m)
    );
    assert!(mean(&p) < 50.0, "BPU switch rate out of band");
    assert!(mean(&v) < 25.0, "VPU switch rate far out of band");
    assert!(mean(&m) < 15.0, "MLC switch rate far out of band");
}
