//! Figure 10: per-unit gating activity on the server core (SPEC +
//! PARSEC), one unit managed at a time. The paper reports the VPU gated
//! ~90 % on SPEC-INT, surprisingly large fractions on some FP apps
//! (namd, dedup >90 %), the MLC at 1 way >40 % of cycles for several
//! apps (gems, milc, gcc, libquantum, streamcluster), and the BPU mostly
//! needed with exceptions (lbm, hmmer).

use powerchop::managers::ManagedSet;
use powerchop::ManagerKind;
use powerchop_bench::{banner, run_with, write_csv};
use powerchop_uarch::config::CoreKind;

fn main() {
    banner(
        "Figure 10 — unit activity, server core (one unit managed at a time)",
        "VPU off ~90% on SPEC-INT and on namd/dedup; MLC 1-way >40% on \
         gems/milc/gcc/libquantum/streamcluster; BPU gated on lbm/hmmer",
    );
    println!(
        "{:<14} {:>8} {:>8} {:>9} {:>9}",
        "bench", "VPU-off%", "BPU-off%", "MLC-half%", "MLC-one%"
    );
    let mut rows = Vec::new();
    let mut one_way_heavy = Vec::new();
    for b in powerchop_bench::benchmarks_for(CoreKind::Server) {
        let vpu = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::VPU_ONLY);
        let bpu = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::BPU_ONLY);
        let mlc = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::MLC_ONLY);
        let vpu_off = 100.0 * vpu.gated.vpu_off_frac();
        let bpu_off = 100.0 * bpu.gated.bpu_off_frac();
        let mlc_half = 100.0 * mlc.gated.mlc_half as f64 / mlc.gated.total.max(1) as f64;
        let mlc_one = 100.0 * mlc.gated.mlc_one_frac();
        println!(
            "{:<14} {:>8.1} {:>8.1} {:>9.1} {:>9.1}",
            b.name(), vpu_off, bpu_off, mlc_half, mlc_one
        );
        rows.push(format!("{},{vpu_off:.1},{bpu_off:.1},{mlc_half:.1},{mlc_one:.1}", b.name()));
        if mlc_one > 40.0 {
            one_way_heavy.push(b.name());
        }
    }
    write_csv("fig10_unit_activity_server", "bench,vpu_off,bpu_off,mlc_half,mlc_one", &rows);
    println!("\napps with MLC at 1 way >40% of cycles: {one_way_heavy:?}");
    println!("paper lists gems, milc, gcc, libquantum, streamcluster among these");
    for expect in ["gems", "libquantum", "streamcluster"] {
        assert!(one_way_heavy.contains(&expect), "{expect} should way-gate >40%");
    }
}
