//! Figure 16: VPU gating — PowerChop vs a hardware-only idleness timeout
//! (20 K cycles, the paper's best timeout under a 5 % worst-case slowdown
//! constraint). PowerChop gates the VPU at least as much on every app,
//! with immense gains on apps whose sparse vector use defeats the timeout
//! (namd, perlbench, h264).

use powerchop::managers::{ManagedSet, TimeoutVpuManager};
use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run_with, write_csv};
use powerchop_uarch::config::CoreKind;

fn main() {
    banner(
        "Figure 16 — VPU gated-off cycles: PowerChop vs 20K-cycle timeout",
        "PowerChop >= timeout everywhere; immense wins on namd, perlbench, h264",
    );
    println!("{:<14} {:>10} {:>10} {:>8}", "bench", "chop-off%", "tmo-off%", "delta");
    let mut rows = Vec::new();
    let (mut chop_all, mut tmo_all) = (Vec::new(), Vec::new());
    for b in powerchop_bench::benchmarks_for(CoreKind::Server) {
        let chop = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::VPU_ONLY);
        let tmo = run_with(
            b,
            ManagerKind::TimeoutVpu {
                timeout_cycles: TimeoutVpuManager::PAPER_TIMEOUT_CYCLES,
            },
            |_| {},
        );
        let c = 100.0 * chop.gated.vpu_off_frac();
        let t = 100.0 * tmo.gated.vpu_off_frac();
        println!("{:<14} {:>10.1} {:>10.1} {:>8.1}", b.name(), c, t, c - t);
        rows.push(format!("{},{c:.2},{t:.2}", b.name()));
        chop_all.push(c);
        tmo_all.push(t);
    }
    write_csv("fig16_vpu_vs_timeout", "bench,powerchop_off_pct,timeout_off_pct", &rows);
    println!(
        "\naverage VPU gated-off: PowerChop {:.0}% vs timeout {:.0}%",
        mean(&chop_all),
        mean(&tmo_all)
    );
    // Key case: namd's sparse uniform vector ops defeat the timeout.
    let namd_idx = powerchop_bench::benchmarks_for(CoreKind::Server)
        .position(|b| b.name() == "namd")
        .expect("namd is a server benchmark");
    println!(
        "namd: PowerChop {:.0}% vs timeout {:.0}% (paper: nearly always vs nearly never)",
        chop_all[namd_idx], tmo_all[namd_idx]
    );
    assert!(
        chop_all[namd_idx] > tmo_all[namd_idx] + 40.0,
        "namd must show the immense PowerChop-vs-timeout gap"
    );
    assert!(mean(&chop_all) >= mean(&tmo_all), "PowerChop gates at least as much overall");
}
