//! Ablation (paper §IV-B1 sensitivity analysis): phase-signature length N
//! and execution-window size. The paper's sensitivity study settled on
//! N = 4 and 1000-translation windows; too-long signatures capture
//! insignificant translations, too-short ones merge distinct phases, and
//! extreme window sizes either miss short phases or thrash policies.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, run_with, write_csv};

fn main() {
    banner(
        "Ablation — signature length N and window size",
        "N = 4 / 1000-translation windows prove effective across workloads",
    );
    let subset: Vec<_> = ["gobmk", "gems", "hmmer", "msn", "namd"]
        .iter()
        .map(|n| powerchop_workloads::by_name(n).expect("subset exists"))
        .collect();

    let mut rows = Vec::new();
    println!(
        "{:>4} {:>8} {:>10} {:>9} {:>9} {:>9}",
        "N", "window", "slowdown%", "leak-%", "sw/Mcyc", "phases"
    );
    for (n, window) in [
        (1usize, 1000u32),
        (2, 1000),
        (4, 250),
        (4, 1000),
        (4, 4000),
        (8, 1000),
    ] {
        let (mut slow, mut leak, mut sw, mut phases) = (vec![], vec![], vec![], vec![]);
        for b in &subset {
            let full = run(b, ManagerKind::FullPower);
            let chop = run_with(b, ManagerKind::PowerChop, |c| {
                c.chop.signature_len = n;
                c.chop.window_translations = window;
            });
            slow.push(100.0 * chop.slowdown_vs(&full));
            leak.push(100.0 * chop.leakage_reduction_vs(&full));
            sw.push(chop.switches_per_mcycle(chop.switches.total()));
            phases.push(chop.cde.expect("chop run").decided as f64);
        }
        println!(
            "{:>4} {:>8} {:>10.1} {:>9.1} {:>9.1} {:>9.0}",
            n,
            window,
            mean(&slow),
            mean(&leak),
            mean(&sw),
            mean(&phases)
        );
        rows.push(format!(
            "{n},{window},{:.2},{:.2},{:.2},{:.1}",
            mean(&slow),
            mean(&leak),
            mean(&sw),
            mean(&phases)
        ));
    }
    write_csv("abl_phase_params", "sig_len,window,slowdown_pct,leak_pct,switches_per_mcyc,phases", &rows);
    println!("\nthe paper's (N=4, window=1000) point balances stability and reactivity");
}
