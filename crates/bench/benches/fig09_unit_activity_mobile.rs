//! Figure 9: per-unit gating activity on the mobile core — fraction of
//! cycles each unit spends gated when PowerChop manages it in isolation.
//! The paper reports VPU off ~90 %+, BPU off ~40 % average, MLC way-gated
//! ~20 % average across MobileBench.

use powerchop::managers::ManagedSet;
use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run_with, write_csv};

fn main() {
    banner(
        "Figure 9 — unit activity, mobile core (one unit managed at a time)",
        "VPU off >90% on all apps; BPU off ~40% avg; MLC gated ~20% avg",
    );
    println!(
        "{:<10} {:>8} {:>8} {:>9} {:>9}",
        "bench", "VPU-off%", "BPU-off%", "MLC-half%", "MLC-one%"
    );
    let mut rows = Vec::new();
    let (mut vpu_all, mut bpu_all, mut mlc_all) = (Vec::new(), Vec::new(), Vec::new());
    for b in powerchop_workloads::suite(powerchop_workloads::Suite::MobileBench) {
        let vpu = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::VPU_ONLY);
        let bpu = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::BPU_ONLY);
        let mlc = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::MLC_ONLY);
        let vpu_off = 100.0 * vpu.gated.vpu_off_frac();
        let bpu_off = 100.0 * bpu.gated.bpu_off_frac();
        let mlc_half = 100.0 * mlc.gated.mlc_half as f64 / mlc.gated.total.max(1) as f64;
        let mlc_one = 100.0 * mlc.gated.mlc_one_frac();
        println!(
            "{:<10} {:>8.1} {:>8.1} {:>9.1} {:>9.1}",
            b.name(), vpu_off, bpu_off, mlc_half, mlc_one
        );
        rows.push(format!("{},{vpu_off:.1},{bpu_off:.1},{mlc_half:.1},{mlc_one:.1}", b.name()));
        vpu_all.push(vpu_off);
        bpu_all.push(bpu_off);
        mlc_all.push(mlc_half + mlc_one);
    }
    write_csv("fig09_unit_activity_mobile", "bench,vpu_off,bpu_off,mlc_half,mlc_one", &rows);
    println!(
        "\naverages: VPU off {:.0}% (paper >90%), BPU off {:.0}% (paper ~40%), MLC gated {:.0}% (paper ~20%)",
        mean(&vpu_all),
        mean(&bpu_all),
        mean(&mlc_all)
    );
    assert!(mean(&vpu_all) > 70.0, "mobile VPU must be gated most of the time");
}
