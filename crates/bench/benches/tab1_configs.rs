//! Table I: the architectural design points used in the evaluation.

use powerchop_bench::banner;
use powerchop_uarch::config::CoreConfig;

fn main() {
    banner("Table I — architectural design points", "server (Nehalem-like) and mobile (Cortex-A9-like)");
    for cfg in [CoreConfig::server(), CoreConfig::mobile()] {
        println!("{} core:", cfg.kind);
        println!("  issue width        : {}", cfg.issue_width);
        println!("  SIMD lanes (VPU)   : {}-wide, {:.0}% of core area", cfg.simd_lanes, 100.0 * cfg.area.vpu);
        println!(
            "  MLC                : {} KiB, {}-way ({} sets), {:.0}% of core area; gated to {} KiB 4-way or {} KiB 1-way",
            cfg.mlc.size_kib,
            cfg.mlc.ways,
            cfg.mlc.sets(),
            100.0 * cfg.area.mlc,
            cfg.mlc.size_kib / 2,
            cfg.mlc.size_kib / 8,
        );
        println!(
            "  BPU                : loc/glob tournament, {}-entry BTB, {}-entry chooser, {:.0}% of core area; small local fallback {}-entry",
            cfg.bpu.large_btb_entries,
            cfg.bpu.chooser_entries,
            100.0 * cfg.area.bpu,
            cfg.bpu.small_entries,
        );
        println!(
            "  gating overheads   : MLC {} / VPU {} / BPU {} cycles per switch; VPU register save/restore {} cycles",
            cfg.gating.mlc_switch, cfg.gating.vpu_switch, cfg.gating.bpu_switch, cfg.gating.vpu_save_restore
        );
        println!();
    }
    // Paper-pinned invariants.
    let s = CoreConfig::server();
    let m = CoreConfig::mobile();
    assert_eq!((s.mlc.size_kib, s.mlc.ways), (1024, 8));
    assert_eq!((m.mlc.size_kib, m.mlc.ways), (2048, 8));
    assert_eq!((s.simd_lanes, m.simd_lanes), (4, 2));
    println!("all Table I parameters verified against the paper");
}
