//! Ablation (paper §V-A): criticality-threshold sensitivity. The paper
//! notes more aggressive (higher) thresholds shift the design toward
//! energy minimization at more performance cost.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, run_with, write_csv};

fn main() {
    banner(
        "Ablation — criticality thresholds",
        "higher thresholds gate more aggressively: more power saved, more slowdown",
    );
    let subset: Vec<_> = ["gobmk", "gems", "soplex", "msn", "astar", "sphinx3"]
        .iter()
        .map(|n| powerchop_workloads::by_name(n).expect("subset exists"))
        .collect();

    println!("{:>8} {:>10} {:>9} {:>9}", "scale", "slowdown%", "power-%", "leak-%");
    let mut rows = Vec::new();
    for mult in [0.25, 0.5, 1.0, 2.0, 4.0, 16.0] {
        let (mut slow, mut power, mut leak) = (vec![], vec![], vec![]);
        for b in &subset {
            let full = run(b, ManagerKind::FullPower);
            let chop = run_with(b, ManagerKind::PowerChop, |c| {
                c.chop.thresholds.vpu *= mult;
                c.chop.thresholds.bpu *= mult;
                c.chop.thresholds.mlc_high *= mult;
                c.chop.thresholds.mlc_low *= mult;
            });
            slow.push(100.0 * chop.slowdown_vs(&full));
            power.push(100.0 * chop.power_reduction_vs(&full));
            leak.push(100.0 * chop.leakage_reduction_vs(&full));
        }
        println!(
            "{:>8} {:>10.1} {:>9.1} {:>9.1}",
            format!("{mult}x"),
            mean(&slow),
            mean(&power),
            mean(&leak)
        );
        rows.push(format!("{mult},{:.2},{:.2},{:.2}", mean(&slow), mean(&power), mean(&leak)));
    }
    write_csv("abl_thresholds", "multiplier,slowdown_pct,power_pct,leak_pct", &rows);
    println!("\nhigher thresholds trade performance for power (energy-minimizing policies)");
}
