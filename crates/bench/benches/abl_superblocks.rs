//! Ablation: superblock trace formation in the BT layer (Transmeta-style
//! speculative traces through biased branches, §II-A). Longer traces mean
//! fewer dispatches and longer effective execution windows; mis-speculated
//! directions side-exit at run time.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, run_with, write_csv};

fn main() {
    banner(
        "Ablation — basic-block vs superblock translations",
        "speculative traces through biased branches (BT design choice)",
    );
    let subset: Vec<_> = ["perlbench", "sjeng", "msn", "h264ref", "gobmk"]
        .iter()
        .map(|n| powerchop_workloads::by_name(n).expect("subset exists"))
        .collect();

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>9}",
        "bench", "ipc-bb", "ipc-sb", "disp-bb", "disp-sb", "sideex-sb"
    );
    let mut rows = Vec::new();
    let (mut slow_bb, mut slow_sb) = (Vec::new(), Vec::new());
    for b in &subset {
        let full = run(b, ManagerKind::FullPower);
        let bb = run(b, ManagerKind::PowerChop);
        let sb = run_with(b, ManagerKind::PowerChop, |c| c.bt.superblocks = true);
        println!(
            "{:<10} {:>10.3} {:>10.3} {:>10} {:>10} {:>9}",
            b.name(),
            bb.ipc(),
            sb.ipc(),
            bb.bt.translation_executions,
            sb.bt.translation_executions,
            sb.bt.side_exits,
        );
        rows.push(format!(
            "{},{:.4},{:.4},{},{},{}",
            b.name(),
            bb.ipc(),
            sb.ipc(),
            bb.bt.translation_executions,
            sb.bt.translation_executions,
            sb.bt.side_exits
        ));
        slow_bb.push(100.0 * bb.slowdown_vs(&full));
        slow_sb.push(100.0 * sb.slowdown_vs(&full));
        assert!(
            sb.bt.translation_executions <= bb.bt.translation_executions,
            "superblocks cannot increase dispatch counts"
        );
    }
    write_csv(
        "abl_superblocks",
        "bench,ipc_bb,ipc_sb,dispatches_bb,dispatches_sb,side_exits_sb",
        &rows,
    );
    println!(
        "\naverage PowerChop slowdown: basic-block {:.1}% vs superblock {:.1}%",
        mean(&slow_bb),
        mean(&slow_sb)
    );
}
