//! Ablation: PowerChop MLC way-gating vs a drowsy MLC (Flautner et al.,
//! the paper's §VI related work [27]). Drowsy caches reduce per-line
//! leakage while retaining state — no rewarm cost, but a higher leakage
//! floor (~25 % retention vs 5 % gated) and no dynamic-energy savings.

use powerchop::managers::{DrowsyMlcManager, ManagedSet};
use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, run_with, write_csv};

fn main() {
    banner(
        "Ablation — MLC way-gating (PowerChop) vs drowsy MLC",
        "way-gating saves more leakage on non-critical phases; drowsy \
         never loses state",
    );
    println!(
        "{:<12} {:>10} {:>11} {:>10} {:>11} {:>8}",
        "bench", "chop-slow%", "chop-mlcmJ", "drsy-slow%", "drsy-mlcmJ", "wakes/k"
    );
    let mut rows = Vec::new();
    let (mut chop_leak, mut drowsy_leak) = (Vec::new(), Vec::new());
    for name in ["gems", "libquantum", "hmmer", "astar", "streamcluster", "msn"] {
        let b = powerchop_workloads::by_name(name).expect("subset exists");
        let full = run(b, ManagerKind::FullPower);
        let chop = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = ManagedSet::MLC_ONLY);
        let drowsy = run(
            b,
            ManagerKind::DrowsyMlc { period_cycles: DrowsyMlcManager::DEFAULT_PERIOD_CYCLES },
        );
        let cs = 100.0 * chop.slowdown_vs(&full);
        let ds = 100.0 * drowsy.slowdown_vs(&full);
        let cl = chop.energy.leakage.mlc * 1e3;
        let dl = drowsy.energy.leakage.mlc * 1e3;
        let wakes = 1e3 * drowsy.stats.mlc_drowsy_wakes as f64 / drowsy.instructions as f64;
        println!(
            "{:<12} {:>10.1} {:>11.2} {:>10.1} {:>11.2} {:>8.2}",
            name, cs, cl, ds, dl, wakes
        );
        rows.push(format!("{name},{cs:.2},{cl:.4},{ds:.2},{dl:.4},{wakes:.3}"));
        // Normalize by the full-power run's MLC leakage for averages.
        chop_leak.push(100.0 * (1.0 - chop.energy.leakage.mlc / full.energy.leakage.mlc));
        drowsy_leak.push(100.0 * (1.0 - drowsy.energy.leakage.mlc / full.energy.leakage.mlc));
    }
    write_csv(
        "abl_drowsy",
        "bench,chop_slow,chop_mlc_mj,drowsy_slow,drowsy_mlc_mj,wakes_per_kinst",
        &rows,
    );
    println!(
        "\naverage MLC leakage-energy reduction: way-gating {:.0}% vs drowsy {:.0}%",
        mean(&chop_leak),
        mean(&drowsy_leak)
    );
    println!("way-gating wins where phases are MLC-idle; drowsy wins on state retention");
}
