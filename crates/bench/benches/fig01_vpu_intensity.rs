//! Figure 1: vector-operation intensity over 200 K instructions of
//! `gobmk` — VPU criticality varies across execution, including
//! low-but-nonzero stretches that defeat timeout gating.

use powerchop_bench::{banner, scale, write_csv};

fn main() {
    banner(
        "Figure 1 — VPU intensity over gobmk",
        "vector intensity varies across execution; low-criticality periods \
         include scarce-but-nonzero vector use",
    );
    let b = powerchop_workloads::by_name("gobmk").expect("gobmk exists");
    let program = b.program(scale());
    // 1 K-instruction shards over (more than) the paper's 200 K span.
    let shards = powerchop_bench::vector_shards(&program, 1_000, 4_000_000);

    let mut rows = Vec::new();
    for (i, v) in shards.iter().enumerate() {
        rows.push(format!("{i},{v}"));
    }
    write_csv("fig01_vpu_intensity", "shard,vector_ops_per_1k", &rows);

    // Console rendering: coarse sparkline sampled evenly across the run.
    let step = (shards.len() / 200).max(1);
    print!("intensity (sampled, 1k-inst shards): ");
    for v in shards.iter().step_by(step) {
        let c = match v {
            0 => '.',
            1..=4 => '-',
            5..=49 => 'o',
            _ => '#',
        };
        print!("{c}");
    }
    println!();
    let zero = shards.iter().filter(|v| **v == 0).count();
    let sparse = shards.iter().filter(|v| (1..=4).contains(*v)).count();
    let dense = shards.len() - zero - sparse;
    println!(
        "\nshards: {} total | V=0: {:.1}% | 0<V<=4: {:.1}% | V>4: {:.1}%",
        shards.len(),
        100.0 * zero as f64 / shards.len() as f64,
        100.0 * sparse as f64 / shards.len() as f64,
        100.0 * dense as f64 / shards.len() as f64,
    );
    println!("expected shape: alternating dense-vector and scalar stretches");
    assert!(dense > 0 && zero > 0, "gobmk must alternate vector intensity");
}
