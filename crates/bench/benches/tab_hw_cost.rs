//! Hardware cost of PowerChop's structures (paper §IV-B4): the PVT is 16
//! entries totalling 264 bytes; the HTB is 128 entries and 1 KiB, costing
//! 0.027 W and 0.008 mm² per CACTI at 32 nm.

use powerchop::{HotTranslationBuffer, PolicyVectorTable};
use powerchop_bench::{banner, write_csv};
use powerchop_power::SramCost;

fn main() {
    banner(
        "Hardware cost — HTB and PVT (paper §IV-B4)",
        "PVT 264 B; HTB 1 KiB, 0.027 W, 0.008 mm²",
    );
    let htb = HotTranslationBuffer::paper_default();
    let pvt = PolicyVectorTable::paper_default();
    let htb_cost = SramCost::fully_associative(htb.storage_bytes());
    let pvt_cost = SramCost::fully_associative(pvt.storage_bytes());
    println!("{:<6} {:>8} {:>10} {:>10}", "unit", "bytes", "power(W)", "area(mm2)");
    println!("{:<6} {:>8} {:>10.4} {:>10.4}", "HTB", htb_cost.bytes, htb_cost.power_w, htb_cost.area_mm2);
    println!("{:<6} {:>8} {:>10.4} {:>10.4}", "PVT", pvt_cost.bytes, pvt_cost.power_w, pvt_cost.area_mm2);
    write_csv(
        "tab_hw_cost",
        "unit,bytes,power_w,area_mm2",
        &[
            format!("HTB,{},{:.5},{:.5}", htb_cost.bytes, htb_cost.power_w, htb_cost.area_mm2),
            format!("PVT,{},{:.5},{:.5}", pvt_cost.bytes, pvt_cost.power_w, pvt_cost.area_mm2),
        ],
    );
    assert_eq!(htb_cost.bytes, 1024, "HTB is 1 KiB (paper)");
    assert_eq!(pvt_cost.bytes, 264, "PVT is 264 bytes (paper)");
    assert!((htb_cost.power_w - 0.027).abs() < 1e-6);
    assert!((htb_cost.area_mm2 - 0.008).abs() < 1e-6);
    println!("\nmatches the paper's CACTI-derived estimates");
}
