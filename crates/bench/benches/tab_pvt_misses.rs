//! PVT miss statistics (paper §IV-C3): on average 0.017 % of translations
//! cause PVT misses across SPEC CPU2006, adding less than 0.5 %
//! performance overhead.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, write_csv};
use powerchop_workloads::Suite;

fn main() {
    banner(
        "PVT miss rate and CDE overhead (paper §IV-C3)",
        "0.017% of translations miss the PVT; <0.5% overhead on average",
    );
    println!("{:<14} {:>12} {:>10} {:>12}", "bench", "translations", "misses", "miss%/ovhd%");
    let mut rows = Vec::new();
    let (mut rates, mut overheads) = (Vec::new(), Vec::new());
    let spec = powerchop_workloads::suite(Suite::SpecInt)
        .chain(powerchop_workloads::suite(Suite::SpecFp));
    for b in spec {
        let r = run(b, ManagerKind::PowerChop);
        let pvt = r.pvt.expect("powerchop run has a PVT");
        let translations = r.bt.translation_executions.max(1);
        let rate = 100.0 * pvt.misses() as f64 / translations as f64;
        let overhead = 100.0 * r.nucleus.handler_cycles as f64 / r.cycles.max(1) as f64;
        println!(
            "{:<14} {:>12} {:>10} {:>7.4} {:>5.2}",
            b.name(), translations, pvt.misses(), rate, overhead
        );
        rows.push(format!("{},{},{},{rate:.5},{overhead:.4}", b.name(), translations, pvt.misses()));
        rates.push(rate);
        overheads.push(overhead);
    }
    write_csv("tab_pvt_misses", "bench,translations,pvt_misses,miss_pct,overhead_pct", &rows);
    println!(
        "\naverage miss rate {:.4}% of translations (paper 0.017%), CDE overhead {:.2}% (paper <0.5%)",
        mean(&rates),
        mean(&overheads)
    );
    assert!(mean(&rates) < 0.1, "PVT miss rate out of band");
    assert!(mean(&overheads) < 2.0, "CDE overhead out of band");
}
