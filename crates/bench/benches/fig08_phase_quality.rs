//! Figure 8: phase-identification quality — average Manhattan distance
//! between the translation vectors of execution windows that PowerChop
//! assigns the same phase signature. The paper reports 2.8 % average
//! (28 of 1000 translations) and a 6.8 % worst case.

use std::collections::HashMap;

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run_with, write_csv};

/// Manhattan distance between two sparse translation-count vectors.
fn manhattan(a: &[(powerchop_bt::TranslationId, u64)], b: &[(powerchop_bt::TranslationId, u64)]) -> u64 {
    let mut dist = 0u64;
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        match (a.get(i), b.get(j)) {
            (Some(&(ida, ca)), Some(&(idb, cb))) if ida == idb => {
                dist += ca.abs_diff(cb);
                i += 1;
                j += 1;
            }
            (Some(&(ida, ca)), Some(&(idb, _))) if ida < idb => {
                dist += ca;
                i += 1;
            }
            (Some(_), Some(&(_, cb))) => {
                dist += cb;
                j += 1;
            }
            (Some(&(_, ca)), None) => {
                dist += ca;
                i += 1;
            }
            (None, Some(&(_, cb))) => {
                dist += cb;
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    dist
}

fn main() {
    banner(
        "Figure 8 — code similarity across same-signature windows",
        "avg Manhattan distance 2.8% (28/1000 translations), max 6.8%; \
         97.8% of translations identical on average",
    );
    println!("{:<14} {:>10} {:>12} {:>12}", "bench", "windows", "avg-dist%", "identical%");
    let mut rows = Vec::new();
    let mut all_avgs = Vec::new();
    for b in powerchop_workloads::all() {
        let report = run_with(b, ManagerKind::PowerChop, |c| c.record_windows = true);
        // Group window vectors by signature; compare consecutive pairs
        // within each group (all-pairs is O(n^2) with the same expectation).
        let mut groups: HashMap<_, Vec<&Vec<_>>> = HashMap::new();
        for w in &report.windows {
            groups.entry(w.signature).or_default().push(&w.counts);
        }
        let mut dists = Vec::new();
        for vecs in groups.values() {
            for pair in vecs.windows(2) {
                dists.push(manhattan(pair[0], pair[1]) as f64);
            }
        }
        if dists.is_empty() {
            continue;
        }
        // A window holds 1000 translation executions; the worst case is
        // 2000 (completely disjoint). Report differing translations per
        // 1000, as the paper does.
        let avg_pct = mean(&dists) / 2.0 / 10.0;
        let identical = 100.0 - avg_pct;
        all_avgs.push(avg_pct);
        println!("{:<14} {:>10} {:>12.2} {:>12.2}", b.name(), report.windows.len(), avg_pct, identical);
        rows.push(format!("{},{},{:.3}", b.name(), report.windows.len(), avg_pct));
    }
    write_csv("fig08_phase_quality", "bench,windows,avg_manhattan_pct", &rows);
    let overall = mean(&all_avgs);
    let worst = all_avgs.iter().cloned().fold(0.0f64, f64::max);
    println!("\naverage distance {overall:.2}% (paper: 2.8%), worst {worst:.2}% (paper: 6.8%)");
    println!("average identical translations {:.1}% (paper: 97.8%)", 100.0 - overall);
    assert!(overall < 15.0, "same-signature windows must execute similar code");
}
