//! Figure 14: core leakage-power reduction under PowerChop. The paper
//! reports suite averages of 23 % (SPEC-INT), 10 % (SPEC-FP), 12 %
//! (PARSEC) and 32 % (MobileBench), with per-app reductions up to 52 %.

use powerchop::ManagerKind;
use powerchop_bench::{banner, mean, run, suites, sweep, write_csv};

fn main() {
    banner(
        "Figure 14 — leakage power reduction",
        "SPEC-INT 23%, SPEC-FP 10%, PARSEC 12%, MobileBench 32%; up to 52%",
    );
    println!("{:<14} {:>10} {:>9}", "bench", "suite", "leak-%");
    let mut rows = Vec::new();
    let mut per_suite: Vec<(String, Vec<f64>)> = Vec::new();
    let mut all = Vec::new();
    for suite in suites() {
        let mut vals = Vec::new();
        let benches: Vec<&powerchop_workloads::Benchmark> =
            powerchop_workloads::suite(suite).collect();
        let reports = sweep(&benches, |b| {
            let b = *b;
            (run(b, ManagerKind::FullPower), run(b, ManagerKind::PowerChop))
        });
        for (b, (full, chop)) in benches.iter().zip(reports) {
            let leak = 100.0 * chop.leakage_reduction_vs(&full);
            println!("{:<14} {:>10} {:>9.1}", b.name(), suite.to_string(), leak);
            rows.push(format!("{},{suite},{leak:.2}", b.name()));
            vals.push(leak);
            all.push(leak);
        }
        per_suite.push((suite.to_string(), vals));
    }
    write_csv("fig14_leakage", "bench,suite,leakage_reduction_pct", &rows);
    println!("\nper-suite average leakage reduction (paper in parens):");
    let paper = [23.0, 10.0, 12.0, 32.0];
    for ((name, vals), p) in per_suite.iter().zip(paper) {
        println!("  {:<12} {:>5.1}%  ({p:.0}%)", name, mean(vals));
    }
    let max = all.iter().cloned().fold(0.0f64, f64::max);
    println!("max per-app reduction {max:.0}% (paper: 52%)");
    let mobile = mean(&per_suite[3].1);
    let fp = mean(&per_suite[1].1);
    assert!(mobile > 15.0, "MobileBench leakage reduction out of band");
    assert!(mobile > fp * 0.9, "mobile must be among the largest reductions");
    assert!(max <= 75.0, "reduction cannot exceed the gateable leakage share");
}
