//! Figure 15: prevalence of vector operations (V) among 1000-instruction
//! execution shards — several applications have phases with a small
//! non-zero number of vector ops (0 < V <= 4), which timeouts cannot
//! exploit but PowerChop can.

use powerchop_bench::{banner, scale, write_csv};
use powerchop_uarch::config::CoreKind;

fn main() {
    banner(
        "Figure 15 — vector-op prevalence per 1000-instruction shard",
        "several apps have many shards with 0 < V <= 4 — scarce-but-nonzero \
         vector use, uniformly spread",
    );
    println!("{:<14} {:>8} {:>9} {:>8}", "bench", "V=0 %", "0<V<=4 %", "V>4 %");
    let mut rows = Vec::new();
    let budget = powerchop::system::default_budget().min(4_000_000);
    let mut sparse_apps = Vec::new();
    for b in powerchop_bench::benchmarks_for(CoreKind::Server) {
        let program = b.program(scale());
        let shards = powerchop_bench::vector_shards(&program, 1_000, budget);
        if shards.is_empty() {
            continue;
        }
        let n = shards.len() as f64;
        let zero = shards.iter().filter(|v| **v == 0).count() as f64 / n * 100.0;
        let sparse = shards.iter().filter(|v| (1..=4).contains(*v)).count() as f64 / n * 100.0;
        let dense = 100.0 - zero - sparse;
        println!("{:<14} {:>8.1} {:>9.1} {:>8.1}", b.name(), zero, sparse, dense);
        rows.push(format!("{},{zero:.2},{sparse:.2},{dense:.2}", b.name()));
        if sparse > 10.0 {
            sparse_apps.push(b.name());
        }
    }
    write_csv("fig15_vector_prevalence", "bench,v0_pct,v1_4_pct,v_gt4_pct", &rows);
    println!("\napps with >10% sparse-vector shards: {sparse_apps:?}");
    println!("paper highlights namd-style uniform sparse vector use");
    assert!(sparse_apps.contains(&"namd"), "namd must show sparse uniform vector use");
}
