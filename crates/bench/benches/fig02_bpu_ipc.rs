//! Figure 2: small (local) vs large (tournament) branch predictors over
//! MobileBench `msn` — the large BPU wins overall, but its benefit is
//! negligible during many phases.

use powerchop_bench::{banner, mean, write_csv};

fn main() {
    banner(
        "Figure 2 — small vs large BPU IPC over msn (mobile core)",
        "large BPU improves IPC overall, but many phases see no benefit",
    );
    let b = powerchop_workloads::by_name("msn").expect("msn exists");
    let budget = powerchop::system::default_budget();
    let interval = 100_000;
    let large = powerchop_bench::ipc_series(b, interval, budget, |_| {});
    let small =
        powerchop_bench::ipc_series(b, interval, budget, |core| core.set_bpu_large_active(false));

    let n = large.len().min(small.len());
    let mut rows = Vec::new();
    println!("{:>6} {:>10} {:>10} {:>8}", "Minst", "large-IPC", "small-IPC", "gain%");
    let mut gains = Vec::new();
    for i in 0..n {
        let gain = 100.0 * (large[i] / small[i] - 1.0);
        gains.push(gain);
        if i % 4 == 0 {
            println!(
                "{:>6.1} {:>10.3} {:>10.3} {:>8.1}",
                (i + 1) as f64 * interval as f64 / 1e6,
                large[i],
                small[i],
                gain
            );
        }
        rows.push(format!("{},{:.4},{:.4}", i, large[i], small[i]));
    }
    write_csv("fig02_bpu_ipc", "interval,large_ipc,small_ipc", &rows);

    let avg_large = mean(&large[..n]);
    let avg_small = mean(&small[..n]);
    let negligible = gains.iter().filter(|g| **g < 2.0).count();
    println!(
        "\naverage IPC: large {avg_large:.3} vs small {avg_small:.3} (+{:.1}%)",
        100.0 * (avg_large / avg_small - 1.0)
    );
    println!(
        "intervals where the large BPU gains <2%: {negligible}/{n} ({:.0}%)",
        100.0 * negligible as f64 / n as f64
    );
    assert!(avg_large > avg_small, "large BPU must win overall");
    assert!(negligible > 0, "some phases must see no benefit");
}
