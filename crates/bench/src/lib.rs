//! Experiment harness shared by every figure/table bench target.
//!
//! Each bench target (`benches/fig*.rs`, `benches/tab*.rs`,
//! `benches/abl*.rs`) regenerates one figure or table from the paper's
//! evaluation, printing the same rows/series the paper reports and writing
//! a CSV copy under `bench_results/`. See `DESIGN.md` §3 for the
//! experiment index and `EXPERIMENTS.md` for recorded paper-vs-measured
//! results.
//!
//! Environment knobs:
//!
//! - `POWERCHOP_BUDGET` — instruction budget per run (default 12,000,000),
//! - `POWERCHOP_SCALE` — workload scale factor (default 1.0).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fs;
use std::io::Write as _;
use std::path::PathBuf;

use powerchop::{ManagerKind, RunConfig, RunReport};
use powerchop_uarch::config::CoreKind;
use powerchop_workloads::{Benchmark, Scale, Suite};

/// The workload scale factor (from `POWERCHOP_SCALE`, default 1.0).
#[must_use]
pub fn scale() -> Scale {
    Scale(
        std::env::var("POWERCHOP_SCALE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(1.0),
    )
}

/// The run configuration for a benchmark's design point (budget from
/// `POWERCHOP_BUDGET`).
#[must_use]
pub fn config_for(benchmark: &Benchmark) -> RunConfig {
    RunConfig::for_kind(benchmark.core_kind())
}

/// Runs `benchmark` under `kind` with the default configuration.
///
/// # Panics
///
/// Panics if the guest program faults (a workload bug).
#[must_use]
pub fn run(benchmark: &Benchmark, kind: ManagerKind) -> RunReport {
    run_with(benchmark, kind, |_| {})
}

/// Runs `benchmark` under `kind`, letting `tweak` adjust the
/// configuration first.
///
/// # Panics
///
/// Panics if the guest program faults (a workload bug).
#[must_use]
pub fn run_with(
    benchmark: &Benchmark,
    kind: ManagerKind,
    tweak: impl FnOnce(&mut RunConfig),
) -> RunReport {
    let mut cfg = config_for(benchmark);
    tweak(&mut cfg);
    let program = benchmark.program(scale());
    powerchop::run_program(&program, kind, &cfg)
        .unwrap_or_else(|e| panic!("{} faulted: {e}", benchmark.name()))
}

/// Runs `f` over `items` on the `powerchop-exec` work-stealing pool
/// (worker count from `POWERCHOP_JOBS`, defaulting to the CPU count),
/// returning results in item order. Figure/ablation sweeps compute run
/// reports through this and fold printing and CSV rows afterwards, so a
/// parallel sweep's output is byte-identical to a sequential one.
///
/// # Panics
///
/// Propagates the first job panic (a guest fault is a workload bug, the
/// same contract as [`run`]).
pub fn sweep<I: Sync, T: Send>(items: &[I], f: impl Fn(&I) -> T + Sync) -> Vec<T> {
    powerchop_exec::run_jobs(items, powerchop_exec::resolve_jobs(None), |_, item| f(item))
        .into_iter()
        .map(|r| r.unwrap_or_else(|p| panic!("sweep job {} panicked: {}", p.index, p.message)))
        .collect()
}

/// The directory experiment CSVs are written to (`bench_results/` at the
/// workspace root, creatable from any crate's working directory).
#[must_use]
pub fn results_dir() -> PathBuf {
    // Bench targets run with the crate as CWD; walk up to the workspace.
    let mut dir = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    for _ in 0..4 {
        if dir.join("Cargo.toml").exists()
            && fs::read_to_string(dir.join("Cargo.toml"))
                .map(|s| s.contains("[workspace]"))
                .unwrap_or(false)
        {
            break;
        }
        if !dir.pop() {
            break;
        }
    }
    dir.join("bench_results")
}

/// Writes an experiment's rows as CSV under `bench_results/<name>.csv`.
pub fn write_csv(name: &str, header: &str, rows: &[String]) {
    let dir = results_dir();
    if fs::create_dir_all(&dir).is_err() {
        return; // best-effort: printing is the primary output
    }
    let path = dir.join(format!("{name}.csv"));
    if let Ok(mut f) = fs::File::create(&path) {
        let _ = writeln!(f, "{header}");
        for row in rows {
            let _ = writeln!(f, "{row}");
        }
        println!("[csv] {}", path.display());
    }
}

/// Prints an experiment banner.
pub fn banner(id: &str, paper: &str) {
    println!("\n=== {id} ===");
    println!("    paper: {paper}\n");
}

/// Arithmetic mean (0 for an empty slice).
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        0.0
    } else {
        values.iter().sum::<f64>() / values.len() as f64
    }
}

/// Per-suite grouping order used across the paper's figures.
#[must_use]
pub fn suites() -> [Suite; 4] {
    [Suite::SpecInt, Suite::SpecFp, Suite::Parsec, Suite::MobileBench]
}

/// All benchmarks of a given core kind.
pub fn benchmarks_for(kind: CoreKind) -> impl Iterator<Item = &'static Benchmark> {
    powerchop_workloads::all().iter().filter(move |b| b.core_kind() == kind)
}

/// Architectural vector-operation counts per `shard`-instruction shard
/// (Figures 1 and 15): executes `program` on the bare guest CPU and
/// counts VPU-bound instructions in each consecutive shard.
///
/// # Panics
///
/// Panics if the guest program faults.
#[must_use]
pub fn vector_shards(program: &powerchop_gisa::Program, shard: u64, max_insts: u64) -> Vec<u32> {
    use powerchop_gisa::{Cpu, Memory};
    let mut cpu = Cpu::new(program);
    let mut mem = Memory::new();
    program.init_memory(&mut mem);
    let mut shards = Vec::new();
    let mut current = 0u32;
    let mut in_shard = 0u64;
    while !cpu.halted() && cpu.retired() < max_insts {
        let info = cpu.step(program, &mut mem).expect("guest program faulted");
        if info.class.uses_vpu() {
            current += 1;
        }
        in_shard += 1;
        if in_shard == shard {
            shards.push(current);
            current = 0;
            in_shard = 0;
        }
    }
    shards
}

/// IPC per `interval` retired instructions under a fixed unit
/// configuration (Figures 2 and 3): runs the full hybrid machine with no
/// power manager, after applying `configure` to the core once.
///
/// # Panics
///
/// Panics if the guest program faults.
#[must_use]
pub fn ipc_series(
    benchmark: &Benchmark,
    interval: u64,
    max_insts: u64,
    configure: impl FnOnce(&mut powerchop_uarch::core::CoreModel),
) -> Vec<f64> {
    use powerchop_bt::{BtConfig, Machine, MachineEvent};
    use powerchop_uarch::core::CoreModel;
    let cfg = config_for(benchmark);
    let program = benchmark.program(scale());
    let mut core = CoreModel::new(&cfg.core);
    configure(&mut core);
    let mut machine = Machine::new(&program, BtConfig::default());
    let mut series = Vec::new();
    let mut last_insts = 0u64;
    let mut last_cycles = 0u64;
    loop {
        if machine.retired() >= max_insts {
            break;
        }
        if matches!(
            machine.step(&mut core).expect("guest program faulted"),
            MachineEvent::Halted
        ) {
            break;
        }
        let insts = machine.retired();
        if insts - last_insts >= interval {
            let cycles = core.cycles();
            let d_insts = insts - last_insts;
            let d_cycles = cycles.saturating_sub(last_cycles).max(1);
            series.push(d_insts as f64 / d_cycles as f64);
            last_insts = insts;
            last_cycles = cycles;
        }
    }
    series
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
    }

    #[test]
    fn results_dir_is_under_workspace() {
        let d = results_dir();
        assert!(d.ends_with("bench_results"));
    }

    #[test]
    fn config_matches_core_kind() {
        let mobile = powerchop_workloads::by_name("msn").unwrap();
        assert_eq!(config_for(mobile).core.kind, CoreKind::Mobile);
        let server = powerchop_workloads::by_name("gcc").unwrap();
        assert_eq!(config_for(server).core.kind, CoreKind::Server);
    }
}
