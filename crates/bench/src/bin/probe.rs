//! Calibration probe: prints per-benchmark PowerChop behaviour so the
//! reproduction's thresholds and power parameters can be sanity-checked
//! against the paper's reported shapes.

use powerchop::ManagerKind;
use powerchop_bench::{run, run_with};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    let names: Vec<&str> = if names.is_empty() {
        vec!["gobmk", "namd", "gems", "hmmer", "libquantum", "msn", "amazon", "lbm"]
    } else {
        names.iter().map(|s| s.as_str()).collect()
    };
    println!(
        "{:<14} {:>7} {:>7} {:>6} {:>6} {:>6} {:>6} | {:>6} {:>6} {:>7} | {:>6} {:>7} {:>7}",
        "bench", "Minst", "ipcF", "ipcC", "slow%", "pwr-%", "leak-%", "vpuOff", "bpuOff", "mlcGate",
        "sw/Mc", "pvtMiss", "phases"
    );
    for name in names {
        let b = powerchop_workloads::by_name(name).unwrap_or_else(|| panic!("unknown {name}"));
        let full = run(b, ManagerKind::FullPower);
        let chop = run_with(b, ManagerKind::PowerChop, |_| {});
        let pvt = chop.pvt.unwrap();
        let cde = chop.cde.unwrap();
        println!(
            "{:<14} {:>7.2} {:>7.3} {:>6.3} {:>6.1} {:>6.1} {:>6.1} | {:>6.2} {:>6.2} {:>7.2} | {:>6.1} {:>7.4} {:>7}",
            b.name(),
            chop.instructions as f64 / 1e6,
            full.ipc(),
            chop.ipc(),
            100.0 * chop.slowdown_vs(&full),
            100.0 * chop.power_reduction_vs(&full),
            100.0 * chop.leakage_reduction_vs(&full),
            chop.gated.vpu_off_frac(),
            chop.gated.bpu_off_frac(),
            chop.gated.mlc_gated_frac(),
            chop.switches_per_mcycle(chop.switches.total()),
            100.0 * pvt.misses() as f64 / chop.bt.translation_executions.max(1) as f64,
            cde.decided,
        );
    }
}
