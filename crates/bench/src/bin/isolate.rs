//! Per-unit isolation probe: which managed unit causes a benchmark's
//! slowdown and how much each contributes to gating activity.

use powerchop::managers::ManagedSet;
use powerchop::ManagerKind;
use powerchop_bench::{run, run_with};

fn main() {
    let names: Vec<String> = std::env::args().skip(1).collect();
    for name in &names {
        let b = powerchop_workloads::by_name(name).unwrap_or_else(|| panic!("unknown {name}"));
        let full = run(b, ManagerKind::FullPower);
        println!("{name}: full IPC {:.3}", full.ipc());
        for (label, set) in [
            ("vpu-only", ManagedSet::VPU_ONLY),
            ("bpu-only", ManagedSet::BPU_ONLY),
            ("mlc-only", ManagedSet::MLC_ONLY),
            ("all", ManagedSet::ALL),
        ] {
            let r = run_with(b, ManagerKind::PowerChop, |c| c.chop.managed = set);
            println!(
                "  {label:>8}: slow {:>5.1}%  vpuOff {:.2} bpuOff {:.2} mlcGate {:.2} mlcOne {:.2} sw/Mc {:.1}",
                100.0 * r.slowdown_vs(&full),
                r.gated.vpu_off_frac(),
                r.gated.bpu_off_frac(),
                r.gated.mlc_gated_frac(),
                r.gated.mlc_one_frac(),
                r.switches_per_mcycle(r.switches.total()),
            );
        }
    }
}
