//! The TCP daemon: epoll event loop, connection handling, job dispatch.
//!
//! One thread drives every connection through a raw epoll event loop
//! (see [`crate::net`]): non-blocking accepts, per-connection state
//! machines with incremental line framing, and EPOLLOUT-driven partial
//! writes. A connection is never owned by a thread; slow clients cost
//! one `Conn` struct, not a stack.
//!
//! Simulations still dispatch onto the bounded [`WorkerPool`]; when the
//! queue is full the request is shed immediately with a 429 reply
//! instead of queueing unboundedly — explicit backpressure the client
//! can see and retry against. A dispatched run parks its connection in
//! an in-flight state (its socket stops being polled for input, so a
//! pipelined flood backs up into the kernel buffer) and a small settler
//! thread waits the run out, then hands the reply back to the loop over
//! an eventfd wakeup.
//!
//! Every run gets a wall-clock deadline watchdog mirroring the
//! `supervise` machinery: a watchdog thread trips a cancel flag once the
//! deadline passes and the run checks it between step chunks, so a
//! runaway request yields a 408 reply instead of pinning a worker
//! forever. The deadline is a single [`DeadlineBudget`] charged across
//! queue wait *and* compute, so time spent waiting for a worker can
//! never buy extra execution time past the client's deadline.
//!
//! Connections are hardened end to end: a timing wheel (see
//! [`crate::wheel`]) replaces per-socket kernel timeouts — a client
//! that cannot produce a request line within the read timeout, or
//! absorb its reply within the write timeout, gets a typed 408 and is
//! disconnected. `WouldBlock` is never treated as a timeout: on a
//! non-blocking socket it only means "no data yet", and timeouts are
//! classified exclusively by wheel expiry. A bounded per-connection
//! outbox caps what a non-reading client can queue; past the cap the
//! connection is closed with a typed 408 — replies are never truncated
//! mid-line. A max-connections gate sheds excess connections with a
//! typed 503, a circuit breaker over the run path sheds work with a
//! typed 503 while the simulator is failing repeatedly, and dead
//! workers are respawned by the pool supervisor (visible in
//! `serve_worker_respawns_total` and the `health` op).
//!
//! Completed reports are cached in a sharded LRU keyed by
//! [`powerchop_checkpoint::run_key`] over the program and configuration
//! fingerprints, so a repeated request is served from memory —
//! bit-identical, visible in the `serve_cache_hits_total` counter.
//!
//! A plain HTTP `GET /metrics` on the same port returns the Prometheus
//! text exposition, so `curl` and a Prometheus scraper both work without
//! speaking the JSON protocol.
//!
//! Shutdown is in-protocol (`{"op":"shutdown"}`) because the workspace
//! is dependency-free and cannot install a SIGTERM handler: the daemon
//! stops accepting connections, replies 503 to new work, waits for
//! connected clients to finish, and drains the pool before exiting.
//! See `DESIGN.md` §14 for the event-loop state machine.

use std::collections::{HashMap, VecDeque};
use std::io::{BufWriter, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

use powerchop::{config_fingerprint, ManagerKind, RunConfig, RunReport, Simulation};
use powerchop_checkpoint::run_key;
use powerchop_exec::{JobHandle, KillWorker, SubmitError, WorkerPool};
use powerchop_gisa::Program;
use powerchop_resilience::{Admission, CircuitBreaker, DeadlineBudget, RetryPolicy};
use powerchop_telemetry::export::JsonWriter;
use powerchop_telemetry::{
    format_trace_id, trace_id, MetricsRegistry, Phase, SpanLedger, TelemetryConfig, Tracer,
};
use powerchop_workloads::Scale;

use crate::cache::{ResultCache, ShardedCache};
use crate::durability::{self, Durability, SpillPlan};
use crate::net::{Epoll, EpollEvent, WakeFd, EPOLLERR, EPOLLHUP, EPOLLIN, EPOLLOUT};
use crate::protocol::{
    error_reply, fault_config, parse_request, run_reply, sweep_reply, Limits, ReqError, Request,
    RunSpec, SweepOutcome,
};
use crate::report::report_to_json;
use crate::wheel::TimerWheel;

/// Dispatch-loop iterations per [`Simulation::step_chunk`] call — the
/// same chunking the CLI's checkpoint/supervise paths use, so deadline
/// checks land at identical boundaries.
const STEP_CHUNK: u64 = 65_536;

/// Everything that shapes a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker thread count (`None` = `POWERCHOP_JOBS` or CPU count).
    /// Also the result-cache shard count.
    pub jobs: Option<usize>,
    /// Jobs that may wait in the queue before requests are shed with 429.
    pub queue_depth: usize,
    /// LRU result-cache capacity (0 disables caching).
    pub cache_entries: usize,
    /// Per-run wall-clock deadline cap in milliseconds.
    pub deadline_ms: u64,
    /// Largest accepted request line in bytes.
    pub max_request_bytes: usize,
    /// Largest accepted instruction budget per run.
    pub max_budget: u64,
    /// Concurrent connections admitted before new ones are shed with a
    /// typed 503 (`overloaded`).
    pub max_connections: usize,
    /// Read deadline in milliseconds (0 disables): a client that cannot
    /// produce a full request line within it gets a typed 408
    /// (`slow-client`) and is disconnected. Enforced by the timing
    /// wheel, never by `WouldBlock` classification.
    pub read_timeout_ms: u64,
    /// Write deadline in milliseconds (0 disables): a client whose
    /// socket makes no flush progress within it is disconnected.
    pub write_timeout_ms: u64,
    /// Bytes of unflushed replies one connection may queue before it is
    /// declared a slow consumer and closed with a typed 408. A single
    /// reply into an empty outbox is always allowed, so the per-
    /// connection memory bound is `max(cap, largest single reply)`.
    pub max_outbox_bytes: usize,
    /// Honor `"chaos"` request fields (deliberate worker kills). Off by
    /// default; only soak/chaos tests should enable it.
    pub chaos_ops: bool,
    /// Directory for the write-ahead intent journal and checkpoint
    /// spills. `None` disables crash consistency entirely.
    pub journal_dir: Option<String>,
    /// Directory for the persistent result-cache log. `None` keeps the
    /// cache memory-only.
    pub cache_dir: Option<String>,
    /// Retired-instruction interval between checkpoint spills of
    /// in-flight runs (only meaningful with `journal_dir` set).
    pub spill_every: u64,
    /// Structured JSONL access-log path (`None` disables the log).
    /// One RFC 8259 record per request, carrying the trace id, op,
    /// status, cache outcome and the full span breakdown.
    pub access_log: Option<String>,
    /// Requests slower than this many milliseconds end to end are
    /// promoted to a detailed access-log record (`None` never
    /// promotes; `Some(0)` promotes everything).
    pub slow_ms: Option<u64>,
    /// Trace-id seed. `None` derives a random per-process seed; fixing
    /// it makes the trace-id sequence fully deterministic.
    pub seed: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".into(),
            jobs: None,
            queue_depth: 16,
            cache_entries: 64,
            deadline_ms: 120_000,
            max_request_bytes: 1 << 20,
            max_budget: 1_000_000_000,
            max_connections: 64,
            read_timeout_ms: 30_000,
            write_timeout_ms: 10_000,
            max_outbox_bytes: 1 << 20,
            chaos_ops: false,
            journal_dir: None,
            cache_dir: None,
            spill_every: 2_000_000,
            access_log: None,
            slow_ms: None,
            seed: None,
        }
    }
}

/// Per-op latency histogram keys. Labels live inside the metric key;
/// the exporter splits them back out into Prometheus label syntax.
fn op_duration_metric(op: &str) -> &'static str {
    match op {
        "run" => r#"serve_request_duration_ms{op="run"}"#,
        "sweep" => r#"serve_request_duration_ms{op="sweep"}"#,
        "status" => r#"serve_request_duration_ms{op="status"}"#,
        "health" => r#"serve_request_duration_ms{op="health"}"#,
        "metrics" => r#"serve_request_duration_ms{op="metrics"}"#,
        "shutdown" => r#"serve_request_duration_ms{op="shutdown"}"#,
        _ => r#"serve_request_duration_ms{op="malformed"}"#,
    }
}

/// Quantile gauges derived from the latency histograms on every
/// exposition: (histogram key, gauge key, q). Only the two ops with
/// real compute behind them get quantile gauges; scrapers can derive
/// any quantile for the rest from the `_bucket` series.
const QUANTILE_GAUGES: [(&str, &str, f64); 8] = [
    (
        r#"serve_request_duration_ms{op="run"}"#,
        r#"serve_request_duration_ms_p50{op="run"}"#,
        0.50,
    ),
    (
        r#"serve_request_duration_ms{op="run"}"#,
        r#"serve_request_duration_ms_p90{op="run"}"#,
        0.90,
    ),
    (
        r#"serve_request_duration_ms{op="run"}"#,
        r#"serve_request_duration_ms_p99{op="run"}"#,
        0.99,
    ),
    (
        r#"serve_request_duration_ms{op="run"}"#,
        r#"serve_request_duration_ms_p999{op="run"}"#,
        0.999,
    ),
    (
        r#"serve_request_duration_ms{op="sweep"}"#,
        r#"serve_request_duration_ms_p50{op="sweep"}"#,
        0.50,
    ),
    (
        r#"serve_request_duration_ms{op="sweep"}"#,
        r#"serve_request_duration_ms_p90{op="sweep"}"#,
        0.90,
    ),
    (
        r#"serve_request_duration_ms{op="sweep"}"#,
        r#"serve_request_duration_ms_p99{op="sweep"}"#,
        0.99,
    ),
    (
        r#"serve_request_duration_ms{op="sweep"}"#,
        r#"serve_request_duration_ms_p999{op="sweep"}"#,
        0.999,
    ),
];

/// Nanoseconds elapsed since `t`, saturating instead of wrapping.
fn ns_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// A random-enough per-process trace seed without any new dependency:
/// `RandomState` is seeded from OS entropy once per process.
fn entropy_seed() -> u64 {
    use std::hash::{BuildHasher, Hasher};
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

/// Everything one request accumulates on its way through the daemon:
/// the trace id minted at accept, the span ledger every phase records
/// into, and the classification the access log and histograms need.
struct RequestCtx {
    trace: u64,
    ledger: SpanLedger,
    op: &'static str,
    status: u16,
    cached: bool,
    bench: Option<String>,
    /// Simulated cycles attributed to the compute phase (from the
    /// run report; sweeps accumulate across rows).
    compute_cycles: u64,
    /// Flight-recorder events captured by the per-run tracer (only
    /// when the access log is enabled; surfaced on slow records).
    trace_events: u64,
}

impl RequestCtx {
    fn new(trace: u64) -> Self {
        Self {
            trace,
            ledger: SpanLedger::default(),
            op: "malformed",
            status: 200,
            cached: false,
            bench: None,
            compute_cycles: 0,
            trace_events: 0,
        }
    }
}

/// Locks a mutex, riding through poisoning: a panicked holder cannot
/// corrupt the metrics or breaker invariants we rely on.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the event loop, the settler threads and the resumer.
struct State {
    pool: WorkerPool,
    cache: ShardedCache,
    metrics: Mutex<MetricsRegistry>,
    draining: AtomicBool,
    limits: Limits,
    max_request_bytes: usize,
    addr: SocketAddr,
    /// Connections currently being served (max-connections gate).
    connections: AtomicUsize,
    max_connections: usize,
    read_timeout_ms: u64,
    write_timeout_ms: u64,
    /// Per-connection cap on unflushed reply bytes (see
    /// [`ServerConfig::max_outbox_bytes`]).
    max_outbox_bytes: usize,
    /// Unflushed reply bytes across every connection (the
    /// `serve_outbox_bytes` gauge).
    outbox_bytes: AtomicU64,
    /// Circuit breaker over run execution: repeated internal failures
    /// trip it and new runs are shed with a typed 503 until a probe
    /// succeeds.
    breaker: Mutex<CircuitBreaker>,
    /// Zero point of the breaker's logical millisecond clock.
    epoch: Instant,
    /// Crash-consistency machinery (`None` when `--journal-dir` is
    /// unset: the daemon runs memory-only, exactly as before).
    durable: Option<Arc<Durability>>,
    /// Seed of the SplitMix64 trace-id sequence (fixed by `--seed`,
    /// OS entropy otherwise).
    trace_seed: u64,
    /// Requests traced so far; the counter value is the sequence
    /// index fed to [`trace_id`].
    trace_counter: AtomicU64,
    /// Requests currently inside dispatch (the
    /// `serve_inflight_requests` gauge).
    inflight_requests: AtomicUsize,
    /// The JSONL access log, append-opened at bind (`None` when
    /// `--access-log` is unset).
    access: Option<Mutex<BufWriter<std::fs::File>>>,
    /// Slow-request promotion threshold (see [`ServerConfig::slow_ms`]).
    slow_ms: Option<u64>,
}

impl State {
    fn count(&self, name: &'static str) {
        lock(&self.metrics).counter_add(name, 1);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Milliseconds since the daemon booted (the breaker and wheel
    /// clock).
    fn now_ms(&self) -> u64 {
        u64::try_from(self.epoch.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// Mints the next trace id: a SplitMix64 stream over the seed, so
    /// a fixed `--seed` reproduces the exact id sequence.
    fn next_trace(&self) -> u64 {
        trace_id(
            self.trace_seed,
            self.trace_counter.fetch_add(1, Ordering::SeqCst),
        )
    }

    /// Whether runs should carry an attached flight recorder (only
    /// when someone can see the result: the access log is on).
    fn traced(&self) -> bool {
        self.access.is_some()
    }

    /// Folds one finished request into the per-op latency histogram
    /// and the access log, and releases the in-flight gauge.
    fn observe_request(&self, ctx: &RequestCtx) {
        self.inflight_requests.fetch_sub(1, Ordering::SeqCst);
        let total_ns = ctx.ledger.total_wall_ns();
        lock(&self.metrics).observe(op_duration_metric(ctx.op), total_ns / 1_000_000);
        if self.access.is_some() {
            self.log_access(&self.access_record(ctx, total_ns));
        }
    }

    /// Appends one raw JSONL line to the access log (best effort: a
    /// full disk must never take the serving path down with it).
    fn log_access(&self, record: &str) {
        if let Some(log) = &self.access {
            let mut w = lock(log);
            let _ = writeln!(w, "{record}");
            let _ = w.flush();
        }
    }

    /// Renders one access-log record. Every record carries all seven
    /// span phases; crossing the `--slow-ms` threshold promotes it
    /// with compute-attribution detail.
    fn access_record(&self, ctx: &RequestCtx, total_ns: u64) -> String {
        let total_us = total_ns / 1_000;
        let slow = self.slow_ms.is_some_and(|ms| total_us / 1_000 >= ms);
        let mut spans = JsonWriter::object();
        for phase in Phase::ALL {
            let key = format!("{}_us", phase.label());
            spans.field_u64(&key, ctx.ledger.wall_ns(phase) / 1_000);
        }
        let mut w = JsonWriter::object();
        w.field_u64("ts_ms", self.now_ms());
        w.field_str("trace_id", &format_trace_id(ctx.trace));
        w.field_str("op", ctx.op);
        w.field_u64("status", u64::from(ctx.status));
        w.field_bool("cached", ctx.cached);
        if let Some(bench) = &ctx.bench {
            w.field_str("bench", bench);
        }
        w.field_u64("duration_us", total_us);
        w.field_raw("spans", &spans.finish());
        w.field_bool("slow", slow);
        if slow {
            w.field_u64("compute_cycles", ctx.compute_cycles);
            w.field_u64("trace_events", ctx.trace_events);
        }
        w.finish()
    }

    /// Asks the breaker whether a run may proceed right now.
    fn breaker_admit(&self) -> Result<(), ReqError> {
        match lock(&self.breaker).admit(self.now_ms()) {
            Admission::Allow | Admission::Probe => Ok(()),
            Admission::Reject { retry_after_ms } => {
                Err(ReqError::breaker_open(retry_after_ms.max(1)))
            }
        }
    }

    /// Feeds a run outcome back to the breaker. Only *infrastructure*
    /// failures (simulator errors, worker panics) count against it;
    /// deadline expiries and shed requests say nothing about the
    /// health of the run path.
    fn breaker_observe(&self, ok: bool) {
        let mut breaker = lock(&self.breaker);
        let now = self.now_ms();
        if ok {
            breaker.record_success(now);
        } else {
            breaker.record_failure(now);
        }
        let trips = breaker.trips();
        drop(breaker);
        lock(&self.metrics).counter_set("serve_breaker_trips_total", trips);
    }

    /// Snapshot the live gauges and render the Prometheus text.
    fn prometheus_text(&self) -> String {
        let mut m = lock(&self.metrics);
        m.gauge_set("serve_queue_depth", self.pool.queued() as f64);
        m.gauge_set("serve_inflight", self.pool.inflight() as f64);
        m.gauge_set("serve_cache_entries", self.cache.len() as f64);
        m.gauge_set("serve_draining", if self.draining() { 1.0 } else { 0.0 });
        m.gauge_set(
            "serve_connections",
            self.connections.load(Ordering::SeqCst) as f64,
        );
        m.gauge_set("serve_workers_alive", self.pool.alive() as f64);
        m.gauge_set(
            "serve_inflight_requests",
            self.inflight_requests.load(Ordering::SeqCst) as f64,
        );
        m.gauge_set(
            "serve_outbox_bytes",
            self.outbox_bytes.load(Ordering::SeqCst) as f64,
        );
        m.counter_set("serve_worker_respawns_total", self.pool.respawns());
        m.counter_set("serve_breaker_trips_total", lock(&self.breaker).trips());
        // Refresh the quantile gauges from the log2 histograms so every
        // scrape carries current p50/p90/p99/p999 estimates alongside
        // the raw buckets.
        for (hist, gauge, q) in QUANTILE_GAUGES {
            if let Some(estimate) = m.histogram(hist).map(|h| h.quantile(q)) {
                m.gauge_set(gauge, estimate);
            }
        }
        m.to_prometheus_text()
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
    /// Journaled intents with no completion record, found at boot.
    /// [`Server::run`] resumes them on a background thread.
    pending: Vec<powerchop_durable::PendingIntent>,
}

impl Server {
    /// Binds the listener and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address, ...).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let jobs = powerchop_exec::resolve_jobs(cfg.jobs);
        let mut metrics = MetricsRegistry::new();
        // Seed the resilience and recovery counters at zero so a
        // metrics scrape sees them before the first
        // trip/retry/respawn/shed/recovery ever happens.
        for name in [
            "serve_breaker_trips_total",
            "serve_retries_total",
            "serve_worker_respawns_total",
            "serve_slow_client_disconnects_total",
            "serve_conn_rejected_total",
            "serve_epoll_wakeups_total",
            "serve_backpressure_disconnects_total",
            "serve_recoveries_total",
            "serve_journal_replayed_total",
            "serve_torn_tail_discards_total",
            "serve_cache_reloads_total",
            // JIT counters aggregate across every completed run; seeded so
            // a scrape on a JIT-off (or freshly booted) daemon still shows
            // the full series shape.
            "jit_translations_compiled",
            "jit_exec_hits",
            "jit_fallbacks",
            "jit_code_bytes",
        ] {
            metrics.counter_add(name, 0);
        }
        // Pre-seed the per-op latency histograms and the in-flight
        // gauge too: a scrape right after boot sees every series at
        // zero, shape-complete, before the first request ever lands.
        for op in [
            "run",
            "sweep",
            "status",
            "health",
            "metrics",
            "shutdown",
            "malformed",
        ] {
            metrics.histogram_seed(op_duration_metric(op));
        }
        metrics.gauge_set("serve_inflight_requests", 0.0);
        metrics.gauge_set("serve_outbox_bytes", 0.0);
        metrics.set_help(
            "serve_request_duration_ms",
            "End-to-end request latency in milliseconds, by op.",
        );
        metrics.set_help(
            "serve_inflight_requests",
            "Requests currently inside dispatch.",
        );
        metrics.set_help("serve_requests_total", "Request lines received.");
        metrics.set_help("serve_runs_total", "Simulations completed successfully.");
        metrics.set_help(
            "serve_cache_hits_total",
            "Run requests answered bit-identically from the result cache.",
        );
        metrics.set_help(
            "serve_breaker_trips_total",
            "Circuit-breaker transitions to open.",
        );
        metrics.set_help(
            "serve_worker_respawns_total",
            "Dead pool workers replaced by the supervisor.",
        );
        metrics.set_help(
            "serve_epoll_wakeups_total",
            "Event-loop wakeups that delivered at least one ready event.",
        );
        metrics.set_help(
            "serve_outbox_bytes",
            "Reply bytes queued for slow clients across all connections.",
        );
        metrics.set_help(
            "serve_backpressure_disconnects_total",
            "Slow consumers disconnected for exceeding the per-connection outbox cap.",
        );
        // The access log is append-opened before the listener exists:
        // if the path is bad the daemon fails to boot loudly instead of
        // silently dropping every record.
        let access = match &cfg.access_log {
            Some(path) => Some(Mutex::new(BufWriter::new(
                std::fs::OpenOptions::new()
                    .create(true)
                    .append(true)
                    .open(path)?,
            ))),
            None => None,
        };
        // Boot-time recovery: replay the journal and reload the
        // persistent cache before the listener serves anything, so the
        // first request already sees the recovered world. The reload
        // path fills a flat cache which is then redistributed across
        // the shards in recency order.
        let mut reloaded = ResultCache::new(cfg.cache_entries);
        let mut durable = None;
        let mut pending = Vec::new();
        if let Some(dir) = &cfg.journal_dir {
            let boot = durability::boot(
                std::path::Path::new(dir),
                cfg.cache_dir.as_deref().map(std::path::Path::new),
                cfg.spill_every,
                &mut reloaded,
            )?;
            let r = &boot.durability.recovery;
            metrics.counter_add("serve_recoveries_total", u64::from(!r.clean_boot));
            metrics.counter_add("serve_journal_replayed_total", r.journal_replayed);
            metrics.counter_add("serve_torn_tail_discards_total", r.torn_discards);
            metrics.counter_add("serve_cache_reloads_total", r.cache_reloaded);
            durable = Some(boot.durability);
            pending = boot.pending;
        }
        let cache = ShardedCache::new(cfg.cache_entries, jobs);
        cache.absorb(reloaded);
        let state = Arc::new(State {
            pool: WorkerPool::new(jobs, cfg.queue_depth),
            cache,
            metrics: Mutex::new(metrics),
            draining: AtomicBool::new(false),
            limits: Limits {
                max_budget: cfg.max_budget,
                deadline_ms: cfg.deadline_ms,
                allow_chaos: cfg.chaos_ops,
            },
            max_request_bytes: cfg.max_request_bytes,
            addr,
            connections: AtomicUsize::new(0),
            max_connections: cfg.max_connections.max(1),
            read_timeout_ms: cfg.read_timeout_ms,
            write_timeout_ms: cfg.write_timeout_ms,
            max_outbox_bytes: cfg.max_outbox_bytes.max(1),
            outbox_bytes: AtomicU64::new(0),
            breaker: Mutex::new(CircuitBreaker::default()),
            epoch: Instant::now(),
            durable,
            trace_seed: cfg.seed.unwrap_or_else(entropy_seed),
            trace_counter: AtomicU64::new(0),
            inflight_requests: AtomicUsize::new(0),
            access,
            slow_ms: cfg.slow_ms,
        });
        Ok(Self {
            listener,
            state,
            pending,
        })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a shutdown request drains the daemon.
    ///
    /// Blocks the calling thread. After a `{"op":"shutdown"}` request:
    /// no new connections are accepted, open connections are served
    /// until they close (clients still holding theirs get 503 for new
    /// work), and the worker pool is drained before returning.
    ///
    /// # Errors
    ///
    /// Propagates event-loop I/O failures (epoll itself breaking);
    /// per-connection errors only terminate that connection.
    pub fn run(mut self) -> std::io::Result<()> {
        // Resume journaled work on a background thread so the listener
        // serves new clients immediately; `health` reports
        // `recovery_active` until the backlog drains.
        let resumer = if self.pending.is_empty() {
            None
        } else {
            let state = Arc::clone(&self.state);
            let pending = std::mem::take(&mut self.pending);
            Some(std::thread::spawn(move || resume_pending(&state, pending)))
        };
        let outcome = run_event_loop(&self.listener, &self.state);
        // The resumer abandons un-dispatched intents once draining is
        // observed (they stay journaled for the next boot) and finishes
        // any run already on the pool, which drain() then waits out.
        if let Some(resumer) = resumer {
            let _ = resumer.join();
        }
        self.state.pool.drain();
        outcome
    }
}

/// Listener token in the epoll interest set.
const TOK_LISTENER: u64 = 0;
/// Wakeup-eventfd token.
const TOK_WAKE: u64 = 1;
/// First connection token; tokens grow monotonically and are never
/// reused, so a stale timer or completion can never hit a new client.
const TOK_FIRST_CONN: u64 = 2;
/// Bytes read per `read` call on a ready socket.
const READ_CHUNK: usize = 16 * 1024;
/// Timing-wheel tick width.
const WHEEL_GRANULARITY_MS: u64 = 8;
/// Timing-wheel slot count (horizon: slots × granularity per turn).
const WHEEL_SLOTS: usize = 512;
/// Ready events drained per `epoll_wait`.
const EVENTS_PER_WAIT: usize = 256;
/// Longest HTTP header line accepted before it is consumed as-is.
const HTTP_HEADER_LINE_MAX: usize = 8 * 1024;
/// Most HTTP header lines drained before the response is sent anyway.
const HTTP_HEADER_LINES_MAX: usize = 64;

/// What the loop should do with a connection after an event.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Fate {
    Keep,
    Close,
}

#[derive(Clone, Copy)]
enum TimerKind {
    Read,
    Write,
}

/// A wheel entry: which connection, which deadline. Cancellation is
/// lazy — the connection's own deadline field is the truth, a fired
/// entry for a disarmed or refreshed deadline is a no-op or a re-arm.
#[derive(Clone, Copy)]
struct Timer {
    token: u64,
    kind: TimerKind,
}

/// Where a connection is in its request/reply cycle.
enum ConnPhase {
    /// Framing request lines out of `inbuf`.
    Reading,
    /// A run or sweep is on the pool; input polling is suspended so a
    /// pipelined flood backs up into the kernel socket buffer.
    InFlight,
    /// Draining HTTP headers after a `GET` line; replies and closes at
    /// the blank line.
    Http { path: String, lines: usize },
}

/// One enqueued reply awaiting its flush: when `total_flushed` crosses
/// `flush_at` the request is settled into the histograms and access
/// log, with the respond span covering enqueue-to-flush.
struct SettleMark {
    flush_at: u64,
    ctx: RequestCtx,
    respond_started: Instant,
}

/// Per-connection state machine. No thread, no kernel timeouts — just
/// buffers, deadlines, and a phase.
struct Conn {
    stream: TcpStream,
    fd: i32,
    /// Bytes received but not yet framed into lines.
    inbuf: Vec<u8>,
    /// Rendered replies not yet (fully) written; `out_sent` is the
    /// flush cursor into it.
    outbox: Vec<u8>,
    out_sent: usize,
    /// Lifetime byte counters; `SettleMark::flush_at` indexes into
    /// this stream, so partial flushes settle the right requests.
    total_enqueued: u64,
    total_flushed: u64,
    settling: VecDeque<SettleMark>,
    phase: ConnPhase,
    /// When the daemon started waiting for the current request line.
    accept_started: Instant,
    /// Absolute ms deadline for the next complete request line
    /// (`None` = disarmed, e.g. while a run is in flight).
    read_deadline: Option<u64>,
    /// Absolute ms deadline for flush progress (`None` while the
    /// outbox is empty).
    write_deadline: Option<u64>,
    /// Whether a wheel entry for this deadline kind is live (at most
    /// one each; refreshes only move the deadline field).
    read_entry_live: bool,
    write_entry_live: bool,
    /// Close as soon as the outbox drains (oversize line, HTTP reply,
    /// slow-client 408, backpressure trip).
    close_after_flush: bool,
    /// The peer half-closed its send side; pending replies still
    /// flush, then the connection closes.
    eof: bool,
    /// The epoll interest mask currently registered.
    interest: u32,
    /// This connection's contribution to the `serve_outbox_bytes`
    /// gauge (diff-updated).
    gauge_reported: u64,
}

impl Conn {
    fn new(stream: TcpStream, fd: i32) -> Self {
        Self {
            stream,
            fd,
            inbuf: Vec::new(),
            outbox: Vec::new(),
            out_sent: 0,
            total_enqueued: 0,
            total_flushed: 0,
            settling: VecDeque::new(),
            phase: ConnPhase::Reading,
            accept_started: Instant::now(),
            read_deadline: None,
            write_deadline: None,
            read_entry_live: false,
            write_entry_live: false,
            close_after_flush: false,
            eof: false,
            interest: EPOLLIN,
            gauge_reported: 0,
        }
    }

    fn out_pending(&self) -> usize {
        self.outbox.len() - self.out_sent
    }

    /// Nothing owed in either direction: safe to close on EOF.
    fn idle(&self) -> bool {
        !matches!(self.phase, ConnPhase::InFlight)
            && self.out_pending() == 0
            && self.settling.is_empty()
            && self.inbuf.is_empty()
    }
}

/// A run or sweep reply coming back from a settler thread.
struct Completion {
    token: u64,
    ctx: RequestCtx,
    reply: String,
}

/// A run accepted onto the pool, awaiting settlement off-loop.
struct DispatchedRun {
    key: u128,
    deadline_ms: u64,
    handle: JobHandle<Result<RunDone, RunFail>>,
    intent: Option<u64>,
    bench: String,
}

/// Where one request line goes after parsing.
enum Dispatch {
    /// Answered inline on the loop thread (quick ops, errors, hits).
    Reply(String),
    /// A run is on the pool; a settler thread will complete it.
    Run(Box<DispatchedRun>),
    /// A sweep drives the pool from its own thread.
    Sweep(Vec<RunSpec>),
}

/// The epoll event loop: all connection state lives here, on one
/// thread. Compute never runs on it.
struct EventLoop<'a> {
    state: &'a Arc<State>,
    epoll: Epoll,
    wake: Arc<WakeFd>,
    tx: mpsc::Sender<Completion>,
    conns: HashMap<u64, Conn>,
    wheel: TimerWheel<Timer>,
    next_token: u64,
    /// Runs and sweeps handed to settler threads whose completions
    /// have not come back yet; the drain waits for zero.
    inflight_dispatches: usize,
    /// Scratch buffer for wheel expiry.
    fired: Vec<Timer>,
}

fn run_event_loop(listener: &TcpListener, state: &Arc<State>) -> std::io::Result<()> {
    listener.set_nonblocking(true)?;
    let epoll = Epoll::new()?;
    let wake = Arc::new(WakeFd::new()?);
    epoll.add(listener.as_raw_fd(), EPOLLIN, TOK_LISTENER)?;
    epoll.add(wake.raw(), EPOLLIN, TOK_WAKE)?;
    let (tx, rx) = mpsc::channel::<Completion>();
    let mut el = EventLoop {
        state,
        epoll,
        wake,
        tx,
        conns: HashMap::new(),
        wheel: TimerWheel::new(WHEEL_GRANULARITY_MS, WHEEL_SLOTS),
        next_token: TOK_FIRST_CONN,
        inflight_dispatches: 0,
        fired: Vec::new(),
    };
    let mut events = vec![EpollEvent::default(); EVENTS_PER_WAIT];
    let mut listening = true;
    loop {
        if el.state.draining() {
            if listening {
                el.epoll.del(listener.as_raw_fd());
                listening = false;
            }
            if el.conns.is_empty() && el.inflight_dispatches == 0 {
                break;
            }
        }
        let now = el.state.now_ms();
        let timeout = match el.wheel.next_timeout_ms(now) {
            Some(ms) => i32::try_from(ms.min(3_600_000)).unwrap_or(3_600_000),
            // Nothing armed: sleep until an event. While draining, tick
            // periodically as cheap insurance against a missed wakeup.
            None if el.state.draining() => 100,
            None => -1,
        };
        let n = el.epoll.wait(&mut events, timeout)?;
        if n > 0 {
            lock(&el.state.metrics).counter_add("serve_epoll_wakeups_total", 1);
        }
        for ev in &events[..n] {
            let token = ev.data;
            let mask = ev.events;
            match token {
                TOK_LISTENER => {
                    if listening {
                        el.accept_ready(listener);
                    }
                }
                TOK_WAKE => el.wake.drain(),
                _ => el.on_conn_event(token, mask),
            }
        }
        while let Ok(done) = rx.try_recv() {
            el.on_completion(done);
        }
        el.on_timers();
    }
    Ok(())
}

impl EventLoop<'_> {
    /// Accepts until the backlog is dry. Transient accept failures
    /// (aborted handshakes, fd pressure) lose at most that connection.
    fn accept_ready(&mut self, listener: &TcpListener) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => self.admit(stream),
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("powerchop-serve: accept error: {e}");
                    return;
                }
            }
        }
    }

    /// Admits one accepted socket through the max-connections gate and
    /// into the interest set, or sheds it with one typed 503 line.
    fn admit(&mut self, stream: TcpStream) {
        if self.state.draining() {
            return;
        }
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let admitted =
            self.state.connections.fetch_add(1, Ordering::SeqCst) < self.state.max_connections;
        if !admitted {
            self.state.connections.fetch_sub(1, Ordering::SeqCst);
            self.state.count("serve_conn_rejected_total");
            let mut stream = stream;
            let e = ReqError::overloaded(self.state.max_connections);
            // Even a shed connection gets a trace id: the 503 line is
            // the only artifact the client has to report. Best effort —
            // the freshly-accepted socket's send buffer is empty, so
            // one line fits without blocking.
            let _ = writeln!(stream, "{}", error_reply(&e, self.state.next_trace()));
            return;
        }
        let fd = stream.as_raw_fd();
        let token = self.next_token;
        self.next_token += 1;
        if self.epoll.add(fd, EPOLLIN, token).is_err() {
            self.state.connections.fetch_sub(1, Ordering::SeqCst);
            return;
        }
        self.state.count("serve_connections_total");
        let mut conn = Conn::new(stream, fd);
        self.arm_read(token, &mut conn);
        self.conns.insert(token, conn);
    }

    /// One readiness report for a connection: flush first (freeing
    /// outbox space), then read, then run the state machine.
    fn on_conn_event(&mut self, token: u64, mask: u32) {
        let Some(mut conn) = self.conns.remove(&token) else {
            return;
        };
        let mut fate = Fate::Keep;
        if mask & EPOLLERR != 0 {
            fate = Fate::Close;
        }
        if fate == Fate::Keep && mask & EPOLLOUT != 0 {
            fate = self.try_flush(token, &mut conn);
        }
        if fate == Fate::Keep && mask & (EPOLLIN | EPOLLHUP) != 0 {
            fate = self.fill_inbuf(&mut conn);
        }
        self.finish(token, conn, fate);
    }

    /// Reads everything currently available. `WouldBlock` here means
    /// exactly "no more data yet" — never a timeout; timeouts are the
    /// wheel's verdict alone.
    fn fill_inbuf(&mut self, conn: &mut Conn) -> Fate {
        let mut chunk = [0u8; READ_CHUNK];
        loop {
            // Bounded: once a full oversized line could be framed, stop
            // reading and let the framer reject it.
            if conn.inbuf.len() > self.state.max_request_bytes + READ_CHUNK {
                return Fate::Keep;
            }
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.eof = true;
                    return Fate::Keep;
                }
                Ok(n) => {
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    // Progress refreshes the read deadline in place; the
                    // wheel entry re-arms itself lazily on expiry.
                    if conn.read_deadline.is_some() && self.state.read_timeout_ms > 0 {
                        conn.read_deadline = Some(
                            self.state
                                .now_ms()
                                .saturating_add(self.state.read_timeout_ms),
                        );
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return Fate::Keep,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => {
                    // A reset only loses that client's connection; the
                    // daemon itself never goes down with it.
                    eprintln!("powerchop-serve: connection error: {e}");
                    return Fate::Close;
                }
            }
        }
    }

    /// Runs the state machine after any event: frame and process lines,
    /// flush output, then close or re-register interest.
    fn finish(&mut self, token: u64, mut conn: Conn, fate: Fate) {
        let fate = if fate == Fate::Close {
            Fate::Close
        } else {
            self.drain_lines(token, &mut conn);
            self.try_flush(token, &mut conn)
        };
        if fate == Fate::Close || (conn.eof && conn.idle()) {
            self.close_conn(conn);
            return;
        }
        self.sync_interest(token, &mut conn);
        self.conns.insert(token, conn);
    }

    /// Frames complete lines out of `inbuf` and processes each, until
    /// input is exhausted or the connection leaves the reading phase.
    fn drain_lines(&mut self, token: u64, conn: &mut Conn) {
        loop {
            if conn.close_after_flush || matches!(conn.phase, ConnPhase::InFlight) {
                return;
            }
            if matches!(conn.phase, ConnPhase::Http { .. }) {
                if !self.drain_http_line(conn) {
                    return;
                }
                continue;
            }
            match conn.inbuf.iter().position(|&b| b == b'\n') {
                Some(i) => {
                    let line: Vec<u8> = conn.inbuf.drain(..=i).collect();
                    let content = &line[..line.len() - 1];
                    if content.len() > self.state.max_request_bytes {
                        self.reject_oversize(conn);
                    } else {
                        self.process_request_line(token, conn, content);
                    }
                }
                None => {
                    if conn.inbuf.len() > self.state.max_request_bytes {
                        self.reject_oversize(conn);
                        continue;
                    }
                    // The peer finished sending with an unterminated
                    // final line: process it as the last request.
                    if conn.eof && !conn.inbuf.is_empty() {
                        let line = std::mem::take(&mut conn.inbuf);
                        self.process_request_line(token, conn, &line);
                        continue;
                    }
                    return;
                }
            }
        }
    }

    /// Consumes one buffered HTTP header line; on the blank terminator
    /// (or the header bounds) enqueues the response and flags the
    /// close. Returns whether the drain loop should keep going.
    fn drain_http_line(&mut self, conn: &mut Conn) -> bool {
        let newline = conn.inbuf.iter().position(|&b| b == b'\n');
        let ConnPhase::Http { lines, .. } = &mut conn.phase else {
            return false;
        };
        let done = match newline {
            Some(i) => {
                let blank = i == 0 || (i == 1 && conn.inbuf[0] == b'\r');
                conn.inbuf.drain(..=i);
                *lines += 1;
                blank || *lines >= HTTP_HEADER_LINES_MAX
            }
            // A header line past the bound is consumed as one line,
            // mirroring the old bounded reader.
            None if conn.inbuf.len() >= HTTP_HEADER_LINE_MAX => {
                conn.inbuf.clear();
                *lines += 1;
                *lines >= HTTP_HEADER_LINES_MAX
            }
            // Peer finished sending without a blank line: answer what
            // we have.
            None if conn.eof => true,
            None => return false,
        };
        if !done {
            return true;
        }
        let phase = std::mem::replace(&mut conn.phase, ConnPhase::Reading);
        let ConnPhase::Http { path, .. } = phase else {
            return false;
        };
        let response = http_response(self.state, &path);
        conn.inbuf.clear();
        conn.read_deadline = None;
        conn.close_after_flush = true;
        self.enqueue_bytes(conn, response.as_bytes(), None);
        false
    }

    /// One framed request line: count it, classify it (HTTP vs JSON),
    /// mint the request context, and dispatch.
    fn process_request_line(&mut self, token: u64, conn: &mut Conn, content: &[u8]) {
        self.state.count("serve_requests_total");
        // An HTTP GET on the JSON port serves /metrics, so curl and
        // Prometheus scrapers work without speaking the protocol.
        // HTTP requests are not protocol requests: no trace, no record.
        if content.starts_with(b"GET ") {
            self.state.count("serve_http_requests_total");
            let path = content
                .split(|&c| c == b' ')
                .nth(1)
                .and_then(|p| std::str::from_utf8(p).ok())
                .unwrap_or("")
                .to_owned();
            conn.phase = ConnPhase::Http { path, lines: 0 };
            return;
        }
        // The request exists from here on: mint its trace id, start
        // its span ledger, and claim the in-flight gauge. Every exit
        // settles all three when its reply flushes (or the conn dies).
        let mut ctx = RequestCtx::new(self.state.next_trace());
        self.state.inflight_requests.fetch_add(1, Ordering::SeqCst);
        ctx.ledger
            .record(Phase::Accept, ns_since(conn.accept_started));
        conn.accept_started = Instant::now();
        let parse_started = Instant::now();
        let Ok(text) = std::str::from_utf8(content) else {
            ctx.ledger.record(Phase::Parse, ns_since(parse_started));
            self.state.count("serve_errors_total");
            let e = ReqError::bad_request("request line is not valid UTF-8");
            ctx.status = e.code;
            let reply = error_reply(&e, ctx.trace);
            self.enqueue_line(conn, &reply, Some(ctx));
            return; // the line boundary was still found; resync is safe
        };
        let line = text.trim();
        ctx.ledger.record(Phase::Parse, ns_since(parse_started));
        if line.is_empty() {
            self.state.count("serve_errors_total");
            let e = ReqError::bad_request("empty request line");
            ctx.status = e.code;
            let reply = error_reply(&e, ctx.trace);
            self.enqueue_line(conn, &reply, Some(ctx));
            return;
        }
        match dispatch_line(self.state, line, &mut ctx) {
            Dispatch::Reply(reply) => self.enqueue_line(conn, &reply, Some(ctx)),
            Dispatch::Run(run) => {
                conn.phase = ConnPhase::InFlight;
                conn.read_deadline = None;
                self.inflight_dispatches += 1;
                spawn_run_settler(
                    self.state,
                    run,
                    ctx,
                    token,
                    self.tx.clone(),
                    Arc::clone(&self.wake),
                );
            }
            Dispatch::Sweep(specs) => {
                conn.phase = ConnPhase::InFlight;
                conn.read_deadline = None;
                self.inflight_dispatches += 1;
                spawn_sweep_driver(
                    self.state,
                    specs,
                    ctx,
                    token,
                    self.tx.clone(),
                    Arc::clone(&self.wake),
                );
            }
        }
    }

    /// A request line (or line fragment) over the size limit: one typed
    /// 400, then close — with no newline inside the limit there is no
    /// way to find the next request boundary.
    fn reject_oversize(&mut self, conn: &mut Conn) {
        self.state.count("serve_requests_total");
        let mut ctx = RequestCtx::new(self.state.next_trace());
        self.state.inflight_requests.fetch_add(1, Ordering::SeqCst);
        ctx.ledger
            .record(Phase::Accept, ns_since(conn.accept_started));
        conn.accept_started = Instant::now();
        self.state.count("serve_errors_total");
        let e = ReqError::bad_request(format!(
            "request line exceeds {} bytes",
            self.state.max_request_bytes
        ));
        ctx.status = e.code;
        let reply = error_reply(&e, ctx.trace);
        conn.inbuf.clear();
        conn.read_deadline = None;
        conn.close_after_flush = true;
        self.enqueue_line(conn, &reply, Some(ctx));
    }

    /// Appends one newline-terminated reply to the outbox.
    fn enqueue_line(&mut self, conn: &mut Conn, reply: &str, ctx: Option<RequestCtx>) {
        let mut bytes = Vec::with_capacity(reply.len() + 1);
        bytes.extend_from_slice(reply.as_bytes());
        bytes.push(b'\n');
        self.enqueue_bytes(conn, &bytes, ctx);
    }

    /// Appends raw bytes to the outbox, enforcing the backpressure cap.
    /// A reply into an empty outbox always fits (the memory bound is
    /// `max(cap, one reply)`); growing an already-backlogged outbox
    /// past the cap trips the slow-consumer policy instead: the reply
    /// is replaced by a short typed 408 and the connection closes once
    /// the backlog drains. Queued lines are never truncated.
    fn enqueue_bytes(&mut self, conn: &mut Conn, bytes: &[u8], ctx: Option<RequestCtx>) {
        let pending = conn.out_pending();
        if pending > 0 && pending + bytes.len() > self.state.max_outbox_bytes {
            self.state.count("serve_backpressure_disconnects_total");
            conn.read_deadline = None;
            conn.close_after_flush = true;
            if let Some(mut ctx) = ctx {
                ctx.status = 408;
                let err = error_reply(
                    &ReqError::backpressure(self.state.max_outbox_bytes),
                    ctx.trace,
                );
                conn.outbox.extend_from_slice(err.as_bytes());
                conn.outbox.push(b'\n');
                conn.total_enqueued += (err.len() + 1) as u64;
                conn.settling.push_back(SettleMark {
                    flush_at: conn.total_enqueued,
                    ctx,
                    respond_started: Instant::now(),
                });
            }
            self.report_outbox(conn);
            return;
        }
        conn.outbox.extend_from_slice(bytes);
        conn.total_enqueued += bytes.len() as u64;
        if let Some(ctx) = ctx {
            conn.settling.push_back(SettleMark {
                flush_at: conn.total_enqueued,
                ctx,
                respond_started: Instant::now(),
            });
        }
        self.report_outbox(conn);
    }

    /// Writes as much of the outbox as the socket accepts. Partial
    /// writes keep their cursor — a reply line is never truncated and
    /// two replies can never interleave, because all output flows
    /// through this single per-connection buffer in enqueue order.
    fn try_flush(&mut self, token: u64, conn: &mut Conn) -> Fate {
        while conn.out_sent < conn.outbox.len() {
            match conn.stream.write(&conn.outbox[conn.out_sent..]) {
                Ok(0) => return Fate::Close,
                Ok(n) => {
                    conn.out_sent += n;
                    conn.total_flushed += n as u64;
                    // Flush progress refreshes the write deadline.
                    if conn.write_deadline.is_some() && self.state.write_timeout_ms > 0 {
                        conn.write_deadline = Some(
                            self.state
                                .now_ms()
                                .saturating_add(self.state.write_timeout_ms),
                        );
                    }
                    self.pop_settled(conn);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => {
                    // The kernel buffer is full: hand the rest to
                    // EPOLLOUT and arm the write-stall deadline.
                    self.arm_write(token, conn);
                    self.report_outbox(conn);
                    return Fate::Keep;
                }
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return Fate::Close,
            }
        }
        conn.outbox.clear();
        conn.out_sent = 0;
        conn.write_deadline = None;
        self.pop_settled(conn);
        self.report_outbox(conn);
        if conn.close_after_flush {
            return Fate::Close;
        }
        Fate::Keep
    }

    /// Settles every request whose reply has fully flushed: records the
    /// respond span and folds the request into histograms + access log.
    fn pop_settled(&mut self, conn: &mut Conn) {
        while conn
            .settling
            .front()
            .is_some_and(|m| m.flush_at <= conn.total_flushed)
        {
            if let Some(mut mark) = conn.settling.pop_front() {
                mark.ctx
                    .ledger
                    .record(Phase::Respond, ns_since(mark.respond_started));
                self.state.observe_request(&mark.ctx);
            }
        }
    }

    /// Arms (or re-arms) the read deadline for the next request line.
    fn arm_read(&mut self, token: u64, conn: &mut Conn) {
        let ms = self.state.read_timeout_ms;
        if ms == 0 {
            conn.read_deadline = None;
            return;
        }
        let now = self.state.now_ms();
        conn.read_deadline = Some(now.saturating_add(ms));
        if !conn.read_entry_live {
            conn.read_entry_live = true;
            self.wheel.insert(
                now,
                ms,
                Timer {
                    token,
                    kind: TimerKind::Read,
                },
            );
        }
    }

    /// Arms the write-stall deadline while output is pending.
    fn arm_write(&mut self, token: u64, conn: &mut Conn) {
        let ms = self.state.write_timeout_ms;
        if ms == 0 {
            conn.write_deadline = None;
            return;
        }
        let now = self.state.now_ms();
        if conn.write_deadline.is_none() {
            conn.write_deadline = Some(now.saturating_add(ms));
        }
        if !conn.write_entry_live {
            conn.write_entry_live = true;
            self.wheel.insert(
                now,
                ms,
                Timer {
                    token,
                    kind: TimerKind::Write,
                },
            );
        }
    }

    /// Expires due wheel entries. Refreshed deadlines re-arm for the
    /// remainder; disarmed ones are no-ops; genuinely expired ones are
    /// the *only* source of timeout verdicts in the daemon.
    fn on_timers(&mut self) {
        let now = self.state.now_ms();
        let mut fired = std::mem::take(&mut self.fired);
        self.wheel.expire(now, &mut fired);
        for timer in fired.drain(..) {
            let Some(mut conn) = self.conns.remove(&timer.token) else {
                continue;
            };
            let fate = match timer.kind {
                TimerKind::Read => {
                    conn.read_entry_live = false;
                    match conn.read_deadline {
                        None => Fate::Keep,
                        Some(d) if now < d => {
                            // Bytes arrived since arming: re-arm for
                            // the refreshed remainder.
                            conn.read_entry_live = true;
                            self.wheel.insert(now, d - now, timer);
                            Fate::Keep
                        }
                        Some(_) => {
                            // The slow-loris case: no complete request
                            // line within the deadline. One typed 408
                            // (best effort), then close.
                            self.state.count("serve_slow_client_disconnects_total");
                            let err = ReqError::slow_client(self.state.read_timeout_ms);
                            let reply = error_reply(&err, self.state.next_trace());
                            conn.read_deadline = None;
                            conn.close_after_flush = true;
                            self.enqueue_line(&mut conn, &reply, None);
                            self.try_flush(timer.token, &mut conn)
                        }
                    }
                }
                TimerKind::Write => {
                    conn.write_entry_live = false;
                    match conn.write_deadline {
                        None => Fate::Keep,
                        Some(d) if now < d => {
                            conn.write_entry_live = true;
                            self.wheel.insert(now, d - now, timer);
                            Fate::Keep
                        }
                        Some(_) => {
                            if conn.out_pending() > 0 {
                                // No flush progress within the write
                                // deadline: the client cannot absorb
                                // its reply. Shed it.
                                self.state.count("serve_slow_client_disconnects_total");
                                Fate::Close
                            } else {
                                conn.write_deadline = None;
                                Fate::Keep
                            }
                        }
                    }
                }
            };
            self.finish(timer.token, conn, fate);
        }
        self.fired = fired;
    }

    /// A settler finished: hand its reply to the connection (or settle
    /// the request anyway if the client vanished mid-run — the work
    /// still landed in the cache and journal).
    fn on_completion(&mut self, done: Completion) {
        self.inflight_dispatches -= 1;
        let Some(mut conn) = self.conns.remove(&done.token) else {
            self.state.observe_request(&done.ctx);
            return;
        };
        conn.phase = ConnPhase::Reading;
        conn.accept_started = Instant::now();
        self.arm_read(done.token, &mut conn);
        self.enqueue_line(&mut conn, &done.reply, Some(done.ctx));
        self.finish(done.token, conn, Fate::Keep);
    }

    /// Registers the interest mask the connection's state implies:
    /// input only while framing, output only while the outbox has
    /// unflushed bytes.
    fn sync_interest(&mut self, token: u64, conn: &mut Conn) {
        let mut want = 0u32;
        let reading = !matches!(conn.phase, ConnPhase::InFlight)
            && !conn.close_after_flush
            && !conn.eof
            && conn.inbuf.len() <= self.state.max_request_bytes + READ_CHUNK;
        if reading {
            want |= EPOLLIN;
        }
        if conn.out_pending() > 0 {
            want |= EPOLLOUT;
        }
        if want != conn.interest && self.epoll.modify(conn.fd, want, token).is_ok() {
            conn.interest = want;
        }
    }

    /// Tears a connection down: settles every still-queued request,
    /// returns its gauge contribution, and releases the gate slot.
    fn close_conn(&mut self, mut conn: Conn) {
        while let Some(mut mark) = conn.settling.pop_front() {
            mark.ctx
                .ledger
                .record(Phase::Respond, ns_since(mark.respond_started));
            self.state.observe_request(&mark.ctx);
        }
        if conn.gauge_reported > 0 {
            self.state
                .outbox_bytes
                .fetch_sub(conn.gauge_reported, Ordering::SeqCst);
            conn.gauge_reported = 0;
        }
        self.epoll.del(conn.fd);
        self.state.connections.fetch_sub(1, Ordering::SeqCst);
        // Dropping the stream closes the fd (and with it any stale
        // epoll registration).
    }

    /// Diff-updates this connection's share of `serve_outbox_bytes`.
    fn report_outbox(&self, conn: &mut Conn) {
        let pending = conn.out_pending() as u64;
        if pending > conn.gauge_reported {
            self.state
                .outbox_bytes
                .fetch_add(pending - conn.gauge_reported, Ordering::SeqCst);
        } else {
            self.state
                .outbox_bytes
                .fetch_sub(conn.gauge_reported - pending, Ordering::SeqCst);
        }
        conn.gauge_reported = pending;
    }
}

/// Routes one request line to its handler, recording the parse span
/// and classifying the request for the access log as it goes. Quick
/// ops answer inline; runs and sweeps dispatch off-loop.
fn dispatch_line(state: &Arc<State>, line: &str, ctx: &mut RequestCtx) -> Dispatch {
    let parse_started = Instant::now();
    let parsed = parse_request(line, &state.limits);
    ctx.ledger.record(Phase::Parse, ns_since(parse_started));
    match parsed {
        Err(e) => Dispatch::Reply(refuse(state, &e, ctx)),
        Ok(Request::Status) => {
            ctx.op = "status";
            Dispatch::Reply(status_reply(state, ctx.trace))
        }
        Ok(Request::Health) => {
            ctx.op = "health";
            Dispatch::Reply(health_reply(state, ctx.trace))
        }
        Ok(Request::Metrics) => {
            ctx.op = "metrics";
            Dispatch::Reply(metrics_reply(state, ctx.trace))
        }
        Ok(Request::Shutdown) => {
            ctx.op = "shutdown";
            Dispatch::Reply(shutdown_reply(state, ctx.trace))
        }
        Ok(Request::Run(spec)) => {
            ctx.op = "run";
            ctx.bench = Some(spec.bench.clone());
            match start_run(state, &spec, ctx) {
                Ok(RunStart::Cached(report)) => {
                    ctx.cached = true;
                    Dispatch::Reply(run_reply(ctx.trace, true, &report))
                }
                Ok(RunStart::Dispatched(run)) => Dispatch::Run(run),
                Err(e) => Dispatch::Reply(refuse(state, &e, ctx)),
            }
        }
        Ok(Request::Sweep(specs)) => {
            ctx.op = "sweep";
            Dispatch::Sweep(specs)
        }
    }
}

/// Counts a refusal under the right metric and renders the error reply
/// (the trace id rides along so even a 408/429/503 is attributable).
fn refuse(state: &Arc<State>, e: &ReqError, ctx: &mut RequestCtx) -> String {
    ctx.status = e.code;
    state.count(match e.code {
        429 => "serve_busy_total",
        408 => "serve_deadline_expired_total",
        _ => "serve_errors_total",
    });
    error_reply(e, ctx.trace)
}

/// How the front half of a `run` dispatch ended.
enum RunStart {
    /// Served bit-identically from the cache; no pool involved.
    Cached(String),
    /// Accepted onto the pool; a settler thread owns it now.
    Dispatched(Box<DispatchedRun>),
}

/// The `run` op's front half, on the loop thread: draining check,
/// cache lookup, breaker admission, intent journaling, bounded
/// submission. Refusals (429/503) are immediate; an accepted run
/// comes back as [`RunStart::Dispatched`] for off-loop settlement.
fn start_run(
    state: &Arc<State>,
    spec: &RunSpec,
    ctx: &mut RequestCtx,
) -> Result<RunStart, ReqError> {
    if state.draining() {
        return Err(ReqError::draining());
    }
    let (program, cfg, key) = prepare(spec)?;
    let cache_started = Instant::now();
    let hit = state.cache.get(key);
    ctx.ledger.record(Phase::Cache, ns_since(cache_started));
    if let Some(hit) = hit {
        state.count("serve_cache_hits_total");
        return Ok(RunStart::Cached(hit));
    }
    state.breaker_admit()?;
    state.count("serve_cache_misses_total");
    let deadline_ms = spec.deadline_ms;
    // Journal the accepted intent before dispatch. Chaos runs are never
    // journaled: a deliberately-killed worker is a drill, not work the
    // daemon owes anyone after a restart. The intent carries the trace
    // id, so a crash-recovery resume stays attributable to the request
    // that created the obligation.
    let journal_started = Instant::now();
    let plan = match &state.durable {
        Some(d) if !spec.chaos_panic => {
            let id = d.next_intent_id();
            d.journal_intent(id, ctx.trace, std::slice::from_ref(spec));
            Some(SpillPlan {
                durability: Arc::clone(d),
                id,
                spec: spec.clone(),
                resume_from: None,
                recovery: false,
            })
        }
        _ => None,
    };
    ctx.ledger.record(Phase::Journal, ns_since(journal_started));
    let intent = plan.as_ref().map(|p| p.id);
    match state.pool.submit(run_job(
        program,
        spec.manager,
        cfg,
        deadline_ms,
        spec.chaos_panic,
        plan,
        state.traced(),
    )) {
        Ok(handle) => Ok(RunStart::Dispatched(Box::new(DispatchedRun {
            key,
            deadline_ms,
            handle,
            intent,
            bench: spec.bench.clone(),
        }))),
        Err(e) => {
            // Shed before dispatch: retire the intent now — the client
            // gets its typed refusal and the daemon owes nothing.
            let journal_started = Instant::now();
            if let (Some(d), Some(id)) = (&state.durable, intent) {
                d.journal_done(id);
                d.remove_spills(id, [spec.bench.as_str()]);
                ctx.ledger.record(Phase::Journal, ns_since(journal_started));
            }
            Err(submit_error(e))
        }
    }
}

/// Waits a dispatched run out on its own small thread, retires its
/// journal intent, and hands the rendered reply back to the event loop
/// over the completion channel + eventfd wakeup.
fn spawn_run_settler(
    state: &Arc<State>,
    run: Box<DispatchedRun>,
    mut ctx: RequestCtx,
    token: u64,
    tx: mpsc::Sender<Completion>,
    wake: Arc<WakeFd>,
) {
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        let DispatchedRun {
            key,
            deadline_ms,
            handle,
            intent,
            bench,
        } = *run;
        let outcome = settle(&state, key, deadline_ms, handle, Some(&mut ctx));
        // Retire the intent however the run ended: the client gets its
        // reply (success or typed error), so the daemon owes nothing
        // after this.
        let journal_started = Instant::now();
        if let (Some(d), Some(id)) = (&state.durable, intent) {
            d.journal_done(id);
            d.remove_spills(id, [bench.as_str()]);
            ctx.ledger.record(Phase::Journal, ns_since(journal_started));
        }
        let reply = match outcome {
            Ok(json) => run_reply(ctx.trace, false, &json),
            Err(e) => refuse(&state, &e, &mut ctx),
        };
        // Send-then-ring: the message is in the channel before the
        // eventfd wakes the loop, so the drain always finds it.
        let _ = tx.send(Completion { token, ctx, reply });
        wake.ring();
    });
}

/// Drives a whole sweep from its own thread (the sweep path blocks on
/// seeded-jitter Busy retries and roster-order settlement, neither of
/// which may run on the event loop).
fn spawn_sweep_driver(
    state: &Arc<State>,
    specs: Vec<RunSpec>,
    mut ctx: RequestCtx,
    token: u64,
    tx: mpsc::Sender<Completion>,
    wake: Arc<WakeFd>,
) {
    let state = Arc::clone(state);
    std::thread::spawn(move || {
        let reply = sweep(&state, specs, &mut ctx);
        let _ = tx.send(Completion { token, ctx, reply });
        wake.ring();
    });
}

/// How one dispatched run can fail.
enum RunFail {
    /// The deadline watchdog tripped.
    Deadline,
    /// The simulator returned a typed error.
    Sim(String),
}

/// A completed run plus its span attribution: how long it sat in the
/// queue, how long it computed, and how many flight-recorder events
/// its tracer captured (zero when untraced).
struct RunDone {
    report: RunReport,
    queue_ns: u64,
    compute_ns: u64,
    trace_events: u64,
}

/// Runs one simulation under a deadline watchdog, mirroring the CLI
/// `supervise` machinery: the watchdog trips a cancel flag once the
/// deadline passes and is released early through the channel when the
/// run ends; the run polls the flag between step chunks. A zero
/// deadline is already expired, so it trips here rather than racing the
/// watchdog thread's first schedule.
///
/// The optional [`SpillPlan`] adds the durability hooks: it restores
/// the simulation from its spill checkpoint (resume path) and spills a
/// fresh snapshot every `spill_every` retired instructions, journaling
/// each spill *after* its file is durably in place — the journal never
/// promises a checkpoint that is not on disk.
/// With `traced` set an enabled [`Tracer`] is attached to the run via
/// [`Simulation::attach_tracer`], so the flight recorder captures the
/// run's phase spans; tracing never changes simulated state, so traced
/// and untraced runs produce bit-identical reports.
fn run_with_deadline_plan(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
    deadline_ms: u64,
    plan: Option<&SpillPlan>,
    traced: bool,
) -> Result<(RunReport, u64), RunFail> {
    let cancel = Arc::new(AtomicBool::new(deadline_ms == 0));
    let watchdog_flag = Arc::clone(&cancel);
    let (release, released) = mpsc::channel::<()>();
    let deadline = Duration::from_millis(deadline_ms);
    let watchdog = std::thread::spawn(move || {
        if released.recv_timeout(deadline).is_err() {
            watchdog_flag.store(true, Ordering::Relaxed);
        }
    });
    let result = (|| {
        let mut sim = restore_or_new(program, kind, cfg, plan)?;
        if traced {
            sim.attach_tracer(Tracer::enabled(TelemetryConfig {
                ring_capacity: 256,
                sample_every_cycles: 0,
            }));
        }
        let mut last_spill = sim.retired();
        while !sim.is_done() {
            if cancel.load(Ordering::Relaxed) {
                return Err(RunFail::Deadline);
            }
            sim.step_chunk(STEP_CHUNK)
                .map_err(|e| RunFail::Sim(e.to_string()))?;
            if let Some(plan) = plan {
                if sim.retired().saturating_sub(last_spill) >= plan.durability.spill_every {
                    spill_now(&mut sim, plan);
                    last_spill = sim.retired();
                }
            }
        }
        let (report, tracer) = sim.into_report_with_telemetry();
        let events = tracer
            .recorder()
            .map(|r| r.events().len() as u64)
            .unwrap_or(0);
        Ok((report, events))
    })();
    let _ = release.send(());
    let _ = watchdog.join();
    result
}

/// Builds the simulation for a planned run: from its spill checkpoint
/// when resuming (tracking the recovered-vs-redone instruction ledger),
/// fresh otherwise. A lost or unreadable spill degrades to a fresh run
/// — with the re-done instructions honestly counted — never a panic.
fn restore_or_new<'p>(
    program: &'p Program,
    kind: ManagerKind,
    cfg: &RunConfig,
    plan: Option<&SpillPlan>,
) -> Result<Simulation<'p>, RunFail> {
    if let Some(plan) = plan {
        if plan.recovery {
            let promised = plan.resume_from.unwrap_or(0);
            let restored = std::fs::read(plan.path())
                .ok()
                .and_then(|bytes| Simulation::restore(program, kind, cfg, &bytes).ok());
            let ledger = &plan.durability.recovery;
            return match restored {
                Some(sim) => {
                    ledger
                        .resumed_instructions
                        .fetch_add(sim.retired(), Ordering::SeqCst);
                    ledger
                        .redone_instructions
                        .fetch_add(promised.saturating_sub(sim.retired()), Ordering::SeqCst);
                    Ok(sim)
                }
                None => {
                    ledger
                        .redone_instructions
                        .fetch_add(promised, Ordering::SeqCst);
                    Simulation::new(program, kind, cfg).map_err(|e| RunFail::Sim(e.to_string()))
                }
            };
        }
    }
    Simulation::new(program, kind, cfg).map_err(|e| RunFail::Sim(e.to_string()))
}

/// Spills one checkpoint: atomic file write first, journal marker
/// second. A failed write skips the marker — better to re-do a chunk on
/// the next boot than to journal a checkpoint that does not exist.
fn spill_now(sim: &mut Simulation<'_>, plan: &SpillPlan) {
    let bytes = sim.snapshot(&plan.meta());
    match powerchop_durable::write_atomic(&plan.path(), &bytes) {
        Ok(()) => plan
            .durability
            .journal_spill(plan.id, &plan.spec.bench, sim.retired()),
        Err(e) => eprintln!("powerchop-serve: checkpoint spill failed: {e}"),
    }
}

/// The program + configuration a validated spec describes, and the
/// cache key that identifies the pair.
fn prepare(spec: &RunSpec) -> Result<(Program, RunConfig, u128), ReqError> {
    // The spec was validated at parse time; a vanished benchmark here
    // would be a roster bug, reported as 500 rather than a panic.
    let b = powerchop_workloads::by_name(&spec.bench)
        .ok_or_else(|| ReqError::internal(format!("benchmark {:?} vanished", spec.bench)))?;
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = spec.budget;
    cfg.faults = fault_config(spec.seed, spec.storm);
    let program = b.program(Scale(spec.scale));
    let key = run_key(
        program.fingerprint(),
        config_fingerprint(spec.manager, &cfg),
    );
    Ok((program, cfg, key))
}

/// Waits out a dispatched run and folds the outcome into the cache and
/// counters. The returned report string is exactly what the cache will
/// replay for the next identical request.
fn settle(
    state: &Arc<State>,
    key: u128,
    deadline_ms: u64,
    handle: JobHandle<Result<RunDone, RunFail>>,
    mut ctx: Option<&mut RequestCtx>,
) -> Result<String, ReqError> {
    match handle.wait() {
        Err(panic) => {
            state.count("serve_panics_total");
            state.breaker_observe(false);
            Err(ReqError::internal(format!(
                "run panicked: {}",
                panic.message
            )))
        }
        // A deadline expiry is the *client's* budget running out, not
        // evidence the run path is sick; it does not feed the breaker.
        Ok(Err(RunFail::Deadline)) => Err(ReqError::deadline(deadline_ms)),
        Ok(Err(RunFail::Sim(message))) => {
            state.breaker_observe(false);
            Err(ReqError::internal(message))
        }
        Ok(Ok(done)) => {
            state.breaker_observe(true);
            // Attribute the worker-side spans back to the request: time
            // queued, time computing (plus the simulated cycles behind
            // it), and whatever the attached tracer captured.
            if let Some(ctx) = ctx.as_deref_mut() {
                ctx.ledger.record(Phase::Queue, done.queue_ns);
                ctx.ledger.record(Phase::Compute, done.compute_ns);
                ctx.ledger.record_cycles(Phase::Compute, done.report.cycles);
                ctx.compute_cycles = ctx.compute_cycles.saturating_add(done.report.cycles);
                ctx.trace_events = ctx.trace_events.saturating_add(done.trace_events);
            }
            let report = done.report;
            // Fold this run's JIT activity into the daemon-wide counters.
            // Deliberately *not* part of the reply JSON: replies stay
            // byte-identical whether the JIT ran or not.
            if let Some(jit) = &report.jit {
                let mut m = lock(&state.metrics);
                m.counter_add("jit_translations_compiled", jit.stats.translations_compiled);
                m.counter_add("jit_exec_hits", jit.stats.exec_hits);
                m.counter_add("jit_fallbacks", jit.stats.fallbacks);
                m.counter_add("jit_code_bytes", jit.stats.code_bytes);
            }
            let json = report_to_json(&report);
            let cache_started = Instant::now();
            let cacheable = state.cache.put(key, json.clone());
            // Write-through persistence: the reply a restarted daemon
            // replays is byte-for-byte the reply cached here.
            if cacheable {
                if let Some(d) = &state.durable {
                    d.record_cache_put(key, &json);
                }
            }
            if let Some(ctx) = ctx {
                ctx.ledger.record(Phase::Cache, ns_since(cache_started));
            }
            state.count("serve_runs_total");
            Ok(json)
        }
    }
}

/// Maps a pool refusal onto its typed reply.
fn submit_error(e: SubmitError) -> ReqError {
    match e {
        SubmitError::Busy { queue_depth } => ReqError::busy(queue_depth),
        SubmitError::Closed => ReqError::draining(),
        SubmitError::Unavailable => ReqError::unavailable(),
    }
}

/// Builds the pool job for one run: charge the queue wait against the
/// request's [`DeadlineBudget`] (so waiting cannot buy extra compute
/// time), then run under a watchdog for whatever remains. A
/// `chaos_panic` spec steps one chunk and then kills its worker with
/// the [`KillWorker`] sentinel — the supervision path, on demand.
fn run_job(
    program: Program,
    kind: ManagerKind,
    cfg: RunConfig,
    deadline_ms: u64,
    chaos_panic: bool,
    plan: Option<SpillPlan>,
    traced: bool,
) -> impl FnOnce() -> Result<RunDone, RunFail> + Send + 'static {
    let admitted = Instant::now();
    move || {
        // The wait between submission and this closure running *is*
        // the queue span — the same wait the deadline budget charges.
        let queue_ns = ns_since(admitted);
        if chaos_panic {
            if let Ok(mut sim) = Simulation::new(&program, kind, &cfg) {
                let _ = sim.step_chunk(STEP_CHUNK);
            }
            std::panic::panic_any(KillWorker);
        }
        let mut budget = DeadlineBudget::new(deadline_ms);
        let remaining = budget.charge(queue_ns / 1_000_000);
        if budget.expired() {
            return Err(RunFail::Deadline);
        }
        let compute_started = Instant::now();
        run_with_deadline_plan(&program, kind, &cfg, remaining, plan.as_ref(), traced).map(
            |(report, trace_events)| RunDone {
                report,
                queue_ns,
                compute_ns: ns_since(compute_started),
                trace_events,
            },
        )
    }
}

/// The `sweep` op: submit every benchmark up front (filling workers and
/// queue), then await them in roster order. The sweep's own submissions
/// ride through Busy with seeded-jitter backoff — it is one logical
/// request and must not shed itself, but a burst of sweeps must not
/// hammer the queue in lockstep either — while concurrent `run`
/// requests observe the full queue and get 429s: exactly the
/// backpressure story.
fn sweep(state: &Arc<State>, specs: Vec<RunSpec>, ctx: &mut RequestCtx) -> String {
    if state.draining() {
        return refuse(state, &ReqError::draining(), ctx);
    }
    enum Pending {
        Cached(String),
        Dispatched(u128, u64, JobHandle<Result<RunDone, RunFail>>),
        Refused(ReqError),
    }
    // One intent covers the whole sweep: it is one logical request, and
    // a restart resumes exactly the rows that were still owed (cached
    // rows are hits again, spilled rows restart from their checkpoint).
    // The sweep's single trace id rides in the intent.
    let journal_started = Instant::now();
    let intent = state.durable.as_ref().map(|d| {
        let id = d.next_intent_id();
        d.journal_intent(id, ctx.trace, &specs);
        id
    });
    ctx.ledger.record(Phase::Journal, ns_since(journal_started));
    let traced = state.traced();
    let mut pending = Vec::with_capacity(specs.len());
    for spec in &specs {
        let outcome = match prepare(spec) {
            Err(e) => Pending::Refused(e),
            Ok((program, cfg, key)) => {
                let cache_started = Instant::now();
                let hit = state.cache.get(key);
                ctx.ledger.record(Phase::Cache, ns_since(cache_started));
                if let Some(hit) = hit {
                    state.count("serve_cache_hits_total");
                    Pending::Cached(hit)
                } else {
                    state.count("serve_cache_misses_total");
                    let kind = spec.manager;
                    let deadline_ms = spec.deadline_ms;
                    let shared = Arc::new((program, cfg));
                    let plan = match (&state.durable, intent) {
                        (Some(d), Some(id)) => Some(SpillPlan {
                            durability: Arc::clone(d),
                            id,
                            spec: spec.clone(),
                            resume_from: None,
                            recovery: false,
                        }),
                        _ => None,
                    };
                    // Seeded-jitter backoff: reproducible for a given
                    // request seed, de-synchronized across benchmarks.
                    let policy = RetryPolicy::new(1, 50);
                    let retry_seed = spec.seed.unwrap_or(crate::protocol::DEFAULT_FAULT_SEED);
                    let stream = powerchop_resilience::retry::stream_label(&spec.bench);
                    let mut attempt = 0u32;
                    loop {
                        let shared_job = Arc::clone(&shared);
                        let job_plan = plan.clone();
                        let admitted = Instant::now();
                        match state.pool.submit(move || {
                            let queue_ns = ns_since(admitted);
                            let mut budget = DeadlineBudget::new(deadline_ms);
                            let remaining = budget.charge(queue_ns / 1_000_000);
                            if budget.expired() {
                                return Err(RunFail::Deadline);
                            }
                            let compute_started = Instant::now();
                            run_with_deadline_plan(
                                &shared_job.0,
                                kind,
                                &shared_job.1,
                                remaining,
                                job_plan.as_ref(),
                                traced,
                            )
                            .map(|(report, trace_events)| RunDone {
                                report,
                                queue_ns,
                                compute_ns: ns_since(compute_started),
                                trace_events,
                            })
                        }) {
                            Ok(handle) => break Pending::Dispatched(key, deadline_ms, handle),
                            Err(SubmitError::Busy { .. }) => {
                                attempt = attempt.saturating_add(1);
                                state.count("serve_retries_total");
                                std::thread::sleep(Duration::from_millis(
                                    policy.delay_ms(retry_seed, stream, attempt),
                                ));
                            }
                            Err(e) => break Pending::Refused(submit_error(e)),
                        }
                    }
                }
            }
        };
        pending.push(outcome);
    }
    let rows: Vec<(String, SweepOutcome)> = specs
        .into_iter()
        .zip(pending)
        .map(|(spec, p)| {
            let outcome = match p {
                Pending::Cached(report) => SweepOutcome::Done {
                    cached: true,
                    report,
                },
                Pending::Refused(e) => {
                    state.count("serve_errors_total");
                    SweepOutcome::Failed(e)
                }
                Pending::Dispatched(key, deadline_ms, handle) => {
                    match settle(state, key, deadline_ms, handle, Some(&mut *ctx)) {
                        Ok(report) => SweepOutcome::Done {
                            cached: false,
                            report,
                        },
                        Err(e) => {
                            state.count(match e.code {
                                408 => "serve_deadline_expired_total",
                                _ => "serve_errors_total",
                            });
                            SweepOutcome::Failed(e)
                        }
                    }
                }
            };
            (spec.bench, outcome)
        })
        .collect();
    // Every row has settled and the reply is about to reach the client:
    // retire the intent and garbage-collect its spills.
    let journal_started = Instant::now();
    if let (Some(d), Some(id)) = (&state.durable, intent) {
        d.journal_done(id);
        d.remove_spills(id, rows.iter().map(|(bench, _)| bench.as_str()));
        ctx.ledger.record(Phase::Journal, ns_since(journal_started));
    }
    sweep_reply(ctx.trace, &rows)
}

/// Boot-time resume driver: re-dispatches every journaled intent that
/// never got its `Done` record. Cached rows (reloaded from the cache
/// log) are skipped outright; the rest restore from their spill
/// checkpoints and run to completion, landing in the cache so the
/// original requester's retry is a bit-identical hit. Observing a drain
/// abandons the remaining intents — still journaled, they simply wait
/// for the next boot.
fn resume_pending(state: &Arc<State>, pending: Vec<powerchop_durable::PendingIntent>) {
    let Some(d) = state.durable.clone() else {
        return;
    };
    'intents: for intent in pending {
        if state.draining() {
            break;
        }
        let specs: Vec<RunSpec> = intent
            .specs
            .iter()
            .filter_map(|rec| durability::record_to_spec(rec, state.limits.deadline_ms))
            .collect();
        let ledger = &d.recovery;
        let mut resumed_rows = 0u64;
        for spec in &specs {
            if state.draining() {
                break 'intents;
            }
            let resume_from = intent.spilled.get(&spec.bench).copied();
            match resume_one(state, &d, intent.id, spec, resume_from) {
                ResumeOutcome::Cached => {}
                ResumeOutcome::Resumed => resumed_rows += 1,
                ResumeOutcome::Abandoned => break 'intents,
            }
        }
        ledger
            .runs_resumed
            .fetch_add(resumed_rows, Ordering::SeqCst);
        if resumed_rows > 0 && specs.len() > 1 {
            ledger.sweeps_resumed.fetch_add(1, Ordering::SeqCst);
        }
        d.journal_done(intent.id);
        d.remove_spills(intent.id, specs.iter().map(|s| s.bench.as_str()));
        // Crash recovery is attributable: the resumed intent still
        // carries the trace id of the request that created it, and the
        // access log records the resume under that same id.
        if state.access.is_some() {
            let mut w = JsonWriter::object();
            w.field_u64("ts_ms", state.now_ms());
            w.field_str("trace_id", &format_trace_id(intent.trace));
            w.field_str("op", "resume");
            w.field_u64("status", 200);
            w.field_u64("runs_resumed", resumed_rows);
            state.log_access(&w.finish());
        }
    }
    d.recovery.active.store(false, Ordering::SeqCst);
}

/// How one resumed run ended, as far as the resume driver cares.
enum ResumeOutcome {
    /// The reply was already in the (reloaded) cache — nothing owed.
    Cached,
    /// The run was re-dispatched (from its spill when one existed) and
    /// settled into the cache.
    Resumed,
    /// The daemon is draining or the pool is gone; stop resuming.
    Abandoned,
}

/// Resumes one run of a pending intent. Rides through `Busy` with the
/// same seeded-jitter backoff a sweep uses — recovery is owed work and
/// must not shed itself — but yields to live traffic by checking the
/// drain flag between attempts.
fn resume_one(
    state: &Arc<State>,
    d: &Arc<Durability>,
    id: u64,
    spec: &RunSpec,
    resume_from: Option<u64>,
) -> ResumeOutcome {
    let Ok((program, cfg, key)) = prepare(spec) else {
        // The benchmark roster changed under the journal; there is
        // nothing runnable to owe.
        return ResumeOutcome::Cached;
    };
    if state.cache.get(key).is_some() {
        return ResumeOutcome::Cached;
    }
    let deadline_ms = state.limits.deadline_ms;
    let plan = SpillPlan {
        durability: Arc::clone(d),
        id,
        spec: spec.clone(),
        resume_from,
        recovery: true,
    };
    let shared = Arc::new((program, cfg));
    let kind = spec.manager;
    let policy = RetryPolicy::new(1, 50);
    let retry_seed = spec.seed.unwrap_or(crate::protocol::DEFAULT_FAULT_SEED);
    let stream = powerchop_resilience::retry::stream_label(&spec.bench);
    let mut attempt = 0u32;
    let handle = loop {
        if state.draining() {
            return ResumeOutcome::Abandoned;
        }
        let job_plan = Some(plan.clone());
        let shared_job = Arc::clone(&shared);
        let admitted = Instant::now();
        match state.pool.submit(move || {
            let queue_ns = ns_since(admitted);
            let compute_started = Instant::now();
            run_with_deadline_plan(
                &shared_job.0,
                kind,
                &shared_job.1,
                deadline_ms,
                job_plan.as_ref(),
                false,
            )
            .map(|(report, trace_events)| RunDone {
                report,
                queue_ns,
                compute_ns: ns_since(compute_started),
                trace_events,
            })
        }) {
            Ok(handle) => break handle,
            Err(SubmitError::Busy { .. }) => {
                attempt = attempt.saturating_add(1);
                state.count("serve_retries_total");
                std::thread::sleep(Duration::from_millis(
                    policy.delay_ms(retry_seed, stream, attempt),
                ));
            }
            Err(_) => return ResumeOutcome::Abandoned,
        }
    };
    // A failed resume (sim error, deadline under the server cap) is
    // logged by settle's counters; the intent still retires — the run
    // was re-attempted, which is all the journal promises.
    let _ = settle(state, key, deadline_ms, handle, None);
    ResumeOutcome::Resumed
}

fn status_reply(state: &Arc<State>, trace: u64) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "status");
    w.field_str("trace_id", &format_trace_id(trace));
    w.field_bool("draining", state.draining());
    w.field_u64("uptime_ms", state.now_ms());
    w.field_u64("workers", state.pool.workers() as u64);
    w.field_u64("queue_depth", state.pool.queue_depth() as u64);
    w.field_u64("queued", state.pool.queued() as u64);
    w.field_u64("inflight", state.pool.inflight() as u64);
    w.field_u64(
        "inflight_requests",
        state.inflight_requests.load(Ordering::SeqCst) as u64,
    );
    w.field_u64("cache_entries", state.cache.len() as u64);
    w.field_u64("cache_capacity", state.cache.capacity() as u64);
    w.finish()
}

/// The `health` op: liveness/readiness in one line. `healthy` is the
/// single bit an orchestrator needs — the daemon is accepting work and
/// nothing has latched a degraded mode; the rest explains why not.
fn health_reply(state: &Arc<State>, trace: u64) -> String {
    let breaker_state = lock(&state.breaker).state(state.now_ms());
    let breaker_trips = lock(&state.breaker).trips();
    let gave_up = state.pool.gave_up();
    let healthy =
        !state.draining() && !gave_up && breaker_state != powerchop_resilience::BreakerState::Open;
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "health");
    w.field_str("trace_id", &format_trace_id(trace));
    w.field_bool("healthy", healthy);
    w.field_bool("draining", state.draining());
    w.field_str("breaker", breaker_state.label());
    w.field_u64("breaker_trips", breaker_trips);
    w.field_u64("workers", state.pool.workers() as u64);
    w.field_u64("workers_alive", state.pool.alive() as u64);
    w.field_u64("worker_respawns", state.pool.respawns());
    w.field_bool("pool_gave_up", gave_up);
    w.field_u64("queued", state.pool.queued() as u64);
    w.field_u64("inflight", state.pool.inflight() as u64);
    w.field_u64(
        "connections",
        state.connections.load(Ordering::SeqCst) as u64,
    );
    w.field_u64("max_connections", state.max_connections as u64);
    // Recovery block: stable shape whether or not durability is on, so
    // orchestrators can always distinguish a clean boot (`clean_boot`
    // true, all counters zero) from a recovered one.
    w.field_bool("durable", state.durable.is_some());
    match &state.durable {
        Some(d) => {
            let r = &d.recovery;
            w.field_bool("clean_boot", r.clean_boot);
            w.field_bool("recovery_active", r.active.load(Ordering::SeqCst));
            w.field_u64("journal_replayed", r.journal_replayed);
            w.field_u64("torn_tails_discarded", r.torn_discards);
            w.field_u64("pending_intents", r.pending_intents);
            w.field_u64("sweeps_resumed", r.sweeps_resumed.load(Ordering::SeqCst));
            w.field_u64("runs_resumed", r.runs_resumed.load(Ordering::SeqCst));
            w.field_u64(
                "resumed_instructions",
                r.resumed_instructions.load(Ordering::SeqCst),
            );
            w.field_u64(
                "redone_instructions",
                r.redone_instructions.load(Ordering::SeqCst),
            );
            w.field_u64("cache_reloaded", r.cache_reloaded);
        }
        None => {
            w.field_bool("clean_boot", true);
            w.field_bool("recovery_active", false);
            w.field_u64("journal_replayed", 0);
            w.field_u64("torn_tails_discarded", 0);
            w.field_u64("pending_intents", 0);
            w.field_u64("sweeps_resumed", 0);
            w.field_u64("runs_resumed", 0);
            w.field_u64("resumed_instructions", 0);
            w.field_u64("redone_instructions", 0);
            w.field_u64("cache_reloaded", 0);
        }
    }
    w.finish()
}

fn metrics_reply(state: &Arc<State>, trace: u64) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "metrics");
    w.field_str("trace_id", &format_trace_id(trace));
    w.field_str("text", &state.prometheus_text());
    w.finish()
}

fn shutdown_reply(state: &Arc<State>, trace: u64) -> String {
    // Setting the flag is enough: the shutdown line arrived through the
    // event loop, which re-checks the drain state every iteration — no
    // self-connection wakeup needed anymore.
    state.draining.store(true, Ordering::SeqCst);
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "shutdown");
    w.field_str("trace_id", &format_trace_id(trace));
    w.field_bool("draining", true);
    w.finish()
}

/// Renders one full HTTP response (status line through body). Only
/// `GET /metrics` exists; anything else is a 404. `Connection: close`
/// is honored by the caller flagging the connection to close after the
/// response flushes.
fn http_response(state: &Arc<State>, path: &str) -> String {
    let (status, content_type, body) = if path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.prometheus_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only GET /metrics is served here\n".to_owned(),
        )
    };
    format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:7077");
        assert!(cfg.queue_depth >= 1);
        assert!(cfg.cache_entries >= 1);
        assert!(cfg.max_budget >= 1_000_000);
        assert!(cfg.max_outbox_bytes >= 1 << 16);
    }

    #[test]
    fn bind_resolves_port_zero() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: Some(1),
            ..ServerConfig::default()
        };
        let server = Server::bind(&cfg).expect("bind succeeds");
        assert_ne!(server.local_addr().port(), 0);
    }

    #[test]
    fn deadline_zero_expires_immediately_and_runs_complete_otherwise() {
        let b = powerchop_workloads::by_name("hmmer").expect("hmmer exists");
        let mut cfg = RunConfig::for_kind(b.core_kind());
        cfg.max_instructions = 50_000;
        let program = b.program(Scale(0.05));
        match run_with_deadline_plan(&program, ManagerKind::PowerChop, &cfg, 0, None, false) {
            Err(RunFail::Deadline) => {}
            _ => panic!("zero deadline must trip before any work"),
        }
        let report =
            run_with_deadline_plan(&program, ManagerKind::PowerChop, &cfg, 60_000, None, false);
        assert!(matches!(report, Ok((r, _)) if r.instructions > 0));
    }

    #[test]
    fn traced_runs_are_bit_identical_to_untraced_runs() {
        let b = powerchop_workloads::by_name("hmmer").expect("hmmer exists");
        let mut cfg = RunConfig::for_kind(b.core_kind());
        cfg.max_instructions = 50_000;
        let program = b.program(Scale(0.05));
        let plain =
            run_with_deadline_plan(&program, ManagerKind::PowerChop, &cfg, 60_000, None, false)
                .map(|(r, _)| report_to_json(&r))
                .ok();
        let traced =
            run_with_deadline_plan(&program, ManagerKind::PowerChop, &cfg, 60_000, None, true)
                .map(|(r, _)| report_to_json(&r))
                .ok();
        assert!(plain.is_some(), "untraced run completes");
        assert_eq!(
            plain, traced,
            "the attached tracer must not perturb the run"
        );
    }

    #[test]
    fn op_duration_metric_covers_every_dispatchable_op() {
        for op in ["run", "sweep", "status", "health", "metrics", "shutdown"] {
            let key = op_duration_metric(op);
            assert!(key.contains(&format!("op=\"{op}\"")), "{key} labels {op}");
        }
        assert!(op_duration_metric("nonsense").contains("malformed"));
    }
}
