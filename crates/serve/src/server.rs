//! The TCP daemon: accept loop, connection handling, job dispatch.
//!
//! Each connection gets its own thread speaking the newline-delimited
//! JSON protocol from [`crate::protocol`]. Simulations are dispatched
//! onto a bounded [`WorkerPool`]; when the queue is full the request is
//! shed immediately with a 429 reply instead of queueing unboundedly —
//! explicit backpressure the client can see and retry against.
//!
//! Every run gets a wall-clock deadline watchdog mirroring the
//! `supervise` machinery: a watchdog thread trips a cancel flag once the
//! deadline passes and the run checks it between step chunks, so a
//! runaway request yields a 408 reply instead of pinning a worker
//! forever (the deadline covers compute time, not queue wait, exactly
//! like a supervise slot).
//!
//! Completed reports are cached in an LRU keyed by
//! [`powerchop_checkpoint::run_key`] over the program and configuration
//! fingerprints, so a repeated request is served from memory —
//! bit-identical, visible in the `serve_cache_hits_total` counter.
//!
//! A plain HTTP `GET /metrics` on the same port returns the Prometheus
//! text exposition, so `curl` and a Prometheus scraper both work without
//! speaking the JSON protocol.
//!
//! Shutdown is in-protocol (`{"op":"shutdown"}`) because the workspace
//! is dependency-free and cannot install a SIGTERM handler: the daemon
//! stops accepting connections, replies 503 to new work, waits for
//! connected clients to finish, and drains the pool before exiting.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard, PoisonError};
use std::time::Duration;

use powerchop::{config_fingerprint, ManagerKind, RunConfig, RunReport, Simulation};
use powerchop_checkpoint::run_key;
use powerchop_exec::{JobHandle, SubmitError, WorkerPool};
use powerchop_gisa::Program;
use powerchop_telemetry::export::JsonWriter;
use powerchop_telemetry::MetricsRegistry;
use powerchop_workloads::Scale;

use crate::cache::ResultCache;
use crate::protocol::{
    error_reply, fault_config, parse_request, run_reply, sweep_reply, Limits, ReqError, Request,
    RunSpec, SweepOutcome,
};
use crate::report::report_to_json;

/// Dispatch-loop iterations per [`Simulation::step_chunk`] call — the
/// same chunking the CLI's checkpoint/supervise paths use, so deadline
/// checks land at identical boundaries.
const STEP_CHUNK: u64 = 65_536;

/// Everything that shapes a daemon instance.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Address to bind (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Worker thread count (`None` = `POWERCHOP_JOBS` or CPU count).
    pub jobs: Option<usize>,
    /// Jobs that may wait in the queue before requests are shed with 429.
    pub queue_depth: usize,
    /// LRU result-cache capacity (0 disables caching).
    pub cache_entries: usize,
    /// Per-run wall-clock deadline cap in milliseconds.
    pub deadline_ms: u64,
    /// Largest accepted request line in bytes.
    pub max_request_bytes: usize,
    /// Largest accepted instruction budget per run.
    pub max_budget: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:7077".into(),
            jobs: None,
            queue_depth: 16,
            cache_entries: 64,
            deadline_ms: 120_000,
            max_request_bytes: 1 << 20,
            max_budget: 1_000_000_000,
        }
    }
}

/// Locks a mutex, riding through poisoning: a panicked holder cannot
/// corrupt the cache or metrics invariants we rely on.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// State shared by the accept loop and every connection thread.
struct State {
    pool: WorkerPool,
    cache: Mutex<ResultCache>,
    metrics: Mutex<MetricsRegistry>,
    draining: AtomicBool,
    limits: Limits,
    max_request_bytes: usize,
    addr: SocketAddr,
}

impl State {
    fn count(&self, name: &'static str) {
        lock(&self.metrics).counter_add(name, 1);
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    /// Snapshot the live gauges and render the Prometheus text.
    fn prometheus_text(&self) -> String {
        let mut m = lock(&self.metrics);
        m.gauge_set("serve_queue_depth", self.pool.queued() as f64);
        m.gauge_set("serve_inflight", self.pool.inflight() as f64);
        m.gauge_set("serve_cache_entries", lock(&self.cache).len() as f64);
        m.gauge_set("serve_draining", if self.draining() { 1.0 } else { 0.0 });
        m.to_prometheus_text()
    }
}

/// A bound daemon, ready to [`run`](Server::run).
pub struct Server {
    listener: TcpListener,
    state: Arc<State>,
}

impl Server {
    /// Binds the listener and spins up the worker pool.
    ///
    /// # Errors
    ///
    /// Propagates the bind failure (`EADDRINUSE`, bad address, ...).
    pub fn bind(cfg: &ServerConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(&cfg.addr)?;
        let addr = listener.local_addr()?;
        let jobs = powerchop_exec::resolve_jobs(cfg.jobs);
        let state = Arc::new(State {
            pool: WorkerPool::new(jobs, cfg.queue_depth),
            cache: Mutex::new(ResultCache::new(cfg.cache_entries)),
            metrics: Mutex::new(MetricsRegistry::new()),
            draining: AtomicBool::new(false),
            limits: Limits {
                max_budget: cfg.max_budget,
                deadline_ms: cfg.deadline_ms,
            },
            max_request_bytes: cfg.max_request_bytes,
            addr,
        });
        Ok(Self { listener, state })
    }

    /// The bound address (resolves port 0 to the actual port).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.state.addr
    }

    /// Serves until a shutdown request drains the daemon.
    ///
    /// Blocks the calling thread. After a `{"op":"shutdown"}` request:
    /// no new connections are accepted, open connections are joined
    /// (clients still holding theirs get 503 for new work), and the
    /// worker pool is drained before returning.
    ///
    /// # Errors
    ///
    /// Propagates accept-loop I/O failures; per-connection errors only
    /// terminate that connection.
    pub fn run(self) -> std::io::Result<()> {
        let mut conns = Vec::new();
        loop {
            if self.state.draining() {
                break;
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) => {
                    if self.state.draining() {
                        break;
                    }
                    return Err(e);
                }
            };
            // The shutdown handler wakes this blocking accept with a
            // throwaway self-connection; drop it and start draining.
            if self.state.draining() {
                break;
            }
            let state = Arc::clone(&self.state);
            conns.push(std::thread::spawn(move || handle_conn(&state, stream)));
        }
        for conn in conns {
            let _ = conn.join();
        }
        self.state.pool.drain();
        Ok(())
    }
}

fn handle_conn(state: &Arc<State>, stream: TcpStream) {
    state.count("serve_connections_total");
    if let Err(e) = serve_conn(state, stream) {
        // A broken pipe or reset only loses that client's connection;
        // the daemon itself never goes down with it.
        eprintln!("powerchop-serve: connection error: {e}");
    }
}

fn serve_conn(state: &Arc<State>, stream: TcpStream) -> std::io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let limit = state.max_request_bytes as u64;
    let mut buf = Vec::new();
    loop {
        buf.clear();
        // `take` bounds the read so a newline-less flood cannot grow the
        // buffer past the limit; one extra byte distinguishes "exactly
        // at the limit" from "over it".
        let n = (&mut reader).take(limit + 1).read_until(b'\n', &mut buf)?;
        if n == 0 {
            return Ok(()); // client closed
        }
        state.count("serve_requests_total");
        if buf.last() != Some(&b'\n') && n as u64 > limit {
            state.count("serve_errors_total");
            let e = ReqError::bad_request(format!(
                "request line exceeds {} bytes",
                state.max_request_bytes
            ));
            writeln!(writer, "{}", error_reply(&e))?;
            // With no newline inside the limit there is no way to find
            // the next request boundary; drop the connection.
            return Ok(());
        }
        // An HTTP GET on the JSON port serves /metrics, so curl and
        // Prometheus scrapers work without speaking the protocol.
        if buf.starts_with(b"GET ") {
            state.count("serve_http_requests_total");
            return serve_http(state, &mut reader, &mut writer, &buf);
        }
        let Ok(text) = std::str::from_utf8(&buf) else {
            state.count("serve_errors_total");
            let e = ReqError::bad_request("request line is not valid UTF-8");
            writeln!(writer, "{}", error_reply(&e))?;
            continue; // the line boundary was still found; resync is safe
        };
        let line = text.trim();
        if line.is_empty() {
            state.count("serve_errors_total");
            let e = ReqError::bad_request("empty request line");
            writeln!(writer, "{}", error_reply(&e))?;
            continue;
        }
        let reply = dispatch_line(state, line);
        writeln!(writer, "{reply}")?;
        writer.flush()?;
    }
}

/// Routes one request line to its handler and renders the reply.
fn dispatch_line(state: &Arc<State>, line: &str) -> String {
    match parse_request(line, &state.limits) {
        Err(e) => refuse(state, &e),
        Ok(Request::Status) => status_reply(state),
        Ok(Request::Metrics) => metrics_reply(state),
        Ok(Request::Shutdown) => shutdown_reply(state),
        Ok(Request::Run(spec)) => match execute_run(state, &spec) {
            Ok((cached, report)) => run_reply(cached, &report),
            Err(e) => refuse(state, &e),
        },
        Ok(Request::Sweep(specs)) => sweep(state, specs),
    }
}

/// Counts a refusal under the right metric and renders the error reply.
fn refuse(state: &Arc<State>, e: &ReqError) -> String {
    state.count(match e.code {
        429 => "serve_busy_total",
        408 => "serve_deadline_expired_total",
        _ => "serve_errors_total",
    });
    error_reply(e)
}

/// How one dispatched run can fail.
enum RunFail {
    /// The deadline watchdog tripped.
    Deadline,
    /// The simulator returned a typed error.
    Sim(String),
}

/// Runs one simulation under a deadline watchdog, mirroring the CLI
/// `supervise` machinery: the watchdog trips a cancel flag once the
/// deadline passes and is released early through the channel when the
/// run ends; the run polls the flag between step chunks. A zero
/// deadline is already expired, so it trips here rather than racing the
/// watchdog thread's first schedule.
fn run_with_deadline(
    program: &Program,
    kind: ManagerKind,
    cfg: &RunConfig,
    deadline_ms: u64,
) -> Result<RunReport, RunFail> {
    let cancel = Arc::new(AtomicBool::new(deadline_ms == 0));
    let watchdog_flag = Arc::clone(&cancel);
    let (release, released) = mpsc::channel::<()>();
    let deadline = Duration::from_millis(deadline_ms);
    let watchdog = std::thread::spawn(move || {
        if released.recv_timeout(deadline).is_err() {
            watchdog_flag.store(true, Ordering::Relaxed);
        }
    });
    let result = (|| {
        let mut sim =
            Simulation::new(program, kind, cfg).map_err(|e| RunFail::Sim(e.to_string()))?;
        while !sim.is_done() {
            if cancel.load(Ordering::Relaxed) {
                return Err(RunFail::Deadline);
            }
            sim.step_chunk(STEP_CHUNK)
                .map_err(|e| RunFail::Sim(e.to_string()))?;
        }
        Ok(sim.into_report())
    })();
    let _ = release.send(());
    let _ = watchdog.join();
    result
}

/// The program + configuration a validated spec describes, and the
/// cache key that identifies the pair.
fn prepare(spec: &RunSpec) -> Result<(Program, RunConfig, u128), ReqError> {
    // The spec was validated at parse time; a vanished benchmark here
    // would be a roster bug, reported as 500 rather than a panic.
    let b = powerchop_workloads::by_name(&spec.bench)
        .ok_or_else(|| ReqError::internal(format!("benchmark {:?} vanished", spec.bench)))?;
    let mut cfg = RunConfig::for_kind(b.core_kind());
    cfg.max_instructions = spec.budget;
    cfg.faults = fault_config(spec.seed, spec.storm);
    let program = b.program(Scale(spec.scale));
    let key = run_key(
        program.fingerprint(),
        config_fingerprint(spec.manager, &cfg),
    );
    Ok((program, cfg, key))
}

/// Waits out a dispatched run and folds the outcome into the cache and
/// counters. The returned report string is exactly what the cache will
/// replay for the next identical request.
fn settle(
    state: &Arc<State>,
    key: u128,
    deadline_ms: u64,
    handle: JobHandle<Result<RunReport, RunFail>>,
) -> Result<String, ReqError> {
    match handle.wait() {
        Err(panic) => {
            state.count("serve_panics_total");
            Err(ReqError::internal(format!(
                "run panicked: {}",
                panic.message
            )))
        }
        Ok(Err(RunFail::Deadline)) => Err(ReqError::deadline(deadline_ms)),
        Ok(Err(RunFail::Sim(message))) => Err(ReqError::internal(message)),
        Ok(Ok(report)) => {
            let json = report_to_json(&report);
            lock(&state.cache).put(key, json.clone());
            state.count("serve_runs_total");
            Ok(json)
        }
    }
}

/// The `run` op: cache lookup, bounded submission, deadline-watched
/// execution. Returns `(cached, report_json)`.
fn execute_run(state: &Arc<State>, spec: &RunSpec) -> Result<(bool, String), ReqError> {
    if state.draining() {
        return Err(ReqError::draining());
    }
    let (program, cfg, key) = prepare(spec)?;
    if let Some(hit) = lock(&state.cache).get(key) {
        state.count("serve_cache_hits_total");
        return Ok((true, hit));
    }
    state.count("serve_cache_misses_total");
    let kind = spec.manager;
    let deadline_ms = spec.deadline_ms;
    let handle = state
        .pool
        .submit(move || run_with_deadline(&program, kind, &cfg, deadline_ms))
        .map_err(|e| match e {
            SubmitError::Busy { queue_depth } => ReqError::busy(queue_depth),
            SubmitError::Closed => ReqError::draining(),
        })?;
    settle(state, key, deadline_ms, handle).map(|json| (false, json))
}

/// The `sweep` op: submit every benchmark up front (filling workers and
/// queue), then await them in roster order. The sweep's own submissions
/// ride through Busy with a short retry nap — it is one logical request
/// and must not shed itself — while concurrent `run` requests observe
/// the full queue and get 429s: exactly the backpressure story.
fn sweep(state: &Arc<State>, specs: Vec<RunSpec>) -> String {
    if state.draining() {
        return refuse(state, &ReqError::draining());
    }
    enum Pending {
        Cached(String),
        Dispatched(u128, u64, JobHandle<Result<RunReport, RunFail>>),
        Refused(ReqError),
    }
    let mut pending = Vec::with_capacity(specs.len());
    for spec in &specs {
        let outcome = match prepare(spec) {
            Err(e) => Pending::Refused(e),
            Ok((program, cfg, key)) => {
                if let Some(hit) = lock(&state.cache).get(key) {
                    state.count("serve_cache_hits_total");
                    Pending::Cached(hit)
                } else {
                    state.count("serve_cache_misses_total");
                    let kind = spec.manager;
                    let deadline_ms = spec.deadline_ms;
                    let shared = Arc::new((program, cfg));
                    loop {
                        let ctx = Arc::clone(&shared);
                        match state
                            .pool
                            .submit(move || run_with_deadline(&ctx.0, kind, &ctx.1, deadline_ms))
                        {
                            Ok(handle) => break Pending::Dispatched(key, deadline_ms, handle),
                            Err(SubmitError::Busy { .. }) => {
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(SubmitError::Closed) => {
                                break Pending::Refused(ReqError::draining())
                            }
                        }
                    }
                }
            }
        };
        pending.push(outcome);
    }
    let rows: Vec<(String, SweepOutcome)> = specs
        .into_iter()
        .zip(pending)
        .map(|(spec, p)| {
            let outcome = match p {
                Pending::Cached(report) => SweepOutcome::Done {
                    cached: true,
                    report,
                },
                Pending::Refused(e) => {
                    state.count("serve_errors_total");
                    SweepOutcome::Failed(e)
                }
                Pending::Dispatched(key, deadline_ms, handle) => {
                    match settle(state, key, deadline_ms, handle) {
                        Ok(report) => SweepOutcome::Done {
                            cached: false,
                            report,
                        },
                        Err(e) => {
                            state.count(match e.code {
                                408 => "serve_deadline_expired_total",
                                _ => "serve_errors_total",
                            });
                            SweepOutcome::Failed(e)
                        }
                    }
                }
            };
            (spec.bench, outcome)
        })
        .collect();
    sweep_reply(&rows)
}

fn status_reply(state: &Arc<State>) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "status");
    w.field_bool("draining", state.draining());
    w.field_u64("workers", state.pool.workers() as u64);
    w.field_u64("queue_depth", state.pool.queue_depth() as u64);
    w.field_u64("queued", state.pool.queued() as u64);
    w.field_u64("inflight", state.pool.inflight() as u64);
    w.field_u64("cache_entries", lock(&state.cache).len() as u64);
    w.field_u64("cache_capacity", lock(&state.cache).capacity() as u64);
    w.finish()
}

fn metrics_reply(state: &Arc<State>) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "metrics");
    w.field_str("text", &state.prometheus_text());
    w.finish()
}

fn shutdown_reply(state: &Arc<State>) -> String {
    state.draining.store(true, Ordering::SeqCst);
    // Wake the blocking accept loop so the drain actually proceeds; the
    // throwaway connection is dropped by the accept loop's drain check.
    let _ = TcpStream::connect(state.addr);
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "shutdown");
    w.field_bool("draining", true);
    w.finish()
}

/// Answers one HTTP request (then closes, as `Connection: close`
/// promises). Only `GET /metrics` exists; anything else is a 404.
fn serve_http(
    state: &Arc<State>,
    reader: &mut BufReader<TcpStream>,
    writer: &mut TcpStream,
    request_line: &[u8],
) -> std::io::Result<()> {
    // Drain the request headers (bounded) so the client's send buffer
    // is consumed before we respond and close.
    let mut header = Vec::new();
    for _ in 0..64 {
        header.clear();
        let n = (&mut *reader)
            .take(8 * 1024)
            .read_until(b'\n', &mut header)?;
        if n == 0 || header == b"\r\n" || header == b"\n" {
            break;
        }
    }
    let path = request_line
        .split(|&c| c == b' ')
        .nth(1)
        .and_then(|p| std::str::from_utf8(p).ok())
        .unwrap_or("");
    let (status, content_type, body) = if path == "/metrics" {
        (
            "200 OK",
            "text/plain; version=0.0.4; charset=utf-8",
            state.prometheus_text(),
        )
    } else {
        (
            "404 Not Found",
            "text/plain; charset=utf-8",
            "only GET /metrics is served here\n".to_owned(),
        )
    };
    write!(
        writer,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    )?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.addr, "127.0.0.1:7077");
        assert!(cfg.queue_depth >= 1);
        assert!(cfg.cache_entries >= 1);
        assert!(cfg.max_budget >= 1_000_000);
    }

    #[test]
    fn bind_resolves_port_zero() {
        let cfg = ServerConfig {
            addr: "127.0.0.1:0".into(),
            jobs: Some(1),
            ..ServerConfig::default()
        };
        let server = Server::bind(&cfg).expect("bind succeeds");
        assert_ne!(server.local_addr().port(), 0);
    }

    #[test]
    fn deadline_zero_expires_immediately_and_runs_complete_otherwise() {
        let b = powerchop_workloads::by_name("hmmer").expect("hmmer exists");
        let mut cfg = RunConfig::for_kind(b.core_kind());
        cfg.max_instructions = 50_000;
        let program = b.program(Scale(0.05));
        match run_with_deadline(&program, ManagerKind::PowerChop, &cfg, 0) {
            Err(RunFail::Deadline) => {}
            _ => panic!("zero deadline must trip before any work"),
        }
        let report = run_with_deadline(&program, ManagerKind::PowerChop, &cfg, 60_000);
        assert!(matches!(report, Ok(r) if r.instructions > 0));
    }
}
