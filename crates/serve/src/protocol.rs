//! The newline-delimited JSON request protocol.
//!
//! One request per line, one reply per line. Every request is a JSON
//! object with an `"op"` field:
//!
//! | op         | extra fields                                              |
//! |------------|-----------------------------------------------------------|
//! | `run`      | `bench` (required), `manager`, `budget`, `scale`, `seed`, `storm`, `deadline_ms`, `chaos` (gated) |
//! | `sweep`    | `benches` (array) or `suite`, plus the `run` knobs        |
//! | `status`   | —                                                         |
//! | `health`   | —                                                         |
//! | `metrics`  | —                                                         |
//! | `shutdown` | —                                                         |
//!
//! Error replies are `{"ok":false,"code":N,"error":"<slug>","message":...}`
//! with HTTP-flavored codes: 400 bad request, 404 unknown benchmark,
//! 408 deadline expired or slow client, 429 queue full, 500 internal,
//! 503 draining / overloaded / breaker-open / unavailable.
//! Validation here mirrors the CLI flag parsers in `powerchop-cli`
//! exactly — a request the daemon accepts is a run the CLI would accept.
//!
//! The `chaos` field (`"chaos":"panic"`) asks the daemon to kill the
//! worker thread mid-run, exercising the supervision path. It is only
//! honored when the daemon was started with chaos ops enabled
//! (`--chaos-ops`); otherwise it is refused with a 400.

use powerchop::ManagerKind;
use powerchop_faults::FaultConfig;
use powerchop_telemetry::export::JsonWriter;

use crate::json::Json;

/// The fault-schedule seed used when `storm` is set without a `seed`
/// (also the CLI `stress` default, which aliases this constant).
pub const DEFAULT_FAULT_SEED: u64 = 0xCAFE_BABE;

/// Largest accepted `scale`: generous for experiments, small enough
/// that one request cannot ask for a terabyte-scale working set.
pub const MAX_SCALE: f64 = 1000.0;

/// The fault schedule implied by `seed`/`storm` (`None` runs clean).
#[must_use]
pub fn fault_config(seed: Option<u64>, storm: bool) -> Option<FaultConfig> {
    if seed.is_none() && !storm {
        return None;
    }
    let seed = seed.unwrap_or(DEFAULT_FAULT_SEED);
    Some(if storm {
        FaultConfig::storm(seed)
    } else {
        FaultConfig::default_rates(seed)
    })
}

/// Server-imposed request limits, from [`crate::ServerConfig`].
#[derive(Debug, Clone, Copy)]
pub struct Limits {
    /// Largest accepted instruction budget.
    pub max_budget: u64,
    /// Per-request wall-clock deadline cap in milliseconds; a request
    /// may shrink its own deadline but never extend past this.
    pub deadline_ms: u64,
    /// Whether `"chaos"` ops (deliberate worker kills) are honored.
    /// Off by default; enabled by `--chaos-ops` for soak testing.
    pub allow_chaos: bool,
}

/// A typed request failure, carried to the client as an error reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReqError {
    /// HTTP-flavored status code.
    pub code: u16,
    /// Stable machine-readable slug (`bad-request`, `busy`, ...).
    pub slug: &'static str,
    /// Human-readable detail.
    pub message: String,
}

impl ReqError {
    /// 400: the request is malformed or out of range.
    #[must_use]
    pub fn bad_request(message: impl Into<String>) -> Self {
        Self {
            code: 400,
            slug: "bad-request",
            message: message.into(),
        }
    }

    /// 404: the named benchmark does not exist.
    #[must_use]
    pub fn not_found(message: impl Into<String>) -> Self {
        Self {
            code: 404,
            slug: "not-found",
            message: message.into(),
        }
    }

    /// 408: the run outlived its wall-clock deadline.
    #[must_use]
    pub fn deadline(deadline_ms: u64) -> Self {
        Self {
            code: 408,
            slug: "deadline",
            message: format!("run exceeded its {deadline_ms} ms deadline"),
        }
    }

    /// 429: the job queue is full — retry later.
    #[must_use]
    pub fn busy(queue_depth: usize) -> Self {
        Self {
            code: 429,
            slug: "busy",
            message: format!("job queue full ({queue_depth} waiting); retry later"),
        }
    }

    /// 500: the run failed or panicked inside the simulator.
    #[must_use]
    pub fn internal(message: impl Into<String>) -> Self {
        Self {
            code: 500,
            slug: "internal",
            message: message.into(),
        }
    }

    /// 503: the daemon is draining and accepts no new work.
    #[must_use]
    pub fn draining() -> Self {
        Self {
            code: 503,
            slug: "draining",
            message: "daemon is draining; no new work accepted".into(),
        }
    }

    /// 503: the max-connections gate is full — the connection is shed.
    #[must_use]
    pub fn overloaded(max_connections: usize) -> Self {
        Self {
            code: 503,
            slug: "overloaded",
            message: format!("connection limit reached ({max_connections}); retry later"),
        }
    }

    /// 503: the circuit breaker is open after repeated run failures.
    #[must_use]
    pub fn breaker_open(retry_after_ms: u64) -> Self {
        Self {
            code: 503,
            slug: "breaker-open",
            message: format!(
                "circuit breaker is open after repeated failures; retry in {retry_after_ms} ms"
            ),
        }
    }

    /// 503: workers are crash-looping past the restart-storm threshold.
    #[must_use]
    pub fn unavailable() -> Self {
        Self {
            code: 503,
            slug: "unavailable",
            message: "workers are restarting faster than the storm threshold allows".into(),
        }
    }

    /// 408: the client was too slow to send (or receive) a full line.
    #[must_use]
    pub fn slow_client(timeout_ms: u64) -> Self {
        Self {
            code: 408,
            slug: "slow-client",
            message: format!("no complete request line within {timeout_ms} ms; closing"),
        }
    }

    /// 408: the client stopped absorbing replies and its per-connection
    /// outbox overflowed — the slow-consumer twin of [`slow_client`]
    /// (same typed 408 disconnect, write side instead of read side).
    ///
    /// [`slow_client`]: ReqError::slow_client
    #[must_use]
    pub fn backpressure(max_outbox_bytes: usize) -> Self {
        Self {
            code: 408,
            slug: "slow-client",
            message: format!(
                "unread replies exceeded the {max_outbox_bytes}-byte outbox; closing slow consumer"
            ),
        }
    }
}

impl std::fmt::Display for ReqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} {}: {}", self.code, self.slug, self.message)
    }
}

impl std::error::Error for ReqError {}

/// One fully validated simulation request.
#[derive(Debug, Clone, PartialEq)]
pub struct RunSpec {
    /// Benchmark name (validated to exist).
    pub bench: String,
    /// Power manager to run under.
    pub manager: ManagerKind,
    /// Instruction budget, `1..=limits.max_budget`.
    pub budget: u64,
    /// Workload scale factor, finite and in `(0, MAX_SCALE]`.
    pub scale: f64,
    /// Optional fault-injection seed.
    pub seed: Option<u64>,
    /// Storm-rate fault injection.
    pub storm: bool,
    /// Effective wall-clock deadline for this run, already clamped to
    /// the server cap. Zero is an immediately-expired deadline.
    pub deadline_ms: u64,
    /// Kill the worker thread mid-run (`"chaos":"panic"`). Only parses
    /// when [`Limits::allow_chaos`] is set.
    pub chaos_panic: bool,
}

/// A parsed request line.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Run one benchmark.
    Run(Box<RunSpec>),
    /// Run a batch of benchmarks.
    Sweep(Vec<RunSpec>),
    /// Report queue/cache/drain state.
    Status,
    /// Report liveness/readiness: breaker state, worker liveness,
    /// queue depth, restart counts.
    Health,
    /// Return the Prometheus metrics text.
    Metrics,
    /// Begin a graceful drain.
    Shutdown,
}

fn want_str<'a>(v: &'a Json, key: &str) -> Result<Option<&'a str>, ReqError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Str(s)) => Ok(Some(s)),
        Some(_) => Err(ReqError::bad_request(format!(
            "field {key:?} must be a string"
        ))),
    }
}

fn want_u64(v: &Json, key: &str) -> Result<Option<u64>, ReqError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(n) => n.as_u64().map(Some).ok_or_else(|| {
            ReqError::bad_request(format!(
                "field {key:?} must be a non-negative integer no larger than 2^53"
            ))
        }),
    }
}

fn want_f64(v: &Json, key: &str) -> Result<Option<f64>, ReqError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Num(n)) => Ok(Some(*n)),
        Some(_) => Err(ReqError::bad_request(format!(
            "field {key:?} must be a number"
        ))),
    }
}

fn want_bool(v: &Json, key: &str) -> Result<Option<bool>, ReqError> {
    match v.get(key) {
        None | Some(Json::Null) => Ok(None),
        Some(Json::Bool(b)) => Ok(Some(*b)),
        Some(_) => Err(ReqError::bad_request(format!(
            "field {key:?} must be a boolean"
        ))),
    }
}

/// Builds one validated [`RunSpec`] from a request object, using
/// `bench` rather than the object's own `bench` field when given (the
/// sweep op shares one set of knobs across many benchmarks).
fn run_spec(v: &Json, limits: &Limits, bench: Option<&str>) -> Result<RunSpec, ReqError> {
    let bench = match bench {
        Some(name) => name.to_owned(),
        None => want_str(v, "bench")?
            .ok_or_else(|| ReqError::bad_request("missing required field \"bench\""))?
            .to_owned(),
    };
    if powerchop_workloads::by_name(&bench).is_none() {
        return Err(ReqError::not_found(format!(
            "unknown benchmark {bench:?} — ask op \"status\" or `powerchop-cli list` for the roster"
        )));
    }
    let manager_name = want_str(v, "manager")?.unwrap_or("powerchop");
    let manager = powerchop::manager_kind_by_name(manager_name).ok_or_else(|| {
        ReqError::bad_request(format!(
            "unknown manager {manager_name:?} (expected powerchop|full|minimal|timeout|drowsy)"
        ))
    })?;
    let budget = want_u64(v, "budget")?.unwrap_or(8_000_000);
    if budget == 0 || budget > limits.max_budget {
        return Err(ReqError::bad_request(format!(
            "field \"budget\" must be in 1..={} (got {budget})",
            limits.max_budget
        )));
    }
    let scale = want_f64(v, "scale")?.unwrap_or(1.0);
    if !scale.is_finite() || scale <= 0.0 || scale > MAX_SCALE {
        return Err(ReqError::bad_request(format!(
            "field \"scale\" must be a finite number in (0, {MAX_SCALE}] (got {scale})"
        )));
    }
    let seed = want_u64(v, "seed")?;
    let storm = want_bool(v, "storm")?.unwrap_or(false);
    let deadline_ms = want_u64(v, "deadline_ms")?
        .unwrap_or(limits.deadline_ms)
        .min(limits.deadline_ms);
    let chaos_panic = match want_str(v, "chaos")? {
        None => false,
        Some(_) if !limits.allow_chaos => {
            return Err(ReqError::bad_request(
                "chaos ops are disabled; start the daemon with --chaos-ops to enable them",
            ))
        }
        Some("panic") => true,
        Some(other) => {
            return Err(ReqError::bad_request(format!(
                "unknown chaos op {other:?} (expected \"panic\")"
            )))
        }
    };
    Ok(RunSpec {
        bench,
        manager,
        budget,
        scale,
        seed,
        storm,
        deadline_ms,
        chaos_panic,
    })
}

/// The benchmark roster a sweep request names: an explicit `benches`
/// array, a whole `suite`, or (neither) every benchmark.
fn sweep_benches(v: &Json) -> Result<Vec<String>, ReqError> {
    match (v.get("benches"), want_str(v, "suite")?) {
        (Some(_), Some(_)) => Err(ReqError::bad_request(
            "give either \"benches\" or \"suite\", not both",
        )),
        (Some(Json::Arr(items)), None) => {
            if items.is_empty() {
                return Err(ReqError::bad_request("field \"benches\" must not be empty"));
            }
            items
                .iter()
                .map(|item| {
                    item.as_str().map(str::to_owned).ok_or_else(|| {
                        ReqError::bad_request("field \"benches\" must be an array of strings")
                    })
                })
                .collect()
        }
        (Some(_), None) => Err(ReqError::bad_request(
            "field \"benches\" must be an array of strings",
        )),
        (None, Some(name)) => {
            let suite = match name {
                "spec-int" | "specint" => powerchop_workloads::Suite::SpecInt,
                "spec-fp" | "specfp" => powerchop_workloads::Suite::SpecFp,
                "parsec" => powerchop_workloads::Suite::Parsec,
                "mobile" | "mobilebench" => powerchop_workloads::Suite::MobileBench,
                other => {
                    return Err(ReqError::bad_request(format!(
                        "unknown suite {other:?} (expected spec-int|spec-fp|parsec|mobile)"
                    )))
                }
            };
            Ok(powerchop_workloads::suite(suite)
                .map(|b| b.name().to_owned())
                .collect())
        }
        (None, None) => Ok(powerchop_workloads::all()
            .iter()
            .map(|b| b.name().to_owned())
            .collect()),
    }
}

/// Parses and validates one request line.
///
/// # Errors
///
/// Returns a [`ReqError`] (400/404) describing exactly which field was
/// malformed; the daemon sends it back verbatim as the error reply.
pub fn parse_request(line: &str, limits: &Limits) -> Result<Request, ReqError> {
    let v = Json::parse(line).map_err(|e| ReqError::bad_request(format!("invalid JSON: {e}")))?;
    if !matches!(v, Json::Obj(_)) {
        return Err(ReqError::bad_request("request must be a JSON object"));
    }
    let op = want_str(&v, "op")?
        .ok_or_else(|| ReqError::bad_request("missing required field \"op\""))?;
    match op {
        "run" => Ok(Request::Run(Box::new(run_spec(&v, limits, None)?))),
        "sweep" => {
            let specs = sweep_benches(&v)?
                .iter()
                .map(|bench| run_spec(&v, limits, Some(bench)))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Request::Sweep(specs))
        }
        "status" => Ok(Request::Status),
        "health" => Ok(Request::Health),
        "metrics" => Ok(Request::Metrics),
        "shutdown" => Ok(Request::Shutdown),
        other => Err(ReqError::bad_request(format!(
            "unknown op {other:?} (expected run|sweep|status|health|metrics|shutdown)"
        ))),
    }
}

/// Renders an error reply line. `trace` is the request's trace id,
/// echoed back so even shed requests (408/429/503) stay attributable;
/// zero means "no trace assigned" (e.g. the connection was rejected
/// before a request existed) and omits the field.
#[must_use]
pub fn error_reply(e: &ReqError, trace: u64) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", false);
    w.field_u64("code", u64::from(e.code));
    w.field_str("error", e.slug);
    w.field_str("message", &e.message);
    if trace != 0 {
        w.field_str("trace_id", &powerchop_telemetry::format_trace_id(trace));
    }
    w.finish()
}

/// Renders a successful `run` reply. `report_json` is spliced in raw,
/// so the embedded report is byte-identical to `powerchop-cli run
/// --json` output for the same request; the `trace_id` field is the
/// one request-unique part of the envelope.
#[must_use]
pub fn run_reply(trace: u64, cached: bool, report_json: &str) -> String {
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "run");
    w.field_bool("cached", cached);
    w.field_str("trace_id", &powerchop_telemetry::format_trace_id(trace));
    w.field_raw("report", report_json);
    w.finish()
}

/// Removes the `,"trace_id":"..."` field from a reply line. Replies
/// are deterministic except for the per-request trace id, so clients
/// (and the bit-identity tests) compare `strip_trace_id(reply)`
/// against a baseline byte-for-byte.
#[must_use]
pub fn strip_trace_id(reply: &str) -> String {
    const NEEDLE: &str = ",\"trace_id\":\"";
    let Some(start) = reply.find(NEEDLE) else {
        return reply.to_owned();
    };
    let rest = &reply[start + NEEDLE.len()..];
    let Some(endq) = rest.find('"') else {
        return reply.to_owned();
    };
    let mut out = String::with_capacity(reply.len());
    out.push_str(&reply[..start]);
    out.push_str(&rest[endq + 1..]);
    out
}

/// One benchmark's outcome inside a sweep reply.
#[derive(Debug)]
pub enum SweepOutcome {
    /// The run completed; the reply embeds its report.
    Done {
        /// Served from the result cache.
        cached: bool,
        /// The report JSON.
        report: String,
    },
    /// The run failed; the reply embeds the typed error.
    Failed(ReqError),
}

/// Renders a `sweep` reply. The envelope is `ok:true` whenever the
/// sweep itself was dispatched; per-benchmark failures are typed rows.
/// The trace id sits on the envelope only — rows stay deterministic.
#[must_use]
pub fn sweep_reply(trace: u64, rows: &[(String, SweepOutcome)]) -> String {
    let mut items = JsonWriter::array();
    let mut completed = 0u64;
    for (bench, outcome) in rows {
        let mut row = JsonWriter::object();
        row.field_str("bench", bench);
        match outcome {
            SweepOutcome::Done { cached, report } => {
                completed += 1;
                row.field_bool("ok", true);
                row.field_bool("cached", *cached);
                row.field_raw("report", report);
            }
            SweepOutcome::Failed(e) => {
                row.field_bool("ok", false);
                row.field_u64("code", u64::from(e.code));
                row.field_str("error", e.slug);
                row.field_str("message", &e.message);
            }
        }
        items.push_raw(&row.finish());
    }
    let mut w = JsonWriter::object();
    w.field_bool("ok", true);
    w.field_str("op", "sweep");
    w.field_str("trace_id", &powerchop_telemetry::format_trace_id(trace));
    w.field_u64("count", rows.len() as u64);
    w.field_u64("completed", completed);
    w.field_raw("results", &items.finish());
    w.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits {
            max_budget: 1_000_000_000,
            deadline_ms: 120_000,
            allow_chaos: false,
        }
    }

    fn chaos_limits() -> Limits {
        Limits {
            allow_chaos: true,
            ..limits()
        }
    }

    fn bad(line: &str) -> ReqError {
        parse_request(line, &limits()).expect_err(line)
    }

    #[test]
    fn run_requests_parse_with_defaults_and_overrides() {
        let r = parse_request(r#"{"op":"run","bench":"hmmer"}"#, &limits()).unwrap();
        let Request::Run(spec) = r else {
            panic!("expected run")
        };
        assert_eq!(spec.bench, "hmmer");
        assert_eq!(spec.manager, ManagerKind::PowerChop);
        assert_eq!(spec.budget, 8_000_000);
        assert_eq!(spec.scale, 1.0);
        assert_eq!(spec.seed, None);
        assert!(!spec.storm);
        assert_eq!(spec.deadline_ms, 120_000);

        let r = parse_request(
            r#"{"op":"run","bench":"gcc","manager":"full","budget":5,"scale":0.25,"seed":9,"storm":true,"deadline_ms":50}"#,
            &limits(),
        )
        .unwrap();
        let Request::Run(spec) = r else {
            panic!("expected run")
        };
        assert_eq!(spec.manager, ManagerKind::FullPower);
        assert_eq!(spec.budget, 5);
        assert_eq!(spec.scale, 0.25);
        assert_eq!(spec.seed, Some(9));
        assert!(spec.storm);
        assert_eq!(spec.deadline_ms, 50);
    }

    #[test]
    fn deadlines_clamp_to_the_server_cap() {
        let r = parse_request(
            r#"{"op":"run","bench":"hmmer","deadline_ms":999999999}"#,
            &limits(),
        )
        .unwrap();
        let Request::Run(spec) = r else {
            panic!("expected run")
        };
        assert_eq!(spec.deadline_ms, 120_000, "cannot extend past the cap");
    }

    #[test]
    fn malformed_requests_get_typed_400s() {
        for (line, needle) in [
            ("", "invalid JSON"),
            ("{", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            ("{}", "\"op\""),
            (r#"{"op":"reboot"}"#, "unknown op"),
            (r#"{"op":"run"}"#, "\"bench\""),
            (r#"{"op":"run","bench":7}"#, "must be a string"),
            (
                r#"{"op":"run","bench":"hmmer","manager":"warp"}"#,
                "unknown manager",
            ),
            (r#"{"op":"run","bench":"hmmer","budget":0}"#, "budget"),
            (
                r#"{"op":"run","bench":"hmmer","budget":-3}"#,
                "non-negative integer",
            ),
            (
                r#"{"op":"run","bench":"hmmer","budget":2000000000}"#,
                "budget",
            ),
            (r#"{"op":"run","bench":"hmmer","scale":0}"#, "scale"),
            (r#"{"op":"run","bench":"hmmer","scale":-1}"#, "scale"),
            (
                r#"{"op":"run","bench":"hmmer","scale":1e999}"#,
                "invalid JSON",
            ),
            (r#"{"op":"run","bench":"hmmer","storm":"yes"}"#, "boolean"),
            (r#"{"op":"sweep","benches":[]}"#, "must not be empty"),
            (r#"{"op":"sweep","benches":"hmmer"}"#, "array of strings"),
            (
                r#"{"op":"sweep","benches":["hmmer"],"suite":"parsec"}"#,
                "not both",
            ),
            (r#"{"op":"sweep","suite":"doom"}"#, "unknown suite"),
        ] {
            let e = bad(line);
            assert_eq!(e.code, 400, "{line}: {e}");
            assert!(e.message.contains(needle), "{line}: {e}");
        }
        let e = bad(r#"{"op":"run","bench":"doom"}"#);
        assert_eq!(e.code, 404);
        assert_eq!(e.slug, "not-found");
    }

    #[test]
    fn sweep_rosters_resolve() {
        let Request::Sweep(all) = parse_request(r#"{"op":"sweep"}"#, &limits()).unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(all.len(), powerchop_workloads::all().len());

        let Request::Sweep(named) = parse_request(
            r#"{"op":"sweep","benches":["hmmer","namd"],"budget":10}"#,
            &limits(),
        )
        .unwrap() else {
            panic!("expected sweep")
        };
        assert_eq!(named.len(), 2);
        assert!(named.iter().all(|s| s.budget == 10));

        let Request::Sweep(suite) =
            parse_request(r#"{"op":"sweep","suite":"parsec"}"#, &limits()).unwrap()
        else {
            panic!("expected sweep")
        };
        assert!(!suite.is_empty());
        // A sweep naming an unknown benchmark fails as a whole with 404.
        let e = bad(r#"{"op":"sweep","benches":["hmmer","doom"]}"#);
        assert_eq!(e.code, 404);
    }

    #[test]
    fn chaos_ops_are_gated_behind_the_limit_flag() {
        let line = r#"{"op":"run","bench":"hmmer","chaos":"panic"}"#;
        let e = bad(line);
        assert_eq!(e.code, 400);
        assert!(e.message.contains("--chaos-ops"), "{e}");

        let r = parse_request(line, &chaos_limits()).unwrap();
        let Request::Run(spec) = r else {
            panic!("expected run")
        };
        assert!(spec.chaos_panic);

        let e = parse_request(
            r#"{"op":"run","bench":"hmmer","chaos":"meteor"}"#,
            &chaos_limits(),
        )
        .expect_err("unknown chaos op");
        assert!(e.message.contains("unknown chaos op"), "{e}");
    }

    #[test]
    fn control_ops_parse() {
        assert_eq!(
            parse_request(r#"{"op":"status"}"#, &limits()).unwrap(),
            Request::Status
        );
        assert_eq!(
            parse_request(r#"{"op":"health"}"#, &limits()).unwrap(),
            Request::Health
        );
        assert_eq!(
            parse_request(r#"{"op":"metrics"}"#, &limits()).unwrap(),
            Request::Metrics
        );
        assert_eq!(
            parse_request(r#"{"op":"shutdown"}"#, &limits()).unwrap(),
            Request::Shutdown
        );
    }

    #[test]
    fn replies_are_well_formed_json() {
        let err = error_reply(&ReqError::busy(4), 0xBEEF);
        powerchop_telemetry::validate_json(&err).expect("error reply is valid JSON");
        assert!(err.contains("\"code\":429"));
        assert!(err.contains("\"trace_id\":\"000000000000beef\""));
        assert!(
            !error_reply(&ReqError::busy(4), 0).contains("trace_id"),
            "a zero trace id is omitted"
        );

        let run = run_reply(0xBEEF, true, r#"{"program":"x"}"#);
        powerchop_telemetry::validate_json(&run).expect("run reply is valid JSON");
        assert!(run.contains("\"cached\":true"));
        assert!(run.contains("\"trace_id\":\"000000000000beef\""));

        let sweep = sweep_reply(
            0xBEEF,
            &[
                (
                    "hmmer".into(),
                    SweepOutcome::Done {
                        cached: false,
                        report: r#"{"program":"hmmer"}"#.into(),
                    },
                ),
                ("namd".into(), SweepOutcome::Failed(ReqError::deadline(5))),
            ],
        );
        powerchop_telemetry::validate_json(&sweep).expect("sweep reply is valid JSON");
        assert!(sweep.contains("\"completed\":1"));
        assert!(sweep.contains("\"code\":408"));
        assert!(sweep.contains("\"trace_id\":\"000000000000beef\""));
    }

    #[test]
    fn strip_trace_id_recovers_the_untraced_envelope() {
        let traced = run_reply(0xBEEF, false, r#"{"program":"x"}"#);
        assert_eq!(
            strip_trace_id(&traced),
            r#"{"ok":true,"op":"run","cached":false,"report":{"program":"x"}}"#
        );
        let untraced = r#"{"ok":true,"op":"status"}"#;
        assert_eq!(
            strip_trace_id(untraced),
            untraced,
            "no-op without the field"
        );
    }

    #[test]
    fn fault_configs_mirror_the_cli() {
        assert!(fault_config(None, false).is_none());
        assert!(fault_config(Some(7), false).is_some());
        assert!(fault_config(None, true).is_some());
    }
}
