//! `powerchop-serve`: a dependency-free TCP daemon for PowerChop runs.
//!
//! The daemon speaks newline-delimited JSON on a plain TCP socket —
//! `nc` is a complete client — and serves six ops: `run`, `sweep`,
//! `status`, `health`, `metrics` and `shutdown`. Simulations dispatch
//! onto the bounded [`powerchop_exec::WorkerPool`]; a full queue sheds
//! requests with an explicit 429-style reply instead of queueing
//! unboundedly, a max-connections gate and per-socket timeouts shed
//! slow or excess clients with typed replies, and a circuit breaker
//! plus worker supervision keep the daemon serving through repeated
//! failures (see `powerchop-resilience`).
//! Completed reports land in an LRU cache keyed by the checkpoint
//! crate's program + configuration fingerprints, so repeated requests
//! are answered from memory, bit-identically. Every run is watched by a
//! wall-clock deadline mirroring the CLI `supervise` machinery, and a
//! plain HTTP `GET /metrics` on the same port serves the Prometheus
//! text exposition for `curl` and scrapers.
//!
//! With `--journal-dir` set the daemon is crash-consistent: accepted
//! requests are journaled to an fsync'd write-ahead log before
//! dispatch, in-flight runs spill periodic checkpoints, and cached
//! replies persist to a write-through log, so a `kill -9` loses no
//! accepted work — the restarted daemon replays the journal, resumes
//! interrupted sweeps from their last durable chunk and reports the
//! recovery in its `health` op (see `powerchop-durable`).
//!
//! Module map:
//! - [`json`] — strict RFC 8259 request parsing (reader side).
//! - [`protocol`] — request validation and reply rendering.
//! - [`cache`] — the sharded LRU result cache.
//! - `durability` — journal/spill/cache-log glue over `powerchop-durable`.
//! - [`net`] — raw epoll/eventfd syscall wrappers (the only unsafe code).
//! - [`wheel`] — the timing wheel behind read/write deadlines.
//! - [`server`] — the epoll event loop, dispatch, drain.
//! - `report` — the shared run-report serializer the CLI re-exports.
//!
//! See `DESIGN.md` §9 for the protocol and backpressure policy, §11
//! for the durability model and §14 for the event-loop state machine.

// `deny` rather than `forbid`: the `net` module issues the epoll
// syscalls via inline asm (the workspace is dependency-free) and opts
// in explicitly; everything else stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
mod durability;
pub mod json;
pub mod net;
pub mod protocol;
mod report;
pub mod server;
pub mod wheel;

pub use protocol::{
    error_reply, fault_config, parse_request, strip_trace_id, ReqError, Request, RunSpec,
    DEFAULT_FAULT_SEED,
};
pub use report::report_to_json;
pub use server::{Server, ServerConfig};
