//! The LRU result cache.
//!
//! Replies are cached by the 128-bit run key from
//! [`powerchop_checkpoint::run_key`]: program fingerprint in the high
//! half, manager + configuration fingerprint in the low half. Two
//! requests collide only when they would produce bit-identical reports
//! (same program bytes, same manager, same budget/scale/fault schedule),
//! so a hit can be replayed verbatim.
//!
//! The store is a `VecDeque` in recency order (front = coldest). At the
//! daemon's default capacity of 64 entries a linear scan is faster than
//! any hashed structure's constant factors, and it keeps this crate
//! allocation-predictable.

use std::collections::VecDeque;

/// A fixed-capacity least-recently-used map from run key to reply.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: VecDeque<(u128, String)>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` replies. A capacity of
    /// zero disables caching entirely: every `get` misses, every `put`
    /// is a no-op.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<String> {
        let index = self.entries.iter().position(|(k, _)| *k == key)?;
        // Move to the back (most recent) so hot entries survive eviction.
        let entry = self.entries.remove(index)?;
        let value = entry.1.clone();
        self.entries.push_back(entry);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the coldest entry when at
    /// capacity.
    pub fn put(&mut self, key: u128, value: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some(index) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(index);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((key, value));
    }

    /// Number of cached replies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The live entries in recency order (coldest first). Replaying
    /// these through [`ResultCache::put`] in order reproduces the cache
    /// exactly — the persistence layer compacts its log from this.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &str)> {
        self.entries.iter().map(|(k, v)| (*k, v.as_str()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.put(1, "one".into());
        c.put(2, "two".into());
        // Touch 1 so 2 becomes the coldest entry.
        assert_eq!(c.get(1).as_deref(), Some("one"));
        c.put(3, "three".into());
        assert_eq!(c.get(2), None, "coldest entry evicted");
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_keys_without_growth() {
        let mut c = ResultCache::new(2);
        c.put(1, "old".into());
        c.put(2, "two".into());
        c.put(1, "new".into());
        assert_eq!(c.len(), 2);
        c.put(3, "three".into());
        assert_eq!(c.get(2), None, "refreshed key outlived the other");
        assert_eq!(c.get(1).as_deref(), Some("new"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put(1, "one".into());
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }
}
