//! The LRU result cache.
//!
//! Replies are cached by the 128-bit run key from
//! [`powerchop_checkpoint::run_key`]: program fingerprint in the high
//! half, manager + configuration fingerprint in the low half. Two
//! requests collide only when they would produce bit-identical reports
//! (same program bytes, same manager, same budget/scale/fault schedule),
//! so a hit can be replayed verbatim.
//!
//! The store is a `VecDeque` in recency order (front = coldest). At the
//! daemon's default capacity of 64 entries a linear scan is faster than
//! any hashed structure's constant factors, and it keeps this crate
//! allocation-predictable.
//!
//! The daemon wraps it in a [`ShardedCache`]: one independently-locked
//! [`ResultCache`] per worker, selected by a hash of the run key, so
//! concurrent settler threads never contend on a single global cache
//! lock. Hit/miss accounting stays aggregated in the server's metrics
//! registry, so sharding is invisible in `/metrics`.

use std::collections::VecDeque;
use std::sync::{Mutex, MutexGuard, PoisonError};

/// A fixed-capacity least-recently-used map from run key to reply.
#[derive(Debug)]
pub struct ResultCache {
    capacity: usize,
    entries: VecDeque<(u128, String)>,
}

impl ResultCache {
    /// Creates a cache holding at most `capacity` replies. A capacity of
    /// zero disables caching entirely: every `get` misses, every `put`
    /// is a no-op.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: VecDeque::with_capacity(capacity.min(1024)),
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: u128) -> Option<String> {
        let index = self.entries.iter().position(|(k, _)| *k == key)?;
        // Move to the back (most recent) so hot entries survive eviction.
        let entry = self.entries.remove(index)?;
        let value = entry.1.clone();
        self.entries.push_back(entry);
        Some(value)
    }

    /// Inserts (or refreshes) `key`, evicting the coldest entry when at
    /// capacity.
    pub fn put(&mut self, key: u128, value: String) {
        if self.capacity == 0 {
            return;
        }
        if let Some(index) = self.entries.iter().position(|(k, _)| *k == key) {
            self.entries.remove(index);
        } else if self.entries.len() >= self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((key, value));
    }

    /// Number of cached replies.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The live entries in recency order (coldest first). Replaying
    /// these through [`ResultCache::put`] in order reproduces the cache
    /// exactly — the persistence layer compacts its log from this.
    pub fn entries(&self) -> impl Iterator<Item = (u128, &str)> {
        self.entries.iter().map(|(k, v)| (*k, v.as_str()))
    }
}

/// Locks a shard, riding through poisoning (a panicked holder cannot
/// corrupt the recency list in a way readers care about).
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Mixes a 128-bit run key down to a shard index. SplitMix64's finisher
/// over the xor-folded halves: the run key is already a fingerprint, but
/// folding alone would let structured low bits skew the shards.
fn shard_of(key: u128, shards: usize) -> usize {
    let mut x = (key as u64) ^ ((key >> 64) as u64);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    (x % shards as u64) as usize
}

/// A result cache split into independently-locked LRU shards.
///
/// The total capacity is divided evenly across shards (rounded up, so
/// the configured capacity is a floor, not a ceiling). A key always
/// hashes to the same shard, so recency and eviction are per-shard —
/// the standard sharded-LRU tradeoff for killing lock contention.
#[derive(Debug)]
pub struct ShardedCache {
    shards: Vec<Mutex<ResultCache>>,
    capacity: usize,
}

impl ShardedCache {
    /// A cache of `shards` shards holding `capacity` replies in total
    /// (0 disables caching). At least one shard always exists.
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> Self {
        let shards = shards.max(1);
        let per_shard = if capacity == 0 {
            0
        } else {
            capacity.div_ceil(shards)
        };
        Self {
            shards: (0..shards)
                .map(|_| Mutex::new(ResultCache::new(per_shard)))
                .collect(),
            capacity,
        }
    }

    /// Looks up `key` in its shard, refreshing recency on a hit.
    pub fn get(&self, key: u128) -> Option<String> {
        lock(&self.shards[shard_of(key, self.shards.len())]).get(key)
    }

    /// Inserts (or refreshes) `key` in its shard. Returns whether the
    /// cache is enabled at all — callers use this to skip write-through
    /// persistence when caching is off.
    pub fn put(&self, key: u128, value: String) -> bool {
        if self.capacity == 0 {
            return false;
        }
        lock(&self.shards[shard_of(key, self.shards.len())]).put(key, value);
        true
    }

    /// Cached replies across every shard.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether every shard is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The configured total capacity.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// How many shards back the cache.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Absorbs a flat cache (the boot-time reload path): entries are
    /// redistributed to their shards in the flat cache's recency order,
    /// so per-shard recency reproduces the persisted order.
    pub fn absorb(&self, flat: ResultCache) {
        for (key, value) in flat.entries() {
            self.put(key, value.to_owned());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eviction_is_least_recently_used() {
        let mut c = ResultCache::new(2);
        c.put(1, "one".into());
        c.put(2, "two".into());
        // Touch 1 so 2 becomes the coldest entry.
        assert_eq!(c.get(1).as_deref(), Some("one"));
        c.put(3, "three".into());
        assert_eq!(c.get(2), None, "coldest entry evicted");
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(3).as_deref(), Some("three"));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn put_refreshes_existing_keys_without_growth() {
        let mut c = ResultCache::new(2);
        c.put(1, "old".into());
        c.put(2, "two".into());
        c.put(1, "new".into());
        assert_eq!(c.len(), 2);
        c.put(3, "three".into());
        assert_eq!(c.get(2), None, "refreshed key outlived the other");
        assert_eq!(c.get(1).as_deref(), Some("new"));
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let mut c = ResultCache::new(0);
        c.put(1, "one".into());
        assert!(c.is_empty());
        assert_eq!(c.get(1), None);
    }

    #[test]
    fn sharded_cache_round_trips_across_shards() {
        let c = ShardedCache::new(64, 4);
        assert_eq!(c.shard_count(), 4);
        for k in 0..32u128 {
            assert!(c.put(k, format!("r{k}")));
        }
        for k in 0..32u128 {
            assert_eq!(c.get(k).as_deref(), Some(format!("r{k}").as_str()));
        }
        assert_eq!(c.len(), 32);
        assert_eq!(c.capacity(), 64);
    }

    #[test]
    fn sharded_keys_are_stable_and_capacity_is_a_floor() {
        // The same key must land in the same shard every time, and the
        // per-shard split must never shrink the total below the
        // configured capacity.
        let c = ShardedCache::new(10, 3);
        for k in 0..10u128 {
            c.put(k, "x".into());
        }
        assert!(c.len() >= 10.min(c.capacity()) - 3, "skew tolerated");
        for k in 0..10u128 {
            let first = c.get(k).is_some();
            assert_eq!(c.get(k).is_some(), first, "stable placement for {k}");
        }
    }

    #[test]
    fn sharded_zero_capacity_disables_and_absorb_restores_recency() {
        let off = ShardedCache::new(0, 4);
        assert!(!off.put(1, "one".into()));
        assert_eq!(off.get(1), None);

        let mut flat = ResultCache::new(8);
        flat.put(1, "one".into());
        flat.put(2, "two".into());
        let c = ShardedCache::new(8, 2);
        c.absorb(flat);
        assert_eq!(c.get(1).as_deref(), Some("one"));
        assert_eq!(c.get(2).as_deref(), Some("two"));
        assert_eq!(c.len(), 2);
    }
}
