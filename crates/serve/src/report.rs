//! Run-report serialization shared by the daemon and the CLI.
//!
//! This lives here (rather than in `powerchop-cli`) so the daemon can
//! reply with the exact same bytes `powerchop-cli run --json` prints —
//! bit-identical reports are the serve protocol's correctness contract,
//! and the CLI re-exports this function instead of duplicating it.

use powerchop::RunReport;
use powerchop_telemetry::export::JsonWriter;

/// Serializes a run report to a flat JSON object via the shared
/// escaping-safe writer (hand-rolled machinery in `powerchop-telemetry`,
/// so the core crates stay dependency-free).
#[must_use]
pub fn report_to_json(r: &RunReport) -> String {
    let mut w = JsonWriter::object();
    w.field_str("program", &r.name);
    w.field_str("manager", r.manager);
    w.field_str("core", &r.core_kind.to_string());
    w.field_u64("instructions", r.instructions);
    w.field_u64("cycles", r.cycles);
    w.field_f64("ipc", r.ipc(), 6);
    w.field_f64("avg_power_w", r.energy.avg_power_w, 6);
    w.field_f64("leakage_power_w", r.energy.leakage_power_w, 6);
    w.field_f64("dynamic_power_w", r.energy.dynamic_power_w, 6);
    w.field_f64("total_energy_j", r.energy.total_j, 9);
    w.field_f64("vpu_off_frac", r.gated.vpu_off_frac(), 6);
    w.field_f64("bpu_off_frac", r.gated.bpu_off_frac(), 6);
    w.field_f64("mlc_gated_frac", r.gated.mlc_gated_frac(), 6);
    w.field_u64("switches_vpu", r.switches.vpu);
    w.field_u64("switches_bpu", r.switches.bpu);
    w.field_u64("switches_mlc", r.switches.mlc);
    w.field_u64("branches", r.stats.branches);
    w.field_u64("mispredicts", r.stats.mispredicts);
    w.field_u64("mlc_accesses", r.stats.mlc_accesses);
    w.field_u64("mlc_hits", r.stats.mlc_hits);
    w.field_u64("vec_ops", r.stats.vec_ops);
    w.field_u64("vec_emulated", r.stats.vec_emulated);
    if let Some(pvt) = r.pvt {
        w.field_u64("pvt_lookups", pvt.lookups);
        w.field_u64("pvt_misses", pvt.misses());
    }
    if let Some(cde) = r.cde {
        w.field_u64("phases_decided", cde.decided);
    }
    w.finish()
}
