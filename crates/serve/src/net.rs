//! Dependency-free Linux readiness primitives for the serve event loop.
//!
//! The workspace has no external crates, so the three epoll syscalls
//! (`epoll_create1`, `epoll_ctl`, `epoll_wait`) and the eventfd wakeup
//! channel are issued directly via inline asm, mirroring the JIT code
//! arena's raw `mmap`/`mprotect`/`munmap` style
//! (`crates/bt/src/jit/backend/arena.rs`). Everything above this module
//! is safe code: the wrappers own their fds, close them on drop, and
//! expose `std::io::Result` like any other I/O handle.
//!
//! Only the syscall layer differs per architecture; x86-64 and aarch64
//! Linux are both covered (aarch64 has no `epoll_wait`, so both arches
//! go through `epoll_pwait` with a null sigmask).
#![allow(unsafe_code)]

#[cfg(not(target_os = "linux"))]
compile_error!("powerchop-serve's event loop drives epoll directly and requires Linux");

#[cfg(target_arch = "x86_64")]
mod sys {
    pub const READ: usize = 0;
    pub const WRITE: usize = 1;
    pub const CLOSE: usize = 3;
    pub const EPOLL_CTL: usize = 233;
    pub const EPOLL_PWAIT: usize = 281;
    pub const EVENTFD2: usize = 290;
    pub const EPOLL_CREATE1: usize = 291;

    /// One raw syscall. Unused argument registers carry zeros, which
    /// every syscall used here ignores.
    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as isize => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                in("r9") a6,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }
}

#[cfg(target_arch = "aarch64")]
mod sys {
    pub const READ: usize = 63;
    pub const WRITE: usize = 64;
    pub const CLOSE: usize = 57;
    pub const EPOLL_CTL: usize = 21;
    pub const EPOLL_PWAIT: usize = 22;
    pub const EVENTFD2: usize = 19;
    pub const EPOLL_CREATE1: usize = 20;

    pub unsafe fn syscall6(
        nr: usize,
        a1: usize,
        a2: usize,
        a3: usize,
        a4: usize,
        a5: usize,
        a6: usize,
    ) -> isize {
        let ret: isize;
        unsafe {
            core::arch::asm!(
                "svc 0",
                inlateout("x0") a1 as isize => ret,
                in("x1") a2,
                in("x2") a3,
                in("x3") a4,
                in("x4") a5,
                in("x5") a6,
                in("x8") nr,
                options(nostack),
            );
        }
        ret
    }
}

use sys::syscall6;

/// Readable (there is input, or the peer closed).
pub const EPOLLIN: u32 = 0x001;
/// Writable (the send buffer has room again).
pub const EPOLLOUT: u32 = 0x004;
/// Error condition on the fd (always reported, never requested).
pub const EPOLLERR: u32 = 0x008;
/// Hangup (always reported, never requested).
pub const EPOLLHUP: u32 = 0x010;

const EPOLL_CTL_ADD: usize = 1;
const EPOLL_CTL_DEL: usize = 2;
const EPOLL_CTL_MOD: usize = 3;
const EPOLL_CLOEXEC: usize = 0x80000;
const EFD_NONBLOCK: usize = 0x800;
const EFD_CLOEXEC: usize = 0x80000;
const EINTR: isize = -4;

/// One readiness report from [`Epoll::wait`]. The kernel's layout: on
/// x86-64 the struct is packed (a 12-byte record); elsewhere it is
/// naturally aligned.
#[cfg_attr(target_arch = "x86_64", repr(C, packed))]
#[cfg_attr(not(target_arch = "x86_64"), repr(C))]
#[derive(Clone, Copy, Default)]
pub struct EpollEvent {
    /// Ready-event bitmask (`EPOLLIN` | `EPOLLOUT` | ...).
    pub events: u32,
    /// The token registered with the fd.
    pub data: u64,
}

/// Converts a raw syscall return into an `io::Result`.
fn check(ret: isize) -> std::io::Result<isize> {
    if (-4095..0).contains(&ret) {
        Err(std::io::Error::from_raw_os_error(-ret as i32))
    } else {
        Ok(ret)
    }
}

fn close_fd(fd: i32) {
    unsafe { syscall6(sys::CLOSE, fd as usize, 0, 0, 0, 0, 0) };
}

/// An owned epoll instance: register fds with a `u64` token, then
/// [`wait`](Epoll::wait) for readiness.
pub struct Epoll {
    fd: i32,
}

impl Epoll {
    /// Creates the epoll instance (`EPOLL_CLOEXEC`).
    ///
    /// # Errors
    ///
    /// Propagates the kernel's refusal (fd exhaustion, mostly).
    pub fn new() -> std::io::Result<Self> {
        let fd = check(unsafe { syscall6(sys::EPOLL_CREATE1, EPOLL_CLOEXEC, 0, 0, 0, 0, 0) })?;
        Ok(Self { fd: fd as i32 })
    }

    fn ctl(&self, op: usize, fd: i32, events: u32, token: u64) -> std::io::Result<()> {
        let mut ev = EpollEvent {
            events,
            data: token,
        };
        let ptr = if op == EPOLL_CTL_DEL {
            std::ptr::null_mut()
        } else {
            &mut ev as *mut EpollEvent
        };
        check(unsafe {
            syscall6(
                sys::EPOLL_CTL,
                self.fd as usize,
                op,
                fd as usize,
                ptr as usize,
                0,
                0,
            )
        })
        .map(|_| ())
    }

    /// Registers `fd` for `events`, delivering `token` on readiness.
    ///
    /// # Errors
    ///
    /// Propagates `EPOLL_CTL_ADD` failures (`EEXIST`, `EBADF`, ...).
    pub fn add(&self, fd: i32, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_ADD, fd, events, token)
    }

    /// Changes the registered interest mask for `fd`.
    ///
    /// # Errors
    ///
    /// Propagates `EPOLL_CTL_MOD` failures.
    pub fn modify(&self, fd: i32, events: u32, token: u64) -> std::io::Result<()> {
        self.ctl(EPOLL_CTL_MOD, fd, events, token)
    }

    /// Removes `fd` from the interest set (a no-op if already gone:
    /// closing an fd deregisters it implicitly).
    pub fn del(&self, fd: i32) {
        let _ = self.ctl(EPOLL_CTL_DEL, fd, 0, 0);
    }

    /// Waits up to `timeout_ms` (`-1` = forever) for readiness, filling
    /// `events` and returning how many entries are valid. A signal
    /// interruption reports zero events rather than an error.
    ///
    /// # Errors
    ///
    /// Propagates genuine `epoll_wait` failures (`EBADF`, `EFAULT`).
    pub fn wait(&self, events: &mut [EpollEvent], timeout_ms: i32) -> std::io::Result<usize> {
        let ret = unsafe {
            syscall6(
                sys::EPOLL_PWAIT,
                self.fd as usize,
                events.as_mut_ptr() as usize,
                events.len(),
                timeout_ms as isize as usize,
                0, // null sigmask: plain epoll_wait semantics
                0,
            )
        };
        if ret == EINTR {
            return Ok(0);
        }
        check(ret).map(|n| n as usize)
    }
}

impl Drop for Epoll {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

/// The worker→event-loop wakeup channel: an eventfd the settler threads
/// [`ring`](WakeFd::ring) after pushing a completion, so a blocked
/// `epoll_wait` returns immediately. Cheap enough to ring on every
/// completion; the loop drains the counter in one read.
pub struct WakeFd {
    fd: i32,
}

impl WakeFd {
    /// Creates the non-blocking eventfd.
    ///
    /// # Errors
    ///
    /// Propagates the kernel's refusal.
    pub fn new() -> std::io::Result<Self> {
        let fd =
            check(unsafe { syscall6(sys::EVENTFD2, 0, EFD_NONBLOCK | EFD_CLOEXEC, 0, 0, 0, 0) })?;
        Ok(Self { fd: fd as i32 })
    }

    /// The fd to register with [`Epoll::add`].
    #[must_use]
    pub fn raw(&self) -> i32 {
        self.fd
    }

    /// Signals the event loop. Best effort: the eventfd counter cannot
    /// realistically saturate, and a failed ring only delays delivery
    /// until the next loop iteration's drain.
    pub fn ring(&self) {
        let one: u64 = 1;
        unsafe {
            syscall6(
                sys::WRITE,
                self.fd as usize,
                (&raw const one) as usize,
                8,
                0,
                0,
                0,
            )
        };
    }

    /// Clears the pending wakeup count (one read resets an eventfd).
    pub fn drain(&self) {
        let mut buf: u64 = 0;
        unsafe {
            syscall6(
                sys::READ,
                self.fd as usize,
                (&raw mut buf) as usize,
                8,
                0,
                0,
                0,
            )
        };
    }
}

impl Drop for WakeFd {
    fn drop(&mut self) {
        close_fd(self.fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eventfd_wakes_epoll_and_drains() {
        let ep = Epoll::new().expect("epoll_create1");
        let wake = WakeFd::new().expect("eventfd2");
        ep.add(wake.raw(), EPOLLIN, 42).expect("ctl add");
        let mut events = [EpollEvent::default(); 4];
        // Nothing rung yet: a zero-timeout wait reports no readiness.
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        wake.ring();
        wake.ring();
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1, "two rings coalesce into one readable event");
        let (got_events, got_data) = (events[0].events, events[0].data);
        assert_ne!(got_events & EPOLLIN, 0);
        assert_eq!(got_data, 42, "token rides back on the event");
        wake.drain();
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0, "drained");
    }

    #[test]
    fn interest_can_be_modified_and_removed() {
        let ep = Epoll::new().expect("epoll_create1");
        let wake = WakeFd::new().expect("eventfd2");
        ep.add(wake.raw(), EPOLLIN, 7).expect("add");
        wake.ring();
        // Mask out EPOLLIN: the pending readability must not surface.
        ep.modify(wake.raw(), 0, 7).expect("mod");
        let mut events = [EpollEvent::default(); 4];
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
        ep.modify(wake.raw(), EPOLLIN, 9).expect("mod back");
        let n = ep.wait(&mut events, 1000).expect("wait");
        assert_eq!(n, 1);
        assert_eq!({ events[0].data }, 9, "token updates with the mask");
        ep.del(wake.raw());
        assert_eq!(ep.wait(&mut events, 0).expect("wait"), 0);
    }
}
