//! Serve-side crash-consistency glue over `powerchop-durable`.
//!
//! The daemon's durability story has three legs, all optional and all
//! switched on by `--journal-dir` / `--cache-dir`:
//!
//! - accepted `run`/`sweep` requests are journaled as [`Record::Intent`]
//!   *before* dispatch and retired with [`Record::Done`] once the client
//!   has its reply, so a `kill -9` can never silently drop accepted
//!   work;
//! - in-flight runs spill a `Simulation::snapshot` every
//!   [`Durability::spill_every`] retired instructions (atomic
//!   temp-file-then-rename, then a journaled [`Record::Spill`] marker),
//!   so the restarted daemon resumes from the last durable chunk with
//!   zero re-done chunks;
//! - cached replies are written through to a [`CacheLog`] so cache hits
//!   survive the restart bit-identically.
//!
//! This module owns the boot-time replay (journal + cache log,
//! compacting both), the typed [`RecoveryState`] that the `health` op
//! and the Prometheus counters report, and the spec <-> journal-record
//! conversions. The recovery *driver* — re-dispatching pending intents
//! onto the worker pool — lives in [`crate::server`], which owns the
//! pool.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use powerchop::{ManagerKind, SnapshotMeta};
use powerchop_durable::{
    compact, compact_results, journal_path, replay, replay_results, results_path, spill_path,
    CacheLog, Journal, PendingIntent, Record, SpecRecord,
};

use crate::cache::ResultCache;
use crate::protocol::RunSpec;

/// Locks a mutex, riding through poisoning (same policy as the server:
/// a panicked holder must not take the journal down with it).
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// What boot-time recovery found, frozen for the `health` op plus the
/// live counters the resume driver advances.
#[derive(Debug)]
pub(crate) struct RecoveryState {
    /// Nothing replayed, nothing discarded, nothing pending: the
    /// journal directory held no prior life to recover.
    pub clean_boot: bool,
    /// Valid journal records replayed at boot.
    pub journal_replayed: u64,
    /// Torn tails and corrupt frames discarded across the journal and
    /// the cache log.
    pub torn_discards: u64,
    /// Cache entries reloaded into the live LRU at boot.
    pub cache_reloaded: u64,
    /// Intents found without a `Done` record at boot.
    pub pending_intents: u64,
    /// Multi-run intents (sweeps) the resume driver finished.
    pub sweeps_resumed: AtomicU64,
    /// Individual runs the resume driver re-dispatched.
    pub runs_resumed: AtomicU64,
    /// Instructions recovered from spill checkpoints (work *not*
    /// re-done).
    pub resumed_instructions: AtomicU64,
    /// Instructions re-executed that a journaled spill claimed were
    /// already durable. Zero is the crash-consistency invariant; it
    /// only rises when a spill file itself was lost or unreadable.
    pub redone_instructions: AtomicU64,
    /// Whether the resume driver is still working through pending
    /// intents.
    pub active: AtomicBool,
}

/// The durable half of the daemon: journal handle, optional cache log,
/// spill policy and the recovery ledger.
#[derive(Debug)]
pub(crate) struct Durability {
    journal: Mutex<Journal>,
    /// Journal directory; spill files live beside the journal.
    pub dir: PathBuf,
    cache_log: Option<Mutex<CacheLog>>,
    /// Retired-instruction interval between checkpoint spills.
    pub spill_every: u64,
    next_id: AtomicU64,
    /// The boot-time recovery report plus live resume counters.
    pub recovery: RecoveryState,
}

impl Durability {
    /// Claims the next unused intent id.
    pub fn next_intent_id(&self) -> u64 {
        self.next_id.fetch_add(1, Ordering::SeqCst)
    }

    /// Appends one record, logging (not failing) on journal I/O errors:
    /// a full disk degrades durability, never availability.
    fn append(&self, record: &Record) {
        if let Err(e) = lock(&self.journal).append(record) {
            eprintln!("powerchop-serve: journal append failed: {e}");
        }
    }

    /// Journals an accepted request before dispatch. `trace` is the
    /// request's trace id, so a crash-recovery resume of this intent
    /// stays attributable to the request that asked for it.
    pub fn journal_intent(&self, id: u64, trace: u64, specs: &[RunSpec]) {
        self.append(&Record::Intent {
            id,
            trace,
            specs: specs.iter().map(spec_to_record).collect(),
        });
    }

    /// Journals a spill marker after its checkpoint file is durable.
    pub fn journal_spill(&self, id: u64, bench: &str, retired: u64) {
        self.append(&Record::Spill {
            id,
            bench: bench.to_owned(),
            retired,
        });
    }

    /// Retires an intent once the client has its reply.
    pub fn journal_done(&self, id: u64) {
        self.append(&Record::Done { id });
    }

    /// The spill checkpoint path for one of intent `id`'s runs.
    pub fn spill_file(&self, id: u64, bench: &str) -> PathBuf {
        spill_path(&self.dir, id, bench)
    }

    /// Removes the spill checkpoints of a retired intent (best effort —
    /// an orphaned spill is garbage, not corruption).
    pub fn remove_spills<'a>(&self, id: u64, benches: impl IntoIterator<Item = &'a str>) {
        for bench in benches {
            let _ = std::fs::remove_file(self.spill_file(id, bench));
        }
    }

    /// Writes a cached reply through to the persistent cache log.
    pub fn record_cache_put(&self, key: u128, reply: &str) {
        if let Some(log) = &self.cache_log {
            if let Err(e) = lock(log).append(key, reply) {
                eprintln!("powerchop-serve: cache log append failed: {e}");
            }
        }
    }
}

/// A dispatched run's spill/resume instructions, carried into the pool
/// job. `resume_from` is the last *journaled* spill point when this is
/// a boot-time resume; `recovery` switches the resumed/redone
/// accounting on.
#[derive(Debug, Clone)]
pub(crate) struct SpillPlan {
    /// Shared durability handle (journal + counters).
    pub durability: Arc<Durability>,
    /// The intent this run belongs to.
    pub id: u64,
    /// The spec being run (names the spill file, shapes the snapshot
    /// metadata).
    pub spec: RunSpec,
    /// Retired-instruction count the last journaled spill promised is
    /// durable on disk, when resuming.
    pub resume_from: Option<u64>,
    /// Whether this is a boot-time resume (drives the recovery ledger).
    pub recovery: bool,
}

impl SpillPlan {
    /// The spill checkpoint path for this run.
    pub fn path(&self) -> PathBuf {
        self.durability.spill_file(self.id, &self.spec.bench)
    }

    /// The self-describing metadata embedded in this run's snapshots.
    pub fn meta(&self) -> SnapshotMeta {
        SnapshotMeta {
            benchmark: self.spec.bench.clone(),
            scale: self.spec.scale,
            manager: manager_label(self.spec.manager).to_owned(),
            budget: self.spec.budget,
            fault_seed: self.spec.seed,
            storm: self.spec.storm,
        }
    }
}

/// Everything `Server::bind` needs back from boot-time recovery.
pub(crate) struct Boot {
    /// The live durability handle for the daemon's state.
    pub durability: Arc<Durability>,
    /// Intents to resume, in journal order.
    pub pending: Vec<PendingIntent>,
}

/// Boot-time recovery: replay and compact the journal, reload and
/// compact the cache log into `cache`, and hand back the live handles.
/// Compaction happens *before* the append handles open so they append
/// to the compacted files, not to replaced inodes.
///
/// # Errors
///
/// Propagates real filesystem failures (a corrupt or torn *content* is
/// recovered from, never an error).
pub(crate) fn boot(
    journal_dir: &Path,
    cache_dir: Option<&Path>,
    spill_every: u64,
    cache: &mut ResultCache,
) -> std::io::Result<Boot> {
    std::fs::create_dir_all(journal_dir)?;
    let jpath = journal_path(journal_dir);
    let scan = replay(&jpath)?;
    compact(&jpath, &scan.pending)?;
    let journal = Journal::open(&jpath)?;

    let mut torn_discards =
        u64::from(scan.torn_tail) + u64::from(scan.corrupt_frame) + scan.malformed_records;
    let mut cache_log = None;
    if let Some(dir) = cache_dir {
        std::fs::create_dir_all(dir)?;
        let rpath = results_path(dir);
        let replayed = replay_results(&rpath)?;
        torn_discards += u64::from(replayed.discarded);
        for (key, reply) in replayed.entries {
            cache.put(key, reply);
        }
        compact_results(
            &rpath,
            &cache
                .entries()
                .map(|(k, v)| (k, v.to_owned()))
                .collect::<Vec<_>>(),
        )?;
        cache_log = Some(Mutex::new(CacheLog::open(&rpath)?));
    }
    let cache_reloaded = cache.len() as u64;

    let pending_intents = scan.pending.len() as u64;
    let clean_boot = scan.records_replayed == 0 && torn_discards == 0 && cache_reloaded == 0;
    let durability = Arc::new(Durability {
        journal: Mutex::new(journal),
        dir: journal_dir.to_owned(),
        cache_log,
        spill_every: spill_every.max(1),
        next_id: AtomicU64::new(scan.next_id),
        recovery: RecoveryState {
            clean_boot,
            journal_replayed: scan.records_replayed,
            torn_discards,
            cache_reloaded,
            pending_intents,
            sweeps_resumed: AtomicU64::new(0),
            runs_resumed: AtomicU64::new(0),
            resumed_instructions: AtomicU64::new(0),
            redone_instructions: AtomicU64::new(0),
            active: AtomicBool::new(pending_intents > 0),
        },
    });
    Ok(Boot {
        durability,
        pending: scan.pending,
    })
}

/// The CLI-argument spelling of a manager, as embedded in snapshot
/// metadata (`powerchop::manager_kind_by_name` accepts every one).
pub(crate) fn manager_label(kind: ManagerKind) -> &'static str {
    match kind {
        ManagerKind::PowerChop => "powerchop",
        ManagerKind::FullPower => "full",
        ManagerKind::MinimalPower => "minimal",
        ManagerKind::TimeoutVpu { .. } => "timeout",
        ManagerKind::DrowsyMlc { .. } => "drowsy",
    }
}

/// Encodes a validated spec as its journal form.
pub(crate) fn spec_to_record(spec: &RunSpec) -> SpecRecord {
    let (manager_tag, manager_param) = match spec.manager {
        ManagerKind::PowerChop => (0, 0),
        ManagerKind::FullPower => (1, 0),
        ManagerKind::MinimalPower => (2, 0),
        ManagerKind::TimeoutVpu { timeout_cycles } => (3, timeout_cycles),
        ManagerKind::DrowsyMlc { period_cycles } => (4, period_cycles),
    };
    SpecRecord {
        bench: spec.bench.clone(),
        manager_tag,
        manager_param,
        budget: spec.budget,
        scale_bits: spec.scale.to_bits(),
        seed: spec.seed,
        storm: spec.storm,
    }
}

/// Decodes a journaled spec back into a dispatchable [`RunSpec`].
/// Resumed runs get the server's own deadline cap — the original
/// client's deadline died with the original client — and can never be
/// chaos runs (chaos requests are not journaled). Returns `None` for
/// records a different version journaled (unknown manager tag,
/// non-finite scale): skipping them is the safe reading.
pub(crate) fn record_to_spec(rec: &SpecRecord, deadline_ms: u64) -> Option<RunSpec> {
    let manager = match rec.manager_tag {
        0 => ManagerKind::PowerChop,
        1 => ManagerKind::FullPower,
        2 => ManagerKind::MinimalPower,
        3 => ManagerKind::TimeoutVpu {
            timeout_cycles: rec.manager_param,
        },
        4 => ManagerKind::DrowsyMlc {
            period_cycles: rec.manager_param,
        },
        _ => return None,
    };
    let scale = f64::from_bits(rec.scale_bits);
    if !scale.is_finite() || scale <= 0.0 {
        return None;
    }
    Some(RunSpec {
        bench: rec.bench.clone(),
        manager,
        budget: rec.budget,
        scale,
        seed: rec.seed,
        storm: rec.storm,
        deadline_ms,
        chaos_panic: false,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("pwc-sdur-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    fn spec(bench: &str, manager: ManagerKind) -> RunSpec {
        RunSpec {
            bench: bench.into(),
            manager,
            budget: 200_000,
            scale: 0.05,
            seed: Some(7),
            storm: false,
            deadline_ms: 1_000,
            chaos_panic: false,
        }
    }

    #[test]
    fn spec_record_roundtrip_preserves_every_manager() {
        for manager in [
            ManagerKind::PowerChop,
            ManagerKind::FullPower,
            ManagerKind::MinimalPower,
            ManagerKind::TimeoutVpu {
                timeout_cycles: 1234,
            },
            ManagerKind::DrowsyMlc { period_cycles: 99 },
        ] {
            let s = spec("hmmer", manager);
            let rec = spec_to_record(&s);
            let back = record_to_spec(&rec, 5_000).expect("valid record decodes");
            assert_eq!(back.manager, s.manager);
            assert_eq!(back.bench, s.bench);
            assert_eq!(back.budget, s.budget);
            assert_eq!(back.scale.to_bits(), s.scale.to_bits());
            assert_eq!(back.seed, s.seed);
            assert_eq!(back.deadline_ms, 5_000, "resume uses the server cap");
            assert!(!back.chaos_panic);
        }
    }

    #[test]
    fn unknown_tags_and_bad_scales_are_skipped_not_panicked() {
        let mut rec = spec_to_record(&spec("hmmer", ManagerKind::PowerChop));
        rec.manager_tag = 200;
        assert!(record_to_spec(&rec, 1_000).is_none());
        let mut rec = spec_to_record(&spec("hmmer", ManagerKind::PowerChop));
        rec.scale_bits = f64::NAN.to_bits();
        assert!(record_to_spec(&rec, 1_000).is_none());
        let mut rec = spec_to_record(&spec("hmmer", ManagerKind::PowerChop));
        rec.scale_bits = (-1.0f64).to_bits();
        assert!(record_to_spec(&rec, 1_000).is_none());
    }

    #[test]
    fn boot_on_an_empty_dir_is_clean() {
        let dir = temp_dir("clean");
        let mut cache = ResultCache::new(4);
        let boot = boot(&dir, Some(&dir), 1_000, &mut cache).expect("boot");
        let r = &boot.durability.recovery;
        assert!(r.clean_boot);
        assert_eq!(r.journal_replayed, 0);
        assert_eq!(r.torn_discards, 0);
        assert_eq!(r.cache_reloaded, 0);
        assert!(boot.pending.is_empty());
        assert!(!r.active.load(Ordering::SeqCst));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_replays_pending_intents_and_cache_entries() {
        let dir = temp_dir("replay");
        let mut cache = ResultCache::new(4);
        {
            let b = boot(&dir, Some(&dir), 1_000, &mut cache).expect("first boot");
            let id = b.durability.next_intent_id();
            b.durability
                .journal_intent(id, 0xF00D, &[spec("hmmer", ManagerKind::PowerChop)]);
            b.durability.journal_spill(id, "hmmer", 64_000);
            let done = b.durability.next_intent_id();
            b.durability
                .journal_intent(done, 0, &[spec("namd", ManagerKind::FullPower)]);
            b.durability.journal_done(done);
            b.durability.record_cache_put(42, r#"{"ok":true}"#);
        }
        // Simulated crash: nothing retired the first intent.
        let mut cache = ResultCache::new(4);
        let b = boot(&dir, Some(&dir), 1_000, &mut cache).expect("second boot");
        let r = &b.durability.recovery;
        assert!(!r.clean_boot);
        assert_eq!(b.pending.len(), 1);
        assert_eq!(b.pending[0].specs[0].bench, "hmmer");
        assert_eq!(b.pending[0].spilled.get("hmmer"), Some(&64_000));
        assert_eq!(b.pending[0].trace, 0xF00D, "trace id survives the crash");
        assert_eq!(r.cache_reloaded, 1);
        assert_eq!(cache.get(42).as_deref(), Some(r#"{"ok":true}"#));
        assert!(r.active.load(Ordering::SeqCst));
        // Fresh ids never collide with journaled ones.
        assert!(b.durability.next_intent_id() > b.pending[0].id);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn boot_discards_a_torn_journal_tail() {
        let dir = temp_dir("torn");
        let mut cache = ResultCache::new(4);
        {
            let b = boot(&dir, None, 1_000, &mut cache).expect("first boot");
            b.durability
                .journal_intent(0, 0, &[spec("hmmer", ManagerKind::PowerChop)]);
            b.durability
                .journal_intent(1, 0, &[spec("namd", ManagerKind::PowerChop)]);
        }
        let jpath = journal_path(&dir);
        let mut bytes = std::fs::read(&jpath).expect("read journal");
        bytes.truncate(bytes.len() - 3); // tear the last append
        std::fs::write(&jpath, &bytes).expect("write torn journal");
        let b = boot(&dir, None, 1_000, &mut cache).expect("recovering boot");
        let r = &b.durability.recovery;
        assert_eq!(r.torn_discards, 1);
        assert_eq!(b.pending.len(), 1, "only the intact record survives");
        assert_eq!(b.pending[0].id, 0);
        assert!(!r.clean_boot);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
