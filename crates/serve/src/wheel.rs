//! A hashed timing wheel for connection deadlines.
//!
//! The event loop replaces per-socket `SO_RCVTIMEO`/`SO_SNDTIMEO` with
//! wheel-driven deadlines: every armed timeout lands in a slot keyed by
//! its expiry tick, and the loop expires whole slots as its clock
//! advances — O(1) insert, O(slots touched) expiry, no per-socket
//! kernel state. Deadlines further out than one wheel revolution simply
//! stay in their slot until a revolution on which they are due
//! (entries carry their absolute expiry tick, so a slot visit never
//! fires them early).
//!
//! Cancellation is lazy: the payload the caller gets back identifies a
//! connection and the caller checks whether that deadline is still
//! armed. A stale entry fires into a no-op, which keeps arming and
//! disarming allocation-free on the hot path.

/// A wheel of timers carrying `T` payloads.
#[derive(Debug)]
pub struct TimerWheel<T> {
    slots: Vec<Vec<Entry<T>>>,
    granularity_ms: u64,
    /// The next tick `expire` will process.
    cursor: u64,
    len: usize,
}

#[derive(Debug)]
struct Entry<T> {
    expires: u64,
    payload: T,
}

impl<T> TimerWheel<T> {
    /// A wheel with `slots` buckets, each `granularity_ms` wide. The
    /// horizon of one revolution is `slots * granularity_ms`; longer
    /// deadlines cost extra no-op slot visits, nothing more.
    #[must_use]
    pub fn new(granularity_ms: u64, slots: usize) -> Self {
        Self {
            slots: (0..slots.max(1)).map(|_| Vec::new()).collect(),
            granularity_ms: granularity_ms.max(1),
            cursor: 0,
            len: 0,
        }
    }

    fn tick(&self, at_ms: u64) -> u64 {
        at_ms / self.granularity_ms
    }

    /// Arms a timer due `delay_ms` after `now_ms`. Rounded *up* to the
    /// next tick so a timer never fires before its deadline.
    pub fn insert(&mut self, now_ms: u64, delay_ms: u64, payload: T) {
        let due = now_ms.saturating_add(delay_ms);
        let expires = due
            .saturating_add(self.granularity_ms - 1)
            .checked_div(self.granularity_ms)
            .unwrap_or(u64::MAX)
            .max(self.cursor);
        let slot = (expires % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry { expires, payload });
        self.len += 1;
    }

    /// Drains every timer due at or before `now_ms` into `fired`,
    /// advancing the wheel's cursor.
    pub fn expire(&mut self, now_ms: u64, fired: &mut Vec<T>) {
        let now_tick = self.tick(now_ms);
        if now_tick < self.cursor {
            return;
        }
        let n = self.slots.len() as u64;
        // A long sleep may leap several revolutions; each slot only
        // needs one visit regardless.
        let steps = (now_tick - self.cursor + 1).min(n);
        for i in 0..steps {
            let slot = ((self.cursor + i) % n) as usize;
            let bucket = &mut self.slots[slot];
            let mut kept = 0;
            for j in 0..bucket.len() {
                if bucket[j].expires <= now_tick {
                    continue;
                }
                bucket.swap(kept, j);
                kept += 1;
            }
            for entry in bucket.drain(kept..) {
                fired.push(entry.payload);
                self.len -= 1;
            }
        }
        self.cursor = now_tick + 1;
    }

    /// Milliseconds until the earliest armed timer is due (`None` when
    /// the wheel is empty; zero when something is already overdue).
    #[must_use]
    pub fn next_timeout_ms(&self, now_ms: u64) -> Option<u64> {
        if self.len == 0 {
            return None;
        }
        let earliest = self
            .slots
            .iter()
            .flatten()
            .map(|e| e.expires)
            .min()
            .unwrap_or(u64::MAX);
        Some((earliest.saturating_mul(self.granularity_ms)).saturating_sub(now_ms))
    }

    /// Armed (including lazily-cancelled) timers.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no timers are armed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timers_fire_at_or_after_their_deadline_in_order_of_expiry() {
        let mut w = TimerWheel::new(8, 16);
        w.insert(0, 100, "b");
        w.insert(0, 20, "a");
        let mut fired = Vec::new();
        w.expire(19, &mut fired);
        assert!(fired.is_empty(), "nothing due before its deadline");
        w.expire(40, &mut fired);
        assert_eq!(fired, ["a"]);
        fired.clear();
        w.expire(200, &mut fired);
        assert_eq!(fired, ["b"]);
        assert!(w.is_empty());
    }

    #[test]
    fn deadlines_beyond_one_revolution_wait_their_turn() {
        // Horizon is 4 * 8 = 32 ms; a 100 ms timer shares a slot with
        // earlier ticks but must not fire on the first pass.
        let mut w = TimerWheel::new(8, 4);
        w.insert(0, 100, "far");
        w.insert(0, 10, "near");
        let mut fired = Vec::new();
        w.expire(16, &mut fired);
        assert_eq!(fired, ["near"]);
        fired.clear();
        w.expire(64, &mut fired);
        assert!(fired.is_empty(), "one revolution in, still not due");
        w.expire(104, &mut fired);
        assert_eq!(fired, ["far"]);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_timer() {
        let mut w = TimerWheel::new(10, 8);
        assert_eq!(w.next_timeout_ms(0), None);
        w.insert(0, 95, ());
        let t = w.next_timeout_ms(0).expect("armed");
        assert!((95..=100).contains(&t), "rounded up to a tick: {t}");
        assert_eq!(w.next_timeout_ms(500), Some(0), "overdue clamps to 0");
        let mut fired = Vec::new();
        w.expire(500, &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!(w.next_timeout_ms(500), None);
    }

    #[test]
    fn a_huge_clock_leap_visits_every_slot_once() {
        let mut w = TimerWheel::new(1, 8);
        for i in 0..32 {
            w.insert(0, i, i);
        }
        let mut fired = Vec::new();
        w.expire(u64::MAX / 2, &mut fired);
        assert_eq!(fired.len(), 32, "all due timers fire across the leap");
        assert!(w.is_empty());
    }
}
