//! A minimal RFC 8259 JSON value parser for incoming requests.
//!
//! The telemetry crate owns the *writer* side (and a structural
//! validator); this module is the *reader* side the daemon needs to
//! decode request lines. It builds a [`Json`] tree from a `&str`,
//! enforcing the RFC strictly: no trailing garbage, no control
//! characters inside strings, no non-finite number tokens (`NaN`,
//! `Infinity` and friends are not JSON), surrogate pairs decoded, and a
//! hard nesting depth cap so a hostile request cannot blow the stack.
//!
//! Hand-rolled on purpose — the workspace is dependency-free by policy.

/// Maximum nesting depth a request may use. Deep enough for any real
/// request (they are flat objects), shallow enough that recursion can
/// never approach stack exhaustion.
pub const MAX_DEPTH: usize = 32;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number. JSON does not distinguish integers from floats; use
    /// [`Json::as_u64`] to read integral values safely.
    Num(f64),
    /// A string, with all escapes decoded.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in source order. Duplicate keys are kept as-is;
    /// [`Json::get`] returns the first.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: where it happened and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the offending input.
    pub offset: usize,
    /// What went wrong.
    pub message: &'static str,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

fn fail(offset: usize, message: &'static str) -> JsonError {
    JsonError { offset, message }
}

impl Json {
    /// Parses `text` as exactly one JSON value.
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset for any RFC 8259
    /// violation: truncation, trailing bytes, bad escapes, unpaired
    /// surrogates, non-finite number tokens, or nesting past
    /// [`MAX_DEPTH`].
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let b = text.as_bytes();
        let mut pos = 0;
        skip_ws(b, &mut pos);
        let value = parse_value(b, &mut pos, 0)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(fail(pos, "trailing bytes after the JSON value"));
        }
        Ok(value)
    }

    /// Looks up `key` in an object (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, when this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean payload, when this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload, when this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer.
    ///
    /// JSON numbers are doubles, so only integers up to 2^53 survive
    /// the trip losslessly; anything fractional, negative or larger
    /// returns `None` rather than a silently rounded value.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        const MAX_EXACT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= MAX_EXACT => Some(*n as u64),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while matches!(b.get(*pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
        *pos += 1;
    }
}

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    match b.get(*pos) {
        None => Err(fail(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(b, pos, depth),
        Some(b'[') => parse_array(b, pos, depth),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b't') => parse_literal(b, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_literal(b, pos, b"false", Json::Bool(false)),
        Some(b'n') => parse_literal(b, pos, b"null", Json::Null),
        Some(b'N' | b'I' | b'i') | Some(b'-')
            if matches!(b.get(*pos), Some(b'-'))
                && matches!(b.get(*pos + 1), Some(b'N' | b'n' | b'I' | b'i'))
                || matches!(b.get(*pos), Some(b'N' | b'I' | b'i')) =>
        {
            Err(fail(
                *pos,
                "non-finite number token (NaN/Infinity) is not valid JSON",
            ))
        }
        Some(b'-' | b'0'..=b'9') => parse_number(b, pos),
        Some(_) => Err(fail(*pos, "unexpected character")),
    }
}

fn parse_literal(b: &[u8], pos: &mut usize, word: &[u8], value: Json) -> Result<Json, JsonError> {
    if b[*pos..].starts_with(word) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(fail(*pos, "invalid literal"))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: one zero, or a nonzero digit followed by digits.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(b'1'..=b'9') => {
            while matches!(b.get(*pos), Some(b'0'..=b'9')) {
                *pos += 1;
            }
        }
        _ => return Err(fail(start, "invalid number")),
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(fail(start, "invalid number"));
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !matches!(b.get(*pos), Some(b'0'..=b'9')) {
            return Err(fail(start, "invalid number"));
        }
        while matches!(b.get(*pos), Some(b'0'..=b'9')) {
            *pos += 1;
        }
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| fail(start, "invalid number"))?;
    let n: f64 = text.parse().map_err(|_| fail(start, "invalid number"))?;
    // A huge exponent like 1e999 overflows to infinity; refuse it here
    // so no caller ever sees a non-finite value out of a JSON document.
    if !n.is_finite() {
        return Err(fail(start, "number overflows the double range"));
    }
    Ok(Json::Num(n))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        // Copy the longest run of plain bytes in one push. Breaking on
        // ASCII bytes is safe inside multi-byte UTF-8 sequences because
        // continuation bytes are all >= 0x80.
        let run = *pos;
        while matches!(b.get(*pos), Some(&c) if c != b'"' && c != b'\\' && c >= 0x20) {
            *pos += 1;
        }
        if *pos > run {
            let s = std::str::from_utf8(&b[run..*pos]).map_err(|_| fail(run, "invalid UTF-8"))?;
            out.push_str(s);
        }
        match b.get(*pos) {
            None => return Err(fail(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                parse_escape(b, pos, &mut out)?;
            }
            Some(_) => return Err(fail(*pos, "control character in string")),
        }
    }
}

fn parse_escape(b: &[u8], pos: &mut usize, out: &mut String) -> Result<(), JsonError> {
    let at = *pos;
    match b.get(*pos) {
        Some(b'"') => out.push('"'),
        Some(b'\\') => out.push('\\'),
        Some(b'/') => out.push('/'),
        Some(b'b') => out.push('\u{0008}'),
        Some(b'f') => out.push('\u{000C}'),
        Some(b'n') => out.push('\n'),
        Some(b'r') => out.push('\r'),
        Some(b't') => out.push('\t'),
        Some(b'u') => {
            *pos += 1;
            let hi = parse_hex4(b, pos)?;
            let ch = if (0xD800..0xDC00).contains(&hi) {
                // High surrogate: a \uXXXX low surrogate must follow.
                if b.get(*pos) != Some(&b'\\') || b.get(*pos + 1) != Some(&b'u') {
                    return Err(fail(at, "unpaired surrogate in \\u escape"));
                }
                *pos += 2;
                let lo = parse_hex4(b, pos)?;
                if !(0xDC00..0xE000).contains(&lo) {
                    return Err(fail(at, "unpaired surrogate in \\u escape"));
                }
                let scalar = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                char::from_u32(scalar).ok_or(fail(at, "invalid \\u escape"))?
            } else if (0xDC00..0xE000).contains(&hi) {
                return Err(fail(at, "unpaired surrogate in \\u escape"));
            } else {
                char::from_u32(hi).ok_or(fail(at, "invalid \\u escape"))?
            };
            out.push(ch);
            return Ok(());
        }
        _ => return Err(fail(at, "invalid escape sequence")),
    }
    *pos += 1;
    Ok(())
}

fn parse_hex4(b: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    let mut value = 0u32;
    for _ in 0..4 {
        let digit = match b.get(*pos) {
            Some(c @ b'0'..=b'9') => u32::from(c - b'0'),
            Some(c @ b'a'..=b'f') => u32::from(c - b'a') + 10,
            Some(c @ b'A'..=b'F') => u32::from(c - b'A') + 10,
            _ => return Err(fail(*pos, "invalid \\u escape")),
        };
        value = (value << 4) | digit;
        *pos += 1;
    }
    Ok(value)
}

fn parse_array(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth >= MAX_DEPTH {
        return Err(fail(*pos, "nesting exceeds the depth limit"));
    }
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        skip_ws(b, pos);
        items.push(parse_value(b, pos, depth + 1)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(fail(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth >= MAX_DEPTH {
        return Err(fail(*pos, "nesting exceeds the depth limit"));
    }
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(fields));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(fail(*pos, "expected a string object key"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(fail(*pos, "expected ':' after object key"));
        }
        *pos += 1;
        skip_ws(b, pos);
        let value = parse_value(b, pos, depth + 1)?;
        fields.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            _ => return Err(fail(*pos, "expected ',' or '}' in object")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_and_containers_parse() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-12.5e2").unwrap(), Json::Num(-1250.0));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_owned())
        );
        let v = Json::parse(r#"{"op":"run","n":3,"flags":[true,null]}"#).unwrap();
        assert_eq!(v.get("op").and_then(Json::as_str), Some("run"));
        assert_eq!(v.get("n").and_then(Json::as_u64), Some(3));
        assert_eq!(
            v.get("flags"),
            Some(&Json::Arr(vec![Json::Bool(true), Json::Null]))
        );
        assert_eq!(v.get("missing"), None);
    }

    #[test]
    fn malformed_documents_are_rejected_with_offsets() {
        for bad in [
            "",
            "{",
            "}",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "01",
            "1.",
            "1e",
            "+1",
            "'x'",
            "{\"a\":1,}",
            "[1 2]",
            "\"unterminated",
            "{1:2}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
        let err = Json::parse("[1, 2] junk").unwrap_err();
        assert_eq!(err.message, "trailing bytes after the JSON value");
        assert_eq!(err.offset, 7);
    }

    #[test]
    fn non_finite_tokens_and_overflow_are_rejected() {
        for bad in ["NaN", "-NaN", "Infinity", "-Infinity", "inf", "-inf"] {
            let err = Json::parse(bad).unwrap_err();
            assert!(
                err.message.contains("non-finite"),
                "{bad}: got {}",
                err.message
            );
        }
        let err = Json::parse("1e999").unwrap_err();
        assert!(err.message.contains("overflows"));
    }

    #[test]
    fn string_escapes_decode_including_surrogate_pairs() {
        assert_eq!(
            Json::parse(r#""\"\\\/\b\f\n\r\t""#).unwrap(),
            Json::Str("\"\\/\u{8}\u{c}\n\r\t".to_owned())
        );
        assert_eq!(
            Json::parse(r#""Aé☃""#).unwrap(),
            Json::Str("Aé☃".to_owned())
        );
        // U+1F600 as a surrogate pair.
        assert_eq!(Json::parse(r#""😀""#).unwrap(), Json::Str("😀".to_owned()));
        for bad in [r#""\ud83d""#, r#""\ude00""#, r#""\ud83dA""#, r#""\x""#] {
            assert!(Json::parse(bad).is_err(), "{bad} should not parse");
        }
        // Raw control characters must be escaped per the RFC.
        assert!(Json::parse("\"a\nb\"").is_err());
    }

    #[test]
    fn depth_limit_holds() {
        let deep_ok = format!("{}0{}", "[".repeat(MAX_DEPTH), "]".repeat(MAX_DEPTH));
        assert!(Json::parse(&deep_ok).is_ok());
        let too_deep = format!(
            "{}0{}",
            "[".repeat(MAX_DEPTH + 1),
            "]".repeat(MAX_DEPTH + 1)
        );
        let err = Json::parse(&too_deep).unwrap_err();
        assert!(err.message.contains("depth"));
    }

    #[test]
    fn as_u64_refuses_lossy_values() {
        assert_eq!(Json::parse("42").unwrap().as_u64(), Some(42));
        assert_eq!(Json::parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(
            Json::parse("9007199254740992").unwrap().as_u64(),
            Some(1 << 53)
        );
        assert_eq!(Json::parse("1.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
        assert_eq!(Json::parse("1e300").unwrap().as_u64(), None);
        assert_eq!(Json::parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn duplicate_keys_resolve_to_the_first() {
        let v = Json::parse(r#"{"a":1,"a":2}"#).unwrap();
        assert_eq!(v.get("a").and_then(Json::as_u64), Some(1));
    }
}
