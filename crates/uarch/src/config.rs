//! Architectural design points (paper Table I).
//!
//! Two configurations are evaluated in the paper: a server core modelled on
//! Intel Nehalem and a mobile core modelled on ARM Cortex-A9. The numbers
//! here are taken from Table I where the paper gives them (cache geometry,
//! SIMD width, predictor sizes, area fractions, gating penalties); latencies
//! and power figures the paper leaves to gem5/McPAT are filled in with
//! standard values for those cores and documented per field.

/// Which design point a [`CoreConfig`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CoreKind {
    /// Intel Nehalem-like server core (runs SPEC CPU2006 and PARSEC).
    Server,
    /// ARM Cortex-A9-like mobile core (runs MobileBench R-GWB).
    Mobile,
}

impl std::fmt::Display for CoreKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreKind::Server => f.write_str("server"),
            CoreKind::Mobile => f.write_str("mobile"),
        }
    }
}

/// Geometry and latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in KiB (with all ways active).
    pub size_kib: u32,
    /// Associativity (number of ways).
    pub ways: u32,
    /// Line size in bytes.
    pub line_bytes: u32,
    /// Load-to-use latency in cycles charged when this level hits after a
    /// miss in the levels above it.
    pub hit_latency: u32,
}

impl CacheConfig {
    /// Number of sets implied by the geometry.
    #[must_use]
    pub fn sets(&self) -> u32 {
        (self.size_kib * 1024) / (self.ways * self.line_bytes)
    }
}

/// Branch-predictor sizing for one design point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BpuConfig {
    /// Entries in the large tournament predictor's BTB (4 K server, 2 K
    /// mobile per Table I).
    pub large_btb_entries: u32,
    /// Entries in the tournament chooser (16 K server, 8 K mobile).
    pub chooser_entries: u32,
    /// Entries in each of the tournament's local and global tables.
    pub table_entries: u32,
    /// Entries in the small always-on local predictor's table and BTB
    /// (1 K server, 512 mobile).
    pub small_entries: u32,
    /// Pipeline refill penalty on a mispredicted branch, in cycles.
    pub mispredict_penalty: u32,
}

/// Per-unit core-area fractions (paper Table I, "% of core").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AreaFractions {
    /// MLC share of core area (0.35 server, 0.60 mobile).
    pub mlc: f64,
    /// VPU share of core area (0.20 server, 0.18 mobile).
    pub vpu: f64,
    /// BPU share of core area (0.04 server, 0.03 mobile).
    pub bpu: f64,
}

/// Cycle penalties for power-gating transitions (paper §IV-D).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatingPenalties {
    /// Stall cycles per MLC way-state switch (50).
    pub mlc_switch: u32,
    /// Stall cycles per VPU gate switch (30).
    pub vpu_switch: u32,
    /// Stall cycles per BPU gate switch (20).
    pub bpu_switch: u32,
    /// Extra cycles to save or restore the VPU register file (500).
    pub vpu_save_restore: u32,
    /// Cycles to write one dirty MLC line back to the LLC when its way is
    /// gated off.
    pub mlc_writeback_per_line: u32,
}

/// A complete core design point.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreConfig {
    /// Which design point this is.
    pub kind: CoreKind,
    /// Superscalar issue width (instructions per cycle at peak).
    pub issue_width: u32,
    /// SIMD lanes executed per cycle by the VPU (4 server, 2 mobile).
    pub simd_lanes: u32,
    /// Clock frequency in MHz (used to convert cycles to seconds for power).
    pub freq_mhz: u32,
    /// L1 data cache.
    pub l1d: CacheConfig,
    /// Middle-level cache (the gateable L2; 1024 KiB/8-way server,
    /// 2048 KiB/8-way mobile).
    pub mlc: CacheConfig,
    /// Last-level cache behind the MLC.
    pub llc: CacheConfig,
    /// Main-memory latency in cycles beyond an LLC miss.
    pub mem_latency: u32,
    /// Branch-prediction sizing.
    pub bpu: BpuConfig,
    /// Unit area fractions.
    pub area: AreaFractions,
    /// Gating transition penalties.
    pub gating: GatingPenalties,
    /// Extra issue slots charged per guest instruction when executing in
    /// the BT interpreter rather than from a translation.
    pub interp_slots_per_inst: u32,
    /// One-time translation cost, in cycles per translated instruction.
    pub translate_cycles_per_inst: u32,
    /// Extra issue slots charged per vector operation emulated with scalar
    /// code when the VPU is gated off (on top of the per-lane scalar ops).
    pub vpu_emulation_overhead_slots: u32,
}

impl CoreConfig {
    /// The Nehalem-like server design point of Table I.
    #[must_use]
    pub fn server() -> Self {
        CoreConfig {
            kind: CoreKind::Server,
            issue_width: 4,
            simd_lanes: 4,
            freq_mhz: 2667,
            l1d: CacheConfig {
                size_kib: 32,
                ways: 8,
                line_bytes: 64,
                hit_latency: 0,
            },
            mlc: CacheConfig {
                size_kib: 1024,
                ways: 8,
                line_bytes: 64,
                hit_latency: 12,
            },
            llc: CacheConfig {
                size_kib: 8192,
                ways: 16,
                line_bytes: 64,
                hit_latency: 38,
            },
            mem_latency: 180,
            bpu: BpuConfig {
                large_btb_entries: 4096,
                chooser_entries: 16384,
                table_entries: 16384,
                small_entries: 1024,
                mispredict_penalty: 14,
            },
            area: AreaFractions {
                mlc: 0.35,
                vpu: 0.20,
                bpu: 0.04,
            },
            gating: GatingPenalties {
                mlc_switch: 50,
                vpu_switch: 30,
                bpu_switch: 20,
                vpu_save_restore: 500,
                mlc_writeback_per_line: 4,
            },
            interp_slots_per_inst: 8,
            translate_cycles_per_inst: 1500,
            vpu_emulation_overhead_slots: 2,
        }
    }

    /// The Cortex-A9-like mobile design point of Table I.
    #[must_use]
    pub fn mobile() -> Self {
        CoreConfig {
            kind: CoreKind::Mobile,
            issue_width: 2,
            simd_lanes: 2,
            freq_mhz: 1000,
            l1d: CacheConfig {
                size_kib: 32,
                ways: 4,
                line_bytes: 32,
                hit_latency: 0,
            },
            mlc: CacheConfig {
                size_kib: 2048,
                ways: 8,
                line_bytes: 32,
                hit_latency: 10,
            },
            llc: CacheConfig {
                size_kib: 4096,
                ways: 16,
                line_bytes: 32,
                hit_latency: 30,
            },
            mem_latency: 120,
            bpu: BpuConfig {
                large_btb_entries: 2048,
                chooser_entries: 8192,
                table_entries: 8192,
                small_entries: 512,
                mispredict_penalty: 8,
            },
            area: AreaFractions {
                mlc: 0.60,
                vpu: 0.18,
                bpu: 0.03,
            },
            gating: GatingPenalties {
                mlc_switch: 50,
                vpu_switch: 30,
                bpu_switch: 20,
                vpu_save_restore: 500,
                mlc_writeback_per_line: 4,
            },
            interp_slots_per_inst: 8,
            translate_cycles_per_inst: 1500,
            vpu_emulation_overhead_slots: 2,
        }
    }

    /// The design point for a [`CoreKind`].
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> Self {
        match kind {
            CoreKind::Server => CoreConfig::server(),
            CoreKind::Mobile => CoreConfig::mobile(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_server_geometry() {
        let c = CoreConfig::server();
        assert_eq!(c.mlc.size_kib, 1024);
        assert_eq!(c.mlc.ways, 8);
        assert_eq!(c.simd_lanes, 4);
        assert_eq!(c.bpu.large_btb_entries, 4096);
        assert_eq!(c.bpu.chooser_entries, 16384);
        assert_eq!(c.bpu.small_entries, 1024);
        assert!((c.area.mlc - 0.35).abs() < 1e-12);
        assert!((c.area.vpu - 0.20).abs() < 1e-12);
        assert!((c.area.bpu - 0.04).abs() < 1e-12);
    }

    #[test]
    fn table1_mobile_geometry() {
        let c = CoreConfig::mobile();
        assert_eq!(c.mlc.size_kib, 2048);
        assert_eq!(c.simd_lanes, 2);
        assert_eq!(c.bpu.large_btb_entries, 2048);
        assert_eq!(c.bpu.small_entries, 512);
        assert!((c.area.mlc - 0.60).abs() < 1e-12);
    }

    #[test]
    fn gating_penalties_match_paper() {
        for c in [CoreConfig::server(), CoreConfig::mobile()] {
            assert_eq!(c.gating.mlc_switch, 50);
            assert_eq!(c.gating.vpu_switch, 30);
            assert_eq!(c.gating.bpu_switch, 20);
            assert_eq!(c.gating.vpu_save_restore, 500);
        }
    }

    #[test]
    fn cache_sets_are_consistent() {
        let c = CoreConfig::server();
        // 1024 KiB / (8 ways * 64 B) = 2048 sets
        assert_eq!(c.mlc.sets(), 2048);
        assert_eq!(c.l1d.sets(), 64);
    }

    #[test]
    fn for_kind_round_trips() {
        assert_eq!(
            CoreConfig::for_kind(CoreKind::Server).kind,
            CoreKind::Server
        );
        assert_eq!(
            CoreConfig::for_kind(CoreKind::Mobile).kind,
            CoreKind::Mobile
        );
        assert_eq!(CoreKind::Server.to_string(), "server");
    }
}
