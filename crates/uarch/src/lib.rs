//! Microarchitectural unit models for the PowerChop reproduction.
//!
//! This crate models the three large, stateful, performance-critical units
//! PowerChop manages (paper §III–IV), plus the surrounding core needed to
//! time their effects:
//!
//! - [`bpu`] — branch prediction: a small always-on local (bimodal)
//!   predictor and a large gateable local/global **tournament** predictor
//!   with a chooser and BTB (paper Table I),
//! - [`cache`] — set-associative write-back caches with **way-gating** for
//!   the middle-level cache (all / half / 1 way active),
//! - [`vpu`] — the vector processing unit,
//! - [`config`] — the server (Intel Nehalem-like) and mobile (ARM
//!   Cortex-A9-like) design points of Table I,
//! - [`core`] — [`core::CoreModel`], an instruction-level timing model that
//!   consumes the executed instruction stream and produces cycles and
//!   per-unit event statistics. This is the gem5 substitute described in
//!   `DESIGN.md`.
//!
//! # Examples
//!
//! ```
//! use powerchop_uarch::config::CoreConfig;
//! use powerchop_uarch::core::CoreModel;
//!
//! let cfg = CoreConfig::server();
//! let core = CoreModel::new(&cfg);
//! assert_eq!(core.cycles(), 0);
//! assert_eq!(cfg.mlc.ways, 8);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bpu;
pub mod cache;
pub mod config;
pub mod core;
pub mod vpu;

pub use crate::bpu::{Bpu, BpuKind};
pub use crate::cache::{AccessOutcome, Cache, MlcWayState};
pub use crate::config::{CoreConfig, CoreKind};
pub use crate::core::{CoreModel, CoreStats, ExecMode};
pub use crate::vpu::Vpu;
