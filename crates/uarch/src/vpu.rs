//! The vector processing unit (VPU) model.
//!
//! The VPU executes SIMD operations ([`powerchop_gisa::VLEN`] architectural
//! lanes) with a microarchitectural lane width from Table I (4-wide server,
//! 2-wide mobile). When PowerChop gates the VPU off, vector instructions
//! are emulated by scalar code emitted by the binary translator along
//! alternate code paths (paper §IV-C2); the VPU's register file is
//! explicitly saved to memory on gate-off and restored on gate-on (500
//! cycles each way, §IV-D).

use powerchop_gisa::VLEN;

/// Cumulative VPU event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct VpuStats {
    /// Vector operations executed natively on the VPU.
    pub native_ops: u64,
    /// Vector operations emulated with scalar code while gated off.
    pub emulated_ops: u64,
}

/// The vector processing unit.
///
/// # Examples
///
/// ```
/// use powerchop_uarch::vpu::Vpu;
///
/// let mut vpu = Vpu::new(4);
/// assert!(vpu.active());
/// assert_eq!(vpu.issue_slots_for_vector_op(2), 1); // 4 lanes in one pass
/// vpu.set_active(false);
/// ```
#[derive(Debug, Clone)]
pub struct Vpu {
    lanes: u32,
    active: bool,
    emulation_overhead_slots: u32,
    stats: VpuStats,
}

impl Vpu {
    /// Creates an active VPU with `lanes` microarchitectural lanes.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is zero.
    #[must_use]
    pub fn new(lanes: u32) -> Self {
        assert!(lanes > 0, "a VPU needs at least one lane");
        Vpu {
            lanes,
            active: true,
            emulation_overhead_slots: 2,
            stats: VpuStats::default(),
        }
    }

    /// Creates a VPU with an explicit scalar-emulation overhead (issue
    /// slots added per emulated vector op beyond the per-lane scalar ops).
    #[must_use]
    pub fn with_emulation_overhead(lanes: u32, overhead_slots: u32) -> Self {
        Vpu {
            emulation_overhead_slots: overhead_slots,
            ..Vpu::new(lanes)
        }
    }

    /// Whether the VPU is powered on.
    #[must_use]
    pub fn active(&self) -> bool {
        self.active
    }

    /// Gates the VPU on or off. The register-file save/restore penalty is
    /// charged by the gating controller, not here.
    pub fn set_active(&mut self, active: bool) {
        self.active = active;
    }

    /// Issue slots consumed by one vector operation, accounting for the
    /// power state:
    ///
    /// - powered on: `ceil(VLEN / lanes)` passes through the SIMD pipes,
    /// - gated off: one scalar µop per architectural lane plus a fixed
    ///   emulation overhead (the BT's alternate scalar code path).
    ///
    /// Also updates the native/emulated operation counters.
    pub fn issue_slots_for_vector_op(&mut self, _width_hint: u32) -> u32 {
        if self.active {
            self.stats.native_ops += 1;
            (VLEN as u32).div_ceil(self.lanes)
        } else {
            self.stats.emulated_ops += 1;
            VLEN as u32 + self.emulation_overhead_slots
        }
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> VpuStats {
        self.stats
    }

    /// Folds VPU counters and the power flag into a telemetry registry.
    pub fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("uarch_vpu_native_ops_total", self.stats.native_ops);
        reg.counter_set("uarch_vpu_emulated_ops_total", self.stats.emulated_ops);
        reg.gauge_set("uarch_vpu_active", if self.active { 1.0 } else { 0.0 });
    }

    /// Serializes the mutable VPU state (power flag and counters); lane
    /// width and emulation overhead are config-derived.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_bool(self.active);
        w.put_u64(self.stats.native_ops);
        w.put_u64(self.stats.emulated_ops);
    }

    /// Restores state written by [`Vpu::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or malformed.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        self.active = r.take_bool()?;
        self.stats.native_ops = r.take_u64()?;
        self.stats.emulated_ops = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_vpu_executes_in_one_pass() {
        let mut v = Vpu::new(4);
        assert_eq!(v.issue_slots_for_vector_op(0), 1);
        assert_eq!(v.stats().native_ops, 1);
    }

    #[test]
    fn narrow_vpu_takes_multiple_passes() {
        let mut v = Vpu::new(2);
        assert_eq!(v.issue_slots_for_vector_op(0), 2);
    }

    #[test]
    fn gated_vpu_emulates_with_scalars() {
        let mut v = Vpu::with_emulation_overhead(4, 2);
        v.set_active(false);
        assert_eq!(v.issue_slots_for_vector_op(0), VLEN as u32 + 2);
        assert_eq!(v.stats().emulated_ops, 1);
        assert_eq!(v.stats().native_ops, 0);
    }

    #[test]
    #[should_panic(expected = "at least one lane")]
    fn zero_lanes_is_rejected() {
        let _ = Vpu::new(0);
    }
}
