//! Branch prediction unit: small always-on local predictor and large
//! gateable tournament predictor (paper Table I, §IV-C2).
//!
//! The large predictor is a local/global tournament in the style of the
//! Alpha 21264: a per-PC local table, a gshare-style global table, and a
//! chooser that learns which component to trust per branch, plus a large
//! BTB. The small predictor is a bimodal (2-bit saturating counter) local
//! table with a small BTB. When PowerChop gates the BPU off, prediction
//! falls back to the small predictor and the large predictor's state
//! (global history, chooser, BTB) is lost and must re-warm after gating
//! back on.

use crate::config::BpuConfig;
use powerchop_checkpoint::{ByteReader, ByteWriter, CheckpointError};

/// Serializes a saturating-counter table (length is config-derived, so
/// only the contents travel).
fn table_to(table: &[u8], w: &mut ByteWriter) {
    w.put_raw(table);
}

fn table_from(table: &mut [u8], r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
    let bytes = r.take_raw(table.len())?;
    table.copy_from_slice(bytes);
    Ok(())
}

/// Saturating 2-bit counter operations on a `u8` in `0..=3`.
fn bump(counter: &mut u8, up: bool) {
    if up {
        *counter = (*counter + 1).min(3);
    } else {
        *counter = counter.saturating_sub(1);
    }
}

fn predicts_taken(counter: u8) -> bool {
    counter >= 2
}

/// A direct-mapped branch target buffer.
#[derive(Debug, Clone)]
struct Btb {
    entries: Vec<Option<(u32, u32)>>, // (branch pc, target pc)
    mask: usize,
}

impl Btb {
    fn new(entries: u32) -> Self {
        let n = entries.next_power_of_two() as usize;
        Btb {
            entries: vec![None; n],
            mask: n - 1,
        }
    }

    fn lookup(&self, pc: u32) -> Option<u32> {
        match self.entries[pc as usize & self.mask] {
            Some((tag, target)) if tag == pc => Some(target),
            _ => None,
        }
    }

    fn insert(&mut self, pc: u32, target: u32) {
        self.entries[pc as usize & self.mask] = Some((pc, target));
    }

    fn clear(&mut self) {
        self.entries.fill(None);
    }

    fn snapshot_to(&self, w: &mut ByteWriter) {
        for entry in &self.entries {
            match entry {
                Some((pc, target)) => {
                    w.put_bool(true);
                    w.put_u32(*pc);
                    w.put_u32(*target);
                }
                None => w.put_bool(false),
            }
        }
    }

    fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        for entry in &mut self.entries {
            *entry = if r.take_bool()? {
                Some((r.take_u32()?, r.take_u32()?))
            } else {
                None
            };
        }
        Ok(())
    }
}

/// The small always-on local (bimodal) predictor.
#[derive(Debug, Clone)]
struct Bimodal {
    table: Vec<u8>,
    mask: usize,
    btb: Btb,
}

impl Bimodal {
    fn new(entries: u32) -> Self {
        let n = entries.next_power_of_two() as usize;
        Bimodal {
            table: vec![1; n], // weakly not-taken
            mask: n - 1,
            btb: Btb::new(entries),
        }
    }

    fn predict(&self, pc: u32) -> bool {
        predicts_taken(self.table[pc as usize & self.mask])
    }

    fn update(&mut self, pc: u32, taken: bool, target: u32) {
        bump(&mut self.table[pc as usize & self.mask], taken);
        if taken {
            self.btb.insert(pc, target);
        }
    }
}

/// The large local/global tournament predictor with chooser and BTB.
#[derive(Debug, Clone)]
struct Tournament {
    local: Vec<u8>,
    global: Vec<u8>,
    chooser: Vec<u8>,
    local_mask: usize,
    global_mask: usize,
    chooser_mask: usize,
    history: u32,
    btb: Btb,
}

impl Tournament {
    fn new(cfg: &BpuConfig) -> Self {
        let t = cfg.table_entries.next_power_of_two() as usize;
        let c = cfg.chooser_entries.next_power_of_two() as usize;
        Tournament {
            local: vec![1; t],
            global: vec![1; t],
            chooser: vec![1; c], // weakly favour local
            local_mask: t - 1,
            global_mask: t - 1,
            chooser_mask: c - 1,
            history: 0,
            btb: Btb::new(cfg.large_btb_entries),
        }
    }

    fn global_index(&self, pc: u32) -> usize {
        (pc as usize ^ (self.history as usize)) & self.global_mask
    }

    fn predict(&self, pc: u32) -> bool {
        let local = predicts_taken(self.local[pc as usize & self.local_mask]);
        let global = predicts_taken(self.global[self.global_index(pc)]);
        let use_global = predicts_taken(self.chooser[pc as usize & self.chooser_mask]);
        if use_global {
            global
        } else {
            local
        }
    }

    fn update(&mut self, pc: u32, taken: bool, target: u32) {
        let li = pc as usize & self.local_mask;
        let gi = self.global_index(pc);
        let local_correct = predicts_taken(self.local[li]) == taken;
        let global_correct = predicts_taken(self.global[gi]) == taken;
        // Train the chooser only when the components disagree.
        if local_correct != global_correct {
            bump(
                &mut self.chooser[pc as usize & self.chooser_mask],
                global_correct,
            );
        }
        bump(&mut self.local[li], taken);
        bump(&mut self.global[gi], taken);
        self.history = (self.history << 1) | u32::from(taken);
        if taken {
            self.btb.insert(pc, target);
        }
    }

    /// Models the state loss of power gating: everything is cleared.
    fn reset(&mut self) {
        self.local.fill(1);
        self.global.fill(1);
        self.chooser.fill(1);
        self.history = 0;
        self.btb.clear();
    }
}

/// Which predictor is currently driving predictions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BpuKind {
    /// The small always-on bimodal predictor (large BPU gated off).
    Small,
    /// The large tournament predictor (gated on).
    Large,
}

/// Cumulative BPU event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BpuStats {
    /// Conditional branches predicted.
    pub branches: u64,
    /// Mispredictions (direction wrong, or taken with a BTB miss).
    pub mispredicts: u64,
}

/// The branch prediction unit: small + large predictors with gating.
///
/// # Examples
///
/// ```
/// use powerchop_uarch::bpu::{Bpu, BpuKind};
/// use powerchop_uarch::config::CoreConfig;
///
/// let cfg = CoreConfig::server();
/// let mut bpu = Bpu::new(&cfg.bpu);
/// assert_eq!(bpu.active(), BpuKind::Large);
/// // A tight loop branch becomes predictable after warm-up.
/// for _ in 0..100 {
///     bpu.predict_and_update(0x40, true, 0x10);
/// }
/// assert!(!bpu.predict_and_update(0x40, true, 0x10));
/// ```
#[derive(Debug, Clone)]
pub struct Bpu {
    small: Bimodal,
    large: Tournament,
    large_active: bool,
    stats: BpuStats,
}

impl Bpu {
    /// Creates a BPU sized per `cfg`, with the large predictor active.
    #[must_use]
    pub fn new(cfg: &BpuConfig) -> Self {
        Bpu {
            small: Bimodal::new(cfg.small_entries),
            large: Tournament::new(cfg),
            large_active: true,
            stats: BpuStats::default(),
        }
    }

    /// Which predictor currently drives predictions.
    #[must_use]
    pub fn active(&self) -> BpuKind {
        if self.large_active {
            BpuKind::Large
        } else {
            BpuKind::Small
        }
    }

    /// Gates the large predictor on or off.
    ///
    /// Gating off loses all large-predictor state (paper Table I: "lose
    /// global, chooser and BTB state, rewarm"); this model also drops the
    /// large local table, which re-warms after gating back on.
    pub fn set_large_active(&mut self, active: bool) {
        if self.large_active && !active {
            self.large.reset();
        }
        self.large_active = active;
    }

    /// Predicts the branch at `pc`, updates predictor state with the true
    /// outcome, and returns whether the branch was mispredicted.
    ///
    /// A branch counts as mispredicted when the predicted direction is
    /// wrong, or when it is taken and the active BTB does not hold the
    /// correct target.
    pub fn predict_and_update(&mut self, pc: u32, taken: bool, target: u32) -> bool {
        self.stats.branches += 1;
        let (predicted_taken, btb_target) = if self.large_active {
            (self.large.predict(pc), self.large.btb.lookup(pc))
        } else {
            (self.small.predict(pc), self.small.btb.lookup(pc))
        };
        let mispredict = predicted_taken != taken || (taken && btb_target != Some(target));
        if mispredict {
            self.stats.mispredicts += 1;
        }
        // The small predictor is tiny and always powered, so it always
        // trains; the large predictor only trains while powered on.
        self.small.update(pc, taken, target);
        if self.large_active {
            self.large.update(pc, taken, target);
        }
        mispredict
    }

    /// Cumulative statistics since construction.
    #[must_use]
    pub fn stats(&self) -> BpuStats {
        self.stats
    }

    /// Folds predictor counters and the gating flag into a telemetry
    /// registry (sampled on the flight-recorder interval).
    pub fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("uarch_bpu_branches_total", self.stats.branches);
        reg.counter_set("uarch_bpu_mispredicts_total", self.stats.mispredicts);
        reg.gauge_set(
            "uarch_bpu_large_active",
            if self.large_active { 1.0 } else { 0.0 },
        );
    }

    /// Serializes the full predictor state (tables, BTBs, history, gating
    /// flag, statistics). Table sizes and index masks are config-derived
    /// and are not written; restore must run on a BPU built from the same
    /// [`BpuConfig`].
    pub fn snapshot_to(&self, w: &mut ByteWriter) {
        table_to(&self.small.table, w);
        self.small.btb.snapshot_to(w);
        table_to(&self.large.local, w);
        table_to(&self.large.global, w);
        table_to(&self.large.chooser, w);
        w.put_u32(self.large.history);
        self.large.btb.snapshot_to(w);
        w.put_bool(self.large_active);
        w.put_u64(self.stats.branches);
        w.put_u64(self.stats.mispredicts);
    }

    /// Restores state written by [`Bpu::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the payload is truncated or does
    /// not match this BPU's configured geometry.
    pub fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        table_from(&mut self.small.table, r)?;
        self.small.btb.restore_from(r)?;
        table_from(&mut self.large.local, r)?;
        table_from(&mut self.large.global, r)?;
        table_from(&mut self.large.chooser, r)?;
        self.large.history = r.take_u32()?;
        self.large.btb.restore_from(r)?;
        self.large_active = r.take_bool()?;
        self.stats.branches = r.take_u64()?;
        self.stats.mispredicts = r.take_u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CoreConfig;

    fn bpu() -> Bpu {
        Bpu::new(&CoreConfig::server().bpu)
    }

    #[test]
    fn loop_branch_becomes_predictable() {
        let mut b = bpu();
        for _ in 0..10 {
            b.predict_and_update(100, true, 50);
        }
        assert!(!b.predict_and_update(100, true, 50));
        let s = b.stats();
        assert_eq!(s.branches, 11);
        assert!(s.mispredicts <= 3, "warm-up only: {}", s.mispredicts);
    }

    #[test]
    fn alternating_pattern_favours_global_history() {
        // A strictly alternating branch defeats a bimodal predictor but is
        // learnable from global history.
        let mut large = bpu();
        let mut small = bpu();
        small.set_large_active(false);
        let mut large_wrong = 0;
        let mut small_wrong = 0;
        for i in 0..2000u32 {
            let taken = i % 2 == 0;
            if large.predict_and_update(7, taken, 3) {
                large_wrong += 1;
            }
            if small.predict_and_update(7, taken, 3) {
                small_wrong += 1;
            }
        }
        assert!(
            large_wrong * 4 < small_wrong,
            "tournament ({large_wrong}) should beat bimodal ({small_wrong}) on alternation"
        );
    }

    #[test]
    fn gating_off_loses_state() {
        let mut b = bpu();
        for _ in 0..100 {
            b.predict_and_update(8, true, 2);
        }
        assert!(!b.predict_and_update(8, true, 2));
        b.set_large_active(false);
        b.set_large_active(true);
        // State was lost: the first prediction after re-warm is cold.
        assert!(b.predict_and_update(8, true, 2));
    }

    #[test]
    fn small_predictor_keeps_training_while_large_is_active() {
        let mut b = bpu();
        for _ in 0..100 {
            b.predict_and_update(8, true, 2);
        }
        // Switch to the small predictor: it trained in the shadow, so the
        // loop branch stays predictable.
        b.set_large_active(false);
        assert!(!b.predict_and_update(8, true, 2));
    }

    #[test]
    fn btb_miss_counts_as_mispredict() {
        let mut b = bpu();
        for _ in 0..10 {
            b.predict_and_update(16, true, 4);
        }
        // Same direction, different target: BTB holds the old target.
        assert!(b.predict_and_update(16, true, 9));
    }

    #[test]
    fn not_taken_branches_do_not_need_btb() {
        let mut b = bpu();
        for _ in 0..10 {
            b.predict_and_update(24, false, 99);
        }
        assert!(!b.predict_and_update(24, false, 99));
    }

    #[test]
    fn active_kind_reflects_gating() {
        let mut b = bpu();
        assert_eq!(b.active(), BpuKind::Large);
        b.set_large_active(false);
        assert_eq!(b.active(), BpuKind::Small);
    }
}
