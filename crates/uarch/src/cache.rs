//! Set-associative write-back caches with way-gating support.
//!
//! The middle-level cache (MLC) is the paper's L2: PowerChop keeps either
//! one way, half the ways, or all ways powered (paper §IV-C2), so the cache
//! model supports deactivating ways at run time. Deactivating a way writes
//! its dirty lines back (modelled by the caller using the returned count)
//! and loses its clean lines (paper Table I: "WB dirty lines, lose clean
//! lines, rewarm").

use crate::config::CacheConfig;
use powerchop_checkpoint::{ByteReader, ByteWriter, CheckpointError};

/// The MLC way-gating states (2-bit policy in the PVT, paper Fig. 6b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MlcWayState {
    /// A single way active (lowest power).
    One,
    /// A quarter of the ways active — the 4th state the paper's 2-bit
    /// policy field leaves room for (§IV-B3: "the number of states...
    /// can be increased"). Used when `ChopConfig::extended_mlc_states`
    /// is enabled.
    Quarter,
    /// Half the ways active.
    Half,
    /// All ways active (full performance).
    Full,
}

impl MlcWayState {
    /// Number of active ways this state leaves in a cache of `total` ways.
    #[must_use]
    pub fn active_ways(self, total: u32) -> u32 {
        match self {
            MlcWayState::One => 1,
            MlcWayState::Quarter => (total / 4).max(1),
            MlcWayState::Half => (total / 2).max(1),
            MlcWayState::Full => total,
        }
    }

    /// Fraction of the cache's capacity (and thus leaky area) powered on.
    #[must_use]
    pub fn active_fraction(self, total: u32) -> f64 {
        f64::from(self.active_ways(total)) / f64::from(total)
    }

    /// The 2-bit PVT policy encoding used in the paper's Figure 6(b).
    #[must_use]
    pub fn policy_bits(self) -> u8 {
        match self {
            MlcWayState::Quarter => 0b00,
            MlcWayState::One => 0b01,
            MlcWayState::Half => 0b10,
            MlcWayState::Full => 0b11,
        }
    }

    /// Decodes the 2-bit policy-field encoding (inverse of
    /// [`MlcWayState::policy_bits`]; only the low 2 bits are read).
    #[must_use]
    pub fn from_policy_bits(bits: u8) -> MlcWayState {
        match bits & 0b11 {
            0b00 => MlcWayState::Quarter,
            0b01 => MlcWayState::One,
            0b10 => MlcWayState::Half,
            _ => MlcWayState::Full,
        }
    }
}

impl std::fmt::Display for MlcWayState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MlcWayState::One => f.write_str("1-way"),
            MlcWayState::Quarter => f.write_str("quarter-ways"),
            MlcWayState::Half => f.write_str("half-ways"),
            MlcWayState::Full => f.write_str("all-ways"),
        }
    }
}

/// Outcome of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the access hit.
    pub hit: bool,
    /// Whether the miss evicted a dirty line (requiring a writeback to the
    /// next level).
    pub writeback: bool,
    /// Whether the access hit a *drowsy* line that had to be woken first
    /// (costs a wake-up cycle; see [`Cache::set_all_drowsy`]).
    pub woke_drowsy: bool,
}

/// Static metric names for one cache instance, passed to
/// [`Cache::sample_metrics_as`] so the L1D, MLC and LLC report under
/// distinct keys.
#[derive(Debug, Clone, Copy)]
pub struct CacheMetricNames {
    /// Counter name for total accesses.
    pub accesses: &'static str,
    /// Counter name for hits.
    pub hits: &'static str,
    /// Counter name for dirty writebacks.
    pub writebacks: &'static str,
    /// Gauge name for the currently-powered way count.
    pub active_ways: &'static str,
}

/// Cumulative cache event counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Hits.
    pub hits: u64,
    /// Dirty evictions (capacity/conflict plus way-gating flushes).
    pub writebacks: u64,
}

impl CacheStats {
    /// Misses (`accesses - hits`).
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Low-retention-voltage state (drowsy caches, Flautner et al.): data
    /// is retained but the line must be woken before it can be read.
    drowsy: bool,
    lru: u64,
}

/// A set-associative, write-back, write-allocate cache with LRU replacement
/// and run-time way deactivation.
///
/// # Examples
///
/// ```
/// use powerchop_uarch::cache::Cache;
/// use powerchop_uarch::config::CacheConfig;
///
/// let cfg = CacheConfig { size_kib: 64, ways: 4, line_bytes: 64, hit_latency: 12 };
/// let mut cache = Cache::new(&cfg);
/// assert!(!cache.access(0x1000, false).hit); // cold miss
/// assert!(cache.access(0x1000, false).hit);  // now resident
/// ```
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    num_sets: usize,
    ways: usize,
    active_ways: usize,
    line_shift: u32,
    /// Precomputed `num_sets - 1` (set count is a power of two), so set
    /// selection on the access path is a single shift-and-mask.
    set_mask: usize,
    tick: u64,
    awake_valid: usize,
    valid: usize,
    stats: CacheStats,
}

impl Cache {
    /// Creates an empty cache with the geometry of `cfg`, all ways active.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is degenerate (zero sets or ways), which
    /// would indicate a config bug.
    #[must_use]
    pub fn new(cfg: &CacheConfig) -> Self {
        let num_sets = cfg.sets() as usize;
        let ways = cfg.ways as usize;
        assert!(
            num_sets > 0 && ways > 0,
            "degenerate cache geometry {cfg:?}"
        );
        assert!(
            num_sets.is_power_of_two(),
            "set count must be a power of two"
        );
        Cache {
            lines: vec![Line::default(); num_sets * ways],
            num_sets,
            ways,
            active_ways: ways,
            line_shift: cfg.line_bytes.trailing_zeros(),
            set_mask: num_sets - 1,
            tick: 0,
            awake_valid: 0,
            valid: 0,
            stats: CacheStats::default(),
        }
    }

    /// Total associativity.
    #[must_use]
    pub fn ways(&self) -> u32 {
        self.ways as u32
    }

    /// Currently active ways.
    #[must_use]
    pub fn active_ways(&self) -> u32 {
        self.active_ways as u32
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Folds this cache's counters into a telemetry registry under the
    /// given per-instance metric names (the same `Cache` type backs the
    /// L1D, MLC and LLC, so names cannot live on the type).
    pub fn sample_metrics_as(
        &self,
        names: &CacheMetricNames,
        reg: &mut powerchop_telemetry::MetricsRegistry,
    ) {
        reg.counter_set(names.accesses, self.stats.accesses);
        reg.counter_set(names.hits, self.stats.hits);
        reg.counter_set(names.writebacks, self.stats.writebacks);
        reg.gauge_set(names.active_ways, f64::from(self.active_ways()));
    }

    #[inline]
    fn set_range(&self, addr: u64) -> std::ops::Range<usize> {
        let set = ((addr >> self.line_shift) as usize) & self.set_mask;
        let base = set * self.ways;
        base..base + self.active_ways
    }

    /// Accesses `addr`, allocating on miss. Returns hit/writeback status.
    pub fn access(&mut self, addr: u64, is_store: bool) -> AccessOutcome {
        self.tick += 1;
        self.stats.accesses += 1;
        let tag = addr >> self.line_shift;
        let range = self.set_range(addr);

        // Hit path.
        if let Some(line) = self.lines[range.clone()]
            .iter_mut()
            .find(|l| l.valid && l.tag == tag)
        {
            line.lru = self.tick;
            line.dirty |= is_store;
            let woke_drowsy = line.drowsy;
            if woke_drowsy {
                line.drowsy = false;
                self.awake_valid += 1;
            }
            self.stats.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: false,
                woke_drowsy,
            };
        }

        // Miss: allocate into the LRU (or first invalid) active way.
        // At least one way is always active (way-gating floors at one),
        // so the fold finds a victim; the `range.start` fallback keeps
        // this total without a panicking branch.
        let victim = self.lines[range.clone()]
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru } else { 0 })
            .map_or(range.start, |(i, _)| range.start + i);
        let line = &mut self.lines[victim];
        let writeback = line.valid && line.dirty;
        if writeback {
            self.stats.writebacks += 1;
        }
        if !line.valid {
            self.valid += 1;
            self.awake_valid += 1;
        } else if line.drowsy {
            self.awake_valid += 1; // replaced by a freshly-awake line
        }
        *line = Line {
            tag,
            valid: true,
            dirty: is_store,
            drowsy: false,
            lru: self.tick,
        };
        AccessOutcome {
            hit: false,
            writeback,
            woke_drowsy: false,
        }
    }

    /// Whether `addr` is resident without touching LRU or statistics.
    #[must_use]
    pub fn probe(&self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        self.lines[self.set_range(addr)]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Changes the number of active ways.
    ///
    /// Lines in deactivated ways are invalidated; the number of *dirty*
    /// lines flushed (each requiring a writeback to the next level) is
    /// returned so the caller can charge writeback time and energy.
    /// Re-activated ways come back empty (state was lost while gated).
    ///
    /// # Panics
    ///
    /// Panics if `ways` is zero or exceeds the cache's associativity.
    pub fn set_active_ways(&mut self, ways: u32) -> u64 {
        let ways = ways as usize;
        assert!(
            ways >= 1 && ways <= self.ways,
            "active ways {ways} outside 1..={}",
            self.ways
        );
        let mut flushed_dirty = 0;
        if ways < self.active_ways {
            for set in 0..self.num_sets {
                let base = set * self.ways;
                for line in &mut self.lines[base + ways..base + self.active_ways] {
                    if line.valid {
                        self.valid -= 1;
                        if !line.drowsy {
                            self.awake_valid -= 1;
                        }
                        if line.dirty {
                            flushed_dirty += 1;
                        }
                    }
                    *line = Line::default();
                }
            }
            self.stats.writebacks += flushed_dirty;
        }
        self.active_ways = ways;
        flushed_dirty
    }

    /// Number of currently valid lines (used by tests and warm-up checks).
    #[must_use]
    pub fn resident_lines(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }

    /// Puts every valid line into the drowsy (low-retention-voltage)
    /// state. Data is retained; the next access to each line pays a
    /// wake-up cycle (reported via [`AccessOutcome::woke_drowsy`]). This
    /// is the periodic "simple policy" of drowsy caches (Flautner et
    /// al.), implemented as a comparison baseline to PowerChop's
    /// way-gating.
    ///
    /// Returns the number of lines put drowsy.
    pub fn set_all_drowsy(&mut self) -> usize {
        let mut count = 0;
        for line in &mut self.lines {
            if line.valid && !line.drowsy {
                line.drowsy = true;
                count += 1;
            }
        }
        self.awake_valid = 0;
        count
    }

    /// Serializes all mutable cache state (line array, active-way count,
    /// LRU tick, residency counters, statistics). Geometry (sets, ways,
    /// line size) is config-derived and not written; restore must run on
    /// a cache built from the same [`CacheConfig`].
    pub fn snapshot_to(&self, w: &mut ByteWriter) {
        for line in &self.lines {
            w.put_u64(line.tag);
            w.put_bool(line.valid);
            w.put_bool(line.dirty);
            w.put_bool(line.drowsy);
            w.put_u64(line.lru);
        }
        w.put_usize(self.active_ways);
        w.put_u64(self.tick);
        w.put_usize(self.awake_valid);
        w.put_usize(self.valid);
        w.put_u64(self.stats.accesses);
        w.put_u64(self.stats.hits);
        w.put_u64(self.stats.writebacks);
    }

    /// Restores state written by [`Cache::snapshot_to`] in place.
    ///
    /// # Errors
    ///
    /// Returns a [`CheckpointError`] when the payload is truncated or the
    /// restored active-way count is outside this cache's geometry.
    pub fn restore_from(&mut self, r: &mut ByteReader<'_>) -> Result<(), CheckpointError> {
        for line in &mut self.lines {
            line.tag = r.take_u64()?;
            line.valid = r.take_bool()?;
            line.dirty = r.take_bool()?;
            line.drowsy = r.take_bool()?;
            line.lru = r.take_u64()?;
        }
        let active_ways = r.take_usize()?;
        if active_ways < 1 || active_ways > self.ways {
            return Err(CheckpointError::Malformed {
                what: "cache active way count",
            });
        }
        self.active_ways = active_ways;
        self.tick = r.take_u64()?;
        self.awake_valid = r.take_usize()?;
        self.valid = r.take_usize()?;
        self.stats.accesses = r.take_u64()?;
        self.stats.hits = r.take_u64()?;
        self.stats.writebacks = r.take_u64()?;
        Ok(())
    }

    /// Fraction of the cache's *capacity* currently awake (valid,
    /// non-drowsy lines over total lines): the share of the array leaking
    /// at full voltage. Invalid lines still leak at full voltage unless
    /// their ways are gated, so they count as awake.
    #[must_use]
    pub fn awake_fraction(&self) -> f64 {
        let total = self.num_sets * self.ways;
        let drowsy_lines = self.valid - self.awake_valid;
        (total - drowsy_lines) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_cache(ways: u32) -> Cache {
        // 4 sets x `ways` ways x 64 B lines.
        let size_kib = (4 * ways * 64) / 1024;
        let cfg = CacheConfig {
            size_kib: size_kib.max(1),
            ways,
            line_bytes: 64,
            hit_latency: 10,
        };
        // For tiny sizes compute sets directly to keep 4 sets.
        let mut c = Cache::new(&CacheConfig {
            size_kib: (4 * ways * 64).div_ceil(1024).max(1),
            ..cfg
        });
        // Ensure the geometry is what the tests assume.
        if c.num_sets != 4 {
            c = Cache {
                lines: vec![Line::default(); 4 * ways as usize],
                num_sets: 4,
                ways: ways as usize,
                active_ways: ways as usize,
                line_shift: 6,
                set_mask: 3,
                tick: 0,
                awake_valid: 0,
                valid: 0,
                stats: CacheStats::default(),
            };
        }
        c
    }

    /// Address helper: set index `set`, tag `tag` (4 sets, 64 B lines).
    fn addr(tag: u64, set: u64) -> u64 {
        (tag << 8) | (set << 6)
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small_cache(4);
        assert!(!c.access(addr(1, 0), false).hit);
        assert!(c.access(addr(1, 0), false).hit);
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses(), 1);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = small_cache(2);
        c.access(addr(1, 0), false);
        c.access(addr(2, 0), false);
        c.access(addr(1, 0), false); // touch tag 1: tag 2 is now LRU
        c.access(addr(3, 0), false); // evicts tag 2
        assert!(c.probe(addr(1, 0)));
        assert!(!c.probe(addr(2, 0)));
        assert!(c.probe(addr(3, 0)));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = small_cache(1);
        c.access(addr(1, 0), true); // dirty
        let out = c.access(addr(2, 0), false); // evicts dirty line
        assert!(!out.hit);
        assert!(out.writeback);
        assert!(!out.woke_drowsy);
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_has_no_writeback() {
        let mut c = small_cache(1);
        c.access(addr(1, 0), false);
        let out = c.access(addr(2, 0), false);
        assert!(!out.writeback);
    }

    #[test]
    fn way_gating_flushes_dirty_and_loses_clean() {
        let mut c = small_cache(4);
        c.access(addr(1, 0), true); // will land in way 0
        c.access(addr(2, 0), false);
        c.access(addr(3, 0), true);
        c.access(addr(4, 0), false);
        assert_eq!(c.resident_lines(), 4);
        let flushed = c.set_active_ways(1);
        // Fill order is way 0..3, so way 0 (dirty tag 1) survives and the
        // only dirty line in a gated way is tag 3.
        assert_eq!(flushed, 1);
        assert!(c.probe(addr(1, 0)));
        assert_eq!(c.resident_lines(), 1);
        assert_eq!(c.active_ways(), 1);
    }

    #[test]
    fn reduced_ways_shrink_effective_capacity() {
        let mut c = small_cache(4);
        c.set_active_ways(1);
        // Two conflicting tags in the same set now thrash.
        c.access(addr(1, 0), false);
        c.access(addr(2, 0), false);
        assert!(!c.access(addr(1, 0), false).hit);
    }

    #[test]
    fn regrowing_ways_starts_cold() {
        let mut c = small_cache(4);
        for t in 1..=4 {
            c.access(addr(t, 0), false);
        }
        c.set_active_ways(1);
        c.set_active_ways(4);
        // Whatever survived is only what way 0 held.
        assert!(c.resident_lines() <= 1);
    }

    #[test]
    #[should_panic(expected = "active ways")]
    fn zero_ways_is_rejected() {
        let mut c = small_cache(4);
        c.set_active_ways(0);
    }

    #[test]
    fn way_state_mapping_matches_paper() {
        assert_eq!(MlcWayState::Full.active_ways(8), 8);
        assert_eq!(MlcWayState::Half.active_ways(8), 4);
        assert_eq!(MlcWayState::One.active_ways(8), 1);
        // Server MLC: 1024 KiB 8-way -> 512 KiB 4-way or 128 KiB 1-way.
        assert!((MlcWayState::Half.active_fraction(8) - 0.5).abs() < 1e-12);
        assert!((MlcWayState::One.active_fraction(8) - 0.125).abs() < 1e-12);
        assert_eq!(MlcWayState::Full.policy_bits(), 0b11);
        assert_eq!(MlcWayState::Half.policy_bits(), 0b10);
        assert_eq!(MlcWayState::One.policy_bits(), 0b01);
        assert_eq!(MlcWayState::Quarter.policy_bits(), 0b00);
        assert_eq!(MlcWayState::Quarter.active_ways(8), 2);
        assert!(MlcWayState::One < MlcWayState::Quarter);
        assert!(MlcWayState::Quarter < MlcWayState::Half);
    }

    #[test]
    fn drowsy_lines_retain_data_and_wake_on_access() {
        let mut c = small_cache(4);
        c.access(addr(1, 0), true);
        c.access(addr(2, 1), false);
        assert_eq!(c.set_all_drowsy(), 2);
        assert!((c.awake_fraction() - (16.0 - 2.0) / 16.0).abs() < 1e-12);
        // Access wakes the line: still a hit, one wake event.
        let out = c.access(addr(1, 0), false);
        assert!(out.hit && out.woke_drowsy);
        // Second access: already awake.
        let out = c.access(addr(1, 0), false);
        assert!(out.hit && !out.woke_drowsy);
        assert!((c.awake_fraction() - (16.0 - 1.0) / 16.0).abs() < 1e-12);
    }

    #[test]
    fn drowsy_accounting_survives_eviction_and_way_gating() {
        let mut c = small_cache(2);
        c.access(addr(1, 0), true);
        c.access(addr(2, 0), false);
        c.set_all_drowsy();
        // Evicting a drowsy line with a new allocation keeps counts sane.
        c.access(addr(3, 0), false); // evicts LRU (tag 1, drowsy)
        assert!(c.awake_fraction() > 0.0 && c.awake_fraction() <= 1.0);
        // Way gating drowsy lines keeps counts sane too.
        c.set_all_drowsy();
        c.set_active_ways(1);
        assert!((c.awake_fraction() - 1.0).abs() < 1e-12 || c.awake_fraction() < 1.0);
        c.set_active_ways(2);
        c.access(addr(9, 0), false);
        assert!(c.awake_fraction() > 0.0);
    }

    #[test]
    fn probe_does_not_disturb_state() {
        let mut c = small_cache(2);
        c.access(addr(1, 0), false);
        let before = c.stats();
        assert!(c.probe(addr(1, 0)));
        assert!(!c.probe(addr(9, 0)));
        assert_eq!(c.stats(), before);
    }

    #[test]
    fn sets_do_not_interfere() {
        let mut c = small_cache(1);
        c.access(addr(1, 0), false);
        c.access(addr(1, 1), false);
        c.access(addr(1, 2), false);
        assert!(c.probe(addr(1, 0)));
        assert!(c.probe(addr(1, 1)));
        assert!(c.probe(addr(1, 2)));
    }
}
