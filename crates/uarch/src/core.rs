//! The core timing model: consumes executed instructions, produces cycles.
//!
//! This is the reproduction's substitute for gem5 (see `DESIGN.md`): an
//! instruction-level model with a superscalar issue-slot budget plus
//! explicit stalls for branch mispredictions, memory-hierarchy misses, BT
//! interpretation/translation overheads, and power-gating transitions. The
//! paper's results are driven by *relative* unit criticality, which this
//! fidelity captures.

use powerchop_gisa::{InstClass, StepInfo, VLEN};

use crate::bpu::Bpu;
use crate::cache::{Cache, MlcWayState};
use crate::config::CoreConfig;
use crate::vpu::Vpu;

/// Whether an instruction executed from the BT interpreter or from an
/// optimized translation in the region cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecMode {
    /// Decoded and executed sequentially by the BT interpreter (slow path).
    Interpreted,
    /// Executed from an optimized translation (fast path).
    Translated,
}

/// Cumulative core event counts.
///
/// All counters are monotonically non-decreasing; phase profiling reads
/// deltas between two snapshots.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CoreStats {
    /// Instructions retired.
    pub instructions: u64,
    /// Vector operations by architectural intent (native + emulated).
    pub vec_ops: u64,
    /// SIMD instructions committed natively on the VPU.
    pub simd_committed: u64,
    /// Vector operations emulated with scalar code (VPU gated off).
    pub vec_emulated: u64,
    /// Conditional branches.
    pub branches: u64,
    /// Branch mispredictions (whichever predictor was active).
    pub mispredicts: u64,
    /// Scalar + vector loads.
    pub loads: u64,
    /// Scalar + vector stores.
    pub stores: u64,
    /// L1D hits.
    pub l1_hits: u64,
    /// Demand accesses reaching the MLC (L2).
    pub mlc_accesses: u64,
    /// MLC hits.
    pub mlc_hits: u64,
    /// Demand accesses reaching the LLC.
    pub llc_accesses: u64,
    /// LLC hits.
    pub llc_hits: u64,
    /// Accesses that went to main memory.
    pub mem_accesses: u64,
    /// Dirty-line writebacks out of the MLC (evictions + way-gating
    /// flushes).
    pub mlc_writebacks: u64,
    /// MLC hits that woke a drowsy line (drowsy-cache baseline).
    pub mlc_drowsy_wakes: u64,
}

impl CoreStats {
    /// Serializes every counter (fixed field order, little-endian).
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        for v in [
            self.instructions,
            self.vec_ops,
            self.simd_committed,
            self.vec_emulated,
            self.branches,
            self.mispredicts,
            self.loads,
            self.stores,
            self.l1_hits,
            self.mlc_accesses,
            self.mlc_hits,
            self.llc_accesses,
            self.llc_hits,
            self.mem_accesses,
            self.mlc_writebacks,
            self.mlc_drowsy_wakes,
        ] {
            w.put_u64(v);
        }
    }

    /// Reads counters written by [`CoreStats::snapshot_to`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<Self, powerchop_checkpoint::CheckpointError> {
        Ok(CoreStats {
            instructions: r.take_u64()?,
            vec_ops: r.take_u64()?,
            simd_committed: r.take_u64()?,
            vec_emulated: r.take_u64()?,
            branches: r.take_u64()?,
            mispredicts: r.take_u64()?,
            loads: r.take_u64()?,
            stores: r.take_u64()?,
            l1_hits: r.take_u64()?,
            mlc_accesses: r.take_u64()?,
            mlc_hits: r.take_u64()?,
            llc_accesses: r.take_u64()?,
            llc_hits: r.take_u64()?,
            mem_accesses: r.take_u64()?,
            mlc_writebacks: r.take_u64()?,
            mlc_drowsy_wakes: r.take_u64()?,
        })
    }
}

/// The core model: units + cycle accounting.
///
/// # Examples
///
/// ```
/// use powerchop_uarch::config::CoreConfig;
/// use powerchop_uarch::core::CoreModel;
///
/// let cfg = CoreConfig::mobile();
/// let core = CoreModel::new(&cfg);
/// assert!(core.vpu_active());
/// assert!(core.bpu_large_active());
/// ```
#[derive(Debug, Clone)]
pub struct CoreModel {
    issue_width: u64,
    interp_slots: u64,
    mispredict_penalty: u64,
    mlc_hit_latency: u64,
    llc_hit_latency: u64,
    mem_latency: u64,
    /// log2 of the line size: line math is shifts/masks, not divisions
    /// (line sizes are powers of two, as the cache's set indexing already
    /// assumes).
    line_shift: u32,
    bpu: Bpu,
    l1d: Cache,
    mlc: Cache,
    llc: Cache,
    vpu: Vpu,
    mlc_state: MlcWayState,
    slots: u64,
    stall_cycles: u64,
    stats: CoreStats,
}

impl CoreModel {
    /// Creates a fully-powered core model for the design point `cfg`.
    #[must_use]
    pub fn new(cfg: &CoreConfig) -> Self {
        CoreModel {
            issue_width: u64::from(cfg.issue_width),
            interp_slots: u64::from(cfg.interp_slots_per_inst),
            mispredict_penalty: u64::from(cfg.bpu.mispredict_penalty),
            mlc_hit_latency: u64::from(cfg.mlc.hit_latency),
            llc_hit_latency: u64::from(cfg.llc.hit_latency),
            mem_latency: u64::from(cfg.mem_latency),
            line_shift: cfg.l1d.line_bytes.trailing_zeros(),
            bpu: Bpu::new(&cfg.bpu),
            l1d: Cache::new(&cfg.l1d),
            mlc: Cache::new(&cfg.mlc),
            llc: Cache::new(&cfg.llc),
            vpu: Vpu::with_emulation_overhead(cfg.simd_lanes, cfg.vpu_emulation_overhead_slots),
            mlc_state: MlcWayState::Full,
            slots: 0,
            stall_cycles: 0,
            stats: CoreStats::default(),
        }
    }

    /// Total elapsed cycles: issue-limited cycles plus stalls.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.slots.div_ceil(self.issue_width) + self.stall_cycles
    }

    /// Snapshot of the cumulative event counters.
    #[must_use]
    pub fn stats(&self) -> CoreStats {
        self.stats
    }

    /// Adds explicit stall cycles (gating transitions, CDE handler time,
    /// translation time).
    pub fn add_stall(&mut self, cycles: u64) {
        self.stall_cycles += cycles;
    }

    /// Cycles spent in explicit stalls (mispredicts, memory, gating
    /// transitions), as opposed to issue-limited cycles.
    #[must_use]
    pub fn stall_cycles(&self) -> u64 {
        self.stall_cycles
    }

    /// Whether the VPU is powered.
    #[must_use]
    pub fn vpu_active(&self) -> bool {
        self.vpu.active()
    }

    /// Powers the VPU on or off (state save/restore penalties are charged
    /// by the gating controller).
    pub fn set_vpu_active(&mut self, active: bool) {
        self.vpu.set_active(active);
    }

    /// Whether the large tournament predictor is powered.
    #[must_use]
    pub fn bpu_large_active(&self) -> bool {
        self.bpu.active() == crate::bpu::BpuKind::Large
    }

    /// Powers the large predictor on or off (off loses its state).
    pub fn set_bpu_large_active(&mut self, active: bool) {
        self.bpu.set_large_active(active);
    }

    /// Current MLC way-gating state.
    #[must_use]
    pub fn mlc_way_state(&self) -> MlcWayState {
        self.mlc_state
    }

    /// Applies an MLC way-gating state; returns the number of dirty lines
    /// flushed to the LLC (the controller charges their writeback time).
    pub fn set_mlc_way_state(&mut self, state: MlcWayState) -> u64 {
        self.mlc_state = state;
        self.mlc.set_active_ways(state.active_ways(self.mlc.ways()))
    }

    /// Puts every valid MLC line into the drowsy state (the drowsy-cache
    /// baseline's periodic policy); returns the number of lines drowsed.
    pub fn drowse_mlc(&mut self) -> usize {
        self.mlc.set_all_drowsy()
    }

    /// Fraction of the MLC array currently leaking at full voltage.
    #[must_use]
    pub fn mlc_awake_fraction(&self) -> f64 {
        self.mlc.awake_fraction()
    }

    /// Feeds one executed instruction into the timing model.
    pub fn on_step(&mut self, step: &StepInfo, mode: ExecMode) {
        self.stats.instructions += 1;
        self.slots += match mode {
            ExecMode::Interpreted => self.interp_slots,
            ExecMode::Translated => 1,
        };

        match step.class {
            InstClass::VecAlu => {
                self.stats.vec_ops += 1;
                self.charge_vector_op();
            }
            InstClass::VecMem => {
                self.stats.vec_ops += 1;
                self.charge_vector_op();
                if let Some(mem) = step.mem {
                    self.count_mem_dir(mem.is_store);
                    if self.vpu.active() {
                        self.access_lines(mem.addr, u64::from(mem.size), mem.is_store);
                    } else {
                        // Scalar emulation: one access per lane (the same
                        // lines, so extra L1 traffic but similar MLC
                        // behaviour).
                        for lane in 0..VLEN as u64 {
                            self.access_lines(mem.addr + 8 * lane, 8, mem.is_store);
                        }
                    }
                }
            }
            InstClass::Load | InstClass::Store => {
                if let Some(mem) = step.mem {
                    self.count_mem_dir(mem.is_store);
                    self.access_lines(mem.addr, u64::from(mem.size), mem.is_store);
                }
            }
            InstClass::Branch => {
                if let Some(branch) = step.branch {
                    self.stats.branches += 1;
                    let mispredict =
                        self.bpu
                            .predict_and_update(step.pc.0, branch.taken, branch.next_pc.0);
                    if mispredict {
                        self.stats.mispredicts += 1;
                        self.stall_cycles += self.mispredict_penalty;
                    }
                }
            }
            InstClass::IntMul => self.slots += 1,
            _ => {}
        }
    }

    /// Feeds a batch of natively-executed translated instructions into the
    /// timing model in one call.
    ///
    /// The BT layer's native backend compiles only instruction classes
    /// whose [`CoreModel::on_step`] accounting reduces to `instructions +=
    /// 1; slots += k` (integer/float ALU, multiplies, fused jumps, nops):
    /// no cache, predictor, or VPU state is touched, so summing the issue
    /// slots at compile time and applying them here is arithmetically
    /// identical to `n` individual [`CoreModel::on_step`] calls in
    /// [`ExecMode::Translated`].
    pub fn on_translated_block(&mut self, instructions: u64, slots: u64) {
        self.stats.instructions += instructions;
        self.slots += slots;
    }

    fn charge_vector_op(&mut self) {
        let slots = u64::from(self.vpu.issue_slots_for_vector_op(0));
        // The base issue slot was already charged.
        self.slots += slots.saturating_sub(1);
        if self.vpu.active() {
            self.stats.simd_committed += 1;
        } else {
            self.stats.vec_emulated += 1;
        }
    }

    fn count_mem_dir(&mut self, is_store: bool) {
        if is_store {
            self.stats.stores += 1;
        } else {
            self.stats.loads += 1;
        }
    }

    /// Accesses every cache line touched by `[addr, addr + size)`.
    fn access_lines(&mut self, addr: u64, size: u64, is_store: bool) {
        let shift = self.line_shift;
        let first = addr >> shift;
        let last = (addr + size.max(1) - 1) >> shift;
        for line in first..=last {
            self.access_hierarchy(line << shift, is_store);
        }
    }

    /// Serializes all mutable core state: the BPU, every cache level, the
    /// VPU, the MLC way-gating state, the issue-slot/stall accumulators,
    /// and the event counters. Latencies and geometry are config-derived
    /// and are not written.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        self.bpu.snapshot_to(w);
        self.l1d.snapshot_to(w);
        self.mlc.snapshot_to(w);
        self.llc.snapshot_to(w);
        self.vpu.snapshot_to(w);
        w.put_u8(self.mlc_state.policy_bits());
        w.put_u64(self.slots);
        w.put_u64(self.stall_cycles);
        self.stats.snapshot_to(w);
    }

    /// Restores state written by [`CoreModel::snapshot_to`] into a core
    /// freshly built from the same [`CoreConfig`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated or inconsistent with this core's geometry.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        self.bpu.restore_from(r)?;
        self.l1d.restore_from(r)?;
        self.mlc.restore_from(r)?;
        self.llc.restore_from(r)?;
        self.vpu.restore_from(r)?;
        self.mlc_state = MlcWayState::from_policy_bits(r.take_u8()?);
        self.slots = r.take_u64()?;
        self.stall_cycles = r.take_u64()?;
        self.stats = CoreStats::restore_from(r)?;
        Ok(())
    }

    /// Per-instance metric names for the three cache levels.
    const L1D_METRICS: crate::cache::CacheMetricNames = crate::cache::CacheMetricNames {
        accesses: "uarch_l1d_accesses_total",
        hits: "uarch_l1d_hits_total",
        writebacks: "uarch_l1d_writebacks_total",
        active_ways: "uarch_l1d_active_ways",
    };
    const MLC_METRICS: crate::cache::CacheMetricNames = crate::cache::CacheMetricNames {
        accesses: "uarch_mlc_accesses_total",
        hits: "uarch_mlc_hits_total",
        writebacks: "uarch_mlc_writebacks_total",
        active_ways: "uarch_mlc_active_ways",
    };
    const LLC_METRICS: crate::cache::CacheMetricNames = crate::cache::CacheMetricNames {
        accesses: "uarch_llc_accesses_total",
        hits: "uarch_llc_hits_total",
        writebacks: "uarch_llc_writebacks_total",
        active_ways: "uarch_llc_active_ways",
    };

    fn access_hierarchy(&mut self, addr: u64, is_store: bool) {
        if self.l1d.access(addr, is_store).hit {
            self.stats.l1_hits += 1;
            return;
        }
        self.stats.mlc_accesses += 1;
        let mlc_out = self.mlc.access(addr, is_store);
        if mlc_out.writeback {
            self.stats.mlc_writebacks += 1;
        }
        if mlc_out.woke_drowsy {
            // Drowsy lines must be restored to full voltage before the
            // read completes (Flautner et al.: ~1 cycle).
            self.stats.mlc_drowsy_wakes += 1;
            self.stall_cycles += 1;
        }
        if mlc_out.hit {
            self.stats.mlc_hits += 1;
            self.stall_cycles += self.mlc_hit_latency;
            return;
        }
        self.stats.llc_accesses += 1;
        if self.llc.access(addr, is_store).hit {
            self.stats.llc_hits += 1;
            self.stall_cycles += self.llc_hit_latency;
        } else {
            self.stats.mem_accesses += 1;
            self.stall_cycles += self.llc_hit_latency + self.mem_latency;
        }
    }
}

impl powerchop_telemetry::MetricSource for CoreModel {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        reg.counter_set("uarch_cycles_total", self.cycles());
        reg.counter_set("uarch_stall_cycles_total", self.stall_cycles);
        reg.counter_set("uarch_instructions_total", self.stats.instructions);
        reg.counter_set("uarch_vec_ops_total", self.stats.vec_ops);
        reg.counter_set("uarch_simd_committed_total", self.stats.simd_committed);
        reg.counter_set("uarch_vec_emulated_total", self.stats.vec_emulated);
        reg.counter_set("uarch_branches_total", self.stats.branches);
        reg.counter_set("uarch_mispredicts_total", self.stats.mispredicts);
        reg.counter_set("uarch_loads_total", self.stats.loads);
        reg.counter_set("uarch_stores_total", self.stats.stores);
        reg.counter_set("uarch_mem_accesses_total", self.stats.mem_accesses);
        reg.counter_set("uarch_mlc_drowsy_wakes_total", self.stats.mlc_drowsy_wakes);
        self.bpu.sample_metrics(reg);
        self.vpu.sample_metrics(reg);
        self.l1d.sample_metrics_as(&Self::L1D_METRICS, reg);
        self.mlc.sample_metrics_as(&Self::MLC_METRICS, reg);
        self.llc.sample_metrics_as(&Self::LLC_METRICS, reg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{BranchOutcome, Cond, Inst, MemAccess, Pc, Reg};

    fn cfg() -> CoreConfig {
        CoreConfig::server()
    }

    fn alu_step(pc: u32) -> StepInfo {
        let r = Reg::new(0).expect("register index in range");
        let inst = Inst::Add {
            rd: r,
            rs: r,
            rt: r,
        };
        StepInfo {
            pc: Pc(pc),
            inst,
            class: inst.class(),
            next_pc: Pc(pc + 1),
            mem: None,
            branch: None,
        }
    }

    fn load_step(pc: u32, addr: u64) -> StepInfo {
        let r = Reg::new(0).expect("register index in range");
        let inst = Inst::Load {
            rd: r,
            rs: r,
            imm: 0,
        };
        StepInfo {
            pc: Pc(pc),
            inst,
            class: inst.class(),
            next_pc: Pc(pc + 1),
            mem: Some(MemAccess {
                addr,
                size: 8,
                is_store: false,
            }),
            branch: None,
        }
    }

    fn branch_step(pc: u32, taken: bool, target: u32) -> StepInfo {
        let r = Reg::new(0).expect("register index in range");
        let inst = Inst::Branch {
            cond: Cond::Eq,
            rs: r,
            rt: r,
            target: Pc(target),
        };
        let next = if taken { Pc(target) } else { Pc(pc + 1) };
        StepInfo {
            pc: Pc(pc),
            inst,
            class: inst.class(),
            next_pc: next,
            mem: None,
            branch: Some(BranchOutcome {
                taken,
                next_pc: next,
            }),
        }
    }

    #[test]
    fn issue_width_limits_throughput() {
        let mut core = CoreModel::new(&cfg()); // width 4
        for i in 0..100 {
            core.on_step(&alu_step(i), ExecMode::Translated);
        }
        assert_eq!(core.cycles(), 25);
        assert_eq!(core.stats().instructions, 100);
    }

    #[test]
    fn interpretation_is_slower_than_translation() {
        let mut interp = CoreModel::new(&cfg());
        let mut trans = CoreModel::new(&cfg());
        for i in 0..100 {
            interp.on_step(&alu_step(i), ExecMode::Interpreted);
            trans.on_step(&alu_step(i), ExecMode::Translated);
        }
        assert!(interp.cycles() >= 4 * trans.cycles());
    }

    #[test]
    fn repeated_load_hits_l1_without_stall() {
        let mut core = CoreModel::new(&cfg());
        core.on_step(&load_step(0, 0x1000), ExecMode::Translated);
        let cold = core.cycles();
        for _ in 0..50 {
            core.on_step(&load_step(0, 0x1000), ExecMode::Translated);
        }
        // 51 loads in total: only the first missed.
        assert_eq!(core.stats().l1_hits, 50);
        assert!(core.cycles() - cold <= 51 / 4 + 1);
    }

    #[test]
    fn mispredicted_branch_stalls_pipeline() {
        let mut core = CoreModel::new(&cfg());
        // Cold branch: first encounter mispredicts (BTB empty, taken).
        core.on_step(&branch_step(0, true, 100), ExecMode::Translated);
        assert_eq!(core.stats().mispredicts, 1);
        assert!(core.cycles() >= u64::from(cfg().bpu.mispredict_penalty));
    }

    #[test]
    fn gated_vpu_costs_more_slots_and_counts_emulated() {
        let r = powerchop_gisa::VReg::new(0).expect("register index in range");
        let inst = Inst::Vadd {
            vd: r,
            vs: r,
            vt: r,
        };
        let step = StepInfo {
            pc: Pc(0),
            inst,
            class: inst.class(),
            next_pc: Pc(1),
            mem: None,
            branch: None,
        };
        let mut on = CoreModel::new(&cfg());
        let mut off = CoreModel::new(&cfg());
        off.set_vpu_active(false);
        for _ in 0..100 {
            on.on_step(&step, ExecMode::Translated);
            off.on_step(&step, ExecMode::Translated);
        }
        assert!(off.cycles() > 4 * on.cycles());
        assert_eq!(on.stats().simd_committed, 100);
        assert_eq!(on.stats().vec_emulated, 0);
        assert_eq!(off.stats().simd_committed, 0);
        assert_eq!(off.stats().vec_emulated, 100);
        assert_eq!(off.stats().vec_ops, 100);
    }

    #[test]
    fn mlc_way_gating_shrinks_capacity_and_flushes() {
        let mut core = CoreModel::new(&cfg());
        // Touch many distinct lines with stores so the MLC gets dirty data
        // (L1 write-allocates; lines spill into the MLC as L1 evicts them).
        for i in 0..20_000u64 {
            let r = Reg::new(0).expect("register index in range");
            let inst = Inst::Store {
                rs: r,
                rbase: r,
                imm: 0,
            };
            let step = StepInfo {
                pc: Pc(0),
                inst,
                class: inst.class(),
                next_pc: Pc(1),
                mem: Some(MemAccess {
                    addr: i * 64,
                    size: 8,
                    is_store: true,
                }),
                branch: None,
            };
            core.on_step(&step, ExecMode::Translated);
        }
        let flushed = core.set_mlc_way_state(MlcWayState::One);
        assert!(flushed > 0, "dirty lines should flush on way gating");
        assert_eq!(core.mlc_way_state(), MlcWayState::One);
    }

    #[test]
    fn smaller_mlc_hurts_mlc_bound_workload() {
        // Working set of 512 KiB: fits an 8-way 1 MiB MLC, thrashes 1 way.
        let lines: u64 = 8192;
        let run = |state: MlcWayState| {
            let mut core = CoreModel::new(&cfg());
            core.set_mlc_way_state(state);
            for pass in 0..4 {
                for i in 0..lines {
                    let _ = pass;
                    core.on_step(&load_step(0, i * 64), ExecMode::Translated);
                }
            }
            core.cycles()
        };
        let full = run(MlcWayState::Full);
        let one = run(MlcWayState::One);
        assert!(
            one > full,
            "1-way MLC ({one}) should be slower than full ({full})"
        );
    }

    #[test]
    fn add_stall_adds_exactly() {
        let mut core = CoreModel::new(&cfg());
        core.add_stall(123);
        assert_eq!(core.cycles(), 123);
    }
}
