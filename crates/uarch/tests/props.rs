//! Property-based tests for the microarchitectural unit models,
//! driven by the workspace's seeded harness (`powerchop_faults::check`).

use powerchop_faults::check::cases;
use powerchop_uarch::bpu::Bpu;
use powerchop_uarch::cache::{Cache, MlcWayState};
use powerchop_uarch::config::{CacheConfig, CoreConfig};

fn small_cache_cfg(ways: u32) -> CacheConfig {
    CacheConfig {
        size_kib: (ways * 16).max(1),
        ways,
        line_bytes: 64,
        hit_latency: 10,
    }
}

/// A cache access is always a hit immediately after accessing the
/// same address (temporal locality invariant), for any access mix.
#[test]
fn repeat_access_always_hits() {
    cases("repeat access hits", 128, |rng| {
        let ways = 1 + rng.gen_range(8) as u32;
        let mut cache = Cache::new(&small_cache_cfg(ways));
        for _ in 0..1 + rng.gen_range(200) {
            let addr = rng.gen_range(1 << 20);
            cache.access(addr, rng.gen_bool(0.5));
            assert!(cache.probe(addr), "line must be resident after access");
            assert!(cache.access(addr, false).hit);
        }
    });
}

/// Hits + misses always equals accesses, and hits never exceed
/// accesses, regardless of way-gating churn.
#[test]
fn cache_stats_are_consistent() {
    cases("cache stats consistent", 128, |rng| {
        let mut cache = Cache::new(&small_cache_cfg(8));
        for _ in 0..1 + rng.gen_range(300) {
            let addr = rng.gen_range(1 << 18);
            match rng.gen_range(3) {
                0 => {
                    cache.access(addr, false);
                }
                1 => {
                    cache.access(addr, true);
                }
                _ => {
                    cache.set_active_ways(1 + (addr % 8) as u32);
                }
            }
            let s = cache.stats();
            assert!(s.hits <= s.accesses);
            assert_eq!(s.hits + s.misses(), s.accesses);
        }
    });
}

/// The number of resident lines never exceeds the active capacity.
#[test]
fn residency_respects_active_ways() {
    cases("residency bound", 128, |rng| {
        let active = 1 + rng.gen_range(8) as u32;
        let mut cache = Cache::new(&small_cache_cfg(8));
        cache.set_active_ways(active);
        for _ in 0..1 + rng.gen_range(500) {
            cache.access(rng.gen_range(1 << 22), false);
        }
        let cfg = small_cache_cfg(8);
        let sets = cfg.sets() as usize;
        assert!(cache.resident_lines() <= sets * active as usize);
    });
}

/// Way-gating returns exactly the dirty lines that disappear, and
/// never loses the stats invariants.
#[test]
fn way_gating_flush_counts_dirty_lines() {
    cases("way-gating flush counts", 128, |rng| {
        let target = 1 + rng.gen_range(4) as u32;
        let mut cache = Cache::new(&small_cache_cfg(8));
        for _ in 0..1 + rng.gen_range(200) {
            cache.access(rng.gen_range(1 << 18), true);
        }
        let before_wb = cache.stats().writebacks;
        let resident_before = cache.resident_lines();
        let flushed = cache.set_active_ways(target);
        assert_eq!(cache.stats().writebacks, before_wb + flushed);
        // Lines lost = resident_before - resident_after; flushed dirty
        // lines are a subset of the lost lines.
        let lost = resident_before - cache.resident_lines();
        assert!(flushed as usize <= lost + 1);
    });
}

/// MLC way-state fractions are monotone: One <= Half <= Full.
#[test]
fn way_state_fractions_monotone() {
    cases("way-state fractions monotone", 32, |rng| {
        let total = 2 + rng.gen_range(15) as u32;
        let one = MlcWayState::One.active_fraction(total);
        let half = MlcWayState::Half.active_fraction(total);
        let full = MlcWayState::Full.active_fraction(total);
        assert!(one <= half && half <= full);
        assert!((full - 1.0).abs() < 1e-12);
        assert!(one > 0.0);
    });
}

/// The predictor never "loses" branches: the stats always count every
/// prediction, and mispredicts never exceed branches.
#[test]
fn bpu_stats_consistent() {
    cases("bpu stats consistent", 128, |rng| {
        let n = 1 + rng.gen_range(500) as usize;
        let gate_at = if rng.gen_bool(0.5) {
            Some(rng.gen_range(400) as usize)
        } else {
            None
        };
        let mut bpu = Bpu::new(&CoreConfig::server().bpu);
        for i in 0..n {
            if Some(i) == gate_at {
                bpu.set_large_active(false);
            }
            let pc = rng.gen_range(4096) as u32;
            bpu.predict_and_update(pc, rng.gen_bool(0.5), pc.wrapping_add(7));
        }
        let s = bpu.stats();
        assert_eq!(s.branches, n as u64);
        assert!(s.mispredicts <= s.branches);
    });
}

/// A perfectly biased branch becomes almost perfectly predicted by
/// either predictor after warm-up.
#[test]
fn biased_branches_are_learned() {
    cases("biased branch learning", 16, |rng| {
        let taken = rng.gen_bool(0.5);
        let large = rng.gen_bool(0.5);
        let mut bpu = Bpu::new(&CoreConfig::server().bpu);
        bpu.set_large_active(large);
        for _ in 0..64 {
            bpu.predict_and_update(100, taken, 7);
        }
        let warm = bpu.stats();
        for _ in 0..64 {
            bpu.predict_and_update(100, taken, 7);
        }
        let s = bpu.stats();
        assert_eq!(
            s.mispredicts, warm.mispredicts,
            "steady state must be perfect"
        );
    });
}
