//! Property-based tests for the microarchitectural unit models.

use proptest::prelude::*;

use powerchop_uarch::cache::{Cache, MlcWayState};
use powerchop_uarch::config::{CacheConfig, CoreConfig};
use powerchop_uarch::bpu::Bpu;

fn small_cache_cfg(ways: u32) -> CacheConfig {
    CacheConfig { size_kib: (ways * 16).max(1), ways, line_bytes: 64, hit_latency: 10 }
}

proptest! {
    /// A cache access is always a hit immediately after accessing the
    /// same address (temporal locality invariant), for any access mix.
    #[test]
    fn repeat_access_always_hits(
        ways in 1u32..=8,
        addrs in prop::collection::vec((0u64..1 << 20, any::<bool>()), 1..200),
    ) {
        let mut cache = Cache::new(&small_cache_cfg(ways));
        for (addr, is_store) in addrs {
            cache.access(addr, is_store);
            prop_assert!(cache.probe(addr), "line must be resident after access");
            prop_assert!(cache.access(addr, false).hit);
        }
    }

    /// Hits + misses always equals accesses, and hits never exceed
    /// accesses, regardless of way-gating churn.
    #[test]
    fn cache_stats_are_consistent(
        ops in prop::collection::vec((0u64..1 << 18, 0u8..3), 1..300),
    ) {
        let mut cache = Cache::new(&small_cache_cfg(8));
        for (addr, op) in ops {
            match op {
                0 => { cache.access(addr, false); }
                1 => { cache.access(addr, true); }
                _ => { cache.set_active_ways(1 + (addr % 8) as u32); }
            }
            let s = cache.stats();
            prop_assert!(s.hits <= s.accesses);
            prop_assert_eq!(s.hits + s.misses(), s.accesses);
        }
    }

    /// The number of resident lines never exceeds the active capacity.
    #[test]
    fn residency_respects_active_ways(
        active in 1u32..=8,
        addrs in prop::collection::vec(0u64..1 << 22, 1..500),
    ) {
        let mut cache = Cache::new(&small_cache_cfg(8));
        cache.set_active_ways(active);
        for addr in addrs {
            cache.access(addr, false);
        }
        let cfg = small_cache_cfg(8);
        let sets = cfg.sets() as usize;
        prop_assert!(cache.resident_lines() <= sets * active as usize);
    }

    /// Way-gating returns exactly the dirty lines that disappear, and
    /// never loses the stats invariants.
    #[test]
    fn way_gating_flush_counts_dirty_lines(
        stores in prop::collection::vec(0u64..1 << 18, 1..200),
        target in 1u32..=4,
    ) {
        let mut cache = Cache::new(&small_cache_cfg(8));
        for addr in &stores {
            cache.access(*addr, true);
        }
        let before_wb = cache.stats().writebacks;
        let resident_before = cache.resident_lines();
        let flushed = cache.set_active_ways(target);
        prop_assert_eq!(cache.stats().writebacks, before_wb + flushed);
        // Lines lost = resident_before - resident_after; flushed dirty
        // lines are a subset of the lost lines.
        let lost = resident_before - cache.resident_lines();
        prop_assert!(flushed as usize <= lost + 1);
    }

    /// MLC way-state fractions are monotone: One <= Half <= Full.
    #[test]
    fn way_state_fractions_monotone(total in 2u32..=16) {
        let one = MlcWayState::One.active_fraction(total);
        let half = MlcWayState::Half.active_fraction(total);
        let full = MlcWayState::Full.active_fraction(total);
        prop_assert!(one <= half && half <= full);
        prop_assert!((full - 1.0).abs() < 1e-12);
        prop_assert!(one > 0.0);
    }

    /// The predictor never "loses" branches: the stats always count every
    /// prediction, and mispredicts never exceed branches.
    #[test]
    fn bpu_stats_consistent(
        branches in prop::collection::vec((0u32..4096, any::<bool>()), 1..500),
        gate_at in prop::option::of(0usize..400),
    ) {
        let mut bpu = Bpu::new(&CoreConfig::server().bpu);
        for (i, (pc, taken)) in branches.iter().enumerate() {
            if Some(i) == gate_at {
                bpu.set_large_active(false);
            }
            bpu.predict_and_update(*pc, *taken, pc.wrapping_add(7));
        }
        let s = bpu.stats();
        prop_assert_eq!(s.branches, branches.len() as u64);
        prop_assert!(s.mispredicts <= s.branches);
    }

    /// A perfectly biased branch becomes almost perfectly predicted by
    /// either predictor after warm-up.
    #[test]
    fn biased_branches_are_learned(taken in any::<bool>(), large in any::<bool>()) {
        let mut bpu = Bpu::new(&CoreConfig::server().bpu);
        bpu.set_large_active(large);
        for _ in 0..64 {
            bpu.predict_and_update(100, taken, 7);
        }
        let warm = bpu.stats();
        for _ in 0..64 {
            bpu.predict_and_update(100, taken, 7);
        }
        let s = bpu.stats();
        prop_assert_eq!(s.mispredicts, warm.mispredicts, "steady state must be perfect");
    }
}
