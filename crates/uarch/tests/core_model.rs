//! Behavioural tests of the core timing model's memory hierarchy, unit
//! interactions and drowsy operation.

use powerchop_gisa::{BranchOutcome, Cond, Inst, MemAccess, Pc, Reg, StepInfo, VReg, VLEN};
use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::config::CoreConfig;
use powerchop_uarch::core::{CoreModel, ExecMode};

fn load_step(addr: u64) -> StepInfo {
    let r = Reg::new(0).unwrap();
    let inst = Inst::Load {
        rd: r,
        rs: r,
        imm: 0,
    };
    StepInfo {
        pc: Pc(0),
        inst,
        class: inst.class(),
        next_pc: Pc(1),
        mem: Some(MemAccess {
            addr,
            size: 8,
            is_store: false,
        }),
        branch: None,
    }
}

fn store_step(addr: u64) -> StepInfo {
    let r = Reg::new(0).unwrap();
    let inst = Inst::Store {
        rs: r,
        rbase: r,
        imm: 0,
    };
    StepInfo {
        pc: Pc(0),
        inst,
        class: inst.class(),
        next_pc: Pc(1),
        mem: Some(MemAccess {
            addr,
            size: 8,
            is_store: true,
        }),
        branch: None,
    }
}

fn vload_step(addr: u64) -> StepInfo {
    let v = VReg::new(0).unwrap();
    let r = Reg::new(0).unwrap();
    let inst = Inst::Vload {
        vd: v,
        rs: r,
        imm: 0,
    };
    StepInfo {
        pc: Pc(0),
        inst,
        class: inst.class(),
        next_pc: Pc(1),
        mem: Some(MemAccess {
            addr,
            size: 8 * VLEN as u32,
            is_store: false,
        }),
        branch: None,
    }
}

#[test]
fn memory_levels_cost_progressively_more() {
    let cfg = CoreConfig::server();
    // L1-resident stream.
    let mut l1 = CoreModel::new(&cfg);
    for _ in 0..1000 {
        l1.on_step(&load_step(0x100), ExecMode::Translated);
    }
    // MLC-resident stream (64 KiB > 32 KiB L1).
    let mut mlc = CoreModel::new(&cfg);
    for i in 0..4000u64 {
        mlc.on_step(&load_step((i % 1024) * 64), ExecMode::Translated);
    }
    for _ in 0..2 {
        for i in 0..1000u64 {
            mlc.on_step(&load_step(i * 64), ExecMode::Translated);
        }
    }
    // Memory stream (never repeats).
    let mut mem = CoreModel::new(&cfg);
    for i in 0..1000u64 {
        mem.on_step(&load_step(i * 4096 * 64), ExecMode::Translated);
    }
    let cpi = |core: &CoreModel| core.cycles() as f64 / core.stats().instructions as f64;
    assert!(cpi(&l1) < cpi(&mlc), "L1 hits must beat MLC hits");
    assert!(cpi(&mlc) < cpi(&mem), "MLC hits must beat memory");
    assert!(mem.stats().mem_accesses > 900);
}

#[test]
fn llc_sits_between_mlc_and_memory() {
    let cfg = CoreConfig::server();
    // 4 MiB working set: misses the 1 MiB MLC, fits the 8 MiB LLC.
    let mut core = CoreModel::new(&cfg);
    let lines = 4 * 1024 * 1024 / 64;
    for pass in 0..3 {
        for i in 0..lines {
            let _ = pass;
            core.on_step(&load_step(i * 64), ExecMode::Translated);
        }
    }
    let s = core.stats();
    assert!(
        s.llc_hits > s.mlc_hits,
        "the LLC should capture what the MLC cannot"
    );
    assert!(s.llc_hits > s.mem_accesses, "the set fits the LLC");
}

#[test]
fn vector_memory_touches_the_same_lines_gated_or_not() {
    let cfg = CoreConfig::server();
    let mut native = CoreModel::new(&cfg);
    let mut emulated = CoreModel::new(&cfg);
    emulated.set_vpu_active(false);
    for i in 0..500u64 {
        native.on_step(&vload_step(i * 64), ExecMode::Translated);
        emulated.on_step(&vload_step(i * 64), ExecMode::Translated);
    }
    // Same set of lines -> same MLC demand (the emulated path issues one
    // scalar access per lane, hitting L1 for lanes 2..4).
    assert_eq!(
        native.stats().mlc_accesses,
        emulated.stats().mlc_accesses,
        "emulation must not change cache-line footprints"
    );
    assert!(emulated.stats().l1_hits > native.stats().l1_hits);
    assert!(emulated.cycles() > native.cycles());
}

#[test]
fn stores_dirty_lines_that_flush_on_way_gating() {
    let cfg = CoreConfig::server();
    let mut core = CoreModel::new(&cfg);
    for i in 0..20_000u64 {
        core.on_step(&store_step(i * 64), ExecMode::Translated);
    }
    let flushed = core.set_mlc_way_state(MlcWayState::One);
    assert!(
        flushed > 1_000,
        "a dirtied MLC must flush on gating: {flushed}"
    );
    // Re-growing is free of writebacks.
    let flushed = core.set_mlc_way_state(MlcWayState::Full);
    assert_eq!(flushed, 0);
}

#[test]
fn drowse_and_awake_fraction_via_core() {
    let cfg = CoreConfig::server();
    let mut core = CoreModel::new(&cfg);
    for i in 0..2_000u64 {
        core.on_step(&load_step(i * 64), ExecMode::Translated);
    }
    assert!(
        (core.mlc_awake_fraction() - 1.0).abs() < 1e-12,
        "nothing drowsy yet"
    );
    let drowsed = core.drowse_mlc();
    assert!(drowsed > 900, "most touched lines drowse: {drowsed}");
    assert!(core.mlc_awake_fraction() < 1.0);
    // Re-access wakes lines and counts wake stalls.
    let before = core.cycles();
    core.on_step(&load_step(0), ExecMode::Translated);
    assert_eq!(core.stats().mlc_drowsy_wakes, 1);
    assert!(core.cycles() > before);
}

#[test]
fn quarter_way_state_applies_through_the_core() {
    let cfg = CoreConfig::server();
    let mut core = CoreModel::new(&cfg);
    core.set_mlc_way_state(MlcWayState::Quarter);
    assert_eq!(core.mlc_way_state(), MlcWayState::Quarter);
    // Effective capacity 256 KiB: a 512 KiB cyclic stream now misses.
    let lines = 512 * 1024 / 64;
    for pass in 0..3 {
        for i in 0..lines {
            let _ = pass;
            core.on_step(&load_step(i * 64), ExecMode::Translated);
        }
    }
    let s = core.stats();
    assert!(
        s.mlc_hits * 2 < s.mlc_accesses,
        "cyclic 512 KiB thrashes a quarter-size MLC: {} of {}",
        s.mlc_hits,
        s.mlc_accesses
    );
}

#[test]
fn branch_stream_with_jumps_only_touches_the_btb_path() {
    let cfg = CoreConfig::server();
    let mut core = CoreModel::new(&cfg);
    // Unconditional jumps are not BPU events in this model.
    let inst = Inst::Jmp { target: Pc(5) };
    let step = StepInfo {
        pc: Pc(0),
        inst,
        class: inst.class(),
        next_pc: Pc(5),
        mem: None,
        branch: None,
    };
    for _ in 0..100 {
        core.on_step(&step, ExecMode::Translated);
    }
    assert_eq!(core.stats().branches, 0);
    assert_eq!(core.stats().mispredicts, 0);
}

#[test]
fn conditional_branches_drive_the_active_predictor() {
    let cfg = CoreConfig::server();
    let mut large = CoreModel::new(&cfg);
    let mut small = CoreModel::new(&cfg);
    small.set_bpu_large_active(false);
    // Alternating pattern: global history learns it, a bimodal cannot.
    for i in 0..4000u32 {
        let taken = i % 2 == 0;
        let r = Reg::new(0).unwrap();
        let inst = Inst::Branch {
            cond: Cond::Eq,
            rs: r,
            rt: r,
            target: Pc(40),
        };
        let next = if taken { Pc(40) } else { Pc(8) };
        let step = StepInfo {
            pc: Pc(7),
            inst,
            class: inst.class(),
            next_pc: next,
            mem: None,
            branch: Some(BranchOutcome {
                taken,
                next_pc: next,
            }),
        };
        large.on_step(&step, ExecMode::Translated);
        small.on_step(&step, ExecMode::Translated);
    }
    assert!(
        large.stats().mispredicts * 4 < small.stats().mispredicts,
        "the tournament must learn alternation: {} vs {}",
        large.stats().mispredicts,
        small.stats().mispredicts
    );
    assert!(large.cycles() < small.cycles());
}
