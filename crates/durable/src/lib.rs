//! Crash-consistency for the serve daemon.
//!
//! A `kill -9` of `powerchop-serve` must not destroy the daemon's
//! warmed-up economy: accepted requests, partially-computed sweeps and
//! the LRU result cache all represent work that was expensive to do and
//! is cheap to keep. This crate provides the three durable artifacts
//! that survive the process:
//!
//! - **The intent journal** ([`Journal`]): an append-only, fsync'd,
//!   CRC32-framed write-ahead log of typed [`Record`]s. Accepted
//!   `run`/`sweep` requests are journaled *before* dispatch; spill
//!   markers record each mid-run checkpoint; a completion record retires
//!   the intent. [`replay`] walks the log on boot, stops at the first
//!   torn or corrupt frame (everything after a broken frame is
//!   unframed noise), and reports what it found and what it discarded.
//! - **Checkpoint spills**: periodic `Simulation::snapshot` containers
//!   written atomically (temp file + rename) under [`spill_path`], so an
//!   interrupted run resumes from its last chunk boundary with zero
//!   re-done chunks.
//! - **The result-cache log** ([`CacheLog`]): a write-through log of
//!   `(run_key, reply)` pairs in the same frame format, replayed on boot
//!   so cache hits survive a restart bit-identically.
//!
//! Framing reuses `powerchop-checkpoint`'s CRC machinery: each frame is
//! `magic, payload length, CRC-32(length || payload), payload`, all
//! little-endian, with the CRC computed streamingly over the length
//! prefix and payload. A frame whose magic, length, or CRC does not
//! check out ends the replay — by construction the journal is
//! append-only, so a broken frame can only be the torn tail of the
//! write that was in flight when the process died, or in-place
//! corruption that makes everything after it untrustworthy.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod journal;
pub mod results;

pub use frame::{read_frames, FrameScan, FrameSink, TailVerdict, FRAME_MAGIC};
pub use journal::{compact, replay, Journal, JournalReplay, PendingIntent, Record, SpecRecord};
pub use results::{compact_results, replay_results, CacheLog, CacheReplay};

use std::path::{Path, PathBuf};

/// File name of the intent journal inside a journal directory.
pub const JOURNAL_FILE: &str = "intents.wal";

/// File name of the result-cache log inside a cache directory.
pub const RESULTS_FILE: &str = "results.wal";

/// Path of the intent journal inside `dir`.
#[must_use]
pub fn journal_path(dir: &Path) -> PathBuf {
    dir.join(JOURNAL_FILE)
}

/// Path of the result-cache log inside `dir`.
#[must_use]
pub fn results_path(dir: &Path) -> PathBuf {
    dir.join(RESULTS_FILE)
}

/// Path of the checkpoint spill for intent `id`'s run of `bench`.
/// Keyed by intent id so two in-flight intents over the same benchmark
/// can never clobber each other's spills.
#[must_use]
pub fn spill_path(dir: &Path, id: u64, bench: &str) -> PathBuf {
    // Benchmark names are roster-validated (lowercase alphanumerics and
    // dashes), but sanitize anyway: a path separator in a file name must
    // never escape the journal directory.
    let safe: String = bench
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' || c == '_' {
                c
            } else {
                '_'
            }
        })
        .collect();
    dir.join(format!("spill-{id:016x}-{safe}.ckpt"))
}

/// Writes `bytes` to `path` atomically: the full contents land in a
/// temp file first and are renamed into place, so a crash mid-write can
/// never leave a half-written spill where a valid one used to be.
///
/// # Errors
///
/// Propagates the underlying filesystem errors.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> std::io::Result<()> {
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, bytes)?;
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spill_paths_are_distinct_per_intent_and_sanitized() {
        let dir = Path::new("/state");
        let a = spill_path(dir, 1, "hmmer");
        let b = spill_path(dir, 2, "hmmer");
        assert_ne!(a, b);
        let evil = spill_path(dir, 3, "../../etc/passwd");
        assert!(evil.starts_with(dir));
        assert!(!evil.to_string_lossy().contains(".."));
    }

    #[test]
    fn write_atomic_replaces_whole_files() {
        let dir = std::env::temp_dir().join(format!("pwc-durable-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("a.ckpt");
        write_atomic(&path, b"first").expect("write");
        write_atomic(&path, b"second").expect("overwrite");
        assert_eq!(std::fs::read(&path).expect("read"), b"second");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
