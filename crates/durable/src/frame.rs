//! CRC32-framed append-only log files.
//!
//! One frame on disk:
//!
//! ```text
//! offset  size  field
//! 0       4     magic  "PWAL" (0x4C415750 little-endian)
//! 4       4     payload length N (LE u32)
//! 8       4     CRC-32 over (length bytes || payload)
//! 12      N     payload
//! ```
//!
//! The CRC covers the length prefix as well as the payload, so a
//! bit-flip in the length field — which would otherwise make the reader
//! frame the rest of the file wrong — is caught exactly like a payload
//! flip. Appends are fsync'd before they return: once
//! [`FrameSink::append`] comes back `Ok`, the frame survives `kill -9`.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::Path;

use powerchop_checkpoint::{crc32_begin, crc32_finish, crc32_update};

/// Frame magic: `b"PWAL"` read as a little-endian u32.
pub const FRAME_MAGIC: u32 = u32::from_le_bytes(*b"PWAL");

/// Largest accepted frame payload (16 MiB): a corrupted length field
/// must not make the reader attempt a absurd allocation.
pub const MAX_FRAME_BYTES: u32 = 16 << 20;

/// An open log file that appends CRC-framed, fsync'd records.
#[derive(Debug)]
pub struct FrameSink {
    file: File,
}

impl FrameSink {
    /// Opens (creating if absent) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(Self { file })
    }

    /// Appends one frame and syncs it to disk. When this returns `Ok`,
    /// the record is durable.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures; a payload over
    /// [`MAX_FRAME_BYTES`] is rejected as `InvalidInput`.
    pub fn append(&mut self, payload: &[u8]) -> std::io::Result<()> {
        let len = u32::try_from(payload.len())
            .ok()
            .filter(|&n| n <= MAX_FRAME_BYTES)
            .ok_or_else(|| {
                std::io::Error::new(
                    std::io::ErrorKind::InvalidInput,
                    format!("frame payload of {} bytes exceeds the cap", payload.len()),
                )
            })?;
        let len_bytes = len.to_le_bytes();
        let crc = crc32_finish(crc32_update(
            crc32_update(crc32_begin(), &len_bytes),
            payload,
        ));
        // One buffered write per frame so a crash tears at most the
        // frame being appended, never interleaves two frames.
        let mut buf = Vec::with_capacity(12 + payload.len());
        buf.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        buf.extend_from_slice(&len_bytes);
        buf.extend_from_slice(&crc.to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        self.file.sync_data()
    }
}

/// How a frame scan ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailVerdict {
    /// Every byte framed and checked out.
    Clean,
    /// The file ends mid-frame: the write in flight when the process
    /// died. The torn bytes after `valid_bytes` are discarded.
    Torn {
        /// Bytes of intact leading frames.
        valid_bytes: usize,
    },
    /// A complete frame failed its magic or CRC check: in-place
    /// corruption. Everything from `valid_bytes` on is discarded —
    /// framing downstream of a corrupt frame cannot be trusted.
    Corrupt {
        /// Bytes of intact leading frames.
        valid_bytes: usize,
    },
}

impl TailVerdict {
    /// Whether the scan discarded anything.
    #[must_use]
    pub fn discarded(&self) -> bool {
        !matches!(self, TailVerdict::Clean)
    }
}

/// The result of scanning a log file's bytes.
#[derive(Debug)]
pub struct FrameScan<'a> {
    /// Intact frame payloads, in append order.
    pub frames: Vec<&'a [u8]>,
    /// How the scan ended.
    pub tail: TailVerdict,
}

/// Walks `bytes` frame by frame, stopping at the first torn or corrupt
/// frame. Never panics: any byte sequence yields a scan.
#[must_use]
pub fn read_frames(bytes: &[u8]) -> FrameScan<'_> {
    let mut frames = Vec::new();
    let mut at = 0usize;
    loop {
        let rest = &bytes[at..];
        if rest.is_empty() {
            return FrameScan {
                frames,
                tail: TailVerdict::Clean,
            };
        }
        if rest.len() < 12 {
            return FrameScan {
                frames,
                tail: TailVerdict::Torn { valid_bytes: at },
            };
        }
        let magic = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]);
        let len_bytes = [rest[4], rest[5], rest[6], rest[7]];
        let len = u32::from_le_bytes(len_bytes);
        let crc = u32::from_le_bytes([rest[8], rest[9], rest[10], rest[11]]);
        if magic != FRAME_MAGIC || len > MAX_FRAME_BYTES {
            return FrameScan {
                frames,
                tail: TailVerdict::Corrupt { valid_bytes: at },
            };
        }
        let need = len as usize;
        let Some(payload) = rest.get(12..12 + need) else {
            // The header is intact but the payload is short: the torn
            // tail of an interrupted append.
            return FrameScan {
                frames,
                tail: TailVerdict::Torn { valid_bytes: at },
            };
        };
        let got = crc32_finish(crc32_update(
            crc32_update(crc32_begin(), &len_bytes),
            payload,
        ));
        if got != crc {
            return FrameScan {
                frames,
                tail: TailVerdict::Corrupt { valid_bytes: at },
            };
        }
        frames.push(payload);
        at += 12 + need;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sink_bytes(name: &str, payloads: &[&[u8]]) -> Vec<u8> {
        let dir = std::env::temp_dir().join(format!("pwc-frame-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let path = dir.join("t.wal");
        let mut sink = FrameSink::open(&path).expect("open");
        for p in payloads {
            sink.append(p).expect("append");
        }
        let bytes = std::fs::read(&path).expect("read back");
        let _ = std::fs::remove_dir_all(&dir);
        bytes
    }

    #[test]
    fn roundtrip_preserves_payloads_in_order() {
        let bytes = sink_bytes("roundtrip", &[b"alpha", b"", b"gamma-longer-payload"]);
        let scan = read_frames(&bytes);
        assert_eq!(scan.tail, TailVerdict::Clean);
        let got: Vec<&[u8]> = scan.frames;
        assert_eq!(
            got,
            vec![&b"alpha"[..], &b""[..], &b"gamma-longer-payload"[..]]
        );
    }

    #[test]
    fn truncation_at_every_length_lands_on_the_last_intact_frame() {
        let bytes = sink_bytes("trunc", &[b"one", b"two", b"three"]);
        // Frame boundaries: each frame is 12 + payload bytes.
        let bounds = [0, 15, 30, 47];
        for cut in 0..bytes.len() {
            let scan = read_frames(&bytes[..cut]);
            let intact = bounds.iter().filter(|&&b| b <= cut && b > 0).count();
            assert_eq!(scan.frames.len(), intact, "cut at {cut}");
            if cut == *bounds.last().expect("bounds") || bounds.contains(&cut) {
                assert_eq!(scan.tail, TailVerdict::Clean, "cut at {cut}");
            } else {
                assert_eq!(
                    scan.tail,
                    TailVerdict::Torn {
                        valid_bytes: bounds[intact]
                    },
                    "cut at {cut}"
                );
            }
        }
    }

    #[test]
    fn every_single_bit_flip_is_caught() {
        let bytes = sink_bytes("bitflip", &[b"payload-one", b"payload-two"]);
        let clean = read_frames(&bytes).frames.len();
        assert_eq!(clean, 2);
        for i in 0..bytes.len() {
            for bit in 0..8 {
                let mut evil = bytes.clone();
                evil[i] ^= 1 << bit;
                let scan = read_frames(&evil);
                // The flip lands in frame 0 or frame 1; everything
                // before the flipped frame must survive, the flipped
                // frame and everything after must be discarded.
                let hit_first = i < 23; // frame 0 occupies [0, 23)
                let expect = usize::from(!hit_first);
                assert_eq!(scan.frames.len(), expect, "flip at byte {i} bit {bit}");
                assert!(scan.tail.discarded(), "flip at byte {i} bit {bit}");
            }
        }
    }

    #[test]
    fn absurd_length_fields_are_corrupt_not_allocated() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0; 4]);
        let scan = read_frames(&bytes);
        assert!(scan.frames.is_empty());
        assert_eq!(scan.tail, TailVerdict::Corrupt { valid_bytes: 0 });
    }

    #[test]
    fn oversized_appends_are_rejected() {
        let dir = std::env::temp_dir().join(format!("pwc-frame-big-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        let mut sink = FrameSink::open(&dir.join("big.wal")).expect("open");
        let big = vec![0u8; (MAX_FRAME_BYTES as usize) + 1];
        assert!(sink.append(&big).is_err());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
