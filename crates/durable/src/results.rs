//! Persistent result-cache log: write-through `(run_key, reply)` pairs.
//!
//! Every reply the daemon caches is also appended here (same CRC frame
//! format as the journal), so a restart reloads the cache and serves
//! the same hits bit-identically. Later appends for the same key simply
//! win on replay — the log is an append-only history, recency included.
//! On boot the daemon replays the log and rewrites it compacted, so the
//! file stays proportional to the live cache rather than to its
//! history.

use std::path::Path;

use powerchop_checkpoint::{ByteReader, ByteWriter, CheckpointError};

use crate::frame::{read_frames, FrameSink, TailVerdict};

/// An append handle over the result-cache log.
#[derive(Debug)]
pub struct CacheLog {
    sink: FrameSink,
}

/// Encodes one cache entry as a frame payload.
fn encode_entry(key: u128, reply: &str) -> Vec<u8> {
    let mut w = ByteWriter::new();
    w.put_u64((key >> 64) as u64);
    w.put_u64(key as u64);
    w.put_str(reply);
    w.into_bytes()
}

/// Decodes one cache-entry frame payload.
fn decode_entry(payload: &[u8]) -> Result<(u128, String), CheckpointError> {
    let mut r = ByteReader::new(payload);
    let high = r.take_u64()?;
    let low = r.take_u64()?;
    let reply = r.take_str()?;
    r.expect_end("cache entry")?;
    Ok(((u128::from(high) << 64) | u128::from(low), reply))
}

impl CacheLog {
    /// Opens (creating if absent) the log at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            sink: FrameSink::open(path)?,
        })
    }

    /// Appends one cached reply, fsync'd.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn append(&mut self, key: u128, reply: &str) -> std::io::Result<()> {
        self.sink.append(&encode_entry(key, reply))
    }
}

/// What a cache-log replay found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheReplay {
    /// Entries in append order (later entries for a key supersede
    /// earlier ones when folded into an LRU).
    pub entries: Vec<(u128, String)>,
    /// Whether a torn tail or corrupt frame ended the scan early.
    pub discarded: bool,
}

/// Replays the cache log at `path`. A missing file is an empty log;
/// torn/corrupt/undecodable frames end the scan at the last valid
/// entry. Never panics on any file contents.
///
/// # Errors
///
/// Propagates only real I/O failures.
pub fn replay_results(path: &Path) -> std::io::Result<CacheReplay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = read_frames(&bytes);
    let mut out = CacheReplay {
        discarded: !matches!(scan.tail, TailVerdict::Clean),
        ..CacheReplay::default()
    };
    for payload in scan.frames {
        match decode_entry(payload) {
            Ok(entry) => out.entries.push(entry),
            Err(_) => {
                out.discarded = true;
                break;
            }
        }
    }
    Ok(out)
}

/// Rewrites the log atomically with exactly `entries` — boot-time
/// compaction after the replayed history is folded into the live cache.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn compact_results(path: &Path, entries: &[(u128, String)]) -> std::io::Result<()> {
    let tmp = path.with_extension("compact");
    {
        let _ = std::fs::remove_file(&tmp);
        let mut sink = FrameSink::open(&tmp)?;
        for (key, reply) in entries {
            sink.append(&encode_entry(*key, reply))?;
        }
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pwc-results-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("results.wal")
    }

    #[test]
    fn entries_roundtrip_in_order() {
        let path = temp_log("roundtrip");
        let _ = std::fs::remove_file(&path);
        let mut log = CacheLog::open(&path).expect("open");
        let key = (u128::from(u64::MAX) << 64) | 7;
        log.append(key, r#"{"ok":true,"report":{}}"#)
            .expect("append");
        log.append(3, "second").expect("append");
        log.append(key, "newer").expect("append");
        let r = replay_results(&path).expect("replay");
        assert!(!r.discarded);
        assert_eq!(
            r.entries,
            vec![
                (key, r#"{"ok":true,"report":{}}"#.to_owned()),
                (3, "second".to_owned()),
                (key, "newer".to_owned()),
            ]
        );
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn torn_tail_keeps_the_valid_prefix() {
        let path = temp_log("torn");
        let _ = std::fs::remove_file(&path);
        let mut log = CacheLog::open(&path).expect("open");
        log.append(1, "one").expect("append");
        drop(log);
        let mut bytes = std::fs::read(&path).expect("read");
        let cut = bytes.len();
        let mut log = CacheLog::open(&path).expect("reopen");
        log.append(2, "two").expect("append");
        drop(log);
        bytes = std::fs::read(&path).expect("read");
        bytes.truncate(cut + 5); // tear the second frame mid-header
        std::fs::write(&path, &bytes).expect("write");
        let r = replay_results(&path).expect("replay");
        assert!(r.discarded);
        assert_eq!(r.entries, vec![(1, "one".to_owned())]);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compaction_rewrites_exactly_the_given_entries() {
        let path = temp_log("compact");
        let _ = std::fs::remove_file(&path);
        let entries = vec![(9, "nine".to_owned()), (10, "ten".to_owned())];
        compact_results(&path, &entries).expect("compact");
        let r = replay_results(&path).expect("replay");
        assert!(!r.discarded);
        assert_eq!(r.entries, entries);
        let _ = std::fs::remove_file(&path);
    }
}
