//! The write-ahead intent journal: typed records over [`crate::frame`].
//!
//! Record lifecycle for one accepted request (a `run` is a one-spec
//! sweep as far as durability is concerned):
//!
//! ```text
//! Intent { id, specs }      appended before dispatch (fsync'd)
//! Spill  { id, bench, n }   appended after each checkpoint spill lands
//! Done   { id }             appended once every spec has settled
//! ```
//!
//! [`replay`] folds a journal back into the set of *pending* intents —
//! those with no `Done` record — together with the most recent spill
//! marker per benchmark, which is exactly what the daemon needs to
//! resume each interrupted run from its last chunk checkpoint.

use std::collections::BTreeMap;
use std::path::Path;

use powerchop_checkpoint::{ByteReader, ByteWriter, CheckpointError};

use crate::frame::{read_frames, FrameSink, TailVerdict};

/// Journal record format version; bumped on any encoding change so a
/// newer daemon refuses to misread an older journal silently. Version
/// 2 added the trace id to `Intent` records; version-1 journals are
/// still decoded (their intents replay with a zero trace id).
const RECORD_VERSION: u8 = 2;

/// Oldest record version this daemon still decodes.
const MIN_RECORD_VERSION: u8 = 1;

/// One simulation request as journaled: everything needed to rebuild
/// the exact `RunSpec` after a crash. `scale` is carried as f64 bits so
/// the rebuilt spec fingerprints identically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecRecord {
    /// Benchmark name.
    pub bench: String,
    /// Manager discriminant: 0 PowerChop, 1 FullPower, 2 MinimalPower,
    /// 3 TimeoutVpu, 4 DrowsyMlc.
    pub manager_tag: u8,
    /// Manager parameter (timeout/drowse cycles; 0 for the rest).
    pub manager_param: u64,
    /// Instruction budget.
    pub budget: u64,
    /// Workload scale factor, as IEEE-754 bits.
    pub scale_bits: u64,
    /// Fault-injection seed, if any.
    pub seed: Option<u64>,
    /// Whether the 10x fault storm was requested.
    pub storm: bool,
}

impl SpecRecord {
    fn encode(&self, w: &mut ByteWriter) {
        w.put_str(&self.bench);
        w.put_u8(self.manager_tag);
        w.put_u64(self.manager_param);
        w.put_u64(self.budget);
        w.put_u64(self.scale_bits);
        match self.seed {
            Some(s) => {
                w.put_bool(true);
                w.put_u64(s);
            }
            None => w.put_bool(false),
        }
        w.put_bool(self.storm);
    }

    fn decode(r: &mut ByteReader<'_>) -> Result<Self, CheckpointError> {
        let bench = r.take_str()?;
        let manager_tag = r.take_u8()?;
        let manager_param = r.take_u64()?;
        let budget = r.take_u64()?;
        let scale_bits = r.take_u64()?;
        let seed = if r.take_bool()? {
            Some(r.take_u64()?)
        } else {
            None
        };
        let storm = r.take_bool()?;
        Ok(SpecRecord {
            bench,
            manager_tag,
            manager_param,
            budget,
            scale_bits,
            seed,
            storm,
        })
    }
}

/// One journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// An accepted request, journaled before dispatch.
    Intent {
        /// Monotonic intent id, unique within the journal.
        id: u64,
        /// The request's trace id, so crash-recovery resumes stay
        /// attributable to the request that asked for the work (zero
        /// for version-1 journals and untraced requests).
        trace: u64,
        /// The runs the request asked for.
        specs: Vec<SpecRecord>,
    },
    /// A checkpoint spill for one of an intent's runs landed on disk.
    Spill {
        /// The intent the spill belongs to.
        id: u64,
        /// Which of the intent's runs was spilled.
        bench: String,
        /// Instructions retired at the spill point.
        retired: u64,
    },
    /// Every run of the intent settled (cached, failed, or refused).
    Done {
        /// The retired intent.
        id: u64,
    },
}

impl Record {
    /// Serializes the record into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut w = ByteWriter::new();
        w.put_u8(RECORD_VERSION);
        match self {
            Record::Intent { id, trace, specs } => {
                w.put_u8(0);
                w.put_u64(*id);
                w.put_u64(*trace);
                w.put_usize(specs.len());
                for spec in specs {
                    spec.encode(&mut w);
                }
            }
            Record::Spill { id, bench, retired } => {
                w.put_u8(1);
                w.put_u64(*id);
                w.put_str(bench);
                w.put_u64(*retired);
            }
            Record::Done { id } => {
                w.put_u8(2);
                w.put_u64(*id);
            }
        }
        w.into_bytes()
    }

    /// Parses a frame payload back into a record.
    ///
    /// # Errors
    ///
    /// Returns a typed [`CheckpointError`] for truncated payloads,
    /// version skew, or an unknown record kind.
    pub fn decode(payload: &[u8]) -> Result<Self, CheckpointError> {
        let mut r = ByteReader::new(payload);
        let version = r.take_u8()?;
        if !(MIN_RECORD_VERSION..=RECORD_VERSION).contains(&version) {
            return Err(CheckpointError::VersionSkew {
                found: u32::from(version),
                expected: u32::from(RECORD_VERSION),
            });
        }
        let record = match r.take_u8()? {
            0 => {
                let id = r.take_u64()?;
                // Version 1 predates trace ids; its intents replay
                // with the zero (untraced) id.
                let trace = if version >= 2 { r.take_u64()? } else { 0 };
                let n = r.take_usize()?;
                // Bounded: a corrupt count must not drive a huge
                // reservation. Decode reads stop at payload end anyway.
                let mut specs = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    specs.push(SpecRecord::decode(&mut r)?);
                }
                Record::Intent { id, trace, specs }
            }
            1 => Record::Spill {
                id: r.take_u64()?,
                bench: r.take_str()?,
                retired: r.take_u64()?,
            },
            2 => Record::Done { id: r.take_u64()? },
            _ => {
                return Err(CheckpointError::Malformed {
                    what: "journal record kind",
                })
            }
        };
        r.expect_end("journal record")?;
        Ok(record)
    }
}

/// An append handle over the intent journal.
#[derive(Debug)]
pub struct Journal {
    sink: FrameSink,
}

impl Journal {
    /// Opens (creating if absent) the journal at `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the open failure.
    pub fn open(path: &Path) -> std::io::Result<Self> {
        Ok(Self {
            sink: FrameSink::open(path)?,
        })
    }

    /// Appends one record, fsync'd — durable once this returns `Ok`.
    ///
    /// # Errors
    ///
    /// Propagates write/sync failures.
    pub fn append(&mut self, record: &Record) -> std::io::Result<()> {
        self.sink.append(&record.encode())
    }
}

/// One journaled request that has no `Done` record: work the daemon
/// owes its (possibly long-gone) client.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PendingIntent {
    /// The intent id (names its spill files).
    pub id: u64,
    /// The trace id of the request that journaled the intent (zero
    /// when unknown), so resumed work stays attributable.
    pub trace: u64,
    /// The runs the request asked for.
    pub specs: Vec<SpecRecord>,
    /// Last journaled spill per benchmark: instructions retired at the
    /// checkpoint the resume is expected to start from.
    pub spilled: BTreeMap<String, u64>,
}

/// What a journal replay found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JournalReplay {
    /// Intents with no `Done` record, in journal order.
    pub pending: Vec<PendingIntent>,
    /// Valid records read (intents, spills and dones).
    pub records_replayed: u64,
    /// Whether a torn tail (interrupted append) was discarded.
    pub torn_tail: bool,
    /// Whether a corrupt frame (failed CRC/magic on a complete frame)
    /// ended the scan.
    pub corrupt_frame: bool,
    /// CRC-valid frames whose payload failed typed decoding (version
    /// skew, unknown kind). Ends the scan like corruption does.
    pub malformed_records: u64,
    /// The next unused intent id (max seen + 1).
    pub next_id: u64,
}

impl JournalReplay {
    /// Whether the replay discarded anything (torn, corrupt, malformed).
    #[must_use]
    pub fn discarded(&self) -> bool {
        self.torn_tail || self.corrupt_frame || self.malformed_records > 0
    }
}

/// Replays the journal at `path`. A missing file is an empty journal;
/// torn tails and corrupt frames end the scan at the last valid record.
/// Never panics on any file contents.
///
/// # Errors
///
/// Propagates only real I/O failures (permissions, hardware); every
/// possible *content* is handled.
pub fn replay(path: &Path) -> std::io::Result<JournalReplay> {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
        Err(e) => return Err(e),
    };
    let scan = read_frames(&bytes);
    let mut out = JournalReplay {
        torn_tail: matches!(scan.tail, TailVerdict::Torn { .. }),
        corrupt_frame: matches!(scan.tail, TailVerdict::Corrupt { .. }),
        ..JournalReplay::default()
    };
    let mut pending: Vec<PendingIntent> = Vec::new();
    for payload in scan.frames {
        let record = match Record::decode(payload) {
            Ok(r) => r,
            Err(_) => {
                // A CRC-valid frame that fails typed decoding is
                // version skew or a writer bug; the frames after it are
                // individually framed and checked, but trusting them
                // would mean trusting a journal we provably misread.
                out.malformed_records += 1;
                break;
            }
        };
        out.records_replayed += 1;
        match record {
            Record::Intent { id, trace, specs } => {
                out.next_id = out.next_id.max(id + 1);
                pending.push(PendingIntent {
                    id,
                    trace,
                    specs,
                    spilled: BTreeMap::new(),
                });
            }
            Record::Spill { id, bench, retired } => {
                if let Some(p) = pending.iter_mut().find(|p| p.id == id) {
                    p.spilled.insert(bench, retired);
                }
            }
            Record::Done { id } => pending.retain(|p| p.id != id),
        }
    }
    out.pending = pending;
    Ok(out)
}

/// Rewrites the journal atomically so it holds exactly `pending` (their
/// intents and latest spill markers) — boot-time compaction that drops
/// retired intents and any discarded tail for good.
///
/// # Errors
///
/// Propagates filesystem failures.
pub fn compact(path: &Path, pending: &[PendingIntent]) -> std::io::Result<()> {
    let tmp = path.with_extension("compact");
    {
        let _ = std::fs::remove_file(&tmp);
        let mut sink = FrameSink::open(&tmp)?;
        for p in pending {
            sink.append(
                &Record::Intent {
                    id: p.id,
                    trace: p.trace,
                    specs: p.specs.clone(),
                }
                .encode(),
            )?;
            for (bench, retired) in &p.spilled {
                sink.append(
                    &Record::Spill {
                        id: p.id,
                        bench: bench.clone(),
                        retired: *retired,
                    }
                    .encode(),
                )?;
            }
        }
    }
    std::fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(bench: &str) -> SpecRecord {
        SpecRecord {
            bench: bench.to_owned(),
            manager_tag: 0,
            manager_param: 0,
            budget: 400_000,
            scale_bits: 0.05f64.to_bits(),
            seed: Some(7),
            storm: true,
        }
    }

    fn temp_journal(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("pwc-journal-{name}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("intents.wal")
    }

    #[test]
    fn records_roundtrip_through_encode_decode() {
        let records = [
            Record::Intent {
                id: 3,
                trace: 0xABCD_EF01_2345_6789,
                specs: vec![spec("hmmer"), spec("namd")],
            },
            Record::Intent {
                id: 4,
                trace: 0,
                specs: vec![SpecRecord {
                    manager_tag: 3,
                    manager_param: 1024,
                    seed: None,
                    storm: false,
                    ..spec("gobmk")
                }],
            },
            Record::Spill {
                id: 3,
                bench: "hmmer".into(),
                retired: 123_456,
            },
            Record::Done { id: 3 },
        ];
        for r in &records {
            assert_eq!(&Record::decode(&r.encode()).expect("decode"), r);
        }
    }

    #[test]
    fn version_one_intents_still_decode_with_zero_trace() {
        // A version-1 Intent exactly as an older daemon wrote it:
        // version byte 1, no trace field between the id and the specs.
        let mut w = ByteWriter::new();
        w.put_u8(1);
        w.put_u8(0);
        w.put_u64(9);
        w.put_usize(1);
        spec("hmmer").encode(&mut w);
        let rec = Record::decode(&w.into_bytes()).expect("v1 decode");
        assert_eq!(
            rec,
            Record::Intent {
                id: 9,
                trace: 0,
                specs: vec![spec("hmmer")],
            }
        );
    }

    #[test]
    fn decode_rejects_version_skew_and_truncation() {
        let mut bytes = Record::Done { id: 1 }.encode();
        bytes[0] = RECORD_VERSION + 1;
        assert!(matches!(
            Record::decode(&bytes),
            Err(CheckpointError::VersionSkew { .. })
        ));
        let bytes = Record::Done { id: 1 }.encode();
        for cut in 0..bytes.len() {
            assert!(Record::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn replay_folds_pending_spills_and_dones() {
        let path = temp_journal("fold");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).expect("open");
        j.append(&Record::Intent {
            id: 1,
            trace: 0x1111,
            specs: vec![spec("hmmer")],
        })
        .expect("append");
        j.append(&Record::Intent {
            id: 2,
            trace: 0x2222,
            specs: vec![spec("namd"), spec("gobmk")],
        })
        .expect("append");
        j.append(&Record::Spill {
            id: 2,
            bench: "namd".into(),
            retired: 100_000,
        })
        .expect("append");
        j.append(&Record::Spill {
            id: 2,
            bench: "namd".into(),
            retired: 200_000,
        })
        .expect("append");
        j.append(&Record::Done { id: 1 }).expect("append");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records_replayed, 5);
        assert!(!r.discarded());
        assert_eq!(r.next_id, 3);
        assert_eq!(r.pending.len(), 1);
        assert_eq!(r.pending[0].id, 2);
        assert_eq!(r.pending[0].spilled.get("namd"), Some(&200_000));
        assert_eq!(r.pending[0].spilled.get("gobmk"), None);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn replay_of_missing_file_is_empty() {
        let r = replay(Path::new("/nonexistent/dir/intents.wal")).expect("replay");
        assert_eq!(r, JournalReplay::default());
    }

    #[test]
    fn torn_tail_is_discarded_and_reported() {
        let path = temp_journal("torn");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).expect("open");
        j.append(&Record::Intent {
            id: 1,
            trace: 7,
            specs: vec![spec("hmmer")],
        })
        .expect("append");
        // Simulate a crash mid-append: half a frame of garbage.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(&crate::frame::FRAME_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&[9, 9]);
        std::fs::write(&path, &bytes).expect("write");
        let r = replay(&path).expect("replay");
        assert_eq!(r.records_replayed, 1);
        assert!(r.torn_tail);
        assert_eq!(r.pending.len(), 1);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn compact_drops_retired_intents_and_keeps_spills() {
        let path = temp_journal("compact");
        let _ = std::fs::remove_file(&path);
        let mut j = Journal::open(&path).expect("open");
        j.append(&Record::Intent {
            id: 1,
            trace: 0xAA,
            specs: vec![spec("hmmer")],
        })
        .expect("append");
        j.append(&Record::Intent {
            id: 2,
            trace: 0xBB,
            specs: vec![spec("namd")],
        })
        .expect("append");
        j.append(&Record::Spill {
            id: 2,
            bench: "namd".into(),
            retired: 50_000,
        })
        .expect("append");
        j.append(&Record::Done { id: 1 }).expect("append");
        drop(j);
        let before = replay(&path).expect("replay");
        compact(&path, &before.pending).expect("compact");
        let after = replay(&path).expect("replay");
        assert_eq!(after.pending, before.pending);
        assert_eq!(after.records_replayed, 2, "one intent + one spill");
        assert!(!after.discarded());
        let _ = std::fs::remove_file(&path);
    }
}
