//! Property-based tests for the energy model.

use proptest::prelude::*;

use powerchop_power::{gating_overhead_joules, EnergyLedger, PowerParams, UnitStates};
use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::core::CoreStats;

fn arb_states() -> impl Strategy<Value = UnitStates> {
    (any::<bool>(), any::<bool>(), 0u8..4).prop_map(|(v, b, m)| UnitStates {
        vpu_active: v,
        bpu_large_active: b,
        mlc_state: match m {
            0 => MlcWayState::One,
            1 => MlcWayState::Quarter,
            2 => MlcWayState::Half,
            _ => MlcWayState::Full,
        },
        mlc_total_ways: 8,
        mlc_awake_fraction: None,
    })
}

fn arb_stats(max: u64) -> impl Strategy<Value = CoreStats> {
    (1..max, 0..max, 0..max, 0..max).prop_map(|(insts, br, mlc, mem)| CoreStats {
        instructions: insts,
        branches: br,
        mlc_accesses: mlc + mem,
        mlc_hits: mlc,
        llc_accesses: mem,
        mem_accesses: mem / 2,
        ..CoreStats::default()
    })
}

proptest! {
    /// Gated configurations never consume more leakage than full power,
    /// and always at least the 5% residual floor.
    #[test]
    fn gated_leakage_bounded(states in arb_states(), cycles in 1u64..1 << 32) {
        let params = PowerParams::server();
        let mut full = EnergyLedger::new(params.clone());
        let mut gated = EnergyLedger::new(params.clone());
        let stats = CoreStats::default();
        full.account(cycles, &stats, UnitStates::full(8));
        gated.account(cycles, &stats, states);
        let (f, g) = (full.report(), gated.report());
        prop_assert!(g.leakage_j <= f.leakage_j + 1e-15);
        // Lower bound: unmanaged core + 5% residual of everything else.
        let floor = f.leakage_j * (0.41 + 0.59 * 0.05) - 1e-12;
        prop_assert!(g.leakage_j >= floor, "leakage {} below floor {}", g.leakage_j, floor);
    }

    /// Energy is additive over intervals: accounting in any number of
    /// chunks gives the same total as accounting once.
    #[test]
    fn energy_is_interval_additive(
        states in arb_states(),
        cuts in prop::collection::vec(1u64..1000, 1..10),
        end_stats in arb_stats(1 << 20),
    ) {
        let params = PowerParams::mobile();
        let total_cycles: u64 = cuts.iter().sum::<u64>() * 100;
        let mut once = EnergyLedger::new(params.clone());
        once.account(total_cycles, &end_stats, states);

        let mut chunked = EnergyLedger::new(params.clone());
        let mut acc = 0u64;
        for (i, c) in cuts.iter().enumerate() {
            acc += c * 100;
            // Interpolate stats linearly per chunk (integer floors are
            // fine: the final call lands exactly on end_stats).
            let frac = |v: u64| v * (i as u64 + 1) / cuts.len() as u64;
            let mid = CoreStats {
                instructions: frac(end_stats.instructions),
                branches: frac(end_stats.branches),
                mlc_accesses: frac(end_stats.mlc_accesses),
                mlc_hits: frac(end_stats.mlc_hits),
                llc_accesses: frac(end_stats.llc_accesses),
                mem_accesses: frac(end_stats.mem_accesses),
                ..CoreStats::default()
            };
            chunked.account(acc, &mid, states);
        }
        chunked.account(total_cycles, &end_stats, states);
        let (a, b) = (once.report(), chunked.report());
        prop_assert!((a.total_j - b.total_j).abs() < 1e-12 * a.total_j.max(1e-12));
    }

    /// More events never decrease dynamic energy.
    #[test]
    fn dynamic_energy_monotone_in_events(base in arb_stats(1 << 16), extra in 1u64..1000) {
        let params = PowerParams::server();
        let mut small = EnergyLedger::new(params.clone());
        small.account(1_000_000, &base, UnitStates::full(8));
        let more = CoreStats { instructions: base.instructions + extra, ..base };
        let mut big = EnergyLedger::new(params.clone());
        big.account(1_000_000, &more, UnitStates::full(8));
        prop_assert!(big.report().dynamic_j > small.report().dynamic_j);
    }

    /// The Eq. 1 overhead is linear in peak power and positive.
    #[test]
    fn overhead_linear(p in 0.01f64..100.0, f in 1e8f64..1e10, k in 1.0f64..10.0) {
        let one = gating_overhead_joules(p, f);
        let scaled = gating_overhead_joules(p * k, f);
        prop_assert!(one > 0.0);
        prop_assert!((scaled - one * k).abs() < 1e-9 * scaled.max(1e-30));
    }

    /// MLC access energy is monotone in the way state.
    #[test]
    fn mlc_energy_monotone(ways in 2u32..=16) {
        let p = PowerParams::mobile();
        let one = p.e_mlc_access(MlcWayState::One, ways);
        let half = p.e_mlc_access(MlcWayState::Half, ways);
        let full = p.e_mlc_access(MlcWayState::Full, ways);
        prop_assert!(one <= half && half <= full);
        prop_assert!(one > 0.0);
    }
}
