//! Property-based tests for the energy model, driven by the workspace's
//! seeded harness (`powerchop_faults::check`).

use powerchop_faults::check::cases;
use powerchop_faults::SimRng;
use powerchop_power::{gating_overhead_joules, EnergyLedger, PowerParams, UnitStates};
use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::core::CoreStats;

fn arb_states(rng: &mut SimRng) -> UnitStates {
    UnitStates {
        vpu_active: rng.gen_bool(0.5),
        bpu_large_active: rng.gen_bool(0.5),
        mlc_state: match rng.gen_range(4) {
            0 => MlcWayState::One,
            1 => MlcWayState::Quarter,
            2 => MlcWayState::Half,
            _ => MlcWayState::Full,
        },
        mlc_total_ways: 8,
        mlc_awake_fraction: None,
    }
}

fn arb_stats(rng: &mut SimRng, max: u64) -> CoreStats {
    let insts = 1 + rng.gen_range(max - 1);
    let br = rng.gen_range(max);
    let mlc = rng.gen_range(max);
    let mem = rng.gen_range(max);
    CoreStats {
        instructions: insts,
        branches: br,
        mlc_accesses: mlc + mem,
        mlc_hits: mlc,
        llc_accesses: mem,
        mem_accesses: mem / 2,
        ..CoreStats::default()
    }
}

/// Gated configurations never consume more leakage than full power,
/// and always at least the 5% residual floor.
#[test]
fn gated_leakage_bounded() {
    cases("gated leakage bounds", 256, |rng| {
        let states = arb_states(rng);
        let cycles = 1 + rng.gen_range((1 << 32) - 1);
        let params = PowerParams::server();
        let mut full = EnergyLedger::new(params.clone());
        let mut gated = EnergyLedger::new(params.clone());
        let stats = CoreStats::default();
        full.account(cycles, &stats, UnitStates::full(8));
        gated.account(cycles, &stats, states);
        let (f, g) = (full.report(), gated.report());
        assert!(g.leakage_j <= f.leakage_j + 1e-15);
        // Lower bound: unmanaged core + 5% residual of everything else.
        let floor = f.leakage_j * (0.41 + 0.59 * 0.05) - 1e-12;
        assert!(
            g.leakage_j >= floor,
            "leakage {} below floor {}",
            g.leakage_j,
            floor
        );
    });
}

/// Energy is additive over intervals: accounting in any number of
/// chunks gives the same total as accounting once.
#[test]
fn energy_is_interval_additive() {
    cases("interval additivity", 256, |rng| {
        let states = arb_states(rng);
        let cuts: Vec<u64> = (0..1 + rng.gen_range(9))
            .map(|_| 1 + rng.gen_range(999))
            .collect();
        let end_stats = arb_stats(rng, 1 << 20);
        let params = PowerParams::mobile();
        let total_cycles: u64 = cuts.iter().sum::<u64>() * 100;
        let mut once = EnergyLedger::new(params.clone());
        once.account(total_cycles, &end_stats, states);

        let mut chunked = EnergyLedger::new(params.clone());
        let mut acc = 0u64;
        for (i, c) in cuts.iter().enumerate() {
            acc += c * 100;
            // Interpolate stats linearly per chunk (integer floors are
            // fine: the final call lands exactly on end_stats).
            let frac = |v: u64| v * (i as u64 + 1) / cuts.len() as u64;
            let mid = CoreStats {
                instructions: frac(end_stats.instructions),
                branches: frac(end_stats.branches),
                mlc_accesses: frac(end_stats.mlc_accesses),
                mlc_hits: frac(end_stats.mlc_hits),
                llc_accesses: frac(end_stats.llc_accesses),
                mem_accesses: frac(end_stats.mem_accesses),
                ..CoreStats::default()
            };
            chunked.account(acc, &mid, states);
        }
        chunked.account(total_cycles, &end_stats, states);
        let (a, b) = (once.report(), chunked.report());
        assert!((a.total_j - b.total_j).abs() < 1e-12 * a.total_j.max(1e-12));
    });
}

/// More events never decrease dynamic energy.
#[test]
fn dynamic_energy_monotone_in_events() {
    cases("dynamic energy monotone", 256, |rng| {
        let base = arb_stats(rng, 1 << 16);
        let extra = 1 + rng.gen_range(999);
        let params = PowerParams::server();
        let mut small = EnergyLedger::new(params.clone());
        small.account(1_000_000, &base, UnitStates::full(8));
        let more = CoreStats {
            instructions: base.instructions + extra,
            ..base
        };
        let mut big = EnergyLedger::new(params.clone());
        big.account(1_000_000, &more, UnitStates::full(8));
        assert!(big.report().dynamic_j > small.report().dynamic_j);
    });
}

/// The Eq. 1 overhead is linear in peak power and positive.
#[test]
fn overhead_linear() {
    cases("overhead linearity", 256, |rng| {
        let p = 0.01 + rng.gen_f64() * 99.99;
        let f = 1e8 + rng.gen_f64() * (1e10 - 1e8);
        let k = 1.0 + rng.gen_f64() * 9.0;
        let one = gating_overhead_joules(p, f);
        let scaled = gating_overhead_joules(p * k, f);
        assert!(one > 0.0);
        assert!((scaled - one * k).abs() < 1e-9 * scaled.max(1e-30));
    });
}

/// MLC access energy is monotone in the way state.
#[test]
fn mlc_energy_monotone() {
    cases("mlc energy monotone", 32, |rng| {
        let ways = 2 + rng.gen_range(15) as u32;
        let p = PowerParams::mobile();
        let one = p.e_mlc_access(MlcWayState::One, ways);
        let half = p.e_mlc_access(MlcWayState::Half, ways);
        let full = p.e_mlc_access(MlcWayState::Full, ways);
        assert!(one <= half && half <= full);
        assert!(one > 0.0);
    });
}
