//! SRAM hardware-cost model (CACTI substitute).
//!
//! The paper sizes PowerChop's two hardware structures with CACTI at 32 nm
//! (paper §IV-B4): the 1 KiB fully-associative HTB costs 0.027 W and
//! 0.008 mm². This module provides a linear per-byte model calibrated to
//! that data point, with a multiplier for fully-associative (CAM-tagged)
//! arrays, so the reproduction can report the same hardware-cost table.

/// Estimated silicon cost of a small SRAM structure.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SramCost {
    /// Storage in bytes.
    pub bytes: u64,
    /// Estimated power in watts.
    pub power_w: f64,
    /// Estimated area in mm².
    pub area_mm2: f64,
}

/// Per-byte power of a fully-associative 32 nm array, calibrated so a
/// 1 KiB HTB costs 0.027 W (paper §IV-B4).
const FA_POWER_W_PER_BYTE: f64 = 0.027 / 1024.0;
/// Per-byte area calibrated so a 1 KiB HTB costs 0.008 mm².
const FA_AREA_MM2_PER_BYTE: f64 = 0.008 / 1024.0;
/// Direct-mapped/RAM arrays avoid the CAM overhead; CACTI puts the CAM
/// premium around 2× for small arrays.
const CAM_PREMIUM: f64 = 2.0;

impl SramCost {
    /// Cost of a fully-associative (CAM-tagged) array of `bytes` bytes.
    #[must_use]
    pub fn fully_associative(bytes: u64) -> Self {
        SramCost {
            bytes,
            power_w: bytes as f64 * FA_POWER_W_PER_BYTE,
            area_mm2: bytes as f64 * FA_AREA_MM2_PER_BYTE,
        }
    }

    /// Cost of a RAM-tagged array of `bytes` bytes.
    #[must_use]
    pub fn ram(bytes: u64) -> Self {
        SramCost {
            bytes,
            power_w: bytes as f64 * FA_POWER_W_PER_BYTE / CAM_PREMIUM,
            area_mm2: bytes as f64 * FA_AREA_MM2_PER_BYTE / CAM_PREMIUM,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn htb_cost_matches_paper_calibration() {
        // 128 entries x (32-bit ID + 32-bit counter) = 1 KiB.
        let htb = SramCost::fully_associative(1024);
        assert!((htb.power_w - 0.027).abs() < 1e-9);
        assert!((htb.area_mm2 - 0.008).abs() < 1e-9);
    }

    #[test]
    fn pvt_is_smaller_than_htb() {
        // 16 entries x (4 x 32-bit PCs + 4 bits) = 264 bytes.
        let pvt = SramCost::fully_associative(264);
        let htb = SramCost::fully_associative(1024);
        assert!(pvt.power_w < htb.power_w);
        assert!(pvt.area_mm2 < htb.area_mm2);
        assert!(pvt.power_w > 0.0);
    }

    #[test]
    fn ram_arrays_are_cheaper_than_cam() {
        let cam = SramCost::fully_associative(512);
        let ram = SramCost::ram(512);
        assert!(ram.power_w < cam.power_w);
        assert!(ram.area_mm2 < cam.area_mm2);
    }
}
