//! Per-design-point power parameters (McPAT substitute).
//!
//! The paper consumes McPAT as (a) per-unit leakage shares — which Table I
//! pins via area fractions, taken verbatim — and (b) per-unit peak dynamic
//! power, used for per-event energies and the gating-overhead model. The
//! absolute numbers below are representative published figures for 32 nm
//! Nehalem-class and Cortex-A9-class cores; the reproduced results are
//! ratios, which depend on the *shares*, not the absolute watts.

use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::config::{CoreConfig, CoreKind};

/// The three units PowerChop manages.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ManagedUnit {
    /// Vector processing unit.
    Vpu,
    /// Branch prediction unit (the large tournament predictor).
    Bpu,
    /// Middle-level cache (L2).
    Mlc,
}

impl ManagedUnit {
    /// All managed units, in the paper's usual order.
    pub const ALL: [ManagedUnit; 3] = [ManagedUnit::Vpu, ManagedUnit::Bpu, ManagedUnit::Mlc];
}

impl std::fmt::Display for ManagedUnit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManagedUnit::Vpu => f.write_str("VPU"),
            ManagedUnit::Bpu => f.write_str("BPU"),
            ManagedUnit::Mlc => f.write_str("MLC"),
        }
    }
}

/// Leakage and dynamic-energy parameters for one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct PowerParams {
    /// Design point these parameters describe.
    pub kind: CoreKind,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Total core leakage power in watts (all units powered).
    pub core_leakage_w: f64,
    /// Leakage share of the MLC / VPU / BPU (Table I area fractions).
    pub leak_frac_mlc: f64,
    /// VPU leakage share.
    pub leak_frac_vpu: f64,
    /// BPU leakage share.
    pub leak_frac_bpu: f64,
    /// Residual leakage of a gated block as a fraction of its nominal
    /// leakage (paper §IV-D: 5 %).
    pub gated_leak_residual: f64,
    /// Residual leakage of a *drowsy* (state-retentive, low-voltage) line
    /// as a fraction of nominal — Flautner et al. report roughly a 4-10x
    /// leakage reduction with retention; 25 % is the conservative end.
    pub drowsy_leak_residual: f64,
    /// Baseline dynamic energy per retired instruction (fetch, decode,
    /// rename, scalar execute, L1), joules.
    pub e_inst: f64,
    /// Dynamic energy per branch looked up in the large tournament
    /// predictor, joules.
    pub e_bpu_large: f64,
    /// Dynamic energy per branch in the small local predictor, joules.
    pub e_bpu_small: f64,
    /// Dynamic energy per native SIMD operation on the VPU, joules.
    pub e_vpu_op: f64,
    /// Extra dynamic energy per vector op emulated with scalar code
    /// (beyond the per-instruction baseline), joules.
    pub e_vpu_emulated: f64,
    /// Dynamic energy per MLC access with all ways active, joules.
    /// Way-gated accesses probe fewer ways; see
    /// [`PowerParams::e_mlc_access`].
    pub e_mlc_full: f64,
    /// The fraction of MLC access energy that does not scale with active
    /// ways (decoders, wordlines for one way, tag match on one way).
    pub e_mlc_fixed_frac: f64,
    /// Dynamic energy per LLC access, joules.
    pub e_llc: f64,
    /// Dynamic energy per main-memory access (on-chip share), joules.
    pub e_mem: f64,
    /// Dynamic energy per dirty-line writeback out of the MLC, joules.
    pub e_writeback: f64,
    /// Peak dynamic power of each managed unit in watts (McPAT-style
    /// estimate), used for the Eq. 1 gating-overhead energy.
    pub peak_dyn_vpu_w: f64,
    /// Peak dynamic power of the BPU, watts.
    pub peak_dyn_bpu_w: f64,
    /// Peak dynamic power of the MLC, watts.
    pub peak_dyn_mlc_w: f64,
}

impl PowerParams {
    /// Parameters for the Nehalem-like server core.
    #[must_use]
    pub fn server() -> Self {
        let cfg = CoreConfig::server();
        PowerParams {
            kind: CoreKind::Server,
            freq_hz: f64::from(cfg.freq_mhz) * 1e6,
            core_leakage_w: 4.0,
            leak_frac_mlc: cfg.area.mlc,
            leak_frac_vpu: cfg.area.vpu,
            leak_frac_bpu: cfg.area.bpu,
            gated_leak_residual: 0.05,
            drowsy_leak_residual: 0.25,
            e_inst: 1.1e-9,
            e_bpu_large: 0.15e-9,
            e_bpu_small: 0.03e-9,
            e_vpu_op: 1.0e-9,
            e_vpu_emulated: 2.8e-9,
            e_mlc_full: 1.2e-9,
            e_mlc_fixed_frac: 0.25,
            e_llc: 3.5e-9,
            e_mem: 20.0e-9,
            e_writeback: 1.5e-9,
            peak_dyn_vpu_w: 3.0,
            peak_dyn_bpu_w: 0.6,
            peak_dyn_mlc_w: 2.5,
        }
    }

    /// Parameters for the Cortex-A9-like mobile core.
    #[must_use]
    pub fn mobile() -> Self {
        let cfg = CoreConfig::mobile();
        PowerParams {
            kind: CoreKind::Mobile,
            freq_hz: f64::from(cfg.freq_mhz) * 1e6,
            core_leakage_w: 0.35,
            leak_frac_mlc: cfg.area.mlc,
            leak_frac_vpu: cfg.area.vpu,
            leak_frac_bpu: cfg.area.bpu,
            gated_leak_residual: 0.05,
            drowsy_leak_residual: 0.25,
            e_inst: 0.20e-9,
            e_bpu_large: 0.04e-9,
            e_bpu_small: 0.008e-9,
            e_vpu_op: 0.30e-9,
            e_vpu_emulated: 0.70e-9,
            e_mlc_full: 0.50e-9,
            e_mlc_fixed_frac: 0.25,
            e_llc: 1.4e-9,
            e_mem: 8.0e-9,
            e_writeback: 0.6e-9,
            peak_dyn_vpu_w: 0.25,
            peak_dyn_bpu_w: 0.05,
            peak_dyn_mlc_w: 0.30,
        }
    }

    /// Parameters for a [`CoreKind`].
    #[must_use]
    pub fn for_kind(kind: CoreKind) -> Self {
        match kind {
            CoreKind::Server => PowerParams::server(),
            CoreKind::Mobile => PowerParams::mobile(),
        }
    }

    /// Leakage power (watts) of one managed unit when fully powered.
    #[must_use]
    pub fn unit_leakage_w(&self, unit: ManagedUnit) -> f64 {
        let frac = match unit {
            ManagedUnit::Vpu => self.leak_frac_vpu,
            ManagedUnit::Bpu => self.leak_frac_bpu,
            ManagedUnit::Mlc => self.leak_frac_mlc,
        };
        self.core_leakage_w * frac
    }

    /// Leakage power (watts) of the unmanaged remainder of the core.
    #[must_use]
    pub fn other_leakage_w(&self) -> f64 {
        self.core_leakage_w * (1.0 - self.leak_frac_mlc - self.leak_frac_vpu - self.leak_frac_bpu)
    }

    /// Per-access MLC energy under a way-gating state: a fixed component
    /// plus a component proportional to the ways probed.
    #[must_use]
    pub fn e_mlc_access(&self, state: MlcWayState, total_ways: u32) -> f64 {
        let frac = state.active_fraction(total_ways);
        self.e_mlc_full * (self.e_mlc_fixed_frac + (1.0 - self.e_mlc_fixed_frac) * frac)
    }

    /// Peak dynamic power (watts) of one managed unit — the McPAT estimate
    /// feeding the Eq. 1 gating-overhead energy.
    #[must_use]
    pub fn unit_peak_dynamic_w(&self, unit: ManagedUnit) -> f64 {
        match unit {
            ManagedUnit::Vpu => self.peak_dyn_vpu_w,
            ManagedUnit::Bpu => self.peak_dyn_bpu_w,
            ManagedUnit::Mlc => self.peak_dyn_mlc_w,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leakage_shares_sum_below_one() {
        for p in [PowerParams::server(), PowerParams::mobile()] {
            let managed: f64 = ManagedUnit::ALL.iter().map(|u| p.unit_leakage_w(*u)).sum();
            let total = managed + p.other_leakage_w();
            assert!((total - p.core_leakage_w).abs() < 1e-9);
            assert!(p.other_leakage_w() > 0.0);
        }
    }

    #[test]
    fn unit_leakage_follows_table1_areas() {
        let p = PowerParams::server();
        assert!((p.unit_leakage_w(ManagedUnit::Mlc) - 4.0 * 0.35).abs() < 1e-9);
        assert!((p.unit_leakage_w(ManagedUnit::Vpu) - 4.0 * 0.20).abs() < 1e-9);
        assert!((p.unit_leakage_w(ManagedUnit::Bpu) - 4.0 * 0.04).abs() < 1e-9);
        let m = PowerParams::mobile();
        assert!((m.unit_leakage_w(ManagedUnit::Mlc) / m.core_leakage_w - 0.60).abs() < 1e-9);
    }

    #[test]
    fn way_gated_mlc_access_is_cheaper() {
        let p = PowerParams::server();
        let full = p.e_mlc_access(MlcWayState::Full, 8);
        let half = p.e_mlc_access(MlcWayState::Half, 8);
        let one = p.e_mlc_access(MlcWayState::One, 8);
        assert!(full > half && half > one);
        assert!(one > 0.0, "fixed component keeps energy positive");
        assert!((full - p.e_mlc_full).abs() < 1e-15);
    }

    #[test]
    fn gated_residual_is_five_percent() {
        assert!((PowerParams::server().gated_leak_residual - 0.05).abs() < 1e-12);
        assert!((PowerParams::mobile().gated_leak_residual - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_names() {
        assert_eq!(ManagedUnit::Vpu.to_string(), "VPU");
        assert_eq!(ManagedUnit::Bpu.to_string(), "BPU");
        assert_eq!(ManagedUnit::Mlc.to_string(), "MLC");
    }
}
