//! The power-gating energy-overhead model (paper §IV-D, Eq. 1).
//!
//! Asserting and de-asserting the sleep signal to a unit's header/footer
//! transistor costs energy. The paper adopts the model of Hu et al.:
//!
//! ```text
//! E_overhead = 2 · (W/H) · α · E_cyc^S                      (Eq. 1)
//! ```
//!
//! where `E_cyc^S` is the unit's average switching energy for one cycle
//! (derived from a McPAT estimate of its peak dynamic power), `W/H` is the
//! sleep-transistor-to-unit area ratio, and `α` is the unit's average
//! switching factor. The paper picks `W/H = 0.20` — the top of the
//! 0.05–0.20 range in the literature, i.e. the most pessimistic — and a
//! switching factor of `0.5`.

/// Sleep-transistor area ratio `W/H` (paper: 0.20, worst case in the
/// 0.05–0.20 literature range).
pub const W_H_RATIO: f64 = 0.20;

/// Average switching factor `α` (paper §IV-D).
pub const SWITCHING_FACTOR: f64 = 0.5;

/// Energy overhead (joules) of one complete gate-off/gate-on pair for a
/// unit with the given peak dynamic power.
///
/// `E_cyc^S = peak_dynamic_w / freq_hz` is the per-cycle switching energy.
///
/// # Examples
///
/// ```
/// use powerchop_power::gating_overhead_joules;
///
/// // A 3 W unit at 2.667 GHz: E_cyc ≈ 1.125 nJ, overhead ≈ 0.225 nJ.
/// let e = gating_overhead_joules(3.0, 2.667e9);
/// assert!(e > 0.2e-9 && e < 0.25e-9);
/// ```
#[must_use]
pub fn gating_overhead_joules(peak_dynamic_w: f64, freq_hz: f64) -> f64 {
    let e_cyc = peak_dynamic_w / freq_hz;
    2.0 * W_H_RATIO * SWITCHING_FACTOR * e_cyc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_closed_form() {
        let e = gating_overhead_joules(1.0, 1e9);
        // 2 * 0.2 * 0.5 * (1/1e9) = 0.2 nJ
        assert!((e - 0.2e-9).abs() < 1e-18);
    }

    #[test]
    fn scales_linearly_with_power_and_inverse_frequency() {
        let base = gating_overhead_joules(1.0, 1e9);
        assert!((gating_overhead_joules(2.0, 1e9) - 2.0 * base).abs() < 1e-18);
        assert!((gating_overhead_joules(1.0, 2e9) - base / 2.0).abs() < 1e-18);
    }

    #[test]
    fn constants_match_paper() {
        assert!((W_H_RATIO - 0.20).abs() < 1e-12);
        assert!((SWITCHING_FACTOR - 0.5).abs() < 1e-12);
    }
}
