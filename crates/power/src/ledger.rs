//! Energy accounting over a simulated run.
//!
//! The [`EnergyLedger`] integrates leakage power over time — respecting
//! each managed unit's gating state, with gated blocks leaking 5 % of
//! nominal (paper §IV-D) — and accumulates dynamic energy per core event.
//! PowerChop's runtime calls [`EnergyLedger::account`] at every gating
//! state change (window boundaries), and
//! [`EnergyLedger::charge_transition`] for each sleep-signal switch.

use powerchop_uarch::cache::MlcWayState;
use powerchop_uarch::core::CoreStats;

use crate::gating::gating_overhead_joules;
use crate::params::{ManagedUnit, PowerParams};

/// The power states of the three managed units during an interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitStates {
    /// Whether the VPU is powered.
    pub vpu_active: bool,
    /// Whether the large BPU is powered.
    pub bpu_large_active: bool,
    /// MLC way-gating state.
    pub mlc_state: MlcWayState,
    /// Total MLC ways in this design (needed to interpret `mlc_state`).
    pub mlc_total_ways: u32,
    /// When the MLC is run as a *drowsy* cache instead of way-gated, the
    /// fraction of the array at full voltage; drowsy lines leak at
    /// [`PowerParams::drowsy_leak_residual`]. `None` for way-gated
    /// operation.
    pub mlc_awake_fraction: Option<f64>,
}

impl UnitStates {
    /// All units fully powered.
    #[must_use]
    pub fn full(mlc_total_ways: u32) -> Self {
        UnitStates {
            vpu_active: true,
            bpu_large_active: true,
            mlc_state: MlcWayState::Full,
            mlc_total_ways,
            mlc_awake_fraction: None,
        }
    }

    /// All units in their lowest-power state.
    #[must_use]
    pub fn minimal(mlc_total_ways: u32) -> Self {
        UnitStates {
            vpu_active: false,
            bpu_large_active: false,
            mlc_state: MlcWayState::One,
            mlc_total_ways,
            mlc_awake_fraction: None,
        }
    }
}

/// Per-category dynamic energy breakdown, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct DynamicBreakdown {
    /// Baseline pipeline energy (fetch/decode/execute/L1) per instruction.
    pub pipeline: f64,
    /// Branch-prediction lookups (large or small predictor).
    pub bpu: f64,
    /// Native SIMD operations plus scalar-emulation overhead.
    pub vpu: f64,
    /// MLC accesses and writebacks.
    pub mlc: f64,
    /// LLC and main-memory accesses.
    pub memory: f64,
}

impl DynamicBreakdown {
    /// Total dynamic energy.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.pipeline + self.bpu + self.vpu + self.mlc + self.memory
    }
}

/// Per-unit leakage energy breakdown, joules.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LeakageBreakdown {
    /// VPU leakage energy.
    pub vpu: f64,
    /// BPU leakage energy.
    pub bpu: f64,
    /// MLC leakage energy.
    pub mlc: f64,
    /// Leakage of the unmanaged remainder of the core.
    pub other: f64,
}

impl LeakageBreakdown {
    /// Total leakage energy.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.vpu + self.bpu + self.mlc + self.other
    }
}

/// Summary of a run's energy and average power.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyReport {
    /// Cycles accounted.
    pub cycles: u64,
    /// Wall-clock seconds at the design frequency.
    pub seconds: f64,
    /// Leakage energy, joules (per-unit breakdown in `leakage`).
    pub leakage_j: f64,
    /// Per-unit leakage breakdown.
    pub leakage: LeakageBreakdown,
    /// Dynamic energy, joules.
    pub dynamic_j: f64,
    /// Per-category dynamic breakdown.
    pub dynamic: DynamicBreakdown,
    /// Gating-transition overhead energy (Eq. 1), joules.
    pub overhead_j: f64,
    /// Gating transitions charged.
    pub transitions: u64,
    /// Total energy, joules.
    pub total_j: f64,
    /// Average total power, watts.
    pub avg_power_w: f64,
    /// Average leakage power, watts.
    pub leakage_power_w: f64,
    /// Average dynamic power, watts.
    pub dynamic_power_w: f64,
}

/// Integrates leakage and dynamic energy over a simulated run.
///
/// # Examples
///
/// ```
/// use powerchop_power::{EnergyLedger, PowerParams, UnitStates};
/// use powerchop_uarch::core::CoreStats;
///
/// let params = PowerParams::server();
/// let mut ledger = EnergyLedger::new(params.clone());
/// let mut stats = CoreStats::default();
/// stats.instructions = 1_000_000;
/// ledger.account(500_000, &stats, UnitStates::full(8));
/// let report = ledger.report();
/// assert!(report.leakage_j > 0.0 && report.dynamic_j > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct EnergyLedger {
    params: PowerParams,
    last_cycles: u64,
    last_stats: CoreStats,
    leak: LeakageBreakdown,
    dynamic: DynamicBreakdown,
    overhead_j: f64,
    transitions: u64,
}

impl EnergyLedger {
    /// Creates a ledger with nothing accounted yet.
    #[must_use]
    pub fn new(params: PowerParams) -> Self {
        EnergyLedger {
            params,
            last_cycles: 0,
            last_stats: CoreStats::default(),
            leak: LeakageBreakdown::default(),
            dynamic: DynamicBreakdown::default(),
            overhead_j: 0.0,
            transitions: 0,
        }
    }

    /// The parameters this ledger uses.
    #[must_use]
    pub fn params(&self) -> &PowerParams {
        &self.params
    }

    /// Accounts the interval from the previous call (or construction) up
    /// to the current core state, under the unit states that were in
    /// effect *during* that interval.
    ///
    /// `cycles` and `stats` are cumulative (as returned by the core
    /// model); the ledger works on deltas and is insensitive to call
    /// frequency.
    ///
    /// # Panics
    ///
    /// Panics (debug assertions) if `cycles` or any counter went
    /// backwards, which would indicate the caller mixed up core models.
    pub fn account(&mut self, cycles: u64, stats: &CoreStats, states: UnitStates) {
        debug_assert!(cycles >= self.last_cycles, "cycle counter went backwards");
        let dt = (cycles - self.last_cycles) as f64 / self.params.freq_hz;
        let p = &self.params;
        let residual = p.gated_leak_residual;

        // ---- leakage ----
        let vpu_factor = if states.vpu_active { 1.0 } else { residual };
        let bpu_factor = if states.bpu_large_active {
            1.0
        } else {
            residual
        };
        let mlc_factor = match states.mlc_awake_fraction {
            // Drowsy operation: awake lines leak fully; drowsy lines
            // retain state at a reduced (but non-gated) voltage.
            Some(awake) => awake + (1.0 - awake) * p.drowsy_leak_residual,
            None => {
                let mlc_on = states.mlc_state.active_fraction(states.mlc_total_ways);
                mlc_on + (1.0 - mlc_on) * residual
            }
        };
        self.leak.vpu += p.unit_leakage_w(ManagedUnit::Vpu) * vpu_factor * dt;
        self.leak.bpu += p.unit_leakage_w(ManagedUnit::Bpu) * bpu_factor * dt;
        self.leak.mlc += p.unit_leakage_w(ManagedUnit::Mlc) * mlc_factor * dt;
        self.leak.other += p.other_leakage_w() * dt;

        // ---- dynamic ----
        let d = |cur: u64, prev: u64| {
            debug_assert!(cur >= prev, "event counter went backwards");
            (cur - prev) as f64
        };
        let s = stats;
        let l = &self.last_stats;
        let e_branch = if states.bpu_large_active {
            p.e_bpu_large
        } else {
            p.e_bpu_small
        };
        let e_mlc = p.e_mlc_access(states.mlc_state, states.mlc_total_ways);
        self.dynamic.pipeline += d(s.instructions, l.instructions) * p.e_inst;
        self.dynamic.bpu += d(s.branches, l.branches) * e_branch;
        self.dynamic.vpu += d(s.simd_committed, l.simd_committed) * p.e_vpu_op
            + d(s.vec_emulated, l.vec_emulated) * p.e_vpu_emulated;
        self.dynamic.mlc += d(s.mlc_accesses, l.mlc_accesses) * e_mlc
            + d(s.mlc_writebacks, l.mlc_writebacks) * p.e_writeback;
        self.dynamic.memory += d(s.llc_accesses, l.llc_accesses) * p.e_llc
            + d(s.mem_accesses, l.mem_accesses) * p.e_mem;

        self.last_cycles = cycles;
        self.last_stats = *stats;
    }

    /// Charges the Eq. 1 energy overhead for one sleep-signal switch of
    /// `unit`. Eq. 1 gives the energy of an assert+deassert pair, so each
    /// individual switch is charged half of it.
    pub fn charge_transition(&mut self, unit: ManagedUnit) {
        let pair =
            gating_overhead_joules(self.params.unit_peak_dynamic_w(unit), self.params.freq_hz);
        self.overhead_j += pair / 2.0;
        self.transitions += 1;
    }

    /// Serializes the ledger's accumulated state (interval anchors, energy
    /// breakdowns, transition counters). `PowerParams` are config-derived
    /// and not written; floating-point values round-trip exactly via their
    /// bit patterns.
    pub fn snapshot_to(&self, w: &mut powerchop_checkpoint::ByteWriter) {
        w.put_u64(self.last_cycles);
        self.last_stats.snapshot_to(w);
        w.put_f64(self.leak.vpu);
        w.put_f64(self.leak.bpu);
        w.put_f64(self.leak.mlc);
        w.put_f64(self.leak.other);
        w.put_f64(self.dynamic.pipeline);
        w.put_f64(self.dynamic.bpu);
        w.put_f64(self.dynamic.vpu);
        w.put_f64(self.dynamic.mlc);
        w.put_f64(self.dynamic.memory);
        w.put_f64(self.overhead_j);
        w.put_u64(self.transitions);
    }

    /// Restores state written by [`EnergyLedger::snapshot_to`] into a
    /// ledger built with the same [`PowerParams`].
    ///
    /// # Errors
    ///
    /// Returns a [`powerchop_checkpoint::CheckpointError`] when the
    /// payload is truncated.
    pub fn restore_from(
        &mut self,
        r: &mut powerchop_checkpoint::ByteReader<'_>,
    ) -> Result<(), powerchop_checkpoint::CheckpointError> {
        self.last_cycles = r.take_u64()?;
        self.last_stats = CoreStats::restore_from(r)?;
        self.leak.vpu = r.take_f64()?;
        self.leak.bpu = r.take_f64()?;
        self.leak.mlc = r.take_f64()?;
        self.leak.other = r.take_f64()?;
        self.dynamic.pipeline = r.take_f64()?;
        self.dynamic.bpu = r.take_f64()?;
        self.dynamic.vpu = r.take_f64()?;
        self.dynamic.mlc = r.take_f64()?;
        self.dynamic.memory = r.take_f64()?;
        self.overhead_j = r.take_f64()?;
        self.transitions = r.take_u64()?;
        Ok(())
    }

    /// Produces the energy/power report for everything accounted so far.
    #[must_use]
    pub fn report(&self) -> EnergyReport {
        let seconds = self.last_cycles as f64 / self.params.freq_hz;
        let leakage_j = self.leak.total();
        let dynamic_j = self.dynamic.total();
        let total_j = leakage_j + dynamic_j + self.overhead_j;
        let div = if seconds > 0.0 {
            seconds
        } else {
            f64::INFINITY
        };
        EnergyReport {
            cycles: self.last_cycles,
            seconds,
            leakage_j,
            leakage: self.leak,
            dynamic_j,
            dynamic: self.dynamic,
            overhead_j: self.overhead_j,
            transitions: self.transitions,
            total_j,
            avg_power_w: total_j / div,
            leakage_power_w: leakage_j / div,
            dynamic_power_w: dynamic_j / div,
        }
    }
}

impl powerchop_telemetry::MetricSource for EnergyLedger {
    fn sample_metrics(&self, reg: &mut powerchop_telemetry::MetricsRegistry) {
        let report = self.report();
        reg.counter_set("power_cycles_accounted_total", report.cycles);
        reg.counter_set("power_transitions_total", report.transitions);
        reg.gauge_set("power_leakage_joules", report.leakage_j);
        reg.gauge_set("power_leakage_vpu_joules", report.leakage.vpu);
        reg.gauge_set("power_leakage_bpu_joules", report.leakage.bpu);
        reg.gauge_set("power_leakage_mlc_joules", report.leakage.mlc);
        reg.gauge_set("power_leakage_other_joules", report.leakage.other);
        reg.gauge_set("power_dynamic_joules", report.dynamic_j);
        reg.gauge_set("power_dynamic_pipeline_joules", report.dynamic.pipeline);
        reg.gauge_set("power_dynamic_bpu_joules", report.dynamic.bpu);
        reg.gauge_set("power_dynamic_vpu_joules", report.dynamic.vpu);
        reg.gauge_set("power_dynamic_mlc_joules", report.dynamic.mlc);
        reg.gauge_set("power_dynamic_memory_joules", report.dynamic.memory);
        reg.gauge_set("power_overhead_joules", report.overhead_j);
        reg.gauge_set("power_total_joules", report.total_j);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats_with(instructions: u64, branches: u64, mlc: u64) -> CoreStats {
        CoreStats {
            instructions,
            branches,
            mlc_accesses: mlc,
            ..CoreStats::default()
        }
    }

    #[test]
    fn leakage_scales_with_time() {
        let p = PowerParams::server();
        let mut a = EnergyLedger::new(p.clone());
        let mut b = EnergyLedger::new(p.clone());
        let s = CoreStats::default();
        a.account(1_000_000, &s, UnitStates::full(8));
        b.account(2_000_000, &s, UnitStates::full(8));
        let (ra, rb) = (a.report(), b.report());
        assert!((rb.leakage_j - 2.0 * ra.leakage_j).abs() < 1e-12);
        // Full power leakage power equals the configured core leakage.
        assert!((ra.leakage_power_w - p.core_leakage_w).abs() < 1e-9);
    }

    #[test]
    fn gating_reduces_leakage_to_residual() {
        let p = PowerParams::server();
        let mut full = EnergyLedger::new(p.clone());
        let mut min = EnergyLedger::new(p.clone());
        let s = CoreStats::default();
        full.account(1_000_000, &s, UnitStates::full(8));
        min.account(1_000_000, &s, UnitStates::minimal(8));
        let (rf, rm) = (full.report(), min.report());
        assert!(rm.leakage.vpu < 0.06 * rf.leakage.vpu);
        assert!(rm.leakage.bpu < 0.06 * rf.leakage.bpu);
        // One of eight MLC ways stays on: 1/8 + 7/8 * 5%.
        let expect = 0.125 + 0.875 * 0.05;
        assert!((rm.leakage.mlc / rf.leakage.mlc - expect).abs() < 1e-9);
        // The unmanaged core is unaffected.
        assert!((rm.leakage.other - rf.leakage.other).abs() < 1e-12);
    }

    #[test]
    fn dynamic_energy_tracks_event_deltas() {
        let p = PowerParams::server();
        let mut ledger = EnergyLedger::new(p.clone());
        ledger.account(1000, &stats_with(100, 0, 0), UnitStates::full(8));
        let after_insts = ledger.report().dynamic_j;
        assert!((after_insts - 100.0 * p.e_inst).abs() < 1e-15);
        ledger.account(2000, &stats_with(100, 50, 0), UnitStates::full(8));
        let after_branches = ledger.report().dynamic_j;
        assert!((after_branches - after_insts - 50.0 * p.e_bpu_large).abs() < 1e-15);
    }

    #[test]
    fn small_bpu_branches_cost_less() {
        let p = PowerParams::server();
        let mut large = EnergyLedger::new(p.clone());
        let mut small = EnergyLedger::new(p.clone());
        let states_small = UnitStates {
            bpu_large_active: false,
            ..UnitStates::full(8)
        };
        large.account(1000, &stats_with(0, 1000, 0), UnitStates::full(8));
        small.account(1000, &stats_with(0, 1000, 0), states_small);
        assert!(large.report().dynamic_j > 4.0 * small.report().dynamic_j);
    }

    #[test]
    fn dynamic_breakdown_sums_to_total() {
        let p = PowerParams::server();
        let mut ledger = EnergyLedger::new(p.clone());
        let stats = CoreStats {
            instructions: 10_000,
            branches: 1_000,
            simd_committed: 200,
            vec_emulated: 50,
            mlc_accesses: 300,
            mlc_writebacks: 10,
            llc_accesses: 100,
            mem_accesses: 40,
            ..CoreStats::default()
        };
        ledger.account(100_000, &stats, UnitStates::full(8));
        let r = ledger.report();
        assert!((r.dynamic.total() - r.dynamic_j).abs() < 1e-18);
        assert!(r.dynamic.pipeline > 0.0);
        assert!(r.dynamic.bpu > 0.0);
        assert!(r.dynamic.vpu > 0.0);
        assert!(r.dynamic.mlc > 0.0);
        assert!(r.dynamic.memory > 0.0);
    }

    #[test]
    fn transition_overhead_is_half_a_pair_per_switch() {
        let p = PowerParams::server();
        let mut ledger = EnergyLedger::new(p.clone());
        ledger.charge_transition(ManagedUnit::Vpu);
        ledger.charge_transition(ManagedUnit::Vpu);
        let pair = gating_overhead_joules(p.peak_dyn_vpu_w, p.freq_hz);
        let r = ledger.report();
        assert!((r.overhead_j - pair).abs() < 1e-18);
        assert_eq!(r.transitions, 2);
    }

    #[test]
    fn empty_report_has_no_nan_power() {
        let r = EnergyLedger::new(PowerParams::mobile()).report();
        assert_eq!(r.avg_power_w, 0.0);
        assert_eq!(r.cycles, 0);
    }

    #[test]
    fn account_is_delta_insensitive_to_call_frequency() {
        let p = PowerParams::mobile();
        let mut once = EnergyLedger::new(p.clone());
        let mut twice = EnergyLedger::new(p.clone());
        let end = stats_with(500, 100, 20);
        once.account(10_000, &end, UnitStates::full(8));
        let mid = stats_with(200, 40, 5);
        twice.account(4_000, &mid, UnitStates::full(8));
        twice.account(10_000, &end, UnitStates::full(8));
        let (a, b) = (once.report(), twice.report());
        assert!((a.total_j - b.total_j).abs() < 1e-15);
    }
}
