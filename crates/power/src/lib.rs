//! Power and energy modelling for the PowerChop reproduction.
//!
//! The paper models power with McPAT at a 32 nm node and sizes the HTB with
//! CACTI (paper §IV-B4, §V-A). Neither tool is available here, so this
//! crate provides analytic substitutes (see `DESIGN.md`):
//!
//! - [`params::PowerParams`] — per-design-point leakage and per-event
//!   dynamic energies, with unit leakage shares pinned by the area
//!   fractions of Table I,
//! - [`gating`] — the Hu et al. power-gating energy-overhead model the
//!   paper uses verbatim (Eq. 1): `E_overhead = 2 · (W/H) · α · E_cyc^S`
//!   with `W/H = 0.20` and switching factor `α = 0.5`,
//! - [`ledger::EnergyLedger`] — integrates leakage over time (5 % residual
//!   leakage in gated units) and dynamic energy over core events, producing
//!   the power/energy numbers Figures 13–14 report,
//! - [`cost`] — an SRAM cost model (CACTI substitute) reproducing the
//!   paper's HTB/PVT hardware-cost estimates.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod gating;
pub mod ledger;
pub mod params;

pub use cost::SramCost;
pub use gating::gating_overhead_joules;
pub use ledger::{DynamicBreakdown, EnergyLedger, EnergyReport, LeakageBreakdown, UnitStates};
pub use params::{ManagedUnit, PowerParams};
