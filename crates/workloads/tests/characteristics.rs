//! Characteristic tests: each synthetic benchmark must exhibit the
//! instruction-mix and phase properties its paper namesake was chosen
//! for. These pin the workload engineering that the whole evaluation
//! rests on — if a benchmark drifts, the affected figures drift with it.

use std::collections::HashMap;

use powerchop_gisa::{Cpu, InstClass, Memory};
use powerchop_workloads::{by_name, Scale};

/// Executes a benchmark architecturally and returns instruction-class
/// shares plus the vector-op distribution over 1000-inst shards.
struct Profile {
    shares: HashMap<InstClass, f64>,
    shards_sparse_vec: f64,
    shards_zero_vec: f64,
    touched_bytes: u64,
}

fn profile(name: &str) -> Profile {
    let b = by_name(name).unwrap_or_else(|| panic!("unknown benchmark {name}"));
    let program = b.program(Scale(0.08));
    let mut cpu = Cpu::new(&program);
    let mut mem = Memory::new();
    program.init_memory(&mut mem);
    let mut counts: HashMap<InstClass, u64> = HashMap::new();
    let mut shards = Vec::new();
    let (mut in_shard, mut vec_in_shard) = (0u64, 0u64);
    let mut min_addr = u64::MAX;
    let mut max_addr = 0u64;
    while !cpu.halted() && cpu.retired() < 3_000_000 {
        let info = cpu
            .step(&program, &mut mem)
            .expect("benchmark must not fault");
        *counts.entry(info.class).or_insert(0) += 1;
        if let Some(m) = info.mem {
            min_addr = min_addr.min(m.addr);
            max_addr = max_addr.max(m.addr);
        }
        if info.class.uses_vpu() {
            vec_in_shard += 1;
        }
        in_shard += 1;
        if in_shard == 1000 {
            shards.push(vec_in_shard);
            in_shard = 0;
            vec_in_shard = 0;
        }
    }
    let total: u64 = counts.values().sum();
    let shares = counts
        .into_iter()
        .map(|(k, v)| (k, v as f64 / total as f64))
        .collect();
    let n = shards.len().max(1) as f64;
    Profile {
        shares,
        shards_sparse_vec: shards.iter().filter(|v| (1..=4).contains(*v)).count() as f64 / n,
        shards_zero_vec: shards.iter().filter(|v| **v == 0).count() as f64 / n,
        touched_bytes: max_addr.saturating_sub(min_addr),
    }
}

fn share(p: &Profile, class: InstClass) -> f64 {
    p.shares.get(&class).copied().unwrap_or(0.0)
}

fn vec_share(p: &Profile) -> f64 {
    share(p, InstClass::VecAlu) + share(p, InstClass::VecMem)
}

fn branch_share(p: &Profile) -> f64 {
    share(p, InstClass::Branch)
}

#[test]
fn namd_has_sparse_uniform_vector_ops() {
    let p = profile("namd");
    let vec = vec_share(&p);
    assert!(
        vec > 0.0 && vec < 0.01,
        "namd vector share {vec} must be tiny but nonzero"
    );
    assert!(
        p.shards_sparse_vec > 0.3,
        "namd needs many 0<V<=4 shards (Fig. 15): {}",
        p.shards_sparse_vec
    );
}

#[test]
fn gobmk_alternates_vector_intensity() {
    let p = profile("gobmk");
    assert!(p.shards_zero_vec > 0.2, "gobmk needs vector-free stretches");
    assert!(vec_share(&p) > 0.02, "gobmk needs dense vector bursts");
}

#[test]
fn dedup_has_no_vector_work() {
    let p = profile("dedup");
    assert_eq!(vec_share(&p), 0.0, "the paper gates dedup's VPU >90%");
}

#[test]
fn fp_suite_is_vector_heavy() {
    // Paper §V-C: soplex/sphinx keep the VPU on ~80% of the time.
    for name in ["soplex", "sphinx3", "calculix", "fluidanimate"] {
        let p = profile(name);
        assert!(
            vec_share(&p) > 0.10,
            "{name} must be vector-heavy, got {}",
            vec_share(&p)
        );
    }
}

#[test]
fn mobile_workloads_are_branch_dense_and_vector_free() {
    for name in ["msn", "amazon", "google", "bbc", "ebay"] {
        let p = profile(name);
        assert!(
            branch_share(&p) > 0.05,
            "{name} must be branchy (paper §III-B), got {}",
            branch_share(&p)
        );
        assert!(
            vec_share(&p) < 0.01,
            "{name} must have (almost) no vector work, got {}",
            vec_share(&p)
        );
    }
}

#[test]
fn streaming_workloads_touch_large_footprints() {
    for name in [
        "libquantum",
        "mcf",
        "canneal",
        "streamcluster",
        "lbm",
        "milc",
    ] {
        let p = profile(name);
        assert!(
            p.touched_bytes > 2 << 20,
            "{name} must stream a large region, touched {} bytes",
            p.touched_bytes
        );
    }
}

#[test]
fn cache_resident_workloads_stay_compact() {
    for name in ["hmmer", "povray", "swaptions"] {
        let p = profile(name);
        assert!(
            p.touched_bytes < 1 << 20,
            "{name} must stay MLC/L1-resident, touched {} bytes",
            p.touched_bytes
        );
    }
}

#[test]
fn memory_intensity_classes() {
    // Memory-bound apps have far more loads per instruction than compute
    // apps.
    let mcf = profile("mcf");
    let povray = profile("povray");
    let mcf_mem = share(&mcf, InstClass::Load) + share(&mcf, InstClass::Store);
    let pov_mem = share(&povray, InstClass::Load) + share(&povray, InstClass::Store);
    assert!(
        mcf_mem > 4.0 * pov_mem,
        "mcf ({mcf_mem:.3}) must be far more memory-intense than povray ({pov_mem:.3})"
    );
}

#[test]
fn fp_workloads_use_fp_units() {
    for name in ["blackscholes", "povray", "swaptions", "lbm"] {
        let p = profile(name);
        let fp = share(&p, InstClass::FpAlu) + share(&p, InstClass::FpMul);
        assert!(fp > 0.05, "{name} must execute FP work, got {fp}");
    }
}

#[test]
fn every_benchmark_exceeds_its_scaled_length() {
    // Scale(0.08) must still give every benchmark enough instructions to
    // cover several execution windows.
    for b in powerchop_workloads::all() {
        let program = b.program(Scale(0.08));
        let mut cpu = Cpu::new(&program);
        let mut mem = Memory::new();
        program.init_memory(&mut mem);
        while !cpu.halted() && cpu.retired() < 3_000_000 {
            cpu.step(&program, &mut mem).unwrap();
        }
        assert!(
            cpu.retired() > 100_000,
            "{} too short at Scale(0.08): {}",
            b.name(),
            cpu.retired()
        );
    }
}
