//! MobileBench R-GWB-like synthetic benchmarks (mobile core).
//!
//! The paper's mobile workloads are Realistic General Web Browsing runs of
//! real sites inside the Android browser. The synthetic equivalents mix
//! browser-like phases: layout/DOM traversal (`browser_mix` over
//! page-sized working sets, sometimes with history-correlated branch
//! patterns the large BPU captures), script execution (data-dependent
//! branches neither predictor learns), text processing (predictable
//! loops), and streaming resource loads. Mobile workloads carry dense
//! branches and little vector work; the paper gates the mobile BPU ~40 %
//! and the VPU >90 % of cycles on average, and way-gates the MLC ~20 % of
//! the time (paper §V-C).

use powerchop_gisa::Program;

use crate::compose::{build_benchmark, RegionAlloc, Scale};
use crate::kernels;

/// Page-sized working set: fits the mobile MLC (2 MiB), not L1 — one
/// window's unrolled loads sweep it, so profiling sees its MLC hits.
const WS_PAGE: u64 = 128 << 10;
/// Resource-streaming working set (streams past the mobile MLC).
const WS_STREAM: u64 = 4 << 20;

/// `msn`: the paper's Figure 2 subject — alternating phases where the
/// large BPU clearly wins (patterned layout branches) and phases where it
/// adds nothing (script-like random branches, predictable text loops).
pub fn msn(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let page = mem.reserve(WS_PAGE);
    let stream = mem.reserve(WS_STREAM);
    build_benchmark("msn", 4, |b| {
        kernels::browser_mix(b, s.apply(28_000), 4, &page);
        kernels::script_mix(b, s.apply(24_000), 0x3141_0001, &page);
        kernels::int_compute(b, s.apply(40_000), 3);
        kernels::browser_mix(b, s.apply(6_000), 1000, &stream);
    })
}

/// `amazon`: long gateable stretches — script-heavy random branches, tiny
/// hot loops and streaming image data; the paper's largest mobile power
/// reduction (up to ~40 %).
pub fn amazon(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let tiny = mem.reserve(16 << 10);
    let stream = mem.reserve(WS_STREAM);
    build_benchmark("amazon", 4, |b| {
        kernels::script_mix(b, s.apply(28_000), 0xa11a_0001, &tiny);
        kernels::random_branches(b, s.apply(40_000), 0xa11a_0002);
        kernels::int_compute(b, s.apply(48_000), 4);
        kernels::strided_loads(b, s.apply(6_000), &stream);
    })
}

/// `google`: search/results pages — patterned layout branches the big BPU
/// captures, page-sized working sets, plus script and streaming phases.
pub fn google(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let page = mem.reserve(WS_PAGE);
    let stream = mem.reserve(8 << 20);
    build_benchmark("google", 4, |b| {
        kernels::browser_mix(b, s.apply(24_000), 4, &page);
        kernels::pattern_branches(b, s.apply(32_000), 4);
        kernels::script_mix(b, s.apply(20_000), 0x6006_0001, &page);
        kernels::strided_loads(b, s.apply(6_000), &stream);
    })
}

/// `bbc`: article pages — patterned layout over page-sized data plus long
/// predictable text-processing loops and script bursts.
pub fn bbc(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let page = mem.reserve(WS_PAGE);
    build_benchmark("bbc", 4, |b| {
        kernels::browser_mix(b, s.apply(26_000), 4, &page);
        kernels::int_compute(b, s.apply(52_000), 3);
        kernels::script_mix(b, s.apply(18_000), 0xbbc_0001, &page);
    })
}

/// `ebay`: listing pages — page-sized working set, script-heavy, with
/// rare image-decode vector bursts.
pub fn ebay(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let listing = mem.reserve(WS_PAGE);
    build_benchmark("ebay", 4, |b| {
        kernels::browser_mix(b, s.apply(20_000), 4, &listing);
        kernels::script_mix(b, s.apply(24_000), 0xeba_0001, &listing);
        kernels::int_compute(b, s.apply(36_000), 5);
        kernels::sparse_vector(b, s.apply(24_000), 400);
    })
}
