//! Benchmark composition helpers: outer phase loops, iteration scaling and
//! memory-region allocation.

use powerchop_gisa::{GisaError, Program, ProgramBuilder, Reg};

/// A guest-memory region with a dedicated, persistent stride-offset
/// register.
///
/// The offset register is never reset, so a kernel revisiting the region
/// continues where it left off: regions larger than the caches truly
/// *stream* across phase recurrences instead of re-touching the same
/// prefix, while cache-sized regions still cycle the same lines.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRegion {
    /// Base guest address.
    pub base: u64,
    /// Region size in bytes (a power of two).
    pub bytes: u64,
    /// The register holding this region's persistent stride offset.
    pub offset_reg: Reg,
}

/// Scales every kernel's iteration count, letting tests and quick runs use
/// shortened versions of each benchmark while keeping its phase structure.
///
/// `Scale(1.0)` is the reference length (roughly 4–10 M dynamic guest
/// instructions per benchmark).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale(pub f64);

impl Default for Scale {
    fn default() -> Self {
        Scale(1.0)
    }
}

impl Scale {
    /// Applies the scale to a base iteration count (at least 1).
    #[must_use]
    pub fn apply(self, base: i64) -> i64 {
        ((base as f64 * self.0) as i64).max(1)
    }
}

/// Allocates disjoint guest-memory regions to kernels so their working
/// sets never alias, assigning each region a dedicated offset register
/// (`r18`–`r27`).
#[derive(Debug, Clone)]
pub struct RegionAlloc {
    next: u64,
    regions: u8,
}

/// First register reserved for region offsets.
const OFFSET_REG_BASE: u8 = 18;
/// Number of registers reserved for region offsets (`r18`–`r27`).
const OFFSET_REG_COUNT: u8 = 10;

impl RegionAlloc {
    /// Starts allocating at 16 MiB (clear of any data segments).
    #[must_use]
    pub fn new() -> Self {
        RegionAlloc {
            next: 16 << 20,
            regions: 0,
        }
    }

    /// Reserves a region of at least `bytes` (rounded to a power of two,
    /// aligned to its size).
    ///
    /// # Panics
    ///
    /// Panics after 10 regions (the offset-register pool is exhausted —
    /// benchmarks use at most a handful).
    pub fn reserve(&mut self, bytes: u64) -> MemRegion {
        assert!(
            self.regions < OFFSET_REG_COUNT,
            "out of region offset registers"
        );
        let size = bytes.next_power_of_two().max(4096);
        let base = self.next.next_multiple_of(size);
        self.next = base + size;
        let offset_reg = Reg::wrapping(OFFSET_REG_BASE + self.regions);
        self.regions += 1;
        MemRegion {
            base,
            bytes: size,
            offset_reg,
        }
    }
}

impl Default for RegionAlloc {
    fn default() -> Self {
        RegionAlloc::new()
    }
}

/// Builds a program whose body (one full pass over the benchmark's phases)
/// repeats `reps` times. The outer loop uses `r28`/`r29`, which kernels
/// must not touch.
///
/// # Errors
///
/// Propagates builder errors, which indicate a bug in a kernel emitter.
pub fn with_outer_loop(
    name: &str,
    reps: i64,
    body: impl FnOnce(&mut ProgramBuilder),
) -> Result<Program, GisaError> {
    let r28 = Reg::new(28)?;
    let r29 = Reg::new(29)?;
    let mut b = ProgramBuilder::new(name);
    b.li(r28, 0).li(r29, reps.max(1));
    let top = b.bind_label();
    body(&mut b);
    b.addi(r28, r28, 1);
    b.blt(r28, r29, top);
    b.halt();
    b.build()
}

/// [`with_outer_loop`] for the static benchmark emitters, whose kernels
/// are compiled in: a builder error there is a kernel-emitter bug, not
/// user input, so it surfaces as one well-labelled panic here instead of
/// an `.expect` at every emitter.
///
/// # Panics
///
/// Panics when the builder rejects the emitted program, naming the
/// benchmark.
#[must_use]
pub fn build_benchmark(name: &str, reps: i64, body: impl FnOnce(&mut ProgramBuilder)) -> Program {
    match with_outer_loop(name, reps, body) {
        Ok(p) => p,
        Err(e) => panic!("benchmark `{name}` failed to build: {e} (kernel emitter bug)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{Cpu, Memory};

    #[test]
    fn scale_applies_with_floor_one() {
        assert_eq!(Scale(1.0).apply(100), 100);
        assert_eq!(Scale(0.5).apply(100), 50);
        assert_eq!(Scale(0.0001).apply(100), 1);
        assert_eq!(Scale::default().apply(7), 7);
    }

    #[test]
    fn regions_are_disjoint_and_aligned() {
        let mut a = RegionAlloc::new();
        let r1 = a.reserve(1 << 16);
        let r2 = a.reserve(1 << 20);
        let r3 = a.reserve(1 << 12);
        assert!(r1.base.is_multiple_of(1 << 16));
        assert!(r2.base.is_multiple_of(1 << 20));
        assert!(r2.base >= r1.base + (1 << 16));
        assert!(r3.base >= r2.base + (1 << 20));
        // Each region gets its own offset register.
        assert_ne!(r1.offset_reg, r2.offset_reg);
        assert_ne!(r2.offset_reg, r3.offset_reg);
    }

    #[test]
    fn outer_loop_repeats_body() {
        let r0 = Reg::new(0).unwrap();
        let p = with_outer_loop("rep", 5, |b| {
            b.addi(r0, r0, 1);
        })
        .unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        while !cpu.halted() {
            cpu.step(&p, &mut mem).unwrap();
        }
        assert_eq!(cpu.int_reg(r0), 5);
    }
}
