//! SPEC CPU2006 floating-point-like synthetic benchmarks (server core).

use powerchop_gisa::Program;

use crate::compose::{build_benchmark, RegionAlloc, Scale};
use crate::kernels;

const WS_MLC: u64 = 512 << 10;
const WS_STREAM: u64 = 32 << 20;

/// `namd`: molecular dynamics with *sparse, uniformly-distributed* vector
/// operations — a few per thousand instructions throughout execution. The
/// paper's headline timeout-vs-PowerChop case (Fig. 16): the VPU never
/// idles long enough for a timeout, yet is never performance-critical.
pub fn namd(s: Scale) -> Program {
    build_benchmark("namd", 4, |b| {
        kernels::sparse_vector(b, s.apply(140_000), 250);
        kernels::fp_compute(b, s.apply(70_000), 6);
    })
}

/// `soplex`: LP solver with genuine dense-vector phases (~20 % of cycles
/// keep the VPU on, paper §V-C) over an MLC-resident basis matrix.
pub fn soplex(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let basis = mem.reserve(WS_MLC);
    build_benchmark("soplex", 4, |b| {
        kernels::fp_compute(b, s.apply(24_000), 5);
        kernels::vector_stream(b, s.apply(72_000), &basis);
        kernels::strided_loads(b, s.apply(16_000), &basis);
    })
}

/// `lbm`: lattice-Boltzmann streaming — predictable branches (BPU gated),
/// memory streaming (MLC way-gated) and sparse vector use; one of the
/// paper's largest total power reductions (up to ~40 %).
pub fn lbm(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let lattice = mem.reserve(WS_STREAM);
    build_benchmark("lbm", 4, |b| {
        kernels::strided_loads(b, s.apply(22_000), &lattice);
        kernels::fp_compute(b, s.apply(50_000), 8);
        kernels::sparse_vector(b, s.apply(24_000), 500);
    })
}

/// `milc`: lattice QCD — streaming sweeps with embedded vector arithmetic;
/// large power reduction driven by MLC way-gating (paper Fig. 13).
pub fn milc(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let field = mem.reserve(WS_STREAM);
    build_benchmark("milc", 4, |b| {
        kernels::strided_loads(b, s.apply(14_000), &field);
        kernels::vector_stream(b, s.apply(40_000), &field);
        kernels::fp_compute(b, s.apply(16_000), 4);
    })
}

/// `gems` (GemsFDTD): working set varies across phases — fits L1, fits the
/// MLC, or streams — which is the paper's Figure 3 motivation for MLC
/// way-gating.
pub fn gems(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let small = mem.reserve(16 << 10);
    let medium = mem.reserve(WS_MLC);
    let large = mem.reserve(WS_STREAM);
    build_benchmark("gems", 4, |b| {
        kernels::strided_loads(b, s.apply(14_000), &small);
        kernels::strided_loads(b, s.apply(14_000), &medium);
        kernels::strided_loads(b, s.apply(14_000), &large);
        kernels::vector_stream(b, s.apply(24_000), &medium);
    })
}

/// `sphinx3`: speech recognition — FP scoring with ~20 % vector phases
/// (paper §V-C) and patterned search branches.
pub fn sphinx3(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let model = mem.reserve(256 << 10);
    build_benchmark("sphinx3", 4, |b| {
        kernels::fp_compute(b, s.apply(20_000), 5);
        kernels::pattern_branches(b, s.apply(24_000), 6);
        kernels::vector_stream(b, s.apply(56_000), &model);
        kernels::strided_loads(b, s.apply(12_000), &model);
    })
}

/// `povray`: ray tracing — scalar FP with patterned traversal branches and
/// an L1-resident scene cache; no vector work.
pub fn povray(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let scene = mem.reserve(16 << 10);
    build_benchmark("povray", 4, |b| {
        kernels::fp_compute(b, s.apply(40_000), 8);
        kernels::pattern_branches(b, s.apply(36_000), 4);
        kernels::vector_stream(b, s.apply(28_000), &scene);
        kernels::strided_loads(b, s.apply(6_000), &scene);
    })
}

/// `calculix`: FE solver — mixed FP, medium-lived vector phases and an
/// MLC-resident stiffness matrix.
pub fn calculix(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let matrix = mem.reserve(WS_MLC);
    build_benchmark("calculix", 4, |b| {
        kernels::fp_compute(b, s.apply(20_000), 6);
        kernels::vector_stream(b, s.apply(64_000), &matrix);
        kernels::strided_loads(b, s.apply(12_000), &matrix);
    })
}
