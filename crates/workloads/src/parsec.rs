//! PARSEC-like synthetic benchmarks (server core).

use powerchop_gisa::Program;

use crate::compose::{build_benchmark, RegionAlloc, Scale};
use crate::kernels;

const WS_MLC: u64 = 512 << 10;
const WS_STREAM: u64 = 32 << 20;

/// `blackscholes`: option pricing — FP compute with SIMD pricing loops
/// over a small option array; the VPU stays busy, the MLC does not.
pub fn blackscholes(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let options = mem.reserve(64 << 10);
    build_benchmark("blackscholes", 4, |b| {
        kernels::fp_compute(b, s.apply(44_000), 10);
        kernels::vector_stream(b, s.apply(36_000), &options);
        kernels::sparse_vector(b, s.apply(30_000), 300);
    })
}

/// `canneal`: simulated annealing over a huge netlist — random pointer
/// traffic (MLC useless) and data-dependent branches (large BPU useless).
pub fn canneal(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let netlist = mem.reserve(WS_STREAM);
    build_benchmark("canneal", 4, |b| {
        kernels::strided_loads(b, s.apply(24_000), &netlist);
        kernels::random_branches(b, s.apply(56_000), 0xca_0001);
    })
}

/// `dedup`: pipelined deduplication — integer hashing with no vector work
/// at all (the paper gates its VPU >90 % of cycles) over an MLC-resident
/// chunk index.
pub fn dedup(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let index = mem.reserve(WS_MLC);
    build_benchmark("dedup", 4, |b| {
        kernels::int_compute(b, s.apply(76_000), 7);
        kernels::strided_loads(b, s.apply(28_000), &index);
        kernels::random_branches(b, s.apply(32_000), 0xded_0001);
    })
}

/// `fluidanimate`: SPH fluid simulation — alternating dense-vector and
/// scalar-FP phases over an MLC-resident particle grid.
pub fn fluidanimate(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let grid = mem.reserve(WS_MLC);
    build_benchmark("fluidanimate", 4, |b| {
        kernels::fp_compute(b, s.apply(48_000), 5);
        kernels::vector_stream(b, s.apply(32_000), &grid);
        kernels::strided_loads(b, s.apply(18_000), &grid);
    })
}

/// `streamcluster`: online clustering — long streaming distance
/// computations; the paper reports >40 % of cycles with a 1-way MLC.
pub fn streamcluster(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let points = mem.reserve(WS_STREAM);
    build_benchmark("streamcluster", 4, |b| {
        kernels::strided_loads(b, s.apply(20_000), &points);
        kernels::vector_stream(b, s.apply(26_000), &points);
    })
}

/// `swaptions`: Monte-Carlo pricing — predictable scalar FP over an
/// L1-resident state; both the MLC and the large BPU are non-critical.
pub fn swaptions(s: Scale) -> Program {
    build_benchmark("swaptions", 4, |b| {
        kernels::fp_compute(b, s.apply(100_000), 8);
        kernels::pattern_branches(b, s.apply(24_000), 8);
        kernels::int_compute(b, s.apply(20_000), 4);
    })
}
