//! Phase kernels: reusable code generators with engineered unit criticality.
//!
//! Each kernel emits a loop into a [`ProgramBuilder`] with a known
//! criticality profile for the VPU, BPU and MLC. Benchmarks in this crate
//! are compositions of kernels chosen so the resulting phase behaviour
//! mirrors the paper's applications (dense vs sparse vector use, BPU-hard
//! vs BPU-easy branch patterns, working sets that fit L1 / fit the MLC /
//! stream from memory).
//!
//! Register conventions: kernels use `r1`–`r17`, `f0`–`f3` and `v0`–`v3`
//! as scratch and preserve nothing. `r28`/`r29` are reserved for the
//! benchmark's outer phase loop.

use powerchop_gisa::{FReg, ProgramBuilder, Reg, VReg};

use crate::compose::MemRegion;

fn r(i: u8) -> Reg {
    Reg::wrapping(i)
}
fn f(i: u8) -> FReg {
    FReg::wrapping(i)
}
fn v(i: u8) -> VReg {
    VReg::wrapping(i)
}

/// Integer compute loop with fully predictable control flow.
///
/// Criticality: VPU none, BPU none (a bimodal predictor captures the loop
/// branch), MLC none (no memory traffic). `ops` scales the loop body.
pub fn int_compute(b: &mut ProgramBuilder, iters: i64, ops: u32) {
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(3), 3).li(r(4), 5);
    let top = b.bind_label();
    for i in 0..ops.max(1) {
        match i % 4 {
            0 => b.add(r(5), r(3), r(4)),
            1 => b.xor(r(6), r(5), r(3)),
            2 => b.mul(r(7), r(5), r(4)),
            _ => b.sub(r(3), r(7), r(6)),
        };
    }
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Floating-point compute loop (predictable, no memory, no vectors).
pub fn fp_compute(b: &mut ProgramBuilder, iters: i64, ops: u32) {
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.fli(f(0), 1.000001).fli(f(1), 0.5).fli(f(2), 1.5);
    let top = b.bind_label();
    for i in 0..ops.max(1) {
        match i % 3 {
            0 => b.fmul(f(1), f(1), f(0)),
            1 => b.fadd(f(2), f(2), f(1)),
            _ => b.fmadd(f(3), f(1), f(0), f(2)),
        };
    }
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Lines touched per [`vector_stream`] iteration.
pub const VEC_UNROLL: u64 = 4;

/// Dense SIMD streaming loop: vector loads, multiply-adds and stores over
/// a memory region (wrapping).
///
/// Criticality: VPU **high** (more than a third of the body is vector
/// ops), BPU none, MLC according to the region size. [`VEC_UNROLL`] lines
/// are touched per iteration so MLC-sized regions warm within a profiling
/// window.
pub fn vector_stream(b: &mut ProgramBuilder, iters: i64, region: &MemRegion) {
    let off = region.offset_reg;
    b.li(r(1), 0).li(r(2), iters.max(1));
    // The region's offset register is deliberately NOT reset: it persists
    // across phase recurrences, so regions larger than the cache truly
    // stream instead of re-touching the same prefix every recurrence.
    b.li(r(11), region.base as i64);
    b.li(r(12), (region.bytes - 1) as i64);
    b.li(r(13), 64); // stride: one line per unrolled block
    let top = b.bind_label();
    for _ in 0..VEC_UNROLL {
        b.add(r(3), r(11), off);
        b.vload(v(0), r(3), 0);
        b.vload(v(1), r(3), 32);
        b.vmadd(v(2), v(0), v(1), v(2));
        b.vstore(v(2), r(3), 0);
        b.add(off, off, r(13));
        b.and(off, off, r(12));
    }
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Sparse, uniformly-distributed vector use: one vector op every `period`
/// iterations of an otherwise scalar loop (the `namd` behaviour of
/// Fig. 15/16 — small non-zero V per shard, uniformly spread, which
/// defeats timeout gating but not PowerChop).
pub fn sparse_vector(b: &mut ProgramBuilder, iters: i64, period: i64) {
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(3), period.max(2));
    b.li(r(9), 0);
    b.li(r(4), 1);
    let top = b.bind_label();
    let skip = b.label();
    // scalar body
    b.add(r(5), r(5), r(4));
    b.xor(r(6), r(6), r(5));
    b.mul(r(7), r(5), r(4));
    // every `period` iterations: one vector op
    b.rem(r(8), r(1), r(3));
    b.bne(r(8), r(9), skip);
    b.vadd(v(0), v(0), v(1));
    b.bind_here(skip);
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Body unroll factor for the strided memory kernels: eight lines are
/// touched per loop iteration (and per translation), so one 1000-
/// translation window sweeps ~8000 lines — enough to warm an MLC-sized
/// working set within a single profiling window.
pub const MEM_UNROLL: u64 = 8;

/// Strided load loop over a working set of `ws_bytes` (rounded to a power
/// of two) at `base`, [`MEM_UNROLL`] new cache lines per iteration.
///
/// Criticality: MLC **high** when L1 < ws ≤ MLC capacity, **none** when
/// ws fits L1 or streams past the MLC. BPU none, VPU none.
pub fn strided_loads(b: &mut ProgramBuilder, iters: i64, region: &MemRegion) {
    let off = region.offset_reg;
    b.li(r(1), 0).li(r(2), iters.max(1));
    // The offset register persists across recurrences (see
    // [`vector_stream`]).
    b.li(r(11), region.base as i64);
    b.li(r(12), (region.bytes - 1) as i64);
    b.li(r(13), 64);
    let top = b.bind_label();
    for _ in 0..MEM_UNROLL {
        b.add(r(3), r(11), off);
        b.load(r(4), r(3), 0);
        b.add(r(5), r(5), r(4));
        b.add(off, off, r(13));
        b.and(off, off, r(12));
    }
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Strided store loop (dirties lines, producing writeback work when the
/// MLC is way-gated); [`MEM_UNROLL`] lines per iteration.
pub fn strided_stores(b: &mut ProgramBuilder, iters: i64, region: &MemRegion) {
    let off = region.offset_reg;
    b.li(r(1), 0).li(r(2), iters.max(1));
    // The offset register persists across recurrences (see
    // [`vector_stream`]).
    b.li(r(11), region.base as i64);
    b.li(r(12), (region.bytes - 1) as i64);
    b.li(r(13), 64);
    let top = b.bind_label();
    for _ in 0..MEM_UNROLL {
        b.add(r(3), r(11), off);
        b.store(r(1), r(3), 0);
        b.add(off, off, r(13));
        b.and(off, off, r(12));
    }
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Branches following a periodic pattern: taken iff `i mod modulus` falls
/// in the first half of the period.
///
/// Criticality: BPU **high** — global history learns the pattern, a
/// bimodal counter cannot (for small even `modulus` it hovers near 50 %).
pub fn pattern_branches(b: &mut ProgramBuilder, iters: i64, modulus: i64) {
    let modulus = modulus.max(2);
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(3), modulus);
    b.li(r(4), modulus / 2);
    let top = b.bind_label();
    let not_taken = b.label();
    let join = b.label();
    b.rem(r(5), r(1), r(3));
    b.bge(r(5), r(4), not_taken);
    b.addi(r(6), r(6), 1);
    b.jmp(join);
    b.bind_here(not_taken);
    b.addi(r(7), r(7), 1);
    b.bind_here(join);
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Branches on pseudo-random LCG bits: *neither* predictor can learn them,
/// so the large BPU provides no benefit despite heavy branch activity —
/// the paper's key observation that activity ≠ criticality (§III-B).
pub fn random_branches(b: &mut ProgramBuilder, iters: i64, seed: i64) {
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(14), seed | 1);
    b.li(r(15), 6_364_136_223_846_793_005);
    b.li(r(16), 1_442_695_040_888_963_407);
    b.li(r(17), 33);
    b.li(r(9), 0);
    b.li(r(8), 1);
    let top = b.bind_label();
    let not_taken = b.label();
    let join = b.label();
    b.mul(r(14), r(14), r(15));
    b.add(r(14), r(14), r(16));
    b.shr(r(5), r(14), r(17));
    b.and(r(5), r(5), r(8));
    b.beq(r(5), r(9), not_taken);
    b.addi(r(6), r(6), 1);
    b.jmp(join);
    b.bind_here(not_taken);
    b.addi(r(7), r(7), 1);
    b.bind_here(join);
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Line-touches per `browser_mix` iteration (see [`MEM_UNROLL`]).
pub const BROWSER_UNROLL: u64 = 4;

/// Mixed "browser-like" body: pattern branches plus [`BROWSER_UNROLL`]
/// strided loads per iteration, approximating MobileBench's branch
/// density and working-set behaviour.
pub fn browser_mix(b: &mut ProgramBuilder, iters: i64, modulus: i64, region: &MemRegion) {
    let off = region.offset_reg;
    let modulus = modulus.max(2);
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(3), modulus);
    b.li(r(4), modulus / 2);
    // The offset register persists across recurrences (see
    // [`vector_stream`]).
    b.li(r(11), region.base as i64);
    b.li(r(12), (region.bytes - 1) as i64);
    b.li(r(13), 32);
    let top = b.bind_label();
    let other = b.label();
    let join = b.label();
    for _ in 0..BROWSER_UNROLL {
        b.add(r(5), r(11), off);
        b.load(r(6), r(5), 0);
        b.add(off, off, r(13));
        b.and(off, off, r(12));
    }
    b.rem(r(7), r(1), r(3));
    b.bge(r(7), r(4), other);
    b.addi(r(8), r(8), 1);
    b.jmp(join);
    b.bind_here(other);
    b.xor(r(8), r(8), r(6));
    b.bind_here(join);
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

/// Script-like browser phase: LCG-random branches (neither predictor
/// learns them, so the large BPU is non-critical) plus [`BROWSER_UNROLL`]
/// strided loads per iteration over page data (the MLC stays critical).
/// This is the phase mix that lets PowerChop gate the mobile BPU while
/// keeping the MLC powered (paper §V-C).
pub fn script_mix(b: &mut ProgramBuilder, iters: i64, seed: i64, region: &MemRegion) {
    let off = region.offset_reg;
    b.li(r(1), 0).li(r(2), iters.max(1));
    b.li(r(14), seed | 1);
    b.li(r(15), 6_364_136_223_846_793_005);
    b.li(r(16), 1_442_695_040_888_963_407);
    b.li(r(17), 33);
    b.li(r(9), 0);
    b.li(r(8), 1);
    b.li(r(11), region.base as i64);
    b.li(r(12), (region.bytes - 1) as i64);
    b.li(r(13), 32);
    let top = b.bind_label();
    let not_taken = b.label();
    let join = b.label();
    for _ in 0..BROWSER_UNROLL {
        b.add(r(5), r(11), off);
        b.load(r(6), r(5), 0);
        b.add(off, off, r(13));
        b.and(off, off, r(12));
    }
    b.mul(r(14), r(14), r(15));
    b.add(r(14), r(14), r(16));
    b.shr(r(7), r(14), r(17));
    b.and(r(7), r(7), r(8));
    b.beq(r(7), r(9), not_taken);
    b.addi(r(6), r(6), 1);
    b.jmp(join);
    b.bind_here(not_taken);
    b.xor(r(6), r(6), r(14));
    b.bind_here(join);
    b.addi(r(1), r(1), 1);
    b.blt(r(1), r(2), top);
}

#[cfg(test)]
mod tests {
    use super::*;
    use powerchop_gisa::{Cpu, InstClass, Memory, Program};

    fn region(bytes: u64, base: u64, reg: u8) -> MemRegion {
        MemRegion {
            base,
            bytes: bytes.next_power_of_two(),
            offset_reg: r(reg),
        }
    }

    /// Runs a single-kernel program to completion, returning class counts.
    fn run_kernel(
        build: impl FnOnce(&mut ProgramBuilder),
    ) -> std::collections::HashMap<InstClass, u64> {
        let mut b = ProgramBuilder::new("kernel-test");
        build(&mut b);
        b.halt();
        let p: Program = b.build().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        p.init_memory(&mut mem);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..10_000_000u64 {
            if cpu.halted() {
                break;
            }
            let info = cpu.step(&p, &mut mem).unwrap();
            *counts.entry(info.class).or_insert(0) += 1;
        }
        assert!(cpu.halted(), "kernel did not terminate");
        counts
    }

    #[test]
    fn int_compute_has_no_vector_or_memory() {
        let c = run_kernel(|b| int_compute(b, 100, 4));
        assert!(!c.contains_key(&InstClass::VecAlu));
        assert!(!c.contains_key(&InstClass::Load));
        assert!(c[&InstClass::IntAlu] > 400);
    }

    #[test]
    fn vector_stream_is_vector_dense() {
        let c = run_kernel(|b| vector_stream(b, 200, &region(1 << 16, 0x10_0000, 18)));
        let total: u64 = c.values().sum();
        let vec = c[&InstClass::VecAlu] + c[&InstClass::VecMem];
        assert!(vec * 4 > total, "vector density too low: {vec}/{total}");
    }

    #[test]
    fn sparse_vector_density_matches_period() {
        let c = run_kernel(|b| sparse_vector(b, 10_000, 100));
        let total: u64 = c.values().sum();
        let vec = c.get(&InstClass::VecAlu).copied().unwrap_or(0);
        assert_eq!(vec, 100, "one vector op per period");
        assert!(vec * 50 < total, "sparse kernel must be mostly scalar");
    }

    #[test]
    fn strided_loads_touch_expected_lines() {
        let c = run_kernel(|b| strided_loads(b, 1000, &region(1 << 16, 0x20_0000, 19)));
        assert_eq!(c[&InstClass::Load], 1000 * MEM_UNROLL);
    }

    #[test]
    fn pattern_branches_alternate() {
        let c = run_kernel(|b| pattern_branches(b, 1000, 4));
        // 2 conditional branches per iteration (pattern + loop).
        assert!(c[&InstClass::Branch] >= 2000);
    }

    #[test]
    fn random_branches_split_roughly_evenly() {
        let mut b = ProgramBuilder::new("rng");
        random_branches(&mut b, 10_000, 12345);
        b.halt();
        let p = b.build().unwrap();
        let mut cpu = Cpu::new(&p);
        let mut mem = Memory::new();
        let mut taken = 0u64;
        let mut total = 0u64;
        while !cpu.halted() {
            let info = cpu.step(&p, &mut mem).unwrap();
            if let (InstClass::Branch, Some(br)) = (info.class, info.branch) {
                // Only the data-dependent branch (beq), not the loop branch.
                if matches!(
                    info.inst,
                    powerchop_gisa::Inst::Branch {
                        cond: powerchop_gisa::Cond::Eq,
                        ..
                    }
                ) {
                    total += 1;
                    if br.taken {
                        taken += 1;
                    }
                }
            }
        }
        let ratio = taken as f64 / total as f64;
        assert!((0.4..0.6).contains(&ratio), "LCG branch split {ratio}");
    }

    #[test]
    fn browser_mix_has_high_branch_density() {
        let c = run_kernel(|b| browser_mix(b, 2000, 6, &region(1 << 14, 0x40_0000, 20)));
        let total: u64 = c.values().sum();
        let branches = c[&InstClass::Branch];
        // Dense branching (mobile workloads are branch-heavy, §III-B).
        assert!(
            branches * 12 > total,
            "branch density too low: {branches}/{total}"
        );
        assert!(c[&InstClass::Load] >= 2000 * BROWSER_UNROLL);
    }

    #[test]
    fn stores_kernel_writes_memory() {
        let c = run_kernel(|b| strided_stores(b, 500, &region(1 << 15, 0x80_0000, 21)));
        assert_eq!(c[&InstClass::Store], 500 * MEM_UNROLL);
    }

    #[test]
    fn fp_compute_is_fp_dense() {
        let c = run_kernel(|b| fp_compute(b, 100, 6));
        let fp = c[&InstClass::FpAlu] + c[&InstClass::FpMul];
        assert!(fp >= 600);
    }
}
