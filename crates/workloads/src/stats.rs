//! Workload characterization: architectural instruction-mix profiles.
//!
//! Used by the benchmark suite's own tests, the CLI's `profile` command
//! and the Figure 1/15 harnesses to inspect what a guest program actually
//! executes, independent of any timing or power model.

use std::collections::HashMap;

use powerchop_gisa::{Cpu, GisaError, InstClass, Memory, Program};

/// An architectural execution profile of a guest program.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Instructions executed (may be capped by the caller's budget).
    pub instructions: u64,
    /// Dynamic count per instruction class.
    pub class_counts: HashMap<InstClass, u64>,
    /// Vector operations per consecutive 1000-instruction shard.
    pub vector_shards: Vec<u32>,
    /// Bytes spanned by data accesses (max − min address touched).
    pub touched_span_bytes: u64,
    /// Whether the program ran to completion within the budget.
    pub completed: bool,
}

impl WorkloadProfile {
    /// Fraction of instructions in `class`.
    #[must_use]
    pub fn share(&self, class: InstClass) -> f64 {
        if self.instructions == 0 {
            return 0.0;
        }
        *self.class_counts.get(&class).unwrap_or(&0) as f64 / self.instructions as f64
    }

    /// Fraction of instructions that are vector operations (VPU-bound).
    #[must_use]
    pub fn vector_share(&self) -> f64 {
        self.share(InstClass::VecAlu) + self.share(InstClass::VecMem)
    }

    /// Fraction of instructions that are conditional branches.
    #[must_use]
    pub fn branch_share(&self) -> f64 {
        self.share(InstClass::Branch)
    }

    /// Fraction of instructions that access data memory.
    #[must_use]
    pub fn memory_share(&self) -> f64 {
        self.share(InstClass::Load) + self.share(InstClass::Store) + self.share(InstClass::VecMem)
    }

    /// Fraction of 1000-instruction shards with a *sparse* vector count
    /// (0 < V ≤ 4) — the Figure 15 metric that identifies timeout-defeating
    /// workloads.
    #[must_use]
    pub fn sparse_vector_shard_fraction(&self) -> f64 {
        if self.vector_shards.is_empty() {
            return 0.0;
        }
        self.vector_shards
            .iter()
            .filter(|v| (1..=4).contains(*v))
            .count() as f64
            / self.vector_shards.len() as f64
    }
}

/// Profiles `program` architecturally for at most `max_instructions`.
///
/// # Errors
///
/// Propagates guest faults ([`GisaError`]), which indicate a broken
/// program.
pub fn profile(program: &Program, max_instructions: u64) -> Result<WorkloadProfile, GisaError> {
    let mut cpu = Cpu::new(program);
    let mut mem = Memory::new();
    program.init_memory(&mut mem);
    let mut class_counts: HashMap<InstClass, u64> = HashMap::new();
    let mut shards = Vec::new();
    let (mut in_shard, mut vec_in_shard) = (0u64, 0u32);
    let mut min_addr = u64::MAX;
    let mut max_addr = 0u64;
    while !cpu.halted() && cpu.retired() < max_instructions {
        let info = cpu.step(program, &mut mem)?;
        *class_counts.entry(info.class).or_insert(0) += 1;
        if let Some(m) = info.mem {
            min_addr = min_addr.min(m.addr);
            max_addr = max_addr.max(m.addr + u64::from(m.size));
        }
        if info.class.uses_vpu() {
            vec_in_shard += 1;
        }
        in_shard += 1;
        if in_shard == 1000 {
            shards.push(vec_in_shard);
            in_shard = 0;
            vec_in_shard = 0;
        }
    }
    Ok(WorkloadProfile {
        instructions: cpu.retired(),
        class_counts,
        vector_shards: shards,
        touched_span_bytes: max_addr.saturating_sub(min_addr),
        completed: cpu.halted(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{by_name, Scale};

    #[test]
    fn profile_of_namd_matches_its_design() {
        let p = by_name("namd").unwrap().program(Scale(0.05));
        let prof = profile(&p, 2_000_000).unwrap();
        assert!(prof.vector_share() > 0.0 && prof.vector_share() < 0.01);
        assert!(prof.sparse_vector_shard_fraction() > 0.3);
        assert!(prof.instructions > 100_000);
    }

    #[test]
    fn profile_respects_the_budget() {
        let p = by_name("gcc").unwrap().program(Scale(1.0));
        let prof = profile(&p, 50_000).unwrap();
        assert!(prof.instructions >= 50_000 && prof.instructions < 51_000);
        assert!(!prof.completed);
    }

    #[test]
    fn shares_sum_to_one() {
        let p = by_name("msn").unwrap().program(Scale(0.05));
        let prof = profile(&p, 1_000_000).unwrap();
        let total: u64 = prof.class_counts.values().sum();
        assert_eq!(total, prof.instructions);
        let share_sum: f64 = prof.class_counts.keys().map(|c| prof.share(*c)).sum();
        assert!((share_sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn memory_span_reflects_working_sets() {
        let small = profile(&by_name("hmmer").unwrap().program(Scale(0.05)), 1_000_000).unwrap();
        let large = profile(&by_name("mcf").unwrap().program(Scale(0.05)), 1_000_000).unwrap();
        assert!(large.touched_span_bytes > 8 * small.touched_span_bytes);
    }
}
