//! SPEC CPU2006 integer-like synthetic benchmarks (server core).
//!
//! Each program reproduces the phase-level unit-criticality profile the
//! paper reports for its namesake — e.g. `gobmk`'s varying vector-operation
//! intensity (Fig. 1), `hmmer`'s gateable BPU, `libquantum`'s streaming
//! MLC behaviour — not its computation.

use powerchop_gisa::Program;

use crate::compose::{build_benchmark, RegionAlloc, Scale};
use crate::kernels;

/// KiB working set that fits L1 (32 KiB).
const WS_L1: u64 = 16 << 10;
/// Working set that fits the server MLC (1 MiB) but not L1.
const WS_MLC: u64 = 512 << 10;
/// Working set that streams past the MLC and LLC.
const WS_STREAM: u64 = 32 << 20;

/// `perlbench`: interpreter-like pattern branches with occasional short
/// vector bursts (paper Fig. 16 shows PowerChop gating the VPU that
/// timeouts cannot).
pub fn perlbench(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let ws = mem.reserve(WS_L1);
    build_benchmark("perlbench", 4, |b| {
        kernels::pattern_branches(b, s.apply(90_000), 6);
        kernels::int_compute(b, s.apply(60_000), 6);
        kernels::vector_stream(b, s.apply(6_000), &ws);
        kernels::pattern_branches(b, s.apply(60_000), 12);
    })
}

/// `bzip2`: integer compression loops over a medium working set.
pub fn bzip2(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let ws = mem.reserve(256 << 10);
    build_benchmark("bzip2", 4, |b| {
        kernels::int_compute(b, s.apply(80_000), 8);
        kernels::strided_loads(b, s.apply(36_000), &ws);
        kernels::pattern_branches(b, s.apply(50_000), 8);
    })
}

/// `gcc`: phases alternating between streaming (MLC way-gateable, the
/// paper reports >40 % of cycles at 1 way) and small-footprint scalar code.
pub fn gcc(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let big = mem.reserve(WS_STREAM);
    let tiny = mem.reserve(WS_L1);
    build_benchmark("gcc", 4, |b| {
        kernels::pattern_branches(b, s.apply(60_000), 6);
        kernels::strided_loads(b, s.apply(20_000), &big);
        kernels::int_compute(b, s.apply(50_000), 4);
        kernels::strided_loads(b, s.apply(12_000), &tiny);
    })
}

/// `mcf`: memory-bound streaming with data-dependent branches.
pub fn mcf(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let big = mem.reserve(WS_STREAM);
    build_benchmark("mcf", 4, |b| {
        kernels::strided_loads(b, s.apply(28_000), &big);
        kernels::random_branches(b, s.apply(40_000), 0x5eed_0001);
    })
}

/// `gobmk`: vector-operation intensity varies across execution (Fig. 1),
/// interleaved with hard game-tree branches.
pub fn gobmk(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let board = mem.reserve(128 << 10);
    build_benchmark("gobmk", 4, |b| {
        kernels::int_compute(b, s.apply(50_000), 5);
        kernels::vector_stream(b, s.apply(18_000), &board);
        kernels::random_branches(b, s.apply(36_000), 0x60b_0001);
        kernels::vector_stream(b, s.apply(8_000), &board);
        kernels::int_compute(b, s.apply(50_000), 5);
    })
}

/// `hmmer`: highly predictable inner loops — the large BPU adds nothing,
/// so PowerChop gates it (paper §V-C).
pub fn hmmer(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let ws = mem.reserve(64 << 10);
    build_benchmark("hmmer", 4, |b| {
        kernels::int_compute(b, s.apply(130_000), 10);
        kernels::strided_loads(b, s.apply(12_000), &ws);
    })
}

/// `sjeng`: chess search with history-correlated branches — BPU-critical
/// pattern phases mixed with unpredictable-move phases.
pub fn sjeng(s: Scale) -> Program {
    build_benchmark("sjeng", 4, |b| {
        kernels::pattern_branches(b, s.apply(80_000), 4);
        kernels::random_branches(b, s.apply(50_000), 0x57e_0001);
        kernels::int_compute(b, s.apply(24_000), 4);
    })
}

/// `libquantum`: long streaming sweeps — the MLC provides no benefit and
/// way-gates to 1 way for large fractions of execution (paper §V-C).
pub fn libquantum(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let big = mem.reserve(WS_STREAM);
    build_benchmark("libquantum", 4, |b| {
        kernels::strided_loads(b, s.apply(24_000), &big);
        kernels::strided_stores(b, s.apply(12_000), &big);
        kernels::int_compute(b, s.apply(24_000), 3);
    })
}

/// `h264ref`: motion-estimation vector bursts between scalar phases with
/// sparse residual vector work (a PowerChop-vs-timeout win in Fig. 16).
pub fn h264ref(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let frame = mem.reserve(256 << 10);
    build_benchmark("h264ref", 4, |b| {
        kernels::vector_stream(b, s.apply(28_000), &frame);
        kernels::int_compute(b, s.apply(56_000), 6);
        kernels::sparse_vector(b, s.apply(44_000), 150);
        kernels::pattern_branches(b, s.apply(32_000), 6);
    })
}

/// `astar`: path search over an MLC-resident map with mildly patterned
/// branches — the MLC is criticial, so PowerChop keeps it powered.
pub fn astar(s: Scale) -> Program {
    let mut mem = RegionAlloc::new();
    let map = mem.reserve(WS_MLC);
    build_benchmark("astar", 4, |b| {
        kernels::strided_loads(b, s.apply(36_000), &map);
        kernels::pattern_branches(b, s.apply(44_000), 10);
        kernels::int_compute(b, s.apply(24_000), 4);
    })
}
