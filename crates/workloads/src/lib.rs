//! Synthetic benchmark suites for the PowerChop reproduction.
//!
//! The paper evaluates PowerChop on SPEC CPU2006 and PARSEC (server core)
//! and MobileBench R-GWB (mobile core) — 29 applications in total. Those
//! suites are proprietary and run on full OS stacks, so this crate provides
//! 29 synthetic guest-ISA programs, one per paper application, each
//! engineered to exhibit the phase-level unit-criticality behaviour the
//! paper reports for its namesake (see `DESIGN.md` for the substitution
//! argument and [`kernels`] for the building blocks).
//!
//! # Examples
//!
//! ```
//! use powerchop_workloads::{all, by_name, Scale, Suite};
//!
//! assert_eq!(all().len(), 29);
//! let gobmk = by_name("gobmk").expect("known benchmark");
//! assert_eq!(gobmk.suite(), Suite::SpecInt);
//! let program = gobmk.program(Scale(0.01)); // shortened for tests
//! assert!(program.len() > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod kernels;
pub mod mobile;
pub mod parsec;
pub mod spec_fp;
pub mod spec_int;
pub mod stats;

use powerchop_gisa::Program;
use powerchop_uarch::config::CoreKind;

pub use compose::Scale;

/// The benchmark suites of the paper's evaluation (§V-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// SPEC CPU2006 integer (server core).
    SpecInt,
    /// SPEC CPU2006 floating point (server core).
    SpecFp,
    /// PARSEC (server core).
    Parsec,
    /// MobileBench Realistic General Web Browsing (mobile core).
    MobileBench,
}

impl Suite {
    /// All suites, in the paper's reporting order.
    pub const ALL: [Suite; 4] = [
        Suite::SpecInt,
        Suite::SpecFp,
        Suite::Parsec,
        Suite::MobileBench,
    ];

    /// The core design point this suite is evaluated on (paper Table I).
    #[must_use]
    pub fn core_kind(self) -> CoreKind {
        match self {
            Suite::MobileBench => CoreKind::Mobile,
            _ => CoreKind::Server,
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::SpecInt => f.write_str("SPEC-INT"),
            Suite::SpecFp => f.write_str("SPEC-FP"),
            Suite::Parsec => f.write_str("PARSEC"),
            Suite::MobileBench => f.write_str("MobileBench"),
        }
    }
}

/// A named benchmark: metadata plus a program generator.
#[derive(Debug, Clone, Copy)]
pub struct Benchmark {
    name: &'static str,
    suite: Suite,
    build: fn(Scale) -> Program,
}

impl Benchmark {
    /// The benchmark's name (matches the paper's figures).
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// The suite the benchmark belongs to.
    #[must_use]
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// Which core design point this benchmark runs on.
    #[must_use]
    pub fn core_kind(&self) -> CoreKind {
        self.suite.core_kind()
    }

    /// Builds the guest program at the given scale.
    #[must_use]
    pub fn program(&self, scale: Scale) -> Program {
        (self.build)(scale)
    }
}

/// The full 29-application roster of the paper's evaluation.
static BENCHMARKS: [Benchmark; 29] = [
    Benchmark {
        name: "perlbench",
        suite: Suite::SpecInt,
        build: spec_int::perlbench,
    },
    Benchmark {
        name: "bzip2",
        suite: Suite::SpecInt,
        build: spec_int::bzip2,
    },
    Benchmark {
        name: "gcc",
        suite: Suite::SpecInt,
        build: spec_int::gcc,
    },
    Benchmark {
        name: "mcf",
        suite: Suite::SpecInt,
        build: spec_int::mcf,
    },
    Benchmark {
        name: "gobmk",
        suite: Suite::SpecInt,
        build: spec_int::gobmk,
    },
    Benchmark {
        name: "hmmer",
        suite: Suite::SpecInt,
        build: spec_int::hmmer,
    },
    Benchmark {
        name: "sjeng",
        suite: Suite::SpecInt,
        build: spec_int::sjeng,
    },
    Benchmark {
        name: "libquantum",
        suite: Suite::SpecInt,
        build: spec_int::libquantum,
    },
    Benchmark {
        name: "h264ref",
        suite: Suite::SpecInt,
        build: spec_int::h264ref,
    },
    Benchmark {
        name: "astar",
        suite: Suite::SpecInt,
        build: spec_int::astar,
    },
    Benchmark {
        name: "namd",
        suite: Suite::SpecFp,
        build: spec_fp::namd,
    },
    Benchmark {
        name: "soplex",
        suite: Suite::SpecFp,
        build: spec_fp::soplex,
    },
    Benchmark {
        name: "lbm",
        suite: Suite::SpecFp,
        build: spec_fp::lbm,
    },
    Benchmark {
        name: "milc",
        suite: Suite::SpecFp,
        build: spec_fp::milc,
    },
    Benchmark {
        name: "gems",
        suite: Suite::SpecFp,
        build: spec_fp::gems,
    },
    Benchmark {
        name: "sphinx3",
        suite: Suite::SpecFp,
        build: spec_fp::sphinx3,
    },
    Benchmark {
        name: "povray",
        suite: Suite::SpecFp,
        build: spec_fp::povray,
    },
    Benchmark {
        name: "calculix",
        suite: Suite::SpecFp,
        build: spec_fp::calculix,
    },
    Benchmark {
        name: "blackscholes",
        suite: Suite::Parsec,
        build: parsec::blackscholes,
    },
    Benchmark {
        name: "canneal",
        suite: Suite::Parsec,
        build: parsec::canneal,
    },
    Benchmark {
        name: "dedup",
        suite: Suite::Parsec,
        build: parsec::dedup,
    },
    Benchmark {
        name: "fluidanimate",
        suite: Suite::Parsec,
        build: parsec::fluidanimate,
    },
    Benchmark {
        name: "streamcluster",
        suite: Suite::Parsec,
        build: parsec::streamcluster,
    },
    Benchmark {
        name: "swaptions",
        suite: Suite::Parsec,
        build: parsec::swaptions,
    },
    Benchmark {
        name: "msn",
        suite: Suite::MobileBench,
        build: mobile::msn,
    },
    Benchmark {
        name: "amazon",
        suite: Suite::MobileBench,
        build: mobile::amazon,
    },
    Benchmark {
        name: "google",
        suite: Suite::MobileBench,
        build: mobile::google,
    },
    Benchmark {
        name: "bbc",
        suite: Suite::MobileBench,
        build: mobile::bbc,
    },
    Benchmark {
        name: "ebay",
        suite: Suite::MobileBench,
        build: mobile::ebay,
    },
];

/// All 29 benchmarks in suite order.
#[must_use]
pub fn all() -> &'static [Benchmark] {
    &BENCHMARKS
}

/// Looks a benchmark up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<&'static Benchmark> {
    BENCHMARKS.iter().find(|b| b.name == name)
}

/// The benchmarks of one suite.
pub fn suite(suite: Suite) -> impl Iterator<Item = &'static Benchmark> {
    BENCHMARKS.iter().filter(move |b| b.suite == suite)
}

/// The server-core roster (SPEC + PARSEC).
pub fn server() -> impl Iterator<Item = &'static Benchmark> {
    BENCHMARKS
        .iter()
        .filter(|b| b.core_kind() == CoreKind::Server)
}

/// The mobile-core roster (MobileBench).
pub fn mobile_suite() -> impl Iterator<Item = &'static Benchmark> {
    BENCHMARKS
        .iter()
        .filter(|b| b.core_kind() == CoreKind::Mobile)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_matches_paper_counts() {
        assert_eq!(all().len(), 29, "paper evaluates 29 applications");
        assert_eq!(suite(Suite::SpecInt).count(), 10);
        assert_eq!(suite(Suite::SpecFp).count(), 8);
        assert_eq!(suite(Suite::Parsec).count(), 6);
        assert_eq!(suite(Suite::MobileBench).count(), 5);
        assert_eq!(server().count(), 24);
        assert_eq!(mobile_suite().count(), 5);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<_> = all().iter().map(|b| b.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 29);
    }

    #[test]
    fn by_name_finds_every_benchmark() {
        for b in all() {
            assert_eq!(by_name(b.name()).unwrap().name(), b.name());
        }
        assert!(by_name("nonexistent").is_none());
    }

    #[test]
    fn mobile_benchmarks_use_the_mobile_core() {
        for b in suite(Suite::MobileBench) {
            assert_eq!(b.core_kind(), CoreKind::Mobile);
        }
        for b in suite(Suite::SpecFp) {
            assert_eq!(b.core_kind(), CoreKind::Server);
        }
    }

    #[test]
    fn every_benchmark_builds_and_terminates_when_scaled_down() {
        use powerchop_gisa::{Cpu, Memory};
        for b in all() {
            let p = b.program(Scale(0.002));
            let mut cpu = Cpu::new(&p);
            let mut mem = Memory::new();
            p.init_memory(&mut mem);
            let mut steps = 0u64;
            while !cpu.halted() {
                cpu.step(&p, &mut mem)
                    .unwrap_or_else(|e| panic!("{} faulted: {e}", b.name()));
                steps += 1;
                assert!(steps < 20_000_000, "{} did not terminate", b.name());
            }
            assert!(steps > 100, "{} too short even scaled", b.name());
        }
    }

    #[test]
    fn scale_controls_dynamic_length() {
        use powerchop_gisa::{Cpu, Memory};
        let b = by_name("hmmer").unwrap();
        let run = |scale: f64| {
            let p = b.program(Scale(scale));
            let mut cpu = Cpu::new(&p);
            let mut mem = Memory::new();
            while !cpu.halted() {
                cpu.step(&p, &mut mem).unwrap();
            }
            cpu.retired()
        };
        let short = run(0.001);
        let longer = run(0.01);
        assert!(longer > 5 * short);
    }
}
